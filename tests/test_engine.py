"""Unit tests for the event-driven simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


def test_events_run_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(10, lambda: order.append("b"))
    engine.schedule(5, lambda: order.append("a"))
    engine.schedule(20, lambda: order.append("c"))
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 20


def test_same_cycle_events_run_in_scheduling_order():
    engine = Engine()
    order = []
    engine.schedule(7, lambda: order.append(1))
    engine.schedule(7, lambda: order.append(2))
    engine.schedule(7, lambda: order.append(3))
    engine.run()
    assert order == [1, 2, 3]


def test_events_can_schedule_more_events():
    engine = Engine()
    seen = []

    def first():
        seen.append(engine.now)
        engine.schedule(3, lambda: seen.append(engine.now))

    engine.schedule(2, first)
    engine.run()
    assert seen == [2, 5]


def test_run_until_stops_before_future_events():
    engine = Engine()
    fired = []
    engine.schedule(100, lambda: fired.append(True))
    engine.run(until=50)
    assert not fired
    assert engine.now == 50
    engine.run()
    assert fired


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(5, lambda: fired.append(True))
    event.cancel()
    engine.run()
    assert not fired


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)


def test_max_events_guard():
    engine = Engine()

    def rearm():
        engine.schedule(1, rearm)

    engine.schedule(0, rearm)
    with pytest.raises(SimulationError):
        engine.run(max_events=100)


def test_advance_moves_time_even_with_empty_queue():
    engine = Engine()
    engine.advance(42)
    assert engine.now == 42


def test_step_returns_false_when_empty():
    engine = Engine()
    assert engine.step() is False
    engine.schedule(1, lambda: None)
    assert engine.step() is True
    assert engine.step() is False
