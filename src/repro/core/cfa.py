"""The configurable-finite-automaton (CFA) model (paper Sec. III).

A CFA has *fixed transition rules but configurable parameters*: each
data-structure type maps to one :class:`CfaProgram` whose states are driven
by the CFA Execution Engine.  Every step either performs an internal
transition (one CEE cycle) or issues exactly one micro-operation to the Data
Processing Unit / memory system:

* :class:`MemRead` — cacheline-granular memory fetch into QST scratch;
* :class:`Compare` — (possibly remote, near-LLC) key comparison;
* :class:`HashOp` — the DPU hashing unit;
* :class:`AluOp` — arithmetic/logic on intermediate data;
* :class:`Done` / :class:`Fault` — terminal transitions.

Programs are registered in a :class:`FirmwareImage`; new data structures are
supported by registering new programs at runtime — the paper's
firmware-update path (Sec. IV-B).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import FirmwareError
from .abort import AbortCode
from .header import DataStructureHeader

#: Architectural states shared by every program (Sec. IV-C / IV-D).
STATE_IDLE = "IDLE"
STATE_START = "START"
STATE_DONE = "DONE"
STATE_EXCEPTION = "EXCEPTION"

#: Result encodings written for non-blocking queries.
RESULT_PENDING = 0
RESULT_FOUND = 1
RESULT_NOT_FOUND = 2
RESULT_FAULT = 3
RESULT_ABORTED = 4

#: Query operation codes carried by a request (docs/mutations.md).  LOOKUP
#: is the read path every pre-mutation caller uses; the write ops dispatch
#: to the mutation program table registered for the structure type.
OP_LOOKUP = 0
OP_INSERT = 1
OP_DELETE = 2
OP_UPDATE = 3
OP_NAMES = {
    OP_LOOKUP: "lookup",
    OP_INSERT: "insert",
    OP_DELETE: "delete",
    OP_UPDATE: "update",
}
WRITE_OPS = (OP_INSERT, OP_DELETE, OP_UPDATE)


# --------------------------------------------------------------------- #
# Micro-operation vocabulary
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class MemRead:
    """Fetch ``length`` bytes at ``vaddr`` into scratch slot ``tag``.

    Multiple segments may be fetched concurrently (the paper's CFA issues
    the key and starting-node reads in parallel, Fig. 3 step 1): pass extra
    ``(vaddr, length, tag)`` tuples in ``also``.

    ``optional_after`` marks speculative tail bytes: fetches are cacheline
    granular, so a program may ask for a whole line knowing only the first
    N bytes are architecturally required; the engine truncates the fetch at
    an unmapped page instead of faulting, provided at least
    ``optional_after`` bytes were read.
    """

    vaddr: int
    length: int
    tag: str
    also: Tuple[Tuple[int, int, str], ...] = ()
    optional_after: Optional[int] = None

    def segments(self) -> Iterable[Tuple[int, int, str]]:
        yield self.vaddr, self.length, self.tag
        yield from self.also


@dataclass(frozen=True)
class Compare:
    """Compare ``length`` bytes at ``mem_vaddr`` against ``key_vaddr``.

    Executed by a DPU comparator.  In distributed schemes the comparator
    lives in the data's home CHA and reads straight from the LLC slice; in
    device schemes the lines travel to the device's local comparators.
    The three-way outcome (<, =, >) lands in ``ctx.results[tag]``.
    """

    mem_vaddr: int
    key_vaddr: int
    length: int
    tag: str


@dataclass(frozen=True)
class HashOp:
    """Hash ``length`` bytes already staged in scratch slot ``key_tag``."""

    key_tag: str
    tag: str
    kind: str = "fnv1a"


@dataclass(frozen=True)
class AluOp:
    """Arithmetic on intermediate data (address math, masks)."""

    cycles: int = 1


@dataclass(frozen=True)
class MemWrite:
    """Store ``data`` at ``vaddr`` through the DPU's store path.

    The write-path counterpart of :class:`MemRead`: mutation CFAs publish
    slot contents, new-node links and header fields with it.  Writes are
    only architecturally visible once the engine executes the action, so a
    program that faults before its MemWrite leaves memory untouched.
    """

    vaddr: int
    data: bytes
    tag: str = "write"
    also: Tuple[Tuple[int, bytes], ...] = ()

    def segments(self) -> Iterable[Tuple[int, bytes]]:
        yield self.vaddr, self.data
        yield from self.also


@dataclass(frozen=True)
class HeaderCas:
    """Compare-and-swap a u64 at ``vaddr``: the seqlock acquire primitive.

    The engine atomically (the CEE serialises micro-ops) compares the word
    against ``expect`` and, on match, stores ``new``.  The outcome (1 won,
    0 lost) lands in ``ctx.results[tag]`` so the program can back off.
    """

    vaddr: int
    expect: int
    new: int
    tag: str = "cas"


@dataclass(frozen=True)
class Delay:
    """Stall this query ``cycles`` without occupying a DPU unit.

    Deterministic writer backoff: a mutation program that lost a header CAS
    waits a fixed, attempt-scaled number of cycles before retrying, instead
    of spinning on the ALU pool.
    """

    cycles: int = 1


@dataclass(frozen=True)
class Done:
    """Terminal: query finished with ``value`` (None = not found)."""

    value: Optional[int]


@dataclass(frozen=True)
class Fault:
    """Terminal: architectural exception with a result code."""

    code: int = RESULT_FAULT
    detail: str = ""


MicroAction = Union[
    MemRead, Compare, HashOp, AluOp, MemWrite, HeaderCas, Delay, Done, Fault
]


@dataclass
class StepOutcome:
    """What one CEE step did: an optional micro-op and the next state."""

    next_state: str
    action: Optional[MicroAction] = None


# --------------------------------------------------------------------- #
# Per-query context (backs one QST entry)
# --------------------------------------------------------------------- #


@dataclass
class QueryContext:
    """All mutable per-query state a CFA program may touch.

    ``scratch`` models the QST entry's 64B intermediate-data field plus the
    architectural registers a microcoded engine would keep; programs store
    fetched bytes and small integers here.  ``results`` holds comparator
    and hash-unit outputs keyed by tag.
    """

    header_addr: int
    key_addr: int
    state: str = STATE_START
    header: Optional[DataStructureHeader] = None
    key: bytes = b""
    scratch: Dict[str, bytes] = field(default_factory=dict)
    results: Dict[str, int] = field(default_factory=dict)
    vars: Dict[str, int] = field(default_factory=dict)
    #: Operation code (OP_LOOKUP for the read path; WRITE_OPS dispatch to
    #: the mutation program table) and its operand: for UPDATE the new
    #: value, for INSERT the address of the core-staged record to publish.
    op: int = OP_LOOKUP
    operand: int = 0
    #: Filled on termination.
    value: Optional[int] = None
    fault_code: int = 0
    fault_detail: str = ""
    #: scratch_u64 decode cache, keyed by tag.  Each value pairs the bytes
    #: object it was decoded from with the decoded aligned words; programs
    #: overwrite scratch tags by assignment (never in place), so an ``is``
    #: check on the bytes object is a complete staleness test.
    _u64c: Dict[str, Tuple[bytes, Tuple[int, ...]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def scratch_u64(self, tag: str, offset: int = 0) -> int:
        data = self.scratch[tag]
        cached = self._u64c.get(tag)
        if cached is None or cached[0] is not data:
            words = struct.unpack_from(f"<{len(data) // 8}Q", data)
            self._u64c[tag] = cached = (data, words)
        if offset & 7 == 0 and offset + 8 <= len(data):
            return cached[1][offset >> 3]
        return int.from_bytes(data[offset : offset + 8], "little")


# --------------------------------------------------------------------- #
# Programs and firmware
# --------------------------------------------------------------------- #


class CfaProgram:
    """Base class for one data structure's query CFA.

    Subclasses set :attr:`TYPE_CODE`, :attr:`NAME` and :attr:`STATES`, and
    implement :meth:`step`, which is invoked by the CEE each time the query's
    QST entry is selected.  ``step`` inspects ``ctx.state`` (and scratch
    contents filled by completed micro-ops) and returns a
    :class:`StepOutcome`.
    """

    TYPE_CODE: int = 0
    NAME: str = "abstract"
    STATES: Tuple[str, ...] = ()
    #: Inclusive range of subtype values the program understands.
    SUBTYPE_MIN: int = 0
    SUBTYPE_MAX: int = 255
    #: True when the header's size field must be a positive count
    #: (static structures such as hash-table bucket arrays).
    REQUIRES_SIZE: bool = False

    def step(self, ctx: QueryContext) -> StepOutcome:
        raise NotImplementedError

    def validate_header(
        self, header: DataStructureHeader, raw: bytes = b""
    ) -> AbortCode:
        """Decode-time header checks run in the PARSE state (Sec. IV-D).

        Chains the generic field checks with the program's own parameter
        ranges; subclasses override to add structure-specific rules (e.g.
        the skip-list's max-level bound) and should call ``super()`` first.
        """
        code = header.validate(expected_type=self.TYPE_CODE, raw=raw)
        if code is not AbortCode.NONE:
            return code
        if not self.SUBTYPE_MIN <= header.subtype <= self.SUBTYPE_MAX:
            return AbortCode.BAD_SUBTYPE
        if self.REQUIRES_SIZE and header.size <= 0:
            return AbortCode.BAD_SIZE
        return AbortCode.NONE

    def validate(self, max_states: int) -> None:
        """Check the program fits the QST's state-field encoding."""
        if not self.STATES:
            raise FirmwareError(f"program {self.NAME!r} declares no states")
        if len(self.STATES) > max_states:
            raise FirmwareError(
                f"program {self.NAME!r} has {len(self.STATES)} states; the QST "
                f"state field encodes at most {max_states}"
            )
        required = {STATE_START, STATE_DONE}
        missing = required - set(self.STATES)
        if missing:
            raise FirmwareError(
                f"program {self.NAME!r} missing architectural states {missing}"
            )


class FirmwareImage:
    """The CEE's loaded state-transition rules, keyed by structure type.

    The engine is microcoded and configurable: :meth:`register` is the
    firmware-update path for emerging data structures (Sec. IV-B).
    """

    def __init__(self, *, max_states: int = 256) -> None:
        self.max_states = max_states
        self._programs: Dict[int, CfaProgram] = {}
        #: Mutation programs (INSERT/DELETE/UPDATE dispatch), keyed by the
        #: same structure type codes; absent entries mean writes for that
        #: type run entirely on the software path.
        self._mutators: Dict[int, CfaProgram] = {}
        #: Bumped on every table change (register or hot-swap adopt) so the
        #: accelerator's compiled-step table (core/specialize.py) can detect
        #: staleness with one integer compare per query admission.
        self.epoch = 0

    def register(
        self, program: CfaProgram, *, replace: bool = False, mutation: bool = False
    ) -> None:
        table = self._mutators if mutation else self._programs
        program.validate(self.max_states)
        if program.TYPE_CODE in table and not replace:
            raise FirmwareError(
                f"type code {program.TYPE_CODE} already has a program "
                f"({table[program.TYPE_CODE].NAME!r}); "
                "pass replace=True to update firmware"
            )
        table[program.TYPE_CODE] = program
        self.epoch += 1

    def staged_copy(self) -> "FirmwareImage":
        """A candidate image for a live update (same programs and budget).

        Hot-swap protocol: stage a copy, :meth:`register` the new programs
        on it (validation failures leave the live table untouched — that is
        the rollback), then :meth:`adopt` it once the CEE has quiesced.
        """
        staged = FirmwareImage(max_states=self.max_states)
        staged._programs = dict(self._programs)
        staged._mutators = dict(self._mutators)
        return staged

    def adopt(self, staged: "FirmwareImage") -> None:
        """Atomically switch to ``staged``'s program table (hot-swap commit)."""
        self._programs = staged._programs
        self._mutators = staged._mutators
        self.epoch += 1

    def program_for(self, type_code: int, *, op: int = OP_LOOKUP) -> CfaProgram:
        table = self._programs if op == OP_LOOKUP else self._mutators
        try:
            return table[type_code]
        except KeyError as exc:
            kind = "CFA" if op == OP_LOOKUP else "mutation CFA"
            raise FirmwareError(
                f"no {kind} program loaded for structure type {type_code}"
            ) from exc

    def supports(self, type_code: int, *, op: int = OP_LOOKUP) -> bool:
        table = self._programs if op == OP_LOOKUP else self._mutators
        return type_code in table

    def types(self) -> List[int]:
        return sorted(self._programs)

    def mutation_types(self) -> List[int]:
        return sorted(self._mutators)
