"""Non-blocking query coverage across all five workloads."""

import pytest

from repro import small_config
from repro.core.accelerator import QueryStatus
from repro.system import System
from repro.workloads import make_workload, run_qei

SMALL_PARAMS = {
    "dpdk": dict(num_flows=256, num_buckets=128, num_queries=32),
    "rocksdb": dict(num_items=150, num_queries=12),
    "jvm": dict(num_objects=300, num_queries=24),
    "flann": dict(num_tables=3, num_items=150, num_points=4, num_buckets=128),
}


@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
def test_non_blocking_results_match_software(name):
    system = System(small_config())
    workload = make_workload(name, system, **SMALL_PARAMS[name])
    run_qei(system, workload, non_blocking=True, poll_every=8)  # verify=True


@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
def test_non_blocking_writes_every_result_slot(name):
    system = System(small_config())
    workload = make_workload(name, system, **SMALL_PARAMS[name])
    trace, batches = workload.qei_nb_trace(poll_every=8)
    port = system.query_port(0)
    system.run_trace(trace, port=port)
    # Every result record carries a terminal status code (1 or 2).
    for handle in port.handles:
        code = system.space.read_u64(handle.request.result_addr)
        assert code in (1, 2)
        if handle.status is QueryStatus.FOUND:
            assert code == 1
            assert (
                system.space.read_u64(handle.request.result_addr + 8)
                == handle.value
            )


def test_nb_faster_than_blocking_for_dense_queries():
    """With high query density, NB batching beats blocking batches."""
    name = "jvm"
    system_b = System(small_config())
    wl_b = make_workload(name, system_b, **SMALL_PARAMS[name])
    blocking = run_qei(system_b, wl_b, batch=8)

    system_nb = System(small_config())
    wl_nb = make_workload(name, system_nb, **SMALL_PARAMS[name])
    non_blocking = run_qei(system_nb, wl_nb, non_blocking=True, poll_every=24)
    assert non_blocking.cycles <= blocking.cycles * 1.1
