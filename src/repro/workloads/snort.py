"""Snort benchmark: Aho-Corasick literal matching (Sec. VI-B).

An intrusion-prevention system matches packet payloads against a keyword
dictionary.  The paper uses ~40K keywords and 1KB payload strings; the
defaults here are scaled down for simulation speed but configurable up.
One "query" is a whole-payload scan: the QEI trie CFA (subtype 1) walks the
automaton over the text and returns the number of keyword hits, which must
equal the software scan's match count.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..cpu.trace import TraceBuilder
from ..datastructs import AhoCorasickTrie
from ..system import System
from .base import QueryWorkload


def make_dictionary(count: int, *, seed: int = 3) -> List[bytes]:
    """Random lowercase keywords, 4-12 bytes, all distinct."""
    rng = random.Random(seed)
    words = set()
    while len(words) < count:
        length = rng.randint(4, 12)
        words.add(bytes(rng.randint(97, 122) for _ in range(length)))
    return sorted(words)


def make_payload(
    length: int, dictionary: List[bytes], *, hit_density: float, rng: random.Random
) -> bytes:
    """Random payload with keywords planted at roughly ``hit_density``."""
    out = bytearray()
    while len(out) < length:
        if dictionary and rng.random() < hit_density:
            out += rng.choice(dictionary)
        else:
            out += bytes([rng.randint(97, 122)])
    return bytes(out[:length])


class SnortWorkload(QueryWorkload):
    """Payload scans against an Aho-Corasick keyword automaton."""

    name = "snort"
    roi_other_work = 20       # per-payload bookkeeping around the scan
    app_other_work = 350      # packet capture, decode, rule dispatch
    #: calibrated so literal matching takes ~23% of app time (paper Fig. 1)
    app_other_cycles = 138000

    def __init__(
        self,
        system: System,
        *,
        num_keywords: int = 1500,
        payload_bytes: int = 1024,
        num_queries: int = 12,
        hit_density: float = 0.02,
        seed: int = 3,
    ) -> None:
        super().__init__(system, num_queries=num_queries, seed=seed)
        self.num_keywords = num_keywords
        self.payload_bytes = payload_bytes
        self.hit_density = hit_density
        self.automaton: Optional[AhoCorasickTrie] = None

    def build(self) -> None:
        self.automaton = AhoCorasickTrie(
            self.system.mem, key_length=self.payload_bytes
        )
        dictionary = make_dictionary(self.num_keywords, seed=self.seed)
        for i, word in enumerate(dictionary):
            self.automaton.insert(word, i)
        self.automaton.seal()
        rng = random.Random(self.seed + 1)
        payloads = [
            make_payload(
                self.payload_bytes, dictionary, hit_density=self.hit_density, rng=rng
            )
            for _ in range(self.num_queries)
        ]
        # Expected value of a QEI scan query: the number of match positions.
        expected = [len(self.automaton.match(p)) for p in payloads]
        self._register_queries(payloads, expected)

    def header_addr_for(self, index: int) -> int:
        return self.automaton.header_addr

    def emit_software_query(self, builder: TraceBuilder, index: int):
        matches = self.automaton.emit_match(
            builder, self._query_addrs[index], self._queries[index]
        )
        return len(matches)

    def software_lookup(self, index: int):
        return len(self.automaton.match(self._queries[index]))
