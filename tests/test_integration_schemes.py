"""Unit tests for the integration schemes' timing paths."""

import pytest

from repro import small_config
from repro.config import IntegrationScheme
from repro.core.integration import (
    ChaNoTlbScheme,
    ChaTlbScheme,
    CoreIntegratedScheme,
    DeviceDirectScheme,
    DeviceIndirectScheme,
    build_integration,
)
from repro.system import System


@pytest.fixture
def systems():
    """One system per scheme over identical memory contents."""
    out = {}
    for scheme in IntegrationScheme:
        system = System(small_config(), scheme)
        base = system.mem.alloc(4096, align=64)
        system.space.write(base, b"\xab" * 4096)
        out[scheme.value] = (system, base)
    return out


def test_build_integration_returns_right_classes(systems):
    classes = {
        "core-integrated": CoreIntegratedScheme,
        "cha-tlb": ChaTlbScheme,
        "cha-notlb": ChaNoTlbScheme,
        "device-direct": DeviceDirectScheme,
        "device-indirect": DeviceIndirectScheme,
    }
    for name, (system, _) in systems.items():
        assert isinstance(system.integration, classes[name])


class TestTranslatePaths:
    def test_core_integrated_uses_l2_tlb(self, systems):
        system, base = systems["core-integrated"]
        integ = system.integration
        # First translation: page walk through the L2 TLB.
        _, cold = integ.translate(base, "r", 0, 0, 0)
        _, warm = integ.translate(base + 8, "r", 0, 0, 0)
        assert cold > warm
        assert warm == system.config.core.l2_tlb.latency_cycles

    def test_cha_tlb_uses_dedicated_tlb(self, systems):
        system, base = systems["cha-tlb"]
        integ = system.integration
        integ.translate(base, "r", 0, 2, 0)
        _, warm = integ.translate(base + 8, "r", 0, 2, 0)
        assert warm == system.config.qei.cha_tlb.latency_cycles

    def test_cha_notlb_pays_mesh_round_trip(self, systems):
        system, base = systems["cha-notlb"]
        integ = system.integration
        home = 3  # a slice away from core 0
        integ.translate(base, "r", 0, home, 0)
        _, warm = integ.translate(base + 8, "r", 0, home, 0)
        round_trip = 2 * system.noc.latency(home, 0)
        assert warm >= round_trip

    def test_device_translate_uses_device_tlb(self, systems):
        system, base = systems["device-direct"]
        integ = system.integration
        integ.translate(base, "r", 0, integ.device_node, 0)
        _, warm = integ.translate(base + 8, "r", 0, integ.device_node, 0)
        assert warm == system.config.qei.cha_tlb.latency_cycles


class TestMicroTlb:
    def test_micro_tlb_absorbs_page_reuse(self, systems):
        system, base = systems["core-integrated"]
        integ = system.integration
        integ.mem_read(base, 8, 0, 0, 0)
        before = integ._micro_hits.value
        integ.mem_read(base + 64, 8, 0, 0, 0)  # same page
        assert integ._micro_hits.value == before + 1

    def test_micro_tlb_flushed_on_shootdown(self, systems):
        system, base = systems["core-integrated"]
        integ = system.integration
        integ.mem_read(base, 8, 0, 0, 0)
        integ.flush_translations()
        before = integ._micro_hits.value
        integ.mem_read(base, 8, 0, 0, 0)
        assert integ._micro_hits.value == before  # miss after the flush


class TestDataPaths:
    def test_device_indirect_pays_interface_per_access(self, systems):
        sys_direct, base_d = systems["device-direct"]
        sys_indirect, base_i = systems["device-indirect"]
        direct = sys_direct.integration.mem_read(
            base_d, 8, 0, sys_direct.integration.device_node, 0
        )
        indirect = sys_indirect.integration.mem_read(
            base_i, 8, 0, sys_indirect.integration.device_node, 0
        )
        extra_indirect = sys_indirect.config.scheme_latency(
            "device-indirect"
        ).accel_to_data
        extra_direct = sys_direct.config.scheme_latency(
            "device-direct"
        ).accel_to_data
        # Same machine state on both sides: the latency gap is exactly the
        # difference of the two interface charges.
        assert indirect - direct == extra_indirect - extra_direct

    def test_core_integrated_memread_skips_l1(self, systems):
        system, base = systems["core-integrated"]
        system.integration.mem_read(base, 8, 0, 0, 0)
        line = system.hierarchy.line_of(system.space.translate(base))
        assert not system.hierarchy.l1[0].probe(line)
        assert system.hierarchy.l2[0].probe(line)

    def test_multi_line_read_translates_once_per_page(self, systems):
        system, base = systems["cha-tlb"]
        integ = system.integration
        before = integ._translations.value
        integ.mem_read(base, 256, 0, 1, 0)  # 4 lines, one page
        assert integ._translations.value == before + 1


class TestComparePaths:
    def test_core_integrated_small_key_compares_locally(self, systems):
        system, base = systems["core-integrated"]
        integ = system.integration
        before = integ.local_comparators[0].stats.counter("ops").value
        integ.compare(base, base + 512, 16, 0, 0, 0)
        assert integ.local_comparators[0].stats.counter("ops").value == before + 1

    def test_core_integrated_large_key_compares_remotely(self, systems):
        system, base = systems["core-integrated"]
        integ = system.integration
        local_before = integ.local_comparators[0].stats.counter("ops").value
        integ.compare(base, base + 512, 100, 0, 0, 0)
        assert (
            integ.local_comparators[0].stats.counter("ops").value == local_before
        )
        slice_ops = sum(
            pool.stats.counter("ops").value for pool in integ.slice_comparators
        )
        assert slice_ops >= 1

    def test_compare_latency_grows_with_key_size(self, systems):
        system, base = systems["cha-tlb"]
        integ = system.integration
        # Warm both operand regions first.
        integ.compare(base, base + 512, 8, 0, 1, 0)
        small = integ.compare(base, base + 512, 8, 0, 1, 0)
        big = integ.compare(base, base + 512, 512, 0, 1, 0)
        assert big > small


class TestSubmitLatencies:
    def test_ordering_matches_table1(self, systems):
        latencies = {}
        for name, (system, base) in systems.items():
            integ = system.integration
            home = integ.home_node(0, base, base)
            latencies[name] = integ.submit_latency(0, home) + integ.return_latency(
                0, home
            )
        assert latencies["core-integrated"] < latencies["cha-tlb"]
        assert latencies["cha-tlb"] < latencies["device-direct"]
        assert latencies["device-direct"] < latencies["device-indirect"]
