"""Trace container and a fluent builder used by the workloads.

A :class:`Trace` is a list of :class:`~repro.cpu.isa.MicroOp` in program
order.  The builder returns the index of each emitted op so callers chain
register dependences naturally::

    b = TraceBuilder()
    node = b.load(addr_of_root)              # load root pointer
    key = b.load(key_addr)                   # independent load
    cmp_ = b.alu(deps=(node, key))           # compare
    b.branch(deps=(cmp_,), mispredicted=True)
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from .isa import MicroOp, OpKind


class Trace:
    """An ordered micro-op stream."""

    __slots__ = ("ops",)

    def __init__(self, ops: Optional[List[MicroOp]] = None) -> None:
        self.ops: List[MicroOp] = ops if ops is not None else []

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self.ops)

    def __getitem__(self, index: int) -> MicroOp:
        return self.ops[index]

    def counts(self) -> dict:
        """Dynamic op counts by kind (Fig. 11 input)."""
        out: dict = {}
        for op in self.ops:
            out[op.kind] = out.get(op.kind, 0) + 1
        return out

    def extend(self, other: "Trace") -> None:
        self.ops.extend(other.ops)


class TraceBuilder:
    """Appends micro-ops and hands back their indices for dependences."""

    def __init__(self) -> None:
        self._trace = Trace()

    @property
    def trace(self) -> Trace:
        return self._trace

    def __len__(self) -> int:
        return len(self._trace)

    def _emit(self, op: MicroOp) -> int:
        self._trace.ops.append(op)
        return len(self._trace.ops) - 1

    # ------------------------------------------------------------------ #

    def load(self, vaddr: int, deps: Sequence[int] = ()) -> int:
        return self._emit(MicroOp(OpKind.LOAD, vaddr=vaddr, deps=tuple(deps)))

    def load_span(self, vaddr: int, length: int, deps: Sequence[int] = ()) -> List[int]:
        """One load per cacheline covered by ``[vaddr, vaddr + length)``."""
        ids = []
        line = 64
        first = vaddr - vaddr % line
        last = (vaddr + max(length, 1) - 1) - (vaddr + max(length, 1) - 1) % line
        addr = first
        while addr <= last:
            ids.append(self.load(addr, deps))
            addr += line
        return ids

    def store(self, vaddr: int, deps: Sequence[int] = ()) -> int:
        return self._emit(MicroOp(OpKind.STORE, vaddr=vaddr, deps=tuple(deps)))

    def alu(
        self, deps: Sequence[int] = (), *, latency: Optional[int] = None, count: int = 1
    ) -> int:
        """Emit ``count`` dependent ALU ops; returns the last one's index."""
        last = -1
        chain: Tuple[int, ...] = tuple(deps)
        for _ in range(max(1, count)):
            last = self._emit(
                MicroOp(OpKind.ALU, deps=chain, latency_override=latency)
            )
            chain = (last,)
        return last

    def branch(self, deps: Sequence[int] = (), *, mispredicted: bool = False) -> int:
        return self._emit(
            MicroOp(OpKind.BRANCH, deps=tuple(deps), mispredicted=mispredicted)
        )

    def query_b(self, payload: Any, deps: Sequence[int] = ()) -> int:
        return self._emit(MicroOp(OpKind.QUERY_B, deps=tuple(deps), payload=payload))

    def query_nb(self, payload: Any, deps: Sequence[int] = ()) -> int:
        return self._emit(MicroOp(OpKind.QUERY_NB, deps=tuple(deps), payload=payload))

    def wait_result(self, payload: Any, deps: Sequence[int] = ()) -> int:
        return self._emit(
            MicroOp(OpKind.WAIT_RESULT, deps=tuple(deps), payload=payload)
        )

    def ifetch_stall(self, cycles: int, deps: Sequence[int] = ()) -> int:
        """An instruction-cache/decode stall of ``cycles`` (pseudo-op)."""
        return self._emit(
            MicroOp(OpKind.IFETCH_STALL, deps=tuple(deps), latency_override=cycles)
        )

    def other_work(self, instructions: int, deps: Sequence[int] = ()) -> int:
        """Independent filler instructions around the query (query density).

        Models the non-query part of a request loop (key pre-processing,
        memcpy, thread management in RocksDB's seek loop, Sec. VII-A).
        Emitted as short independent chains so they enjoy normal ILP.
        """
        last = -1
        for i in range(instructions):
            chain = tuple(deps) if i % 4 == 0 else (last,)
            last = self._emit(MicroOp(OpKind.ALU, deps=chain))
        return last
