"""The fault campaign driver: determinism, coverage, CLI plumbing."""

import pytest

from repro.__main__ import main
from repro.analysis import fault_campaign


class TestCampaign:
    def test_small_campaign_holds_invariant_and_reproduces(self):
        result = fault_campaign(seed=11, faults=40, repeats=2)
        assert result.experiment == "fault-campaign"
        assert sum(r["count"] for r in result.rows) == 40
        assert any("reproduced identically" in n for n in result.notes)
        # Abort outcomes and fallback coverage actually happened.
        outcomes = {r["outcome"] for r in result.rows}
        assert any(o.startswith("abort.") for o in outcomes)

    def test_workload_filter(self):
        result = fault_campaign(
            seed=5, faults=15, repeats=1, workloads=["dpdk"], schemes=["cha-tlb"]
        )
        assert sum(r["count"] for r in result.rows) == 15

    def test_unknown_workload_rejected(self):
        from repro.analysis import CampaignViolation

        with pytest.raises(CampaignViolation):
            fault_campaign(seed=1, faults=1, workloads=["nope"])

    def test_same_seed_same_vector(self):
        a = fault_campaign(seed=21, faults=25, repeats=1, schemes=["cha-tlb"])
        b = fault_campaign(seed=21, faults=25, repeats=1, schemes=["cha-tlb"])
        assert a.rows == b.rows


class TestCli:
    def test_fault_campaign_verb(self, capsys):
        rc = main(
            [
                "fault-campaign",
                "--seed",
                "3",
                "--faults",
                "20",
                "--repeats",
                "1",
                "--workloads",
                "jvm",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault-campaign" in out and "outcome" in out
