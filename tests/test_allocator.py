"""Unit tests for the bump arena and page-scattering heap allocator."""

import pytest

from repro.errors import AllocationError
from repro.mem import AddressSpace, BumpArena, PageScatterAllocator, PhysicalMemory
from repro.mem.allocator import align_up


@pytest.fixture
def space():
    return AddressSpace(PhysicalMemory(16 * 1024 * 1024))


def test_align_up():
    assert align_up(0, 8) == 0
    assert align_up(1, 8) == 8
    assert align_up(8, 8) == 8
    assert align_up(65, 64) == 128


def test_align_up_rejects_non_power_of_two():
    with pytest.raises(AllocationError):
        align_up(10, 3)


class TestBumpArena:
    def test_sequential_allocations_do_not_overlap(self, space):
        arena = BumpArena(space, 0x100000, 64 * 1024)
        a = arena.allocate(100)
        b = arena.allocate(100)
        assert b >= a + 100
        space.write(a, b"A" * 100)
        space.write(b, b"B" * 100)
        assert space.read(a, 100) == b"A" * 100

    def test_alignment_respected(self, space):
        arena = BumpArena(space, 0x100000, 64 * 1024)
        arena.allocate(3)
        addr = arena.allocate(16, alignment=64)
        assert addr % 64 == 0

    def test_exhaustion_raises(self, space):
        arena = BumpArena(space, 0x100000, 4096)
        arena.allocate(4000)
        with pytest.raises(AllocationError):
            arena.allocate(200)

    def test_pages_mapped_lazily(self, space):
        before = space.physical.frames_in_use
        arena = BumpArena(space, 0x100000, 1024 * 1024)
        assert space.physical.frames_in_use == before
        arena.allocate(10)
        assert space.physical.frames_in_use == before + 1

    def test_reset_allows_reuse(self, space):
        arena = BumpArena(space, 0x100000, 8192)
        first = arena.allocate(4096)
        arena.reset()
        assert arena.allocate(4096) == first

    def test_bad_sizes_rejected(self, space):
        arena = BumpArena(space, 0x100000, 8192)
        with pytest.raises(AllocationError):
            arena.allocate(0)
        with pytest.raises(AllocationError):
            BumpArena(space, 0x100001, 8192)  # unaligned base


class TestPageScatterAllocator:
    def test_allocations_are_usable_memory(self, space):
        heap = PageScatterAllocator(space, 0x1000000, 4 * 1024 * 1024)
        addrs = [heap.allocate(200) for _ in range(50)]
        for i, addr in enumerate(addrs):
            space.write(addr, bytes([i % 256]) * 200)
        for i, addr in enumerate(addrs):
            assert space.read(addr, 200) == bytes([i % 256]) * 200

    def test_physical_frames_are_scattered(self, space):
        heap = PageScatterAllocator(
            space, 0x1000000, 8 * 1024 * 1024, scatter_frames=4, chunk_pages=2
        )
        # Allocate enough to span many chunks.
        addrs = [heap.allocate(4096) for _ in range(20)]
        paddrs = [space.translate(a - (a % 4096) + 0) for a in addrs]
        deltas = [abs(b - a) for a, b in zip(paddrs, paddrs[1:])]
        # At least some adjacent virtual pages must be physically distant.
        assert any(d > 4096 for d in deltas)

    def test_large_allocation_spans_refill(self, space):
        heap = PageScatterAllocator(space, 0x1000000, 8 * 1024 * 1024, chunk_pages=2)
        big = heap.allocate(5 * 4096)
        space.write(big, b"z" * 5 * 4096)
        assert space.read(big + 4 * 4096, 10) == b"z" * 10

    def test_exhaustion_raises(self, space):
        heap = PageScatterAllocator(space, 0x1000000, 64 * 1024, chunk_pages=4)
        with pytest.raises(AllocationError):
            for _ in range(100):
                heap.allocate(4096)

    def test_total_allocated_tracked(self, space):
        heap = PageScatterAllocator(space, 0x1000000, 1024 * 1024)
        heap.allocate(100)
        heap.allocate(200)
        assert heap.total_allocated == 300
