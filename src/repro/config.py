"""System configuration dataclasses.

Defaults reproduce Table II of the paper: a 24-core Skylake-SP-like CPU at
2.5 GHz with 32KB L1, 1MB L2, a 33MB LLC split into 24 NUCA slices, a 2D mesh
NoC, six DDR4-2666 channels, and the QEI accelerator provisioned with five
ALUs per DPU, two comparators per CHA for the CHA-based/Core-integrated
schemes and ten comparators per DPU for the Device-based schemes.

Latency constants derive from Table I (accelerator-core and accelerator-data
round trips per integration scheme).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from .errors import ConfigurationError

CACHELINE_BYTES = 64
PAGE_BYTES = 4096


class IntegrationScheme(str, Enum):
    """Where the accelerator lives, per Sec. V / Fig. 6 of the paper."""

    CHA_TLB = "cha-tlb"
    CHA_NOTLB = "cha-notlb"
    DEVICE_DIRECT = "device-direct"
    DEVICE_INDIRECT = "device-indirect"
    CORE_INTEGRATED = "core-integrated"

    @classmethod
    def parse(cls, value: "IntegrationScheme | str") -> "IntegrationScheme":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            names = ", ".join(s.value for s in cls)
            raise ConfigurationError(
                f"unknown integration scheme {value!r}; expected one of: {names}"
            ) from exc


#: Schemes whose comparators sit in the CHAs (distributed near-LLC compare).
DISTRIBUTED_SCHEMES = frozenset(
    {
        IntegrationScheme.CHA_TLB,
        IntegrationScheme.CHA_NOTLB,
        IntegrationScheme.CORE_INTEGRATED,
    }
)


@dataclass(frozen=True)
class CacheConfig:
    """One cache level: size/associativity/latency."""

    size_bytes: int
    associativity: int
    latency_cycles: int
    line_bytes: int = CACHELINE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ConfigurationError("cache size/associativity must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ConfigurationError(
                "cache size must be a multiple of associativity * line size"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class TlbConfig:
    """A TLB level: entry count, associativity and hit/miss costs."""

    entries: int
    associativity: int
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.associativity <= 0:
            raise ConfigurationError("TLB entries/associativity must be positive")
        if self.entries % self.associativity:
            raise ConfigurationError("TLB entries must divide by associativity")


@dataclass(frozen=True)
class CoreConfig:
    """An out-of-order core, per Tab. II (Skylake-SP-like)."""

    frequency_ghz: float = 2.5
    fetch_width: int = 4
    issue_width: int = 4
    rob_entries: int = 224
    load_queue_entries: int = 72
    store_queue_entries: int = 56
    branch_mispredict_cycles: int = 14
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, 4)
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, 4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(1024 * 1024, 16, 14)
    )
    l1_dtlb: TlbConfig = field(default_factory=lambda: TlbConfig(64, 4, 1))
    l2_tlb: TlbConfig = field(default_factory=lambda: TlbConfig(1536, 12, 9))


@dataclass(frozen=True)
class LlcConfig:
    """The shared NUCA last-level cache, split into per-core slices."""

    total_size_bytes: int = 33 * 1024 * 1024
    associativity: int = 11
    slices: int = 24
    latency_cycles: int = 26  # slice-local access, before NoC hops

    def slice_config(self) -> CacheConfig:
        per_slice = self.total_size_bytes // self.slices
        # Round the slice down to a legal set-associative geometry.
        granule = self.associativity * CACHELINE_BYTES
        per_slice -= per_slice % granule
        return CacheConfig(per_slice, self.associativity, self.latency_cycles)


@dataclass(frozen=True)
class DramConfig:
    """Six DDR4-2666 channels (Tab. II)."""

    channels: int = 6
    latency_cycles: int = 180
    bandwidth_gbps_per_channel: float = 19.2


@dataclass(frozen=True)
class NocConfig:
    """2D mesh on-chip network."""

    width: int = 6
    height: int = 4
    hop_cycles: int = 2
    router_cycles: int = 1
    link_bytes_per_cycle: int = 32

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("mesh dimensions must be positive")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height


@dataclass(frozen=True)
class QeiConfig:
    """The accelerator itself (Sec. IV and Tab. II).

    ``qst_entries`` is 10 for the per-core/per-CHA schemes and scaled to
    10 x num_cores for the centralized device schemes (done by
    :meth:`SystemConfig.effective_qst_entries`).
    """

    qst_entries: int = 10
    alus_per_dpu: int = 5
    comparators_per_cha: int = 2
    comparators_per_device_dpu: int = 10
    scratch_bytes: int = 64
    max_states: int = 256
    hash_unit_latency_cycles: int = 3
    alu_latency_cycles: int = 1
    comparator_latency_cycles: int = 1
    #: Cycles for the CEE to select + process one ready QST entry.
    step_cycles: int = 1
    #: Per-query watchdog: CEE transitions a query may take before it is
    #: force-aborted with ``AbortCode.WATCHDOG`` (catches pointer cycles).
    watchdog_steps: int = 100_000
    #: Dedicated TLB used only by the CHA-TLB scheme (HALO-like).
    cha_tlb: TlbConfig = field(default_factory=lambda: TlbConfig(1024, 8, 2))

    def __post_init__(self) -> None:
        if self.watchdog_steps <= 0:
            raise ConfigurationError("watchdog_steps must be positive")


@dataclass(frozen=True)
class FallbackConfig:
    """Software-fallback policy applied when the accelerator aborts a query.

    The runtime re-executes the query on the CPU path after waiting an
    exponentially growing number of simulated cycles (modelling the OS
    taking the fault, repairing or steering around the damage, and the
    runtime backing off a transiently flushed accelerator).
    """

    #: Software re-executions attempted before the query is reported failed.
    max_retries: int = 3
    #: Simulated cycles waited before the first retry.
    backoff_cycles: int = 64
    #: Growth factor applied to the wait between successive retries.
    backoff_multiplier: int = 4

    def __post_init__(self) -> None:
        if self.max_retries <= 0:
            raise ConfigurationError("fallback max_retries must be positive")
        if self.backoff_cycles < 0:
            raise ConfigurationError("fallback backoff_cycles must be >= 0")
        if self.backoff_multiplier < 1:
            raise ConfigurationError("fallback backoff_multiplier must be >= 1")


@dataclass(frozen=True)
class ServeConfig:
    """The cloud serving tier in front of the accelerator (docs/serving.md).

    A :class:`~repro.serve.QueryServer` admits per-tenant request streams
    into bounded queues, coalesces admitted requests into QUERY_NB bursts
    routed to their home accelerator, and tracks per-tenant latency against
    an SLO budget.  All knobs are in simulated core cycles.
    """

    #: Number of tenant request streams (each mapped to a submitting core).
    tenants: int = 4
    #: Bounded per-tenant admission queue; arrivals beyond this are rejected
    #: with a retry-after hint (backpressure when the QST is saturated).
    queue_depth: int = 64
    #: Requests coalesced into one QUERY_NB burst per home slice.
    batch_size: int = 8
    #: A partial batch is flushed after waiting this long for company.
    batch_timeout_cycles: int = 256
    #: Dispatch window: requests in service at once (0 = QST capacity).
    max_in_flight: int = 0
    #: Base retry-after hint returned with a rejection.
    retry_after_cycles: int = 512
    #: Per-tenant SLO: the p99 latency budget in cycles.
    slo_p99_cycles: int = 50_000
    #: Open-loop offered load per tenant, in queries per cycle (Poisson).
    offered_load: float = 0.004
    #: Closed-loop clients per tenant (outstanding requests).
    concurrency: int = 8
    #: Closed-loop think time between a completion and the next request.
    think_cycles: int = 128
    #: Closed-loop admission retries before a request is counted failed.
    max_admission_attempts: int = 64
    #: Per-request deadline from generation, in cycles (0 disables).  Work
    #: whose deadline expired is shed — never dispatched — with a distinct
    #: SLO outcome instead of burning QST slots on a dead request.
    deadline_cycles: int = 0
    #: Per-tenant circuit breaker: trailing outcomes considered (0 disables).
    breaker_window: int = 0
    #: Failure fraction within the window that opens the circuit.
    breaker_threshold: float = 0.5
    #: Cycles an open circuit rejects immediately before probing again.
    breaker_open_cycles: int = 4096
    #: Half-open probe budget; all must succeed to close the circuit.
    breaker_probes: int = 4
    #: Hedged retries: re-submit a query stuck past this latency percentile
    #: (e.g. 95.0; 0 disables hedging).
    hedge_quantile: float = 0.0
    #: The hedge fires at quantile-latency x this multiplier.
    hedge_multiplier: float = 2.0
    #: Completions a tenant needs before its quantile estimate is trusted.
    hedge_min_samples: int = 64
    #: Total hedged submissions allowed per run (bounded retry amplification).
    hedge_budget: int = 32
    #: Fraction of each tenant's requests that are writes (docs/mutations.md):
    #: 0.0 keeps the tier read-only and byte-identical to pre-mutation runs.
    write_ratio: float = 0.0
    #: Per-tenant override of ``write_ratio`` (length must equal ``tenants``).
    tenant_write_ratios: Optional[Tuple[float, ...]] = None

    def write_ratio_of(self, tenant: int) -> float:
        if self.tenant_write_ratios is not None:
            return self.tenant_write_ratios[tenant]
        return self.write_ratio

    def __post_init__(self) -> None:
        if self.tenants <= 0:
            raise ConfigurationError("serve tenants must be positive")
        if self.queue_depth <= 0:
            raise ConfigurationError("serve queue_depth must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("serve batch_size must be positive")
        if self.batch_timeout_cycles < 0:
            raise ConfigurationError("serve batch_timeout_cycles must be >= 0")
        if self.max_in_flight < 0:
            raise ConfigurationError("serve max_in_flight must be >= 0")
        if self.retry_after_cycles <= 0:
            raise ConfigurationError("serve retry_after_cycles must be positive")
        if self.slo_p99_cycles <= 0:
            raise ConfigurationError("serve slo_p99_cycles must be positive")
        if self.offered_load <= 0:
            raise ConfigurationError("serve offered_load must be positive")
        if self.concurrency <= 0:
            raise ConfigurationError("serve concurrency must be positive")
        if self.think_cycles < 0:
            raise ConfigurationError("serve think_cycles must be >= 0")
        if self.max_admission_attempts <= 0:
            raise ConfigurationError(
                "serve max_admission_attempts must be positive"
            )
        if self.deadline_cycles < 0:
            raise ConfigurationError("serve deadline_cycles must be >= 0")
        if self.breaker_window < 0:
            raise ConfigurationError("serve breaker_window must be >= 0")
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise ConfigurationError(
                "serve breaker_threshold must be in (0, 1]"
            )
        if self.breaker_open_cycles <= 0:
            raise ConfigurationError(
                "serve breaker_open_cycles must be positive"
            )
        if self.breaker_probes <= 0:
            raise ConfigurationError("serve breaker_probes must be positive")
        if not 0.0 <= self.hedge_quantile < 100.0:
            raise ConfigurationError(
                "serve hedge_quantile must be a percentile in [0, 100)"
            )
        if self.hedge_multiplier < 1.0:
            raise ConfigurationError("serve hedge_multiplier must be >= 1")
        if self.hedge_min_samples <= 0:
            raise ConfigurationError(
                "serve hedge_min_samples must be positive"
            )
        if self.hedge_budget < 0:
            raise ConfigurationError("serve hedge_budget must be >= 0")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigurationError("serve write_ratio must be in [0, 1]")
        if self.tenant_write_ratios is not None:
            if len(self.tenant_write_ratios) != self.tenants:
                raise ConfigurationError(
                    "serve tenant_write_ratios must list one ratio per tenant"
                )
            for ratio in self.tenant_write_ratios:
                if not 0.0 <= ratio <= 1.0:
                    raise ConfigurationError(
                        "serve tenant write ratios must be in [0, 1]"
                    )


@dataclass(frozen=True)
class ClusterConfig:
    """The replicated multi-node serving tier (docs/serving.md).

    A :class:`~repro.serve.cluster.SimulatedCluster` runs ``nodes`` full
    simulated machines behind a load-balancer tier that partitions the key
    space over a consistent-hash ring with ``replication``-way replica
    groups.  All latency knobs are simulated core cycles on the shared
    cluster clock.
    """

    #: Simulated nodes (each a full :class:`~repro.system.System` plus a
    #: multi-tenant frontend).
    nodes: int = 10
    #: Replica group size: each key-space shard is owned by this many nodes.
    replication: int = 2
    #: Virtual tokens per node on the hash ring (smooths shard sizes).
    vnodes: int = 8
    #: One-way LB <-> node message latency.
    link_latency_cycles: int = 64
    #: Health-prober heartbeat interval per node.
    probe_interval_cycles: int = 4096
    #: A probe without an ack after this long counts as missed.
    probe_timeout_cycles: int = 512
    #: Consecutive missed probes before a node is marked SUSPECT.
    suspect_after: int = 2
    #: Consecutive missed probes before a node is marked DOWN (routed
    #: around and its shards remapped to ring successors).
    down_after: int = 3
    #: LB per-attempt response timeout before failing over to a replica.
    request_timeout_cycles: int = 60_000
    #: Total LB dispatch attempts per request across replicas.
    max_attempts: int = 6
    #: Base LB retry backoff between attempts (doubles per retry).
    retry_backoff_cycles: int = 128
    #: Embargo on a node after one of its requests times out at the LB.
    timeout_embargo_cycles: int = 4096
    #: Per-phase availability floor asserted by ``repro cluster-chaos``.
    availability_floor: float = 0.95
    #: Write quorum W (docs/recovery.md): a write is acknowledged to the
    #: client only once W distinct replicas (the committing primary plus
    #: W-1 apply-stream acks) hold it.  Must not exceed ``replication``.
    write_quorum: int = 2
    #: Replication retry tick: unacked commit-log suffixes are re-shipped
    #: to lagging replicas at this interval.
    replication_retry_cycles: int = 2048
    #: Hinted-handoff bound: unacked records buffered per replica stream
    #: before the stream overflows and the replica is flagged for a full
    #: resync instead of incremental replay (docs/recovery.md).
    handoff_limit: int = 256
    #: Load-balancer settled-key map bound: fully replicated keys whose
    #: last value the LB remembers for read validation; the oldest entry
    #: is evicted once the map is full.
    settled_key_limit: int = 4096

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ConfigurationError("cluster nodes must be positive")
        if not 0 < self.replication <= self.nodes:
            raise ConfigurationError(
                "cluster replication must be in [1, nodes]; got "
                f"{self.replication} for {self.nodes} nodes"
            )
        if self.vnodes <= 0:
            raise ConfigurationError("cluster vnodes must be positive")
        if self.link_latency_cycles <= 0:
            raise ConfigurationError("cluster link latency must be positive")
        if self.probe_interval_cycles <= 0:
            raise ConfigurationError("cluster probe interval must be positive")
        if self.probe_timeout_cycles <= 0:
            raise ConfigurationError("cluster probe timeout must be positive")
        if self.suspect_after <= 0 or self.down_after < self.suspect_after:
            raise ConfigurationError(
                "cluster needs 0 < suspect_after <= down_after"
            )
        if self.request_timeout_cycles <= 2 * self.link_latency_cycles:
            raise ConfigurationError(
                "cluster request timeout must exceed the link round trip"
            )
        if self.max_attempts <= 0:
            raise ConfigurationError("cluster max_attempts must be positive")
        if self.retry_backoff_cycles <= 0:
            raise ConfigurationError("cluster retry backoff must be positive")
        if self.timeout_embargo_cycles < 0:
            raise ConfigurationError("cluster timeout embargo must be >= 0")
        if not 0.0 <= self.availability_floor <= 1.0:
            raise ConfigurationError(
                "cluster availability_floor must be in [0, 1]"
            )
        if self.write_quorum <= 0:
            # The effective quorum is clamped to the replica group size at
            # run time (a group can shrink below `replication` under
            # faults), so only the lower bound is a configuration error.
            raise ConfigurationError(
                "cluster write_quorum must be positive; got "
                f"{self.write_quorum}"
            )
        if self.replication_retry_cycles <= 0:
            raise ConfigurationError(
                "cluster replication_retry_cycles must be positive"
            )
        if self.handoff_limit <= 0:
            raise ConfigurationError("cluster handoff_limit must be positive")
        if self.settled_key_limit <= 0:
            raise ConfigurationError(
                "cluster settled_key_limit must be positive"
            )


@dataclass(frozen=True)
class SchemeLatencyConfig:
    """Round-trip latencies from Table I, in core cycles."""

    core_to_accel: int
    accel_to_data: int

    def __post_init__(self) -> None:
        if self.core_to_accel < 0 or self.accel_to_data < 0:
            raise ConfigurationError("latencies must be non-negative")


#: Table I midpoints.  ``accel_to_data`` is *additional* interface latency on
#: top of the cache/NoC simulation for the device schemes, and the local hop
#: cost for the near-cache schemes.
DEFAULT_SCHEME_LATENCIES = {
    IntegrationScheme.CHA_TLB: SchemeLatencyConfig(50, 0),
    IntegrationScheme.CHA_NOTLB: SchemeLatencyConfig(50, 0),
    IntegrationScheme.DEVICE_DIRECT: SchemeLatencyConfig(120, 40),
    IntegrationScheme.DEVICE_INDIRECT: SchemeLatencyConfig(300, 150),
    IntegrationScheme.CORE_INTEGRATED: SchemeLatencyConfig(18, 0),
}


@dataclass(frozen=True)
class SystemConfig:
    """Top-level simulated machine configuration (Tab. II defaults)."""

    num_cores: int = 24
    core: CoreConfig = field(default_factory=CoreConfig)
    llc: LlcConfig = field(default_factory=LlcConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    qei: QeiConfig = field(default_factory=QeiConfig)
    fallback: FallbackConfig = field(default_factory=FallbackConfig)
    serve: ServeConfig = field(default_factory=ServeConfig)
    scheme_latencies: dict = field(
        default_factory=lambda: dict(DEFAULT_SCHEME_LATENCIES)
    )
    #: Simulated physical memory capacity.
    memory_bytes: int = 512 * 1024 * 1024
    process_technology_nm: int = 22

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigurationError("num_cores must be positive")
        if self.llc.slices != self.num_cores:
            raise ConfigurationError(
                "the paper's NUCA design has one LLC slice per core; got "
                f"{self.llc.slices} slices for {self.num_cores} cores"
            )
        if self.noc.num_nodes < self.num_cores:
            raise ConfigurationError(
                "mesh must have at least one node per core tile"
            )

    def scheme_latency(self, scheme: "IntegrationScheme | str") -> SchemeLatencyConfig:
        scheme = IntegrationScheme.parse(scheme)
        try:
            return self.scheme_latencies[scheme]
        except KeyError as exc:
            raise ConfigurationError(
                f"no latency configuration for scheme {scheme.value}"
            ) from exc

    def effective_qst_entries(self, scheme: "IntegrationScheme | str") -> int:
        """Total in-flight query capacity for a scheme (Sec. VI-A).

        Each accelerator instance has a 10-entry QST.  The Core-integrated
        scheme has one instance per core but a single-core ROI only ever
        drives its own (so: 10); the CHA schemes have one instance per LLC
        slice, all reachable from one core; the device schemes have one
        centralized instance scaled to 10 x cores for fairness.
        """
        scheme = IntegrationScheme.parse(scheme)
        if scheme in (
            IntegrationScheme.DEVICE_DIRECT,
            IntegrationScheme.DEVICE_INDIRECT,
        ):
            return self.qei.qst_entries * self.num_cores
        if scheme in (IntegrationScheme.CHA_TLB, IntegrationScheme.CHA_NOTLB):
            return self.qei.qst_entries * self.llc.slices
        return self.qei.qst_entries

    def replace(self, **changes: object) -> "SystemConfig":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **changes)


def small_config(num_cores: int = 4) -> SystemConfig:
    """A scaled-down machine for fast unit tests.

    Keeps the per-core microarchitecture but shrinks core count, LLC and
    memory so that full-system tests run in milliseconds.
    """
    return SystemConfig(
        num_cores=num_cores,
        llc=LlcConfig(
            total_size_bytes=num_cores * 1408 * 1024,
            associativity=11,
            slices=num_cores,
        ),
        noc=NocConfig(width=max(2, num_cores // 2), height=2),
        memory_bytes=64 * 1024 * 1024,
    )
