"""Seeded fault-injection campaign across workloads x integration schemes.

The campaign's invariant — the robustness contract this reproduction makes
about the QEI stack — is that **no hostile input escapes the architecture**:

* every injected fault either aborts with a documented
  :class:`~repro.core.abort.AbortCode` or is provably masked (the query
  completes with the un-faulted oracle's answer);
* every aborted query's software fallback returns the oracle answer within
  the retry budget;
* no Python exception escapes and no query hangs (the CFA watchdog bounds
  every walk);
* the same seed reproduces the identical per-outcome counter vector.

Run it from the shell::

    python -m repro fault-campaign --seed 7 --faults 1000
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import IntegrationScheme, small_config
from ..core.abort import AbortCode
from ..core.accelerator import QueryRequest, QueryStatus
from ..core.cfa import RESULT_ABORTED
from ..core.isa import read_result
from ..errors import ReproError
from ..core.cfa import OP_UPDATE
from ..core.header import VERSION_OFFSET
from ..faults import FaultInjector, FaultKind
from ..faults.injector import MASKABLE_KINDS, WRITE_KINDS
from ..system import System
from ..workloads import make_workload
from .experiments import SCHEME_ORDER
from .report import ExperimentResult

#: Workload sizes for the campaign: small enough that a fault resolves in
#: milliseconds, big enough that structures span several pages and levels.
CAMPAIGN_WORKLOADS: Dict[str, dict] = {
    "dpdk": dict(num_flows=192, num_buckets=128, num_queries=24, zipf=False),
    "jvm": dict(num_objects=192, num_queries=24),
    "rocksdb": dict(num_items=128, num_queries=24),
    "snort": dict(num_keywords=48, payload_bytes=96, num_queries=6),
    "flann": dict(num_tables=3, num_items=96, num_points=6, num_buckets=64),
}

#: CEE step budget for campaign systems: far above any legitimate campaign
#: walk (the longest, snort's 96B Aho-Corasick scan, needs ~1k steps) but
#: small enough that an injected pointer cycle aborts in milliseconds.
CAMPAIGN_WATCHDOG_STEPS = 10_000

#: Non-blocking queries submitted per interrupt-flush event.
FLUSH_BATCH = 4

#: Cycles after the abort at which the "OS" repairs an unmapped page, so
#: the fallback's first retry genuinely fails and the backoff is exercised.
PAGE_REPAIR_DELAY = 100


class CampaignViolation(ReproError):
    """The campaign's robustness invariant was broken."""


@dataclass
class _Target:
    """One (workload, scheme) system under test, built lazily."""

    system: System
    workload: object
    injector: FaultInjector
    nb_result_base: int
    #: StructureMutator, built on first write-path fault (mutation-capable
    #: workloads only).
    mutator: Optional[object] = None
    #: Online resizes committed against this target so far.  Each
    #: RESIZE_STALL fault ends in a committed doubling; unbounded doublings
    #: would dilute the fixed entry population until the injector's bounded
    #: discovery scans stop finding occupied slots, so the handler masks
    #: once the table has grown enough.
    resizes: int = 0


def _build_target(
    workload_name: str, scheme: str, rng: random.Random
) -> _Target:
    cfg = small_config(2)
    cfg = cfg.replace(
        qei=dataclasses.replace(cfg.qei, watchdog_steps=CAMPAIGN_WATCHDOG_STEPS)
    )
    system = System(cfg, scheme)
    workload = make_workload(workload_name, system, **CAMPAIGN_WORKLOADS[workload_name])
    injector = FaultInjector(system.space, rng=rng)
    nb_result_base = system.mem.alloc(16 * FLUSH_BATCH, align=64)
    return _Target(system, workload, injector, nb_result_base)


# --------------------------------------------------------------------- #
# Per-fault protocol
# --------------------------------------------------------------------- #


def _run_memory_fault(
    target: _Target, kind: FaultKind, qidx: int, counts: Dict[str, int]
) -> Optional[str]:
    """Inject one memory-state fault, run the query, enforce the invariant.

    Returns a violation description, or None when the contract held.
    """
    system, wl, injector = target.system, target.workload, target.injector
    oracle = wl.expected[qidx]
    fault = injector.inject(kind, wl.header_addr_for(qidx))
    request = QueryRequest(
        header_addr=wl.header_addr_for(qidx),
        key_addr=wl._query_addrs[qidx],
        blocking=True,
    )
    if kind is FaultKind.PAGE_UNMAP:
        # Leave the damage in place briefly: the first software retry hits
        # the still-missing page and the exponential backoff does real work.
        # The repair event checks the injector's epoch so that, if this
        # fault resolves before the event fires, it cannot heal a later one.
        epoch = injector.epoch

        def repair() -> None:
            if injector.epoch == epoch:
                injector.heal()

        before_retry = lambda: system.engine.schedule(  # noqa: E731
            PAGE_REPAIR_DELAY, repair
        )
    else:
        before_retry = injector.heal
    try:
        outcome = system.fallback.execute(
            request, lambda: wl.software_lookup(qidx), before_retry=before_retry
        )
    finally:
        if injector.armed:
            injector.heal()

    if outcome.accelerated:
        if kind not in MASKABLE_KINDS:
            return (
                f"{kind.value}: header fault must abort, but the query "
                f"completed with {outcome.value!r}"
            )
        if outcome.value == oracle:
            counts["masked"] = counts.get("masked", 0) + 1
            return None
        if kind is FaultKind.KEY_FLIP:
            # Silent data corruption: the only kind allowed to complete
            # with a wrong answer.  The oracle cross-check catches it and
            # the healed software path must agree with the oracle.
            if wl.software_lookup(qidx) != oracle:
                return f"{kind.value}: healed software result disagrees with oracle"
            counts["mismatch-detected"] = counts.get("mismatch-detected", 0) + 1
            return None
        return (
            f"{kind.value}: silent wrong answer {outcome.value!r} "
            f"(oracle {oracle!r})"
        )

    code = outcome.abort_code
    if code not in fault.expected:
        return (
            f"{kind.value}: aborted with {code.name}, expected one of "
            f"{[c.name for c in fault.expected]}"
        )
    if not outcome.resolved:
        return f"{kind.value}: software fallback exhausted its retry budget"
    if outcome.value != oracle:
        return (
            f"{kind.value}: fallback returned {outcome.value!r}, "
            f"oracle {oracle!r}"
        )
    counts[f"abort.{code.name.lower()}"] = (
        counts.get(f"abort.{code.name.lower()}", 0) + 1
    )
    return None


def _run_flush_fault(
    target: _Target, rng: random.Random, counts: Dict[str, int]
) -> Optional[str]:
    """Raise an interrupt with non-blocking queries in flight."""
    system, wl = target.system, target.workload
    space = system.space
    indices = [rng.randrange(len(wl.queries)) for _ in range(FLUSH_BATCH)]
    handles = []
    for j, qidx in enumerate(indices):
        result_addr = target.nb_result_base + 16 * j
        space.write_u64(result_addr, 0)  # RESULT_PENDING
        space.write_u64(result_addr + 8, 0)
        handles.append(
            system.accelerator.submit(
                QueryRequest(
                    header_addr=wl.header_addr_for(qidx),
                    key_addr=wl._query_addrs[qidx],
                    blocking=False,
                    result_addr=result_addr,
                ),
                system.engine.now,
            )
        )
    # Let an arbitrary amount of progress happen: depending on the scheme's
    # submit latency the queries are queued, in the QST mid-walk, or done.
    system.engine.advance(rng.randrange(1, 400))
    finish = system.accelerator.flush()
    system.engine.run(until=max(finish, system.engine.now))

    aborted = 0
    for j, (qidx, handle) in enumerate(zip(indices, handles)):
        if not handle.done:
            # Completed before the flush but its completion event posts
            # later, or still in the submit network (it escaped the flush
            # entirely and will execute normally) — either way, settle it.
            system.accelerator.wait_for(handle)
        oracle = wl.expected[qidx]
        if handle.status is QueryStatus.ABORTED:
            aborted += 1
            if handle.abort_code is not AbortCode.FLUSH:
                return f"flush: aborted handle carries {handle.abort_code.name}"
            status, _, code = read_result(space, target.nb_result_base + 16 * j)
            if status == RESULT_ABORTED and code is not AbortCode.FLUSH:
                return f"flush: result record holds {code.name}, not FLUSH"
            outcome = system.fallback.run_software(
                lambda qi=qidx: wl.software_lookup(qi),
                abort_code=AbortCode.FLUSH,
            )
            if not outcome.resolved or outcome.value != oracle:
                return (
                    f"flush: fallback returned {outcome.value!r}, "
                    f"oracle {oracle!r}"
                )
        elif handle.value != oracle:
            return (
                f"flush: completed query returned {handle.value!r}, "
                f"oracle {oracle!r}"
            )
    key = "abort.flush" if aborted else "masked"
    counts[key] = counts.get(key, 0) + 1
    return None


def _submit_nb_batch(
    target: _Target, rng: random.Random
) -> Tuple[List[int], List]:
    """FLUSH_BATCH non-blocking queries in flight, result records cleared."""
    system, wl = target.system, target.workload
    indices = [rng.randrange(len(wl.queries)) for _ in range(FLUSH_BATCH)]
    handles = []
    for j, qidx in enumerate(indices):
        result_addr = target.nb_result_base + 16 * j
        system.space.write_u64(result_addr, 0)  # RESULT_PENDING
        system.space.write_u64(result_addr + 8, 0)
        handles.append(
            system.accelerator.submit(
                QueryRequest(
                    header_addr=wl.header_addr_for(qidx),
                    key_addr=wl._query_addrs[qidx],
                    blocking=False,
                    result_addr=result_addr,
                ),
                system.engine.now,
            )
        )
    return indices, handles


def _settle_one(
    target: _Target, label: str, qidx: int, handle
) -> Optional[str]:
    """Settle one handle post-fault: SLICE_DOWN -> fallback, else oracle."""
    system, wl = target.system, target.workload
    oracle = wl.expected[qidx]
    if not handle.done:
        system.accelerator.wait_for(handle)
    if handle.status is QueryStatus.ABORTED:
        if handle.abort_code is not AbortCode.SLICE_DOWN:
            return f"{label}: aborted handle carries {handle.abort_code.name}"
        outcome = system.fallback.run_software(
            lambda qi=qidx: wl.software_lookup(qi),
            abort_code=AbortCode.SLICE_DOWN,
        )
        if not outcome.resolved or outcome.value != oracle:
            return (
                f"{label}: fallback returned {outcome.value!r}, "
                f"oracle {oracle!r}"
            )
        return "aborted"
    if handle.value != oracle:
        return (
            f"{label}: completed query returned {handle.value!r}, "
            f"oracle {oracle!r}"
        )
    return None


def _run_slice_fault(
    target: _Target,
    rng: random.Random,
    counts: Dict[str, int],
    *,
    flap: bool,
) -> Optional[str]:
    """Kill a slice with queries in flight; flap recovers it immediately."""
    system = target.system
    label = "slice-flap" if flap else "slice-fail"
    indices, handles = _submit_nb_batch(target, rng)
    system.engine.advance(rng.randrange(1, 400))
    homes = system.integration.accelerator_homes()
    victim = homes[rng.randrange(len(homes))]
    system.fail_slice(victim)
    if flap:
        # Fail/recover inside the same window: queries the kill caught
        # still abort, but routing snaps straight back to the full set.
        system.recover_slice(victim)
    aborted = 0
    try:
        for qidx, handle in zip(indices, handles):
            verdict = _settle_one(target, label, qidx, handle)
            if verdict == "aborted":
                aborted += 1
            elif verdict:
                return verdict
    finally:
        if not flap:
            system.recover_slice(victim)
    # Recovery must restore routing: a blocking probe query on the healed
    # machine has to complete against the oracle.
    probe = rng.randrange(len(target.workload.queries))
    handle = system.accelerator.submit(
        QueryRequest(
            header_addr=target.workload.header_addr_for(probe),
            key_addr=target.workload._query_addrs[probe],
            blocking=True,
        ),
        system.engine.now,
    )
    system.accelerator.wait_for(handle)
    if (
        handle.status is QueryStatus.ABORTED
        or handle.value != target.workload.expected[probe]
    ):
        return f"{label}: post-recovery probe did not match the oracle"
    key = "abort.slice_down" if aborted else "masked"
    counts[key] = counts.get(key, 0) + 1
    return None


def _run_firmware_swap_fault(
    target: _Target, rng: random.Random, counts: Dict[str, int]
) -> Optional[str]:
    """Hot-swap firmware with queries in flight: drain, commit, no aborts."""
    from ..core.programs import HashOfListsCfa
    from ..core.programs_ext import BPlusTreeCfa

    system = target.system
    indices, handles = _submit_nb_batch(target, rng)
    system.engine.advance(rng.randrange(1, 400))
    ticket = system.update_firmware([BPlusTreeCfa(), HashOfListsCfa()])
    system.engine.run()
    if not ticket.done:
        return "firmware-swap: ticket never committed after drain"
    for qidx, handle in zip(indices, handles):
        verdict = _settle_one(target, "firmware-swap", qidx, handle)
        if verdict == "aborted":
            return "firmware-swap: a quiesced query aborted instead of draining"
        if verdict:
            return verdict
    counts["firmware-swap"] = counts.get("firmware-swap", 0) + 1
    return None


def _ensure_mutator(target: _Target):
    """Lazily arm the write path on a mutation-capable target."""
    if target.mutator is None:
        target.system.enable_mutations()
        target.mutator = target.workload.make_mutator()
    return target.mutator


def _present_key(target: _Target, rng: random.Random):
    """A (key, stored value) pair the structure is known to hold."""
    wl = target.workload
    present = [i for i in range(len(wl.queries)) if wl.expected[i] is not None]
    if not present:
        return None, None
    qidx = present[rng.randrange(len(present))]
    return wl.key_for(qidx), wl.expected[qidx]


def _run_write_abort_fault(
    target: _Target, rng: random.Random, counts: Dict[str, int]
) -> Optional[str]:
    """An orphaned seqlock (dead writer, no QST intent) must abort the
    write CFA with VERSION_CONFLICT; the software fallback reclaims the
    lock and applies the mutation."""
    system = target.system
    mutator = _ensure_mutator(target)
    executor = system.mutations()
    key, before = _present_key(target, rng)
    if key is None:
        counts["masked"] = counts.get("masked", 0) + 1
        return None
    lock_addr = mutator.header_addr + VERSION_OFFSET
    version = system.space.read_u64(lock_addr)
    # An odd version with no live QST write intent is exactly what a writer
    # crashed before its single commit store leaves behind.
    system.space.write_u64(lock_addr, version + 1)
    value = 900_000_000 + rng.randrange(1_000_000)
    try:
        handle = executor.submit(mutator, OP_UPDATE, key, value)
        system.accelerator.wait_for(handle)
        if handle.status is not QueryStatus.FAULT:
            return "write-abort: write CFA completed under an orphaned lock"
        if handle.abort_code is not AbortCode.VERSION_CONFLICT:
            return (
                f"write-abort: aborted with {handle.abort_code.name}, "
                "expected VERSION_CONFLICT"
            )
        result = executor.fallback(
            mutator, OP_UPDATE, key, value, code=handle.abort_code
        )
        if result is None or mutator.current(key) != value:
            return "write-abort: reclaiming fallback lost the update"
        if system.space.read_u64(lock_addr) & 1:
            return "write-abort: fallback left the seqlock held"
    finally:
        # Whatever happened, put the key back so later faults (and their
        # read oracle) see the build-time structure.
        if mutator.current(key) != before:
            mutator.software_apply(OP_UPDATE, key, before)
        stuck = system.space.read_u64(lock_addr)
        if stuck & 1:
            system.space.write_u64(lock_addr, stuck + 1)
    counts["write.orphan_reclaimed"] = (
        counts.get("write.orphan_reclaimed", 0) + 1
    )
    return None


def _run_version_storm_fault(
    target: _Target, rng: random.Random, counts: Dict[str, int]
) -> Optional[str]:
    """Reads racing a storm of writer commits either thread a gap between
    bumps (completing with the oracle answer) or abort VERSION_CONFLICT —
    never a torn value."""
    system, wl = target.system, target.workload
    mutator = _ensure_mutator(target)
    lock_addr = mutator.header_addr + VERSION_OFFSET
    indices, handles = _submit_nb_batch(target, rng)
    for _ in range(4):
        system.engine.advance(rng.randrange(20, 160))
        version = system.space.read_u64(lock_addr)
        # Even -> even: each bump is a whole writer win (lock + commit +
        # release collapsed), the worst case for reader re-validation.
        system.space.write_u64(lock_addr, version + 2)
    aborted = 0
    for qidx, handle in zip(indices, handles):
        if not handle.done:
            system.accelerator.wait_for(handle)
        oracle = wl.expected[qidx]
        if handle.status is QueryStatus.FAULT:
            aborted += 1
            if handle.abort_code is not AbortCode.VERSION_CONFLICT:
                return (
                    f"version-storm: faulted with {handle.abort_code.name}, "
                    "expected VERSION_CONFLICT"
                )
            outcome = system.fallback.run_software(
                lambda qi=qidx: wl.software_lookup(qi),
                abort_code=AbortCode.VERSION_CONFLICT,
            )
            if not outcome.resolved or outcome.value != oracle:
                return (
                    f"version-storm: fallback returned {outcome.value!r}, "
                    f"oracle {oracle!r}"
                )
        elif handle.value != oracle:
            return (
                f"version-storm: completed read returned {handle.value!r}, "
                f"oracle {oracle!r}"
            )
    key = "abort.version_conflict" if aborted else "masked"
    counts[key] = counts.get(key, 0) + 1
    return None


def _run_resize_stall_fault(
    target: _Target, rng: random.Random, counts: Dict[str, int]
) -> Optional[str]:
    """Stall an online resize mid-migration: reads keep resolving through
    the watermark routing, writes abort to software, and the migration then
    finishes and commits cleanly."""
    system, wl = target.system, target.workload
    if target.resizes >= 2:
        # The table already doubled twice under this campaign; further
        # doublings only dilute the fixed entry population (breaking the
        # injector's bounded occupied-slot discovery for later faults)
        # without adding coverage.
        counts["masked"] = counts.get("masked", 0) + 1
        return None
    mutator = _ensure_mutator(target)
    executor = system.mutations()
    resizer = system.start_resize(wl.mutable_structure(), chunk_buckets=8)
    resizer.start()
    resizer.step()  # one chunk, then the migration stalls

    # A read during the stall: old-or-new routing, never a wrong value.
    qidx = rng.randrange(len(wl.queries))
    handle = system.accelerator.submit(
        QueryRequest(
            header_addr=wl.header_addr_for(qidx),
            key_addr=wl._query_addrs[qidx],
            blocking=True,
        ),
        system.engine.now,
    )
    system.accelerator.wait_for(handle)
    oracle = wl.expected[qidx]
    if handle.status is QueryStatus.FAULT:
        if handle.abort_code is not AbortCode.VERSION_CONFLICT:
            return (
                f"resize-stall: read faulted with {handle.abort_code.name}"
            )
        outcome = system.fallback.run_software(
            lambda qi=qidx: wl.software_lookup(qi),
            abort_code=AbortCode.VERSION_CONFLICT,
        )
        if not outcome.resolved or outcome.value != oracle:
            return "resize-stall: read fallback disagrees with the oracle"
    elif handle.value != oracle:
        return (
            f"resize-stall: mid-resize read returned {handle.value!r}, "
            f"oracle {oracle!r}"
        )

    # A write during the stall: the CFA refuses (routing is ambiguous for
    # an accelerated store) and software applies through the watermark.
    key, before = _present_key(target, rng)
    violation = None
    if key is not None:
        value = 910_000_000 + rng.randrange(1_000_000)
        whandle = executor.submit(mutator, OP_UPDATE, key, value)
        system.accelerator.wait_for(whandle)
        if whandle.status is not QueryStatus.FAULT:
            violation = "resize-stall: write CFA ran during a live resize"
        elif whandle.abort_code is not AbortCode.VERSION_CONFLICT:
            violation = (
                f"resize-stall: write faulted with "
                f"{whandle.abort_code.name}, expected VERSION_CONFLICT"
            )
        else:
            result = executor.fallback(
                mutator, OP_UPDATE, key, value, code=whandle.abort_code
            )
            if result is None or mutator.current(key) != value:
                violation = "resize-stall: software write lost mid-resize"

    # Un-stall: drain the migration, commit through the quiesce, restore.
    while not resizer.finished:
        resizer.step()
    resizer.commit()
    system.engine.run()
    if not resizer.committed:
        return "resize-stall: migration never committed after the stall"
    if key is not None and mutator.current(key) != before:
        mutator.software_apply(OP_UPDATE, key, before)
    if violation:
        return violation
    probe = rng.randrange(len(wl.queries))
    if wl.software_lookup(probe) != wl.expected[probe]:
        return "resize-stall: post-commit lookup disagrees with the oracle"
    target.resizes += 1
    counts["write.resize_stall"] = counts.get("write.resize_stall", 0) + 1
    return None


# --------------------------------------------------------------------- #
# Campaign driver
# --------------------------------------------------------------------- #


def _run_campaign_pass(
    seed: int,
    faults: int,
    workload_names: Sequence[str],
    schemes: Sequence[str],
) -> Tuple[Dict[str, int], List[str], float]:
    """One full pass; returns (outcome counts, violations, fallback frac)."""
    rng = random.Random(seed)
    targets: Dict[Tuple[str, str], _Target] = {}
    counts: Dict[str, int] = {}
    violations: List[str] = []
    combos = [(w, s) for w in workload_names for s in schemes]

    for _ in range(faults):
        combo = combos[rng.randrange(len(combos))]
        if combo not in targets:
            targets[combo] = _build_target(combo[0], combo[1], rng)
        target = targets[combo]
        kinds = target.injector.kinds_for(target.workload.header_addr_for(0))
        kinds = tuple(kinds) + (
            FaultKind.INTERRUPT_FLUSH,
            FaultKind.SLICE_FAIL,
            FaultKind.SLICE_FLAP,
            FaultKind.FIRMWARE_SWAP,
        )
        if target.workload.supports_mutation():
            kinds = kinds + (
                FaultKind.WRITE_ABORT,
                FaultKind.VERSION_STORM,
                FaultKind.RESIZE_STALL,
            )
        kind = kinds[rng.randrange(len(kinds))]
        try:
            if kind is FaultKind.INTERRUPT_FLUSH:
                violation = _run_flush_fault(target, rng, counts)
            elif kind in (FaultKind.SLICE_FAIL, FaultKind.SLICE_FLAP):
                violation = _run_slice_fault(
                    target, rng, counts, flap=kind is FaultKind.SLICE_FLAP
                )
            elif kind is FaultKind.FIRMWARE_SWAP:
                violation = _run_firmware_swap_fault(target, rng, counts)
            elif kind is FaultKind.WRITE_ABORT:
                violation = _run_write_abort_fault(target, rng, counts)
            elif kind is FaultKind.VERSION_STORM:
                violation = _run_version_storm_fault(target, rng, counts)
            elif kind is FaultKind.RESIZE_STALL:
                violation = _run_resize_stall_fault(target, rng, counts)
            else:
                qidx = rng.randrange(len(target.workload.queries))
                violation = _run_memory_fault(target, kind, qidx, counts)
        except Exception as exc:  # noqa: BLE001 - escaping exceptions ARE the bug
            violation = (
                f"{kind.value} on {combo[0]}/{combo[1]}: escaped "
                f"{type(exc).__name__}: {exc}"
            )
        if violation:
            violations.append(f"{combo[0]}/{combo[1]}: {violation}")

    fractions = [t.system.fallback.fallback_fraction for t in targets.values()]
    fallback_fraction = sum(fractions) / len(fractions) if fractions else 0.0
    return counts, violations, fallback_fraction


def fault_campaign(
    *,
    seed: int = 7,
    faults: int = 1000,
    repeats: int = 2,
    workloads: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Seeded fault campaign: every fault -> abort code + correct fallback."""
    workload_names = list(workloads or CAMPAIGN_WORKLOADS)
    for name in workload_names:
        if name not in CAMPAIGN_WORKLOADS:
            raise CampaignViolation(f"no campaign parameters for workload {name!r}")
    scheme_names = [IntegrationScheme.parse(s).value for s in (schemes or SCHEME_ORDER)]

    vectors: List[Dict[str, int]] = []
    all_violations: List[str] = []
    fallback_fraction = 0.0
    for _ in range(max(1, repeats)):
        counts, violations, fallback_fraction = _run_campaign_pass(
            seed, faults, workload_names, scheme_names
        )
        vectors.append(counts)
        all_violations.extend(violations)

    if all_violations:
        preview = "; ".join(all_violations[:5])
        raise CampaignViolation(
            f"{len(all_violations)} invariant violations, e.g.: {preview}"
        )
    deterministic = all(v == vectors[0] for v in vectors[1:])
    if not deterministic:
        raise CampaignViolation(
            f"seed {seed} did not reproduce the outcome vector: {vectors}"
        )

    result = ExperimentResult(
        experiment="fault-campaign",
        title=(
            f"{faults} injected faults x {len(workload_names)} workloads "
            f"x {len(scheme_names)} schemes (seed {seed})"
        ),
        columns=["outcome", "count", "share"],
    )
    total = sum(vectors[0].values()) or 1
    for outcome in sorted(vectors[0]):
        count = vectors[0][outcome]
        result.add_row(outcome=outcome, count=count, share=count / total)
    result.notes.append(
        "invariant held: every fault -> documented abort code + oracle-"
        "matching software fallback; no escaped exceptions; no hangs"
    )
    result.notes.append(f"mean software-fallback fraction {fallback_fraction:.3f}")
    if repeats > 1:
        result.notes.append(
            f"outcome vector reproduced identically across {repeats} runs"
        )
    return result
