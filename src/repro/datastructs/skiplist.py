"""A skip list in simulated memory (RocksDB-memtable-style).

Node layout::

    offset 0:         u64 key_ptr   -> key bytes (0 for the head sentinel)
    offset 8:         u64 value
    offset 16:        u64 height
    offset 24:        u64 next[height]   (forward pointers, level 0 lowest)

Keys are compared lexicographically (memcmp order), like RocksDB's default
comparator.  Tower heights come from a deterministic per-key coin flip so
builds are reproducible.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..core.header import StructureType
from ..errors import DataStructureError
from ..cpu.trace import TraceBuilder
from .base import (
    DIRECTION_MISPREDICT_RATE,
    MATCH_EXIT_MISPREDICT_RATE,
    ProcessMemory,
    SimStructure,
)
from .hashing import branch_outcome, mix64, primary_hash

NODE_FIXED_BYTES = 24
DEFAULT_MAX_LEVEL = 12
#: P(level up) = 1/4, like RocksDB's InlineSkipList default.
LEVEL_FANOUT = 4
#: Dynamic instructions of comparator-call overhead the software baseline
#: pays per probe: RocksDB routes every key comparison through
#: KeyIsAfterNode -> a virtual InternalKeyComparator::Compare -> user-key
#: extraction, varint length decode and sequence-number handling — a
#: dependent call chain of several dozen instructions on top of the raw
#: memcmp (this is why the paper finds skip-list queries frontend-bound,
#: Sec. II-A).
COMPARATOR_CALL_INSTRUCTIONS = 60
#: Frontend redirect per probe: the seek loop's virtual-comparator call
#: chain crosses code pages; the paper's top-down profile shows RocksDB
#: queries 25.9% frontend bound (Sec. II-A).
IFETCH_STALL_CYCLES = 18


def tower_height(key: bytes, max_level: int) -> int:
    """Deterministic geometric height in [1, max_level]."""
    h = 1
    bits = mix64(primary_hash(key))
    while h < max_level and bits % LEVEL_FANOUT == 0:
        h += 1
        bits //= LEVEL_FANOUT
    return h


class SkipList(SimStructure):
    """Sorted skip list with out-of-line keys."""

    TYPE = StructureType.SKIP_LIST

    def __init__(
        self,
        mem: ProcessMemory,
        *,
        key_length: int,
        max_level: int = DEFAULT_MAX_LEVEL,
    ) -> None:
        if not 1 <= max_level <= 32:
            raise DataStructureError("max_level must be in [1, 32]")
        super().__init__(mem, key_length=key_length, aux=max_level)
        self.max_level = max_level
        head = self._alloc_node(key_ptr=0, value=0, height=max_level)
        self._update_header(root_ptr=head)
        self.head_addr = head
        self._count = 0

    # ------------------------------------------------------------------ #

    def _alloc_node(self, *, key_ptr: int, value: int, height: int) -> int:
        node = self.mem.alloc(NODE_FIXED_BYTES + 8 * height, align=8)
        space = self.mem.space
        space.write_u64(node + 0, key_ptr)
        space.write_u64(node + 8, value)
        space.write_u64(node + 16, height)
        for level in range(height):
            space.write_u64(node + NODE_FIXED_BYTES + 8 * level, 0)
        return node

    def _next(self, node: int, level: int) -> int:
        return self.mem.space.read_u64(node + NODE_FIXED_BYTES + 8 * level)

    def _set_next(self, node: int, level: int, target: int) -> None:
        self.mem.space.write_u64(node + NODE_FIXED_BYTES + 8 * level, target)

    def _key_of(self, node: int) -> Optional[bytes]:
        key_ptr = self.mem.space.read_u64(node)
        if not key_ptr:
            return None
        return self.mem.space.read(key_ptr, self.key_length)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    def insert(self, key: bytes, value: int) -> None:
        key = self._check_key(key)
        update = [self.head_addr] * self.max_level
        node = self.head_addr
        for level in range(self.max_level - 1, -1, -1):
            while True:
                nxt = self._next(node, level)
                nxt_key = self._key_of(nxt) if nxt else None
                if nxt and nxt_key is not None and nxt_key < key:
                    node = nxt
                else:
                    break
            update[level] = node

        candidate = self._next(node, 0)
        if candidate and self._key_of(candidate) == key:
            self.mem.space.write_u64(candidate + 8, value)
            return

        height = tower_height(key, self.max_level)
        key_addr = self.mem.store_bytes(key)
        new_node = self._alloc_node(key_ptr=key_addr, value=value, height=height)
        for level in range(height):
            self._set_next(new_node, level, self._next(update[level], level))
            self._set_next(update[level], level, new_node)
        self._count += 1

    def remove(self, key: bytes) -> bool:
        """Unlink a key from every level it appears on (software-side)."""
        key = self._check_key(key)
        update = [self.head_addr] * self.max_level
        node = self.head_addr
        for level in range(self.max_level - 1, -1, -1):
            while True:
                nxt = self._next(node, level)
                nxt_key = self._key_of(nxt) if nxt else None
                if nxt and nxt_key is not None and nxt_key < key:
                    node = nxt
                else:
                    break
            update[level] = node
        target = self._next(node, 0)
        if not target or self._key_of(target) != key:
            return False
        height = self.mem.space.read_u64(target + 16)
        for level in range(height):
            if self._next(update[level], level) == target:
                self._set_next(update[level], level, self._next(target, level))
        self._count -= 1
        return True

    def update(self, key: bytes, value: int) -> bool:
        """Overwrite an existing key's value; False when absent."""
        key = self._check_key(key)
        node = self.head_addr
        for level in range(self.max_level - 1, -1, -1):
            while True:
                nxt = self._next(node, level)
                nxt_key = self._key_of(nxt) if nxt else None
                if nxt and nxt_key is not None and nxt_key < key:
                    node = nxt
                else:
                    break
        candidate = self._next(node, 0)
        if candidate and self._key_of(candidate) == key:
            self.mem.space.write_u64(candidate + 8, value)
            return True
        return False

    def items(self) -> Iterator[Tuple[bytes, int]]:
        node = self._next(self.head_addr, 0)
        while node:
            key = self._key_of(node)
            yield key, self.mem.space.read_u64(node + 8)
            node = self._next(node, 0)

    # ------------------------------------------------------------------ #
    # Query — functional reference
    # ------------------------------------------------------------------ #

    def lookup(self, key: bytes) -> Optional[int]:
        key = self._check_key(key)
        node = self.head_addr
        for level in range(self.max_level - 1, -1, -1):
            while True:
                nxt = self._next(node, level)
                if not nxt:
                    break
                nxt_key = self._key_of(nxt)
                if nxt_key < key:
                    node = nxt
                else:
                    break
        candidate = self._next(node, 0)
        if candidate and self._key_of(candidate) == key:
            return self.mem.space.read_u64(candidate + 8)
        return None

    # ------------------------------------------------------------------ #
    # Query — software baseline (functional + micro-op trace)
    # ------------------------------------------------------------------ #

    def emit_lookup(
        self, builder: TraceBuilder, key_addr: int, key: bytes
    ) -> Optional[int]:
        """RocksDB-style seek: descend levels, compare keys at each probe."""
        key = self._check_key(key)
        space = self.mem.space

        header_load = builder.load(self.header_addr)
        cursor = builder.alu(deps=(header_load,))
        node = self.head_addr
        probes = 0

        for level in range(self.max_level - 1, -1, -1):
            while True:
                # Load the forward pointer for this level.
                ptr_load = builder.load(node + NODE_FIXED_BYTES + 8 * level, (cursor,))
                nxt = self._next(node, level)
                builder.branch(deps=(ptr_load,))  # null check: predictable
                if not nxt:
                    break
                nxt_loads = builder.load_span(nxt, NODE_FIXED_BYTES, (ptr_load,))
                key_ptr = space.read_u64(nxt)
                # Virtual comparator call: dependent setup before the memcmp.
                builder.ifetch_stall(IFETCH_STALL_CYCLES)
                call = builder.alu(
                    deps=tuple(nxt_loads), count=COMPARATOR_CALL_INSTRUCTIONS
                )
                cmp_op = self._emit_memcmp(
                    builder, key_ptr, key_addr, self.key_length, (call,)
                )
                nxt_key = space.read(key_ptr, self.key_length)
                advance = nxt_key < key
                builder.branch(
                    deps=(cmp_op,),
                    mispredicted=branch_outcome(
                        key, probes, DIRECTION_MISPREDICT_RATE
                    ),
                )
                probes += 1
                if advance:
                    node = nxt
                    cursor = builder.alu(deps=(cmp_op,))
                else:
                    break
            cursor = builder.alu(deps=(cursor,))  # drop one level

        # Final candidate check at level 0.
        ptr_load = builder.load(node + NODE_FIXED_BYTES, (cursor,))
        candidate = self._next(node, 0)
        if candidate:
            cand_loads = builder.load_span(candidate, NODE_FIXED_BYTES, (ptr_load,))
            key_ptr = space.read_u64(candidate)
            cmp_op = self._emit_memcmp(
                builder, key_ptr, key_addr, self.key_length, tuple(cand_loads)
            )
            matched = space.read(key_ptr, self.key_length) == key
            builder.branch(
                deps=(cmp_op,),
                mispredicted=matched
                and branch_outcome(key, 999, MATCH_EXIT_MISPREDICT_RATE),
            )
            if matched:
                builder.load(candidate + 8, (cmp_op,))
                return space.read_u64(candidate + 8)
        else:
            builder.branch(deps=(ptr_load,), mispredicted=True)
        return None
