"""Parallel experiment runner: shard, fan out, merge deterministically.

The figure experiments are embarrassingly parallel — every (workload,
scheme) pair builds its own :class:`~repro.system.System` and runs with
fixed seeds — so the runner shards row-per-workload experiments into one
task per workload and fans tasks out over a ``multiprocessing`` pool.  Rows
are re-merged in the serial iteration order, so output is byte-identical to
a serial run regardless of worker count or completion order (there is a
golden test for exactly that).

Tasks are (experiment name, kwargs) pairs resolved against
:mod:`~repro.analysis.registry` inside the worker, which keeps them
picklable and the per-task seeds explicit: everything that varies is in the
kwargs, nothing depends on scheduling.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from . import snapshot
from .report import ExperimentResult
from .rescache import ResultCache


def _init_worker(snapshots_enabled: bool) -> None:
    """Pool initializer: propagate the snapshot flag out-of-band.

    The flag is runtime plumbing, not an input that changes results
    (snapshot restores are bit-identical to cold builds), so it travels via
    the pool initializer rather than task kwargs — cache keys stay stable
    whether or not snapshots are on.  Fork workers would inherit the flag
    anyway; the initializer also covers spawn/forkserver contexts.
    """
    snapshot.set_enabled(snapshots_enabled)


@dataclass(frozen=True)
class Task:
    """One unit of work: run ``EXPERIMENTS[name](**kwargs)``."""

    #: Experiment whose rows this task contributes to (output grouping).
    experiment: str
    name: str
    kwargs: Dict[str, Any] = field(default_factory=dict)


def plan_tasks(
    names: Sequence[str], kwargs_for: Dict[str, Dict[str, Any]]
) -> List[Task]:
    """Shard ``names`` into tasks; row-per-workload experiments split."""
    from .registry import ROW_PER_WORKLOAD
    from .experiments import BENCH_WORKLOADS

    tasks: List[Task] = []
    for name in names:
        kwargs = dict(kwargs_for.get(name, {}))
        if name in ROW_PER_WORKLOAD:
            workloads = kwargs.pop("workloads", None) or list(BENCH_WORKLOADS)
            for workload in workloads:
                shard = dict(kwargs, workloads=[workload])
                tasks.append(Task(name, name, shard))
        else:
            tasks.append(Task(name, name, kwargs))
    return tasks


def execute_task(task: Task) -> ExperimentResult:
    """Run one task in the current process."""
    from .registry import EXPERIMENTS

    driver = EXPERIMENTS[task.name]
    return driver(**task.kwargs)


def merge_shards(experiment: str, shards: List[ExperimentResult]) -> ExperimentResult:
    """Concatenate row shards (already in serial order) into one result."""
    if len(shards) == 1:
        return shards[0]
    first = shards[0]
    merged = ExperimentResult(
        first.experiment, first.title, first.columns, notes=list(first.notes)
    )
    for shard in shards:
        merged.rows.extend(shard.rows)
    return merged


def run_tasks(
    tasks: Sequence[Task],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[ExperimentResult]:
    """Execute ``tasks`` and return one merged result per experiment.

    Results are grouped by ``task.experiment`` preserving first-appearance
    order; with ``jobs > 1`` cache misses run on a fork-server pool.  The
    cache (when given) is consulted before fan-out and updated after.
    """
    results: List[Optional[ExperimentResult]] = [None] * len(tasks)
    misses: List[int] = []
    if cache is not None:
        for i, task in enumerate(tasks):
            hit = cache.get(task.name, task.kwargs)
            if hit is not None:
                results[i] = hit
            else:
                misses.append(i)
    else:
        misses = list(range(len(tasks)))

    if misses:
        if jobs > 1 and len(misses) > 1:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # platforms without fork
                context = multiprocessing.get_context()
            with context.Pool(
                min(jobs, len(misses)),
                initializer=_init_worker,
                initargs=(snapshot.enabled(),),
            ) as pool:
                fresh = pool.map(execute_task, [tasks[i] for i in misses])
        else:
            fresh = [execute_task(tasks[i]) for i in misses]
        for i, result in zip(misses, fresh):
            results[i] = result
            if cache is not None:
                cache.put(tasks[i].name, tasks[i].kwargs, result)

    # Group shards per experiment, preserving first-appearance order.
    order: List[str] = []
    shards: Dict[str, List[ExperimentResult]] = {}
    for task, result in zip(tasks, results):
        if task.experiment not in shards:
            shards[task.experiment] = []
            order.append(task.experiment)
        shards[task.experiment].append(result)
    return [merge_shards(name, shards[name]) for name in order]
