"""Simulated physical memory: a sparse array of 4KB frames.

Frames are allocated lazily so a 512MB machine costs only what is touched.
Reads and writes may span frame boundaries; the class splits them.
"""

from __future__ import annotations

from typing import Dict, List

from ..config import PAGE_BYTES
from ..errors import OutOfMemory, SimulationError


class PhysicalMemory:
    """Byte-addressable simulated DRAM, organised as 4KB frames."""

    def __init__(self, capacity_bytes: int, frame_bytes: int = PAGE_BYTES) -> None:
        if capacity_bytes <= 0 or capacity_bytes % frame_bytes:
            raise SimulationError(
                "physical capacity must be a positive multiple of the frame size"
            )
        self.capacity_bytes = capacity_bytes
        self.frame_bytes = frame_bytes
        self.num_frames = capacity_bytes // frame_bytes
        self._frames: Dict[int, bytearray] = {}
        self._free_frames: List[int] = list(range(self.num_frames - 1, -1, -1))

    # ------------------------------------------------------------------ #
    # Frame management
    # ------------------------------------------------------------------ #

    def allocate_frame(self) -> int:
        """Reserve one physical frame, returning its frame number."""
        if not self._free_frames:
            raise OutOfMemory(
                f"physical memory exhausted ({self.num_frames} frames in use)"
            )
        return self._free_frames.pop()

    def allocate_contiguous(self, count: int) -> int:
        """Reserve ``count`` physically *consecutive* frames (huge pages).

        Returns the base frame number.  Raises :class:`OutOfMemory` when no
        contiguous run exists — which is exactly the fragmentation failure
        mode the paper raises against huge-page-only designs (Sec. II-B).
        """
        if count <= 0:
            raise SimulationError("contiguous allocation needs a positive count")
        free = sorted(self._free_frames)
        run_start = 0
        for i in range(1, len(free) + 1):
            if i == len(free) or free[i] != free[i - 1] + 1:
                if i - run_start >= count:
                    base = free[run_start]
                    taken = set(range(base, base + count))
                    self._free_frames = [f for f in free if f not in taken]
                    return base
                run_start = i
        raise OutOfMemory(
            f"no contiguous run of {count} frames (fragmented physical memory)"
        )

    def free_frame(self, frame_number: int) -> None:
        """Return a frame to the free pool and drop its contents."""
        self._check_frame(frame_number)
        self._frames.pop(frame_number, None)
        self._free_frames.append(frame_number)

    @property
    def frames_in_use(self) -> int:
        return self.num_frames - len(self._free_frames)

    def _check_frame(self, frame_number: int) -> None:
        if not 0 <= frame_number < self.num_frames:
            raise SimulationError(f"frame {frame_number} out of range")

    def _backing(self, frame_number: int) -> bytearray:
        self._check_frame(frame_number)
        frame = self._frames.get(frame_number)
        if frame is None:
            frame = bytearray(self.frame_bytes)
            self._frames[frame_number] = frame
        return frame

    # ------------------------------------------------------------------ #
    # Byte access (physical addresses)
    # ------------------------------------------------------------------ #

    def read(self, paddr: int, length: int) -> bytes:
        """Read ``length`` bytes at physical address ``paddr``."""
        # Fast path: a non-empty access confined to one frame.
        frame_number, offset = divmod(paddr, self.frame_bytes)
        end = offset + length
        if 0 < length and 0 <= paddr and end <= self.frame_bytes:
            if paddr + length > self.capacity_bytes:
                self._check_range(paddr, length)
            frame = self._frames.get(frame_number)
            if frame is None:
                frame = bytearray(self.frame_bytes)
                self._frames[frame_number] = frame
            return bytes(frame[offset:end])
        self._check_range(paddr, length)
        out = bytearray()
        remaining = length
        addr = paddr
        while remaining:
            frame_number, offset = divmod(addr, self.frame_bytes)
            chunk = min(remaining, self.frame_bytes - offset)
            out += self._backing(frame_number)[offset : offset + chunk]
            addr += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, paddr: int, data: bytes) -> None:
        """Write ``data`` at physical address ``paddr``."""
        length = len(data)
        frame_number, offset = divmod(paddr, self.frame_bytes)
        end = offset + length
        if 0 < length and 0 <= paddr and end <= self.frame_bytes:
            if paddr + length > self.capacity_bytes:
                self._check_range(paddr, length)
            frame = self._frames.get(frame_number)
            if frame is None:
                frame = bytearray(self.frame_bytes)
                self._frames[frame_number] = frame
            frame[offset:end] = data
            return
        self._check_range(paddr, length)
        addr = paddr
        view = memoryview(data)
        while view:
            frame_number, offset = divmod(addr, self.frame_bytes)
            chunk = min(len(view), self.frame_bytes - offset)
            self._backing(frame_number)[offset : offset + chunk] = view[:chunk]
            addr += chunk
            view = view[chunk:]

    def _check_range(self, paddr: int, length: int) -> None:
        if length < 0:
            raise SimulationError("negative access length")
        if paddr < 0 or paddr + length > self.capacity_bytes:
            raise SimulationError(
                f"physical access [0x{paddr:x}, +{length}) out of range"
            )
