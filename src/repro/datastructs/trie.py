"""Byte-wise trie and Aho-Corasick automaton in simulated memory (Snort).

Node layout (32 bytes)::

    offset 0:  u64 fail_ptr     (AC failure link; 0 for plain trie)
    offset 8:  u64 output       (match value + 1; 0 = no output here)
    offset 16: u64 edge_count
    offset 24: u64 edges_ptr    -> edge array

Edge entry (16 bytes, sorted by byte value)::

    offset 0: u64 byte
    offset 8: u64 child_ptr

Each trie step searches the node's edge index table (linear scan in the
software baseline — matching the paper's "within a node, we search an index
table for a match") and then follows the child pointer.  The Aho-Corasick
subclass adds failure links and output aggregation for multi-keyword literal
matching over an input string.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.header import StructureType
from ..errors import DataStructureError
from ..cpu.trace import TraceBuilder
from .base import (
    DIRECTION_MISPREDICT_RATE,
    ProcessMemory,
    SimStructure,
)
from .hashing import branch_outcome

NODE_BYTES = 32
EDGE_BYTES = 16
#: Per-input-byte software bookkeeping in the baseline scanner: Snort's AC
#: loop case-folds the byte, bounds-checks the state, decodes the node
#: format and tests the output list before the next transition.
STEP_INSTRUCTIONS = 10
#: Fetch redirect every few consumed bytes: output-list checks and case
#: tables pull the scanner off its hot path.
IFETCH_STALL_CYCLES = 12
IFETCH_STALL_EVERY = 3


class _BuildNode:
    """In-Python trie node used during construction, before serialisation."""

    __slots__ = ("children", "output", "fail", "addr")

    def __init__(self) -> None:
        self.children: Dict[int, "_BuildNode"] = {}
        self.output = 0  # value + 1; 0 = none
        self.fail: Optional["_BuildNode"] = None
        self.addr = 0


class Trie(SimStructure):
    """A byte trie supporting exact-match lookup of variable-depth keys.

    ``key_length`` in the header is the *maximum* query length; individual
    keys may be shorter (the trie terminates on output nodes).
    """

    TYPE = StructureType.TRIE
    #: Header subtype: 0 = exact-match lookup, 1 = Aho-Corasick scan.
    SUBTYPE = 0

    def __init__(self, mem: ProcessMemory, *, key_length: int) -> None:
        super().__init__(mem, key_length=key_length, subtype=self.SUBTYPE)
        self._root = _BuildNode()
        self._sealed = False
        self._count = 0

    # ------------------------------------------------------------------ #
    # Construction: build in Python, then serialise once
    # ------------------------------------------------------------------ #

    def insert(self, key: bytes, value: int) -> None:
        if self._sealed:
            raise DataStructureError("trie is sealed; inserts must precede seal()")
        if not key:
            raise DataStructureError("trie keys must be non-empty")
        if value < 0:
            raise DataStructureError("trie values must be non-negative")
        node = self._root
        for byte in key:
            node = node.children.setdefault(byte, _BuildNode())
        if node.output == 0:
            self._count += 1
        node.output = value + 1

    def __len__(self) -> int:
        return self._count

    def seal(self) -> None:
        """Serialise the trie into simulated memory."""
        if self._sealed:
            return
        self._prepare_links()
        order = self._bfs_order()
        for node in order:
            node.addr = self.mem.alloc(NODE_BYTES, align=8)
        space = self.mem.space
        for node in order:
            edges = sorted(node.children.items())
            edges_ptr = 0
            if edges:
                edges_ptr = self.mem.alloc(len(edges) * EDGE_BYTES, align=8)
                for i, (byte, child) in enumerate(edges):
                    space.write_u64(edges_ptr + i * EDGE_BYTES, byte)
                    space.write_u64(edges_ptr + i * EDGE_BYTES + 8, child.addr)
            fail_addr = node.fail.addr if node.fail is not None else 0
            space.write_u64(node.addr + 0, fail_addr)
            space.write_u64(node.addr + 8, node.output)
            space.write_u64(node.addr + 16, len(edges))
            space.write_u64(node.addr + 24, edges_ptr)
        self._update_header(root_ptr=self._root.addr, size=len(order))
        self._sealed = True

    def _prepare_links(self) -> None:
        """Hook for subclasses (AC failure links). Plain tries do nothing."""

    def _bfs_order(self) -> List[_BuildNode]:
        order = [self._root]
        frontier = [self._root]
        while frontier:
            next_frontier: List[_BuildNode] = []
            for node in frontier:
                for _, child in sorted(node.children.items()):
                    order.append(child)
                    next_frontier.append(child)
            frontier = next_frontier
        return order

    def _require_sealed(self) -> None:
        if not self._sealed:
            raise DataStructureError("call seal() before querying the trie")

    # ------------------------------------------------------------------ #
    # Serialized-node helpers (read back from simulated memory)
    # ------------------------------------------------------------------ #

    def _node_fields(self, node: int) -> Tuple[int, int, int, int]:
        space = self.mem.space
        return (
            space.read_u64(node + 0),
            space.read_u64(node + 8),
            space.read_u64(node + 16),
            space.read_u64(node + 24),
        )

    def _find_edge(self, node: int, byte: int) -> Tuple[int, int]:
        """Return (child_addr, probes); child 0 when absent."""
        _, _, count, edges_ptr = self._node_fields(node)
        space = self.mem.space
        for i in range(count):
            stored = space.read_u64(edges_ptr + i * EDGE_BYTES)
            if stored == byte:
                return space.read_u64(edges_ptr + i * EDGE_BYTES + 8), i + 1
            if stored > byte:
                return 0, i + 1
        return 0, count

    # ------------------------------------------------------------------ #
    # Query — functional reference
    # ------------------------------------------------------------------ #

    def lookup(self, key: bytes) -> Optional[int]:
        """Exact match of ``key``; returns its value or None."""
        self._require_sealed()
        node = self.header().root_ptr
        for byte in key:
            child, _ = self._find_edge(node, byte)
            if not child:
                return None
            node = child
        output = self._node_fields(node)[1]
        return output - 1 if output else None

    # ------------------------------------------------------------------ #
    # Query — software baseline (functional + micro-op trace)
    # ------------------------------------------------------------------ #

    def emit_lookup(
        self, builder: TraceBuilder, key_addr: int, key: bytes
    ) -> Optional[int]:
        self._require_sealed()
        space = self.mem.space
        header_load = builder.load(self.header_addr)
        key_loads = builder.load_span(key_addr, len(key))
        cursor = builder.alu(deps=(header_load,))
        node = space.read_u64(self.header_addr)

        for depth, byte in enumerate(key):
            node_loads = builder.load_span(node, NODE_BYTES, (cursor,))
            cursor = builder.alu(deps=tuple(node_loads), count=STEP_INSTRUCTIONS)
            child, probes = self._emit_edge_search(
                builder, node, byte, tuple(node_loads), key, depth
            )
            if not child:
                builder.branch(deps=(cursor,), mispredicted=True)
                return None
            cursor = builder.alu(deps=tuple(node_loads))
            node = child
        out_load = builder.load(node + 8, (cursor,))
        output = space.read_u64(node + 8)
        builder.branch(deps=(out_load,))
        return output - 1 if output else None

    def _emit_edge_search(
        self,
        builder: TraceBuilder,
        node: int,
        byte: int,
        deps: Tuple[int, ...],
        key: bytes,
        salt: int,
    ) -> Tuple[int, int]:
        """Linear index-table scan with one compare+branch per probe."""
        _, _, count, edges_ptr = self._node_fields(node)
        space = self.mem.space
        child, probes = self._find_edge(node, byte)
        last = deps[-1] if deps else -1
        for i in range(max(1, probes)):
            edge_load = builder.load(edges_ptr + i * EDGE_BYTES, deps) if count else None
            cmp_deps = (edge_load,) if edge_load is not None else deps
            cmp_op = builder.alu(deps=cmp_deps)
            builder.branch(
                deps=(cmp_op,),
                mispredicted=branch_outcome(
                    key, salt * 256 + i, DIRECTION_MISPREDICT_RATE
                ),
            )
            last = cmp_op
        if child:
            builder.load(edges_ptr + (probes - 1) * EDGE_BYTES + 8, (last,))
        return child, probes


class LpmTrie(Trie):
    """Longest-prefix-match trie (routing-table lookups, Sec. II-A).

    Prefixes of any length up to ``key_length`` map to route values; a
    lookup walks the full address and returns the value of the deepest
    prefix on the path (e.g., IPv4 FIB: ``key_length=4``, byte-granular
    prefixes).
    """

    SUBTYPE = 2

    def insert_prefix(self, prefix: bytes, value: int) -> None:
        """Insert a route for ``prefix`` (1..key_length bytes)."""
        if not 1 <= len(prefix) <= self.key_length:
            raise DataStructureError(
                f"prefix must be 1..{self.key_length} bytes, got {len(prefix)}"
            )
        self.insert(prefix, value)

    def lookup_lpm(self, addr: bytes) -> Optional[int]:
        """Functional reference: value of the longest matching prefix."""
        self._require_sealed()
        addr = self._check_key(addr)
        node = self.header().root_ptr
        best = self._node_fields(node)[1]
        for byte in addr:
            child, _ = self._find_edge(node, byte)
            if not child:
                break
            node = child
            output = self._node_fields(node)[1]
            if output:
                best = output
        return best - 1 if best else None

    def emit_lookup_lpm(
        self, builder: TraceBuilder, addr_vaddr: int, addr: bytes
    ) -> Optional[int]:
        """Software LPM walk (a Poptrie/LC-trie-style loop), with trace."""
        self._require_sealed()
        addr = self._check_key(addr)
        space = self.mem.space
        header_load = builder.load(self.header_addr)
        builder.load_span(addr_vaddr, len(addr))
        cursor = builder.alu(deps=(header_load,))
        node = space.read_u64(self.header_addr)
        best = self._node_fields(node)[1]

        for depth, byte in enumerate(addr):
            node_loads = builder.load_span(node, NODE_BYTES, (cursor,))
            cursor = builder.alu(deps=tuple(node_loads), count=STEP_INSTRUCTIONS)
            child, _ = self._emit_edge_search(
                builder, node, byte, (cursor,), addr, depth
            )
            if not child:
                builder.branch(deps=(cursor,), mispredicted=True)
                break
            node = child
            out_load = builder.load(node + 8, (cursor,))
            output = space.read_u64(node + 8)
            builder.branch(deps=(out_load,), mispredicted=bool(output))
            if output:
                best = output
            cursor = builder.alu(deps=(out_load,))
        return best - 1 if best else None


class AhoCorasickTrie(Trie):
    """Aho-Corasick automaton for multi-keyword literal matching.

    ``match(text)`` scans an input string and returns every (position,
    value) where a dictionary keyword ends — the Snort IPS use case.  The
    serialized form reuses the trie node layout with failure links filled
    in; outputs are aggregated along failure chains at build time so the
    scan itself only checks the current node's output — one (most-specific)
    match is reported per text position.
    """

    SUBTYPE = 1

    def _prepare_links(self) -> None:
        root = self._root
        root.fail = root
        frontier: List[_BuildNode] = []
        for child in root.children.values():
            child.fail = root
            frontier.append(child)
        while frontier:
            next_frontier: List[_BuildNode] = []
            for node in frontier:
                for byte, child in node.children.items():
                    # Walk failure links to find the longest proper suffix.
                    fail = node.fail
                    while fail is not root and byte not in fail.children:
                        fail = fail.fail
                    candidate = fail.children.get(byte)
                    child.fail = candidate if candidate is not None and candidate is not child else root
                    if child.output == 0 and child.fail.output:
                        # Aggregate: a suffix keyword also matches here.
                        child.output = child.fail.output
                    next_frontier.append(child)
            frontier = next_frontier

    # ------------------------------------------------------------------ #

    def match(self, text: bytes) -> List[Tuple[int, int]]:
        """Functional scan: list of (end_position, value) matches."""
        self._require_sealed()
        root = self.header().root_ptr
        node = root
        out: List[Tuple[int, int]] = []
        for pos, byte in enumerate(text):
            node = self._step(node, byte, root)
            output = self._node_fields(node)[1]
            if output:
                out.append((pos, output - 1))
        return out

    def _step(self, node: int, byte: int, root: int) -> int:
        while True:
            child, _ = self._find_edge(node, byte)
            if child:
                return child
            if node == root:
                return root
            node = self._node_fields(node)[0]  # fail link

    # ------------------------------------------------------------------ #

    def emit_match(
        self, builder: TraceBuilder, text_addr: int, text: bytes
    ) -> List[Tuple[int, int]]:
        """Software AC scan over ``text``, emitting the baseline trace."""
        self._require_sealed()
        space = self.mem.space
        header_load = builder.load(self.header_addr)
        root = space.read_u64(self.header_addr)
        node = root
        cursor = builder.alu(deps=(header_load,))
        out: List[Tuple[int, int]] = []

        for pos, byte in enumerate(text):
            # Load the input byte (one load per cacheline thanks to locality).
            if pos % 64 == 0:
                text_load = builder.load(text_addr + pos, (cursor,))
            if pos % IFETCH_STALL_EVERY == 0:
                builder.ifetch_stall(IFETCH_STALL_CYCLES)
            # goto/fail loop
            while True:
                node_loads = builder.load_span(node, NODE_BYTES, (cursor,))
                cursor = builder.alu(deps=tuple(node_loads), count=STEP_INSTRUCTIONS)
                child, _ = self._emit_edge_search(
                    builder, node, byte, tuple(node_loads), text[pos : pos + 1] or b"\0", pos
                )
                if child:
                    node = child
                    cursor = builder.alu(deps=tuple(node_loads))
                    break
                if node == root:
                    cursor = builder.alu(deps=tuple(node_loads))
                    break
                node = self._node_fields(node)[0]
                cursor = builder.alu(deps=tuple(node_loads))
            output = self._node_fields(node)[1]
            out_check = builder.alu(deps=(cursor,))
            builder.branch(deps=(out_check,), mispredicted=bool(output))
            if output:
                out.append((pos, output - 1))
        return out
