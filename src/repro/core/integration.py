"""Integration schemes: where QEI lives and how it reaches memory (Sec. V).

Five schemes are modelled, matching Sec. VI-A:

* ``cha-tlb`` — HALO-like: one accelerator per CHA/LLC slice, each with a
  dedicated 1024-entry TLB.  Queries are distributed to slices by the NUCA
  hash of the header line.
* ``cha-notlb`` — per-CHA accelerators that round-trip to the owning core's
  MMU for every translation.
* ``device-direct`` — one centralized accelerator on its own NoC stop
  (DASX-like), with a dedicated TLB; data accesses cross the mesh.
* ``device-indirect`` — behind a device interface (OpenCAPI/CXL-like): every
  data access additionally pays the interface round-trip latency.
* ``core-integrated`` — the paper's proposal: QST/CEE/ALUs beside each
  core's L2, translating through the core's L2-TLB, memory fetches through
  the L2 path (no L1 pollution), and key comparisons executed remotely by
  comparators distributed in every CHA.

Each scheme exposes the same timing interface to the accelerator engine:
submit/return latency, translation, cacheline reads/writes, and compares.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from ..config import (
    CACHELINE_BYTES,
    IntegrationScheme,
    SystemConfig,
)
from ..errors import ConfigurationError, MemoryError_
from ..mem.hierarchy import MemoryHierarchy
from ..mem.mmu import Mmu, PAGE_WALK_CYCLES
from ..mem.paging import AddressSpace
from ..mem.tlb import Tlb
from ..noc.mesh import MeshNoc
from ..sim.stats import StatsRegistry
from .dpu import AluPool, ComparatorPool, HashUnit


class SliceState(str, enum.Enum):
    """Health of one accelerator home (LLC slice / device stop / core).

    ``HEALTHY`` homes take new work.  ``DRAINING`` homes finish what they
    already accepted but the home probe routes new submissions elsewhere
    (quiesce windows: firmware update, planned maintenance).  ``FAILED``
    homes take nothing and their in-flight queries abort with
    :attr:`~repro.core.abort.AbortCode.SLICE_DOWN`.
    """

    HEALTHY = "healthy"
    DRAINING = "draining"
    FAILED = "failed"


def _lines_of(vaddr: int, length: int) -> List[int]:
    """Cacheline-aligned virtual line base addresses covering a region."""
    if length <= 0:
        return [vaddr - vaddr % CACHELINE_BYTES]
    first = vaddr - vaddr % CACHELINE_BYTES
    last = (vaddr + length - 1) - (vaddr + length - 1) % CACHELINE_BYTES
    return list(range(first, last + 1, CACHELINE_BYTES))


class Integration:
    """Base class for scheme-specific timing paths."""

    scheme: IntegrationScheme

    def __init__(
        self,
        config: SystemConfig,
        hierarchy: MemoryHierarchy,
        noc: MeshNoc,
        space: AddressSpace,
        core_mmus: List[Mmu],
        *,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.noc = noc
        self.space = space
        self.core_mmus = core_mmus
        registry = stats or StatsRegistry()
        self.stats = registry.scoped(f"qei.{self.scheme.value}")
        latency = config.scheme_latency(self.scheme)
        self._submit_latency = latency.core_to_accel
        self._data_extra = latency.accel_to_data
        # Distributed comparators: two per CHA (Tab. II).
        self.slice_comparators = [
            ComparatorPool(
                config.qei.comparators_per_cha,
                f"cha{i}.comparators",
                stats=registry,
            )
            for i in range(config.llc.slices)
        ]
        self.alus = AluPool(config.qei.alus_per_dpu, "qei.alus", stats=registry)
        self.hash_unit = HashUnit(stats=registry, name="qei.hash")
        self._translations = self.stats.counter("translations")
        # Per-accelerator micro-TLB: the address-generation stage keeps the
        # last few page translations in registers, so a query touching the
        # same pages repeatedly (trie root, hot buckets, the query key) does
        # not re-pay the TLB pipeline on every micro-op.  Each home's TLB is
        # a plain insertion-ordered dict (the cache.py/tlb.py LRU idiom):
        # a hit is pop-and-reinsert, an eviction is ``next(iter(...))``.
        self._micro_tlbs: Dict[int, Dict[int, int]] = {}
        self._micro_hits = self.stats.counter("micro_tlb.hits")
        self._mem_uops = self.stats.counter("uops.mem")
        self._cmp_uops = self.stats.counter("uops.compare")
        self._mem_latency = self.stats.histogram("latency.mem")
        self._cmp_latency = self.stats.histogram("latency.compare")
        # Per-home health (slice failover): homes absent from the map are
        # HEALTHY; the public home probe reroutes around the rest.
        self._home_states: Dict[int, SliceState] = {}
        self._reroutes = self.stats.counter("home.reroutes")

    # ------------------------------------------------------------------ #
    # Topology hooks
    # ------------------------------------------------------------------ #

    def core_node(self, core_id: int) -> int:
        return core_id

    def home_node(self, core_id: int, header_vaddr: int, key_addr: int = 0) -> int:
        """Where this query's CFA executes, rerouted around down homes.

        The scheme-specific probe (:meth:`_home_node`) picks the natural
        home; when that home is not HEALTHY the query is consistently
        re-hashed onto the surviving homes (only the down home's traffic
        moves).  With no survivors the natural home is returned unchanged
        and the submit path aborts the query with ``SLICE_DOWN``.
        """
        return self._reroute(self._home_node(core_id, header_vaddr, key_addr))

    def _home_node(self, core_id: int, header_vaddr: int, key_addr: int = 0) -> int:
        """The scheme's natural home for this query (no health applied)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Per-home health (slice failover)
    # ------------------------------------------------------------------ #

    def accelerator_homes(self) -> List[int]:
        """Every home node an accelerator instance lives at, sorted."""
        raise NotImplementedError

    def home_state(self, home: int) -> SliceState:
        return self._home_states.get(home, SliceState.HEALTHY)

    def set_home_state(self, home: int, state: SliceState) -> None:
        if state is SliceState.HEALTHY:
            self._home_states.pop(home, None)
        else:
            self._home_states[home] = state

    def routable_homes(self) -> List[int]:
        """The HEALTHY subset of :meth:`accelerator_homes`."""
        return [
            home
            for home in self.accelerator_homes()
            if self.home_state(home) is SliceState.HEALTHY
        ]

    def _reroute(self, home: int) -> int:
        if self.home_state(home) is SliceState.HEALTHY:
            return home
        survivors = self.routable_homes()
        if not survivors:
            return home
        self._reroutes.add()
        return survivors[home % len(survivors)]

    def _distribute(self, key_addr: int, header_vaddr: int = 0) -> int:
        """NUCA-hash a query to a CHA accelerator (Sec. V / HALO).

        HALO routes each request to the CHA that *owns the data it will
        touch*: for hash tables that is the primary bucket's home slice, so
        the bucket read is slice-local.  For pointer-chasing structures no
        single owner exists, so requests spread by a content hash of the
        queried key (the "hash function specific to the NUCA architecture").
        """
        if header_vaddr:
            target = self._primary_target(key_addr, header_vaddr)
            if target is not None:
                try:
                    paddr = self.space.translate(target, "r")
                except MemoryError_:
                    # Corrupt metadata pointed the probe off the map; spread
                    # by key and let the CFA reject the header at PARSE.
                    pass
                else:
                    return self.hierarchy.slice_of(self.hierarchy.line_of(paddr))
        paddr = self.space.translate(key_addr, "r")
        key = self.space.read(key_addr, CACHELINE_BYTES if not header_vaddr else 16)
        from ..datastructs.hashing import fnv1a64

        return fnv1a64(key) % len(self.slice_comparators)

    def _primary_target(self, key_addr: int, header_vaddr: int) -> Optional[int]:
        """First data address a hash-table query touches (None otherwise).

        The probe trusts nothing: the header it reads may be hostile (wild
        key_length, zero size, garbage subtype), so any fault or nonsense
        here means "no primary owner" — the query spreads by key instead and
        the CFA's header validation surfaces the proper abort code.
        """
        from ..datastructs.hashing import primary_hash
        from .header import MAX_KEY_LENGTH, DataStructureHeader, StructureType

        try:
            header = DataStructureHeader.load(self.space, header_vaddr)
            if header.type_code != int(StructureType.HASH_TABLE) or not header.size:
                return None
            if not 0 < header.key_length <= MAX_KEY_LENGTH:
                return None
            key = self.space.read(key_addr, header.key_length)
            bucket = primary_hash(key) % header.size
            bucket_bytes = header.subtype * 16
            return header.root_ptr + bucket * bucket_bytes
        except Exception:  # malformed headers fall back to key spreading
            return None

    def submit_latency(self, core_id: int, home: int) -> int:
        # Table I's accelerator-core latencies are round trips; each
        # direction pays half.
        return self._submit_latency // 2

    def return_latency(self, core_id: int, home: int) -> int:
        return self._submit_latency - self._submit_latency // 2

    # ------------------------------------------------------------------ #
    # Address translation
    # ------------------------------------------------------------------ #

    def translate(
        self, vaddr: int, access: str, now: int, home: int, core_id: int
    ) -> Tuple[int, int]:
        """Translate; returns (paddr, cycles).  Faults propagate."""
        raise NotImplementedError

    @staticmethod
    def _tlb_translate(
        tlb: Tlb, space: AddressSpace, vaddr: int, access: str
    ) -> Tuple[int, int]:
        """One-level TLB in front of a page walk (huge-page aware)."""
        key, base_paddr, span = space.translation_entry(vaddr, access)
        offset = vaddr % span
        cached_base = tlb.lookup(key)
        if cached_base is not None:
            return cached_base + offset, tlb.config.latency_cycles
        tlb.insert(key, base_paddr)
        return base_paddr + offset, tlb.config.latency_cycles + PAGE_WALK_CYCLES

    MICRO_TLB_ENTRIES = 16
    MICRO_TLB_HIT_CYCLES = 1

    def _timed_translate(
        self, vaddr: int, access: str, now: int, home: int, core_id: int
    ) -> Tuple[int, int]:
        """Translate through the per-home micro-TLB, then the scheme path."""
        key, base_paddr, span = self.space.translation_entry(vaddr, access)
        offset = vaddr % span
        micro = self._micro_tlbs.get(home)
        if micro is None:
            micro = self._micro_tlbs[home] = {}
        cached_base = micro.pop(key, None)
        if cached_base is not None:
            micro[key] = cached_base  # reinsert = LRU refresh
            self._micro_hits.add()
            return cached_base + offset, self.MICRO_TLB_HIT_CYCLES
        paddr, cycles = self.translate(vaddr, access, now, home, core_id)
        if len(micro) >= self.MICRO_TLB_ENTRIES:
            del micro[next(iter(micro))]
        micro[key] = base_paddr
        return paddr, cycles

    # ------------------------------------------------------------------ #
    # Data access
    # ------------------------------------------------------------------ #

    def _translate_lines(
        self, vaddr: int, length: int, access: str, now: int, home: int, core_id: int
    ):
        """Translate every line of a region, one TLB lookup per *page*.

        Within one micro-op, lines sharing a page reuse the translation the
        address-generation stage already holds — charging a fresh TLB access
        per line would overstate translation cost for multi-line operands.
        """
        cached = {}
        for line_vaddr in _lines_of(vaddr, length):
            key, entry_base, span = self.space.translation_entry(
                line_vaddr, access
            )
            if key in cached:
                yield line_vaddr, entry_base + line_vaddr % span, 0
                continue
            paddr, t_cycles = self._timed_translate(
                line_vaddr, access, now, home, core_id
            )
            cached[key] = True
            yield line_vaddr, paddr, t_cycles

    def mem_read(
        self, vaddr: int, length: int, now: int, home: int, core_id: int
    ) -> int:
        """Timed cacheline-granular read; returns total latency."""
        self._mem_uops.value += 1
        # Single-line operands (the common case: slot words, bucket probes,
        # short keys) skip the multi-line generator machinery entirely —
        # one translate, one line access, identical sequencing.
        line_vaddr = vaddr - vaddr % CACHELINE_BYTES
        if length <= 0 or vaddr + length <= line_vaddr + CACHELINE_BYTES:
            paddr, t_cycles = self._timed_translate(
                line_vaddr, "r", now, home, core_id
            )
            latency = t_cycles + self._line_access(paddr, now, home, core_id)
        else:
            latency = 0
            for _, paddr, t_cycles in self._translate_lines(
                vaddr, length, "r", now, home, core_id
            ):
                latency = max(
                    latency, t_cycles + self._line_access(paddr, now, home, core_id)
                )
        self._mem_latency.record(latency)
        return latency

    def mem_write(
        self, vaddr: int, length: int, now: int, home: int, core_id: int
    ) -> int:
        self._mem_uops.value += 1
        line_vaddr = vaddr - vaddr % CACHELINE_BYTES
        if length <= 0 or vaddr + length <= line_vaddr + CACHELINE_BYTES:
            paddr, t_cycles = self._timed_translate(
                line_vaddr, "w", now, home, core_id
            )
            return t_cycles + self._line_access(
                paddr, now, home, core_id, write=True
            )
        latency = 0
        for _, paddr, t_cycles in self._translate_lines(
            vaddr, length, "w", now, home, core_id
        ):
            latency = max(
                latency,
                t_cycles + self._line_access(paddr, now, home, core_id, write=True),
            )
        return latency

    def _line_access(
        self, paddr: int, now: int, home: int, core_id: int, *, write: bool = False
    ) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Comparison micro-op
    # ------------------------------------------------------------------ #

    def compare(
        self,
        stored_vaddr: int,
        key_vaddr: int,
        length: int,
        now: int,
        home: int,
        core_id: int,
    ) -> int:
        """Latency of comparing ``length`` bytes of memory against the key."""
        self._cmp_uops.value += 1
        latency = self._compare_impl(
            stored_vaddr, key_vaddr, length, now, home, core_id
        )
        self._cmp_latency.record(latency)
        return latency

    def _compare_impl(
        self,
        stored_vaddr: int,
        key_vaddr: int,
        length: int,
        now: int,
        home: int,
        core_id: int,
    ) -> int:
        raise NotImplementedError

    def _distributed_compare(
        self,
        stored_vaddr: int,
        key_vaddr: int,
        length: int,
        now: int,
        home: int,
        core_id: int,
    ) -> int:
        """Remote compare at the stored data's home CHA (Sec. V-A).

        The remote micro-op carries the first cacheline's worth of the query
        key (larger keys' tail lines are read from the LLC at the slice);
        the stored key's lines are read in place, the comparator produces
        the three-way result, and a small response travels back.
        """
        first_paddr, t_cycles = self._timed_translate(
            stored_vaddr, "r", now, home, core_id
        )
        comp_slice = self.hierarchy.slice_of(self.hierarchy.line_of(first_paddr))
        request = self.noc.send(home, comp_slice, 16 + min(length, CACHELINE_BYTES), now)
        arrive = now + t_cycles + request

        data_ready = arrive
        for _, paddr, tc in self._translate_lines(
            stored_vaddr, length, "r", now, home, core_id
        ):
            access = self.hierarchy.access_from_slice(comp_slice, paddr, now=arrive)
            data_ready = max(data_ready, arrive + tc + access.latency)
        if length > CACHELINE_BYTES:
            tail_vaddr = key_vaddr + CACHELINE_BYTES
            for _, paddr, tc in self._translate_lines(
                tail_vaddr, length - CACHELINE_BYTES, "r", now, home, core_id
            ):
                access = self.hierarchy.access_from_slice(comp_slice, paddr, now=arrive)
                data_ready = max(data_ready, arrive + tc + access.latency)
        done = self.slice_comparators[comp_slice].compare(data_ready, length)
        response = self.noc.send(comp_slice, home, 16, done)
        return done + response - now

    def _local_compare(
        self,
        stored_vaddr: int,
        key_vaddr: int,
        length: int,
        now: int,
        home: int,
        core_id: int,
        pool: ComparatorPool,
    ) -> int:
        """Fetch operands to the accelerator and compare locally."""
        data_ready = now
        for region_vaddr in (stored_vaddr, key_vaddr):
            line_vaddr = region_vaddr - region_vaddr % CACHELINE_BYTES
            if length <= 0 or region_vaddr + length <= line_vaddr + CACHELINE_BYTES:
                # Single-line operand: same sequencing as the generator,
                # minus its per-region setup (most keys fit one line).
                paddr, tc = self._timed_translate(
                    line_vaddr, "r", now, home, core_id
                )
                ready = now + tc + self._line_access(paddr, now, home, core_id)
                if ready > data_ready:
                    data_ready = ready
                continue
            for _, paddr, tc in self._translate_lines(
                region_vaddr, length, "r", now, home, core_id
            ):
                access_latency = self._line_access(paddr, now, home, core_id)
                data_ready = max(data_ready, now + tc + access_latency)
        return pool.compare(data_ready, length) - now

    # ------------------------------------------------------------------ #

    def flush_translations(self) -> None:
        """Context-switch TLB shootdown for accelerator-owned TLBs."""
        self._micro_tlbs.clear()

    def warm_translations(self, vpn_pfn_pairs) -> None:
        """Pre-fill *dedicated* accelerator TLBs (steady-state start).

        Only schemes with their own TLBs override this: a dedicated TLB
        serves exclusively query traffic, so in the paper's steady-state
        measurements it is warm.  Schemes that borrow the core's MMU (or
        its L2-TLB) do not get warmed here — those structures are shared
        with, and contended by, the application itself.
        """


class CoreIntegratedScheme(Integration):
    """The paper's proposal (Sec. V-A)."""

    scheme = IntegrationScheme.CORE_INTEGRATED

    #: Keys up to this size compare in the local DPU: "a small key
    #: comparison can be done in one of the DPU" (Sec. V-A); the remote
    #: near-LLC comparators are for the data-intensive large-key compares.
    LOCAL_COMPARE_BYTES = 32

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.local_comparators = [
            ComparatorPool(
                self.config.qei.comparators_per_cha,
                f"core{i}.qei.comparators",
            )
            for i in range(self.config.num_cores)
        ]

    def _home_node(self, core_id: int, header_vaddr: int, key_addr: int = 0) -> int:
        return self.core_node(core_id)

    def accelerator_homes(self) -> List[int]:
        return list(range(self.config.num_cores))

    def translate(self, vaddr, access, now, home, core_id):
        self._translations.add()
        # QEI shares the core's L2-TLB (second-level), not the L1 dTLB.
        l2_tlb = self.core_mmus[core_id].tlbs[1]
        return self._tlb_translate(l2_tlb, self.space, vaddr, access)

    def _line_access(self, paddr, now, home, core_id, *, write=False):
        # Shares the L2's memory-access hardware; never fills the L1.
        return self.hierarchy.access_from_core(
            core_id, paddr, write=write, now=now, fill_l1=False
        ).latency

    def _compare_impl(self, stored_vaddr, key_vaddr, length, now, home, core_id):
        if length <= self.LOCAL_COMPARE_BYTES:
            return self._local_compare(
                stored_vaddr, key_vaddr, length, now, home, core_id,
                self.local_comparators[core_id],
            )
        return self._distributed_compare(
            stored_vaddr, key_vaddr, length, now, home, core_id
        )


class ChaTlbScheme(Integration):
    """HALO-like: per-CHA accelerators with dedicated TLBs."""

    scheme = IntegrationScheme.CHA_TLB

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.cha_tlbs = [
            Tlb(self.config.qei.cha_tlb, name=f"cha{i}.tlb")
            for i in range(self.config.llc.slices)
        ]

    def _home_node(self, core_id: int, header_vaddr: int, key_addr: int = 0) -> int:
        return self._distribute(key_addr or header_vaddr, header_vaddr)

    def accelerator_homes(self) -> List[int]:
        return list(range(self.config.llc.slices))

    def translate(self, vaddr, access, now, home, core_id):
        self._translations.add()
        return self._tlb_translate(self.cha_tlbs[home], self.space, vaddr, access)

    def _line_access(self, paddr, now, home, core_id, *, write=False):
        return self.hierarchy.access_from_slice(
            home, paddr, write=write, now=now
        ).latency

    def _compare_impl(self, stored_vaddr, key_vaddr, length, now, home, core_id):
        # The CFA already executes inside a CHA: its own comparators compare
        # lines read at the slice, with no remote-micro-op round trip.
        return self._local_compare(
            stored_vaddr, key_vaddr, length, now, home, core_id,
            self.slice_comparators[home],
        )

    def flush_translations(self) -> None:
        for tlb in self.cha_tlbs:
            tlb.invalidate()

    def warm_translations(self, vpn_pfn_pairs) -> None:
        pairs = list(vpn_pfn_pairs)
        for tlb in self.cha_tlbs:
            for vpn, pfn in pairs:
                tlb.insert(vpn, pfn)


class ChaNoTlbScheme(Integration):
    """Per-CHA accelerators that borrow the owning core's MMU."""

    scheme = IntegrationScheme.CHA_NOTLB

    def _home_node(self, core_id: int, header_vaddr: int, key_addr: int = 0) -> int:
        return self._distribute(key_addr or header_vaddr, header_vaddr)

    def accelerator_homes(self) -> List[int]:
        return list(range(self.config.llc.slices))

    def translate(self, vaddr, access, now, home, core_id):
        self._translations.add()
        # Round trip over the mesh to the core's MMU for every translation.
        round_trip = 2 * self.noc.latency(home, self.core_node(core_id))
        translation = self.core_mmus[core_id].translate(vaddr, access)
        return translation.paddr, round_trip + translation.cycles

    def _line_access(self, paddr, now, home, core_id, *, write=False):
        return self.hierarchy.access_from_slice(
            home, paddr, write=write, now=now
        ).latency

    def _compare_impl(self, stored_vaddr, key_vaddr, length, now, home, core_id):
        # Same near-data local compare as CHA-TLB; only translation differs.
        return self._local_compare(
            stored_vaddr, key_vaddr, length, now, home, core_id,
            self.slice_comparators[home],
        )


class _DeviceScheme(Integration):
    """Shared machinery for the two centralized device schemes."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.device_node = self.config.num_cores - 1
        self.device_tlb = Tlb(self.config.qei.cha_tlb, name="device.tlb")
        self.device_comparators = ComparatorPool(
            self.config.qei.comparators_per_device_dpu, "device.comparators"
        )

    def _home_node(self, core_id: int, header_vaddr: int, key_addr: int = 0) -> int:
        return self.device_node

    def accelerator_homes(self) -> List[int]:
        return [self.device_node]

    def submit_latency(self, core_id: int, home: int) -> int:
        # Half the interface round trip plus the mesh crossing to the stop.
        return self._submit_latency // 2 + self.noc.latency(
            self.core_node(core_id), self.device_node
        )

    def return_latency(self, core_id: int, home: int) -> int:
        return self.submit_latency(core_id, home)

    def translate(self, vaddr, access, now, home, core_id):
        self._translations.add()
        return self._tlb_translate(self.device_tlb, self.space, vaddr, access)

    def _line_access(self, paddr, now, home, core_id, *, write=False):
        access = self.hierarchy.access_from_slice(
            self.device_node, paddr, write=write, now=now
        )
        # Charge the mesh for moving the line to the centralized device: this
        # is what produces the hotspot around its NoC stop (Sec. V).
        line = self.hierarchy.line_of(paddr)
        slice_home = self.hierarchy.slice_of(line)
        self.noc.send(slice_home, self.device_node, CACHELINE_BYTES, now)
        return access.latency + self._data_extra

    def _compare_impl(self, stored_vaddr, key_vaddr, length, now, home, core_id):
        return self._local_compare(
            stored_vaddr, key_vaddr, length, now, home, core_id,
            self.device_comparators,
        )

    def flush_translations(self) -> None:
        self.device_tlb.invalidate()

    def warm_translations(self, vpn_pfn_pairs) -> None:
        for vpn, pfn in vpn_pfn_pairs:
            self.device_tlb.insert(vpn, pfn)


class DeviceDirectScheme(_DeviceScheme):
    """Accelerator attached directly to the NoC as a special core (DASX)."""

    scheme = IntegrationScheme.DEVICE_DIRECT


class DeviceIndirectScheme(_DeviceScheme):
    """Accelerator behind a standard device interface (OpenCAPI/CXL-like)."""

    scheme = IntegrationScheme.DEVICE_INDIRECT


_SCHEME_CLASSES = {
    IntegrationScheme.CORE_INTEGRATED: CoreIntegratedScheme,
    IntegrationScheme.CHA_TLB: ChaTlbScheme,
    IntegrationScheme.CHA_NOTLB: ChaNoTlbScheme,
    IntegrationScheme.DEVICE_DIRECT: DeviceDirectScheme,
    IntegrationScheme.DEVICE_INDIRECT: DeviceIndirectScheme,
}


def build_integration(
    scheme: "IntegrationScheme | str",
    config: SystemConfig,
    hierarchy: MemoryHierarchy,
    noc: MeshNoc,
    space: AddressSpace,
    core_mmus: List[Mmu],
    *,
    stats: Optional[StatsRegistry] = None,
) -> Integration:
    """Instantiate the timing path for one integration scheme."""
    scheme = IntegrationScheme.parse(scheme)
    try:
        cls = _SCHEME_CLASSES[scheme]
    except KeyError as exc:
        raise ConfigurationError(f"unsupported scheme {scheme}") from exc
    return cls(config, hierarchy, noc, space, core_mmus, stats=stats)
