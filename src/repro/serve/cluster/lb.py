"""The load-balancer tier: ring routing, replica failover, bounded retry.

The LB is the cluster's only client-facing surface.  Every request is
routed to its key's replica group off the consistent-hash ring (filtered by
the membership view, so DOWN nodes are routed around), dispatched to one
replica with a per-attempt response timeout, and failed over — bounded
attempts, exponential backoff — until it completes or the attempt budget is
burnt.  A request therefore *always* reaches a terminal outcome: completed,
or failed after ``max_attempts``; nothing can hang on a dead node or a
dropped link message.

Backpressure propagates end to end: a node-level admission rejection
travels up with its retry-after hint, the LB embargoes that node for the
hinted window, and when every replica of a key is embargoed the arrival is
rejected *to the client* with the soonest-expiry hint — closed-loop clients
back off against the cluster exactly as they back off against a single
frontend.

At-least-once semantics: a timed-out attempt may still execute on its node
while the retry runs elsewhere.  The first ``ok`` response wins (late ones
are counted ``stale``); every winning value is checked against the
software oracle, so duplicated execution can never surface a wrong result.

Writes (docs/mutations.md) are routed to the key's *primary* replica only:
replica data diverges the moment a mutation lands, so fanning a write (or a
subsequent read of that key) over the group would either double-apply it or
serve a stale copy.  A written key is therefore pinned — every later
request for it goes to the same primary (read-your-writes), and the LB's
result check widens from the static build-time answer to the set of values
writes have plausibly made visible; the node-side shadow oracle remains the
tight per-read judge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ...config import ClusterConfig, ServeConfig
from ...core.cfa import OP_DELETE
from ...sim.stats import PercentileSketch, StatsRegistry
from ..frontend import ServeRequest
from .membership import Membership, NodeState
from .ring import HashRing
from .node import (
    RESP_FAILED,
    RESP_NOT_OWNER,
    RESP_OK,
    RESP_REJECTED,
    RESP_SHED,
)


@dataclass
class _Pending:
    """LB-side state of one in-flight cluster request."""

    sreq: ServeRequest
    generator: object
    key_position: int
    attempts: int = 0
    #: Bumped per dispatch; responses carry it so late ones are detected.
    attempt_seq: int = 0
    target: Optional[int] = None
    tried: Set[int] = field(default_factory=set)
    timeout_event: Optional[object] = None
    resolved: bool = False
    #: True for writes and for reads of keys a write has pinned: the request
    #: may only be served by the key's primary replica.
    primary_only: bool = False


class FleetSlo:
    """Cluster-level end-to-end accounting: sketches, counters, phases."""

    def __init__(
        self, tenants: int, *, stats: Optional[StatsRegistry] = None
    ) -> None:
        self.stats = (stats or StatsRegistry()).scoped("cluster.slo")
        self.tenants = tenants
        self._sketches = [
            self.stats.sketch(f"tenant{t}.e2e") for t in range(tenants)
        ]
        names = (
            "issued", "completed", "failed", "giveups", "rejected",
            "retries", "timeouts", "not_owner", "node_rejections",
            "stale", "result_errors",
        )
        self.counters = {name: self.stats.counter(name) for name in names}
        self._phases: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #

    def begin_phase(self, name: str, now: int) -> None:
        self._phases.append(
            {
                "name": name,
                "start_cycle": now,
                "sketch": PercentileSketch(f"cluster.phase.{name}.e2e"),
                "issued": 0,
                "completed": 0,
                "failed": 0,
                "giveups": 0,
            }
        )

    def _phase(self) -> Optional[Dict[str, object]]:
        return self._phases[-1] if self._phases else None

    def record_issue(self) -> None:
        self.counters["issued"].add()
        phase = self._phase()
        if phase is not None:
            phase["issued"] += 1

    def record_completion(self, tenant: int, latency: int) -> None:
        self._sketches[tenant].record(latency)
        self.counters["completed"].add()
        phase = self._phase()
        if phase is not None:
            phase["completed"] += 1
            phase["sketch"].record(latency)

    def record_failure(self) -> None:
        self.counters["failed"].add()
        phase = self._phase()
        if phase is not None:
            phase["failed"] += 1

    def record_giveup(self) -> None:
        self.counters["giveups"].add()
        phase = self._phase()
        if phase is not None:
            phase["giveups"] += 1

    def sketch_of(self, tenant: int) -> PercentileSketch:
        return self._sketches[tenant]

    @property
    def terminal(self) -> int:
        """Requests with a terminal outcome (chaos schedules key off this)."""
        return (
            self.counters["completed"].value
            + self.counters["failed"].value
            + self.counters["giveups"].value
        )

    def phase_rows(self) -> List[Dict[str, object]]:
        rows = []
        for phase in self._phases:
            terminal = phase["completed"] + phase["failed"] + phase["giveups"]
            sketch = phase["sketch"]
            rows.append(
                {
                    "name": phase["name"],
                    "start_cycle": phase["start_cycle"],
                    "issued": phase["issued"],
                    "completed": phase["completed"],
                    "failed": phase["failed"],
                    "giveups": phase["giveups"],
                    "availability": (
                        phase["completed"] / terminal if terminal else 1.0
                    ),
                    "p50": sketch.p50,
                    "p99": sketch.p99,
                    "mean": sketch.mean,
                }
            )
        return rows


class LoadBalancer:
    """Routes client requests over the node fleet; owns retry/failover."""

    def __init__(
        self,
        engine,
        config: ClusterConfig,
        serve_config: ServeConfig,
        ring: HashRing,
        membership: Membership,
        *,
        send: Callable[[int, object, int, int, int], None],
        key_positions: List[int],
        expected: List[Optional[int]],
        slo: FleetSlo,
    ) -> None:
        self.engine = engine
        self.config = config
        self.serve_config = serve_config
        self.ring = ring
        self.membership = membership
        #: ``send(node, token, tenant, index, key_position, op, value)``
        #: puts one request on the LB -> node link (the fabric applies
        #: latency/drops).
        self._send = send
        self._key_positions = key_positions
        self._expected = expected
        self.slo = slo
        #: Per-node admission embargo: absolute cycle before which the LB
        #: avoids the node (fed by node retry-after hints and timeouts).
        self._embargo = [0] * config.nodes
        self.outstanding = 0
        #: Ring positions a write has touched: requests for them are pinned
        #: to the primary replica (read-your-writes over divergent copies).
        self._pinned: Set[int] = set()
        #: Per pinned position, every value a dispatched write could have
        #: made readable (at-least-once: even a timed-out attempt may have
        #: applied), plus the build-time answer.  The LB-level result check
        #: for pinned keys tests membership here; the node-side shadow
        #: oracle does the cycle-accurate validation.
        self._valid: Dict[int, Set[Optional[int]]] = {}
        self.writes_ok = 0

    # ------------------------------------------------------------------ #
    # Client-facing admission (LoadGenerator server protocol)
    # ------------------------------------------------------------------ #

    def accept(self, generator, sreq: ServeRequest) -> bool:
        now = self.engine.now
        key_position = self._key_positions[sreq.index]
        owners = self.ring.owners(
            key_position,
            self.config.replication,
            routable=self.membership.routable(),
        )
        primary_only = sreq.is_write or key_position in self._pinned
        gate = owners[:1] if primary_only else owners
        if gate and all(self._embargo[node] > now for node in gate):
            # Cluster-wide backpressure for this shard: every replica asked
            # for breathing room.  Surface the soonest expiry to the client.
            retry_after = max(
                1, min(self._embargo[node] for node in gate) - now
            )
            self.slo.counters["rejected"].add()
            if sreq.attempts >= self.serve_config.max_admission_attempts:
                # This rejection exhausts the client's retry budget: the
                # request is terminally lost and counts against availability.
                self.slo.record_giveup()
            generator.on_rejected(sreq, retry_after)
            return False
        if sreq.is_write:
            # Pin the key to its primary and widen the valid-read set by
            # this write's candidate the moment it is dispatched — a lost
            # response does not mean a lost execution.
            self._pinned.add(key_position)
            valid = self._valid.setdefault(
                key_position, {self._expected[sreq.index]}
            )
            valid.add(None if sreq.op == OP_DELETE else sreq.value)
        pending = _Pending(
            sreq=sreq,
            generator=generator,
            key_position=key_position,
            primary_only=primary_only,
        )
        self.slo.record_issue()
        self.outstanding += 1
        self._attempt(pending)
        return True

    # ------------------------------------------------------------------ #
    # Dispatch / failover
    # ------------------------------------------------------------------ #

    def _candidates(self, pending: _Pending, now: int) -> List[int]:
        """Replica preference order: UP before SUSPECT, untried, no embargo."""
        owners = self.ring.owners(
            pending.key_position,
            self.config.replication,
            routable=self.membership.routable(),
        )
        if not owners:
            return []
        if pending.primary_only:
            # Mutations (and reads of mutated keys) never fail over to a
            # stale replica: the primary is the only copy the write landed
            # on, so retries re-target whoever the ring now calls primary.
            return owners[:1]
        untried = [node for node in owners if node not in pending.tried]
        if not untried:
            pending.tried.clear()  # new failover round over the full group
            untried = owners
        unembargoed = [
            node for node in untried if self._embargo[node] <= now
        ]
        pool = unembargoed or untried
        up = [
            node
            for node in pool
            if self.membership.state_of(node) is NodeState.UP
        ]
        return up or pool

    def _backoff(self, attempts: int) -> int:
        return self.config.retry_backoff_cycles * (
            1 << min(attempts, 6)
        )

    def _attempt(self, pending: _Pending) -> None:
        if pending.resolved:
            return
        if pending.attempts >= self.config.max_attempts:
            self._fail(pending)
            return
        now = self.engine.now
        pending.attempts += 1
        candidates = self._candidates(pending, now)
        if not candidates:
            # Nothing routable right now (partition in progress); burn one
            # attempt waiting for the prober to converge, then look again.
            self.engine.schedule(
                self._backoff(pending.attempts),
                lambda p=pending: self._attempt(p),
            )
            return
        target = candidates[0]
        pending.target = target
        pending.tried.add(target)
        pending.attempt_seq += 1
        seq = pending.attempt_seq
        if pending.attempts > 1:
            self.slo.counters["retries"].add()
        pending.timeout_event = self.engine.schedule(
            self.config.request_timeout_cycles,
            lambda p=pending, s=seq: self._on_timeout(p, s),
        )
        self._send(
            target,
            (pending, seq),
            pending.sreq.tenant,
            pending.sreq.index,
            pending.key_position,
            pending.sreq.op,
            pending.sreq.value,
        )

    def _on_timeout(self, pending: _Pending, seq: int) -> None:
        if pending.resolved or seq != pending.attempt_seq:
            return
        self.slo.counters["timeouts"].add()
        if pending.target is not None:
            # A silent node is either dead or partitioned: step around it
            # until the prober resolves which.
            self._embargo[pending.target] = (
                self.engine.now + self.config.timeout_embargo_cycles
            )
        self._attempt(pending)

    # ------------------------------------------------------------------ #
    # Responses (called by the cluster fabric at link-delivery time)
    # ------------------------------------------------------------------ #

    def on_response(
        self,
        node: int,
        token: Tuple[_Pending, int],
        kind: str,
        value: Optional[int],
        retry_after: int,
    ) -> None:
        pending, seq = token
        if pending.resolved:
            self.slo.counters["stale"].add()
            return
        if kind == RESP_OK:
            # First successful execution wins, even one from a superseded
            # attempt (at-least-once; the oracle check below keeps it honest).
            if pending.timeout_event is not None:
                pending.timeout_event.cancel()
            if pending.sreq.is_write:
                # A write's result_value is its MUT_* disposition, not a
                # lookup answer; the node-side shadow oracle audited it.
                self.writes_ok += 1
            else:
                valid = self._valid.get(pending.key_position)
                if valid is not None:
                    if value not in valid:
                        self.slo.counters["result_errors"].add()
                elif value != self._expected[pending.sreq.index]:
                    self.slo.counters["result_errors"].add()
            self._complete(pending)
            return
        if seq != pending.attempt_seq:
            self.slo.counters["stale"].add()
            return
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
        if kind == RESP_REJECTED:
            # Node admission backpressure: honour the node's retry-after
            # hint on this node, fail over after the standard backoff.
            self.slo.counters["node_rejections"].add()
            self._embargo[node] = max(
                self._embargo[node], self.engine.now + max(1, retry_after)
            )
            self.engine.schedule(
                self._backoff(pending.attempts),
                lambda p=pending: self._attempt(p),
            )
            return
        if kind == RESP_NOT_OWNER:
            # Routed under a membership view a rebalance has since replaced;
            # re-resolve owners and try again almost immediately.
            self.slo.counters["not_owner"].add()
            self.engine.schedule(
                max(1, retry_after), lambda p=pending: self._attempt(p)
            )
            return
        if kind in (RESP_FAILED, RESP_SHED):
            # The node executed but could not produce a result (fallback
            # exhausted / deadline shed); a replica may still succeed.
            self.engine.schedule(
                self._backoff(pending.attempts),
                lambda p=pending: self._attempt(p),
            )
            return
        raise ValueError(f"unknown node response kind {kind!r}")

    # ------------------------------------------------------------------ #

    def _complete(self, pending: _Pending) -> None:
        pending.resolved = True
        self.outstanding -= 1
        sreq = pending.sreq
        self.slo.record_completion(
            sreq.tenant, self.engine.now - sreq.arrival_cycle
        )
        pending.generator.on_resolved(sreq)

    def _fail(self, pending: _Pending) -> None:
        pending.resolved = True
        self.outstanding -= 1
        self.slo.record_failure()
        pending.generator.on_resolved(pending.sreq)
