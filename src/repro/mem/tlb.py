"""Set-associative TLB model with LRU replacement.

Purely a timing/occupancy structure: it caches VPN -> PFN pairs that the MMU
has already resolved functionally.  Hit/miss statistics feed the integration
scheme comparison (CHA-TLB's dedicated 1024-entry TLB versus the
Core-integrated scheme's shared L2-TLB).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import TlbConfig
from ..sim.stats import StatsRegistry


class Tlb:
    """A set-associative translation lookaside buffer."""

    def __init__(
        self, config: TlbConfig, *, stats: Optional[StatsRegistry] = None, name: str = "tlb"
    ) -> None:
        self.config = config
        self.name = name
        self.num_sets = config.entries // config.associativity
        self.associativity = config.associativity
        # Insertion-ordered {vpn: pfn} per set; LRU is pop-and-reinsert.
        self._sets: List[Dict[int, int]] = [{} for _ in range(self.num_sets)]
        # Per-set generation counters, bumped on presence changes only
        # (new-entry insert, eviction, invalidate) — the same epoch contract
        # as Cache.set_epochs, so fast paths can prove a memoized
        # translation outcome is still exact (see mem/fastpath.py).
        self.set_epochs: List[int] = [0] * self.num_sets
        self.stats = (stats or StatsRegistry()).scoped(name)
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._evictions = self.stats.counter("evictions")

    def _set_index(self, vpn: int) -> int:
        return vpn % self.num_sets

    def lookup(self, vpn: int) -> Optional[int]:
        """Return the cached PFN for ``vpn``, updating LRU, or None."""
        entry_set = self._sets[vpn % self.num_sets]
        if vpn in entry_set:
            pfn = entry_set.pop(vpn)
            entry_set[vpn] = pfn
            self._hits.value += 1
            return pfn
        self._misses.value += 1
        return None

    def insert(self, vpn: int, pfn: int) -> None:
        """Fill the TLB after a page walk, evicting LRU if needed."""
        index = vpn % self.num_sets
        entry_set = self._sets[index]
        if vpn in entry_set:
            del entry_set[vpn]
            entry_set[vpn] = pfn
            return
        if len(entry_set) >= self.associativity:
            del entry_set[next(iter(entry_set))]
            self._evictions.value += 1
        entry_set[vpn] = pfn
        self.set_epochs[index] += 1  # presence changed: new VPN (± victim)

    def invalidate(self, vpn: Optional[int] = None) -> None:
        """Shoot down one VPN, or flush the whole TLB when ``vpn`` is None."""
        if vpn is None:
            epochs = self.set_epochs
            for index, entry_set in enumerate(self._sets):
                if entry_set:
                    entry_set.clear()
                    epochs[index] += 1
            return
        index = vpn % self.num_sets
        if self._sets[index].pop(vpn, None) is not None:
            self.set_epochs[index] += 1

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
