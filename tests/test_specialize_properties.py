"""Property tests: compiled step closures agree with the interpreter.

For every registered program, the compiled step function (specialized tier
for the built-in lookups, prebound tier for mutation CFAs) must reproduce
the generic ``program.step`` *exactly*: the same normalized micro-op trace
(read addresses and usable lengths, compare operands and outcomes, hash
inputs, ALU/delay cycles, write segments, CAS operands), the same terminal
(Done value / Fault code + detail), and the same raised exceptions, on
randomized structures and probe keys.

The two walkers run outside the accelerator: micro-ops are applied
*functionally* (reads/writes/compares really happen against the simulated
address space; timing is ignored — golden-stats pins timing end to end).
Lookups share one memory image since they never write; mutation CFAs run
against twin identically-built systems because both walkers publish their
stores.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import small_config
from repro.core.cfa import (
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    AluOp,
    Compare,
    Delay,
    Done,
    Fault,
    HashOp,
    HeaderCas,
    MemRead,
    MemWrite,
    QueryContext,
)
from repro.core.header import VERSION_OFFSET
from repro.core.programs import (
    BinaryTreeCfa,
    HashOfListsCfa,
    HashTableCfa,
    LinkedListCfa,
    SkipListCfa,
    TrieCfa,
)
from repro.core.programs_ext import BPlusTreeCfa
from repro.core.specialize import (
    K_ACTION,
    K_ALU,
    K_COMPARE,
    K_DONE,
    K_FAULT,
    K_HASH,
    K_MEMREAD,
    K_MEMREAD_OPT,
    K_WAIT,
    compile_firmware,
    specialize_program,
)
from repro.datastructs import (
    AhoCorasickTrie,
    BinarySearchTree,
    BPlusTree,
    CuckooHashTable,
    HashOfLists,
    LinkedList,
    LpmTrie,
    ProcessMemory,
    SkipList,
    Trie,
)
from repro.datastructs.hashing import fnv1a64
from repro.system import System

KEY_LENGTH = 16
MAX_STEPS = 100_000

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _key(i: int) -> bytes:
    return (b"%013d" % (i % 10**13)).ljust(KEY_LENGTH, b"_")


# --------------------------------------------------------------------- #
# Normalized-trace walkers
# --------------------------------------------------------------------- #


def _usable_length(space, vaddr, length, optional_after):
    # Mirror of QeiAccelerator._usable_length: truncate a speculative
    # cacheline fetch at the first unmapped page past the required bytes.
    if optional_after is None:
        return length
    page = space.page_bytes
    usable = optional_after
    while usable < length:
        if not space.is_mapped(vaddr + usable):
            break
        step = page - (vaddr + usable) % page
        usable = min(length, usable + step)
    return usable


def _apply_generic(action, ctx, space, trace):
    """Apply one dataclass micro-op functionally, recording its trace."""
    if isinstance(action, MemRead):
        for vaddr, length, tag in action.segments():
            length = _usable_length(space, vaddr, length, action.optional_after)
            data = space.read(vaddr, length)
            ctx.scratch[tag] = data
            trace.append(("mem", vaddr, length, bytes(data)))
    elif isinstance(action, Compare):
        stored = space.read(action.mem_vaddr, action.length)
        key = space.read(action.key_vaddr, action.length)
        result = (stored > key) - (stored < key)
        ctx.results[action.tag] = result
        trace.append(
            ("cmp", action.mem_vaddr, action.key_vaddr, action.length, result)
        )
    elif isinstance(action, HashOp):
        data = ctx.scratch[action.key_tag]
        digest = fnv1a64(data)
        ctx.results[action.tag] = digest
        trace.append(("hash", bytes(data), digest))
    elif isinstance(action, AluOp):
        trace.append(("alu", action.cycles))
    elif isinstance(action, MemWrite):
        for vaddr, data in action.segments():
            space.write(vaddr, data)
            trace.append(("write", vaddr, bytes(data)))
    elif isinstance(action, HeaderCas):
        current = space.read_u64(action.vaddr)
        won = 1 if current == action.expect else 0
        if won:
            space.write_u64(action.vaddr, action.new)
        ctx.results[action.tag] = won
        trace.append(("cas", action.vaddr, action.expect, action.new, won))
    elif isinstance(action, Delay):
        trace.append(("delay", action.cycles))
    else:  # pragma: no cover - new micro-op kinds must be added here
        raise AssertionError(f"unhandled micro-op {action!r}")


def run_generic(program, ctx, space):
    """Walk ``program.step`` to termination, returning the normalized trace."""
    trace = []
    for _ in range(MAX_STEPS):
        try:
            # The generic driver re-peeks the type byte on every step
            # (program_for dispatch); reproduce its fault point.
            space.read_u8(ctx.header_addr + 8)
            outcome = program.step(ctx)
            ctx.state = outcome.next_state
            action = outcome.action
            if action is None:
                trace.append(("wait",))
                continue
            if isinstance(action, Done):
                trace.append(("done", action.value))
                return trace
            if isinstance(action, Fault):
                trace.append(("fault", int(action.code), action.detail))
                return trace
            _apply_generic(action, ctx, space, trace)
        except Exception as exc:  # noqa: BLE001 - drivers turn these into faults
            trace.append(("exc", type(exc).__name__, str(exc)))
            return trace
    raise AssertionError("generic walker exceeded MAX_STEPS")


def run_compiled(compiled, ctx, space):
    """Walk a :class:`CompiledStep` to termination, same normalization."""
    if not compiled.prebound:
        ctx.scratch = [0] * compiled.nregs
        ctx.state = 0
    trace = []
    step = compiled.step
    for _ in range(MAX_STEPS):
        try:
            if ctx.header is None:
                # The fast driver's pre-PARSE type-byte peek.
                space.read_u8(ctx.header_addr + 8)
            act = step(ctx)
            kind = act[0]
            if kind == K_MEMREAD:
                _, vaddr, length, slot = act
                data = space.read(vaddr, length)
                ctx.scratch[slot] = data
                trace.append(("mem", vaddr, length, bytes(data)))
            elif kind == K_MEMREAD_OPT:
                _, vaddr, length, slot, after = act
                length = _usable_length(space, vaddr, length, after)
                data = space.read(vaddr, length)
                ctx.scratch[slot] = data
                trace.append(("mem", vaddr, length, bytes(data)))
            elif kind == K_COMPARE:
                _, mem_vaddr, length, slot = act
                stored = space.read(mem_vaddr, length)
                key = space.read(ctx.key_addr, length)
                result = (stored > key) - (stored < key)
                ctx.scratch[slot] = result
                trace.append(("cmp", mem_vaddr, ctx.key_addr, length, result))
            elif kind == K_HASH:
                data = ctx.scratch[act[1]]
                digest = fnv1a64(data)
                ctx.scratch[act[2]] = digest
                trace.append(("hash", bytes(data), digest))
            elif kind == K_ALU:
                trace.append(("alu", act[1]))
            elif kind == K_DONE:
                trace.append(("done", act[1]))
                return trace
            elif kind == K_FAULT:
                trace.append(("fault", int(act[1]), act[2]))
                return trace
            elif kind == K_WAIT:
                trace.append(("wait",))
            elif kind == K_ACTION:
                _apply_generic(act[1], ctx, space, trace)
            else:  # pragma: no cover
                raise AssertionError(f"unknown tuple kind {act!r}")
        except Exception as exc:  # noqa: BLE001
            trace.append(("exc", type(exc).__name__, str(exc)))
            return trace
    raise AssertionError("compiled walker exceeded MAX_STEPS")


def assert_agree(program, compiled, header_addr, key_addr, space, op=0, operand=0):
    ctx_g = QueryContext(
        header_addr=header_addr, key_addr=key_addr, op=op, operand=operand
    )
    trace_g = run_generic(program, ctx_g, space)
    ctx_c = QueryContext(
        header_addr=header_addr, key_addr=key_addr, op=op, operand=operand
    )
    trace_c = run_compiled(compiled, ctx_c, space)
    assert trace_c == trace_g, (
        f"{compiled.name}: traces diverge at index "
        f"{next(i for i, (a, b) in enumerate(zip(trace_c, trace_g)) if a != b) if trace_c != trace_g and any(a != b for a, b in zip(trace_c, trace_g)) else min(len(trace_c), len(trace_g))}"
    )
    return trace_g


# --------------------------------------------------------------------- #
# Lookup programs (specialized tier), read-only: one shared memory image
# --------------------------------------------------------------------- #


def _build_linked_list(mem, items):
    s = LinkedList(mem, key_length=KEY_LENGTH)
    for k, v in items:
        s.insert(k, v)
    return s, LinkedListCfa()


def _build_bst(mem, items):
    s = BinarySearchTree(mem, key_length=KEY_LENGTH)
    for k, v in items:
        s.insert(k, v)
    return s, BinaryTreeCfa()


def _build_skiplist(mem, items):
    s = SkipList(mem, key_length=KEY_LENGTH)
    for k, v in items:
        s.insert(k, v)
    return s, SkipListCfa()


def _build_cuckoo(mem, items):
    s = CuckooHashTable(
        mem, key_length=KEY_LENGTH, num_buckets=16, entries_per_bucket=4
    )
    for k, v in items:
        s.insert(k, v)
    return s, HashTableCfa()


def _build_hash_of_lists(mem, items):
    # Few buckets so chains actually form.
    s = HashOfLists(mem, key_length=KEY_LENGTH, num_buckets=4)
    for k, v in items:
        s.insert(k, v)
    return s, HashOfListsCfa()


def _build_btree(mem, items):
    s = BPlusTree(mem, key_length=KEY_LENGTH, fanout=4)
    s.bulk_load(sorted(items))
    return s, BPlusTreeCfa()


LOOKUP_BUILDERS = {
    "linked-list": _build_linked_list,
    "bst": _build_bst,
    "skiplist": _build_skiplist,
    "cuckoo": _build_cuckoo,
    "hash-of-lists": _build_hash_of_lists,
    "bplus-tree": _build_btree,
}


@pytest.mark.parametrize("kind", sorted(LOOKUP_BUILDERS))
@settings(max_examples=25, **COMMON_SETTINGS)
@given(data=st.data())
def test_lookup_specialization_agrees(kind, data):
    stored = data.draw(
        st.lists(st.integers(0, 2**32), min_size=1, max_size=24, unique=True),
        label="stored",
    )
    items = [(_key(i), 1000 + n) for n, i in enumerate(stored)]
    probe_int = data.draw(
        st.one_of(st.sampled_from(stored), st.integers(0, 2**32)), label="probe"
    )
    probe = _key(probe_int)

    mem = ProcessMemory()
    structure, program = LOOKUP_BUILDERS[kind](mem, items)
    compiled = specialize_program(program)
    assert not compiled.prebound, f"{kind} should hit the specialized tier"

    key_addr = structure.store_key(probe)
    trace = assert_agree(
        program, compiled, structure.header_addr, key_addr, mem.space
    )
    # Functional oracle: the agreed-on Done value matches the structure.
    assert trace[-1] == ("done", structure.lookup(probe))


@settings(max_examples=20, **COMMON_SETTINGS)
@given(data=st.data())
def test_lookup_specialization_agrees_mid_resize(data):
    # The hash-table CFA's resize-descriptor path (READ_DESC state,
    # watermark routing between old and new tables).
    stored = data.draw(
        st.lists(st.integers(0, 2**32), min_size=4, max_size=24, unique=True),
        label="stored",
    )
    items = [(_key(i), 1000 + n) for n, i in enumerate(stored)]
    probe = _key(data.draw(st.sampled_from(stored), label="probe"))
    migrated = data.draw(st.integers(0, 16), label="migrated")

    mem = ProcessMemory()
    table = CuckooHashTable(
        mem, key_length=KEY_LENGTH, num_buckets=16, entries_per_bucket=4
    )
    for k, v in items:
        table.insert(k, v)
    table.begin_resize()
    table.migrate_chunk(migrated)

    program = HashTableCfa()
    compiled = specialize_program(program)
    key_addr = table.store_key(probe)
    trace = assert_agree(program, compiled, table.header_addr, key_addr, mem.space)
    assert trace[-1] == ("done", table.lookup(probe))


TRIE_TEXT_LENGTH = 80  # > 64 so the AC scan streams the key by cachelines


@pytest.mark.parametrize("subtype", ["exact", "aho-corasick", "lpm"])
@settings(max_examples=25, **COMMON_SETTINGS)
@given(data=st.data())
def test_trie_specialization_agrees(subtype, data):
    mem = ProcessMemory()
    # A tiny alphabet so random probes share prefixes with stored keys.
    alphabet = st.integers(0, 3)
    if subtype == "exact":
        trie = Trie(mem, key_length=KEY_LENGTH)
        words = data.draw(
            st.lists(
                st.binary(min_size=1, max_size=KEY_LENGTH).map(
                    lambda b: bytes(x & 3 for x in b)
                ),
                min_size=1,
                max_size=12,
            ),
            label="words",
        )
        for n, w in enumerate(words):
            trie.insert(w, n)
        probe = bytes(
            data.draw(
                st.lists(alphabet, min_size=KEY_LENGTH, max_size=KEY_LENGTH),
                label="probe",
            )
        )
    elif subtype == "aho-corasick":
        trie = AhoCorasickTrie(mem, key_length=TRIE_TEXT_LENGTH)
        words = data.draw(
            st.lists(
                st.binary(min_size=1, max_size=6).map(
                    lambda b: bytes(x & 3 for x in b)
                ),
                min_size=1,
                max_size=8,
            ),
            label="keywords",
        )
        for n, w in enumerate(words):
            trie.insert(w, n)
        probe = bytes(
            data.draw(
                st.lists(
                    alphabet, min_size=TRIE_TEXT_LENGTH, max_size=TRIE_TEXT_LENGTH
                ),
                label="text",
            )
        )
    else:
        trie = LpmTrie(mem, key_length=4)
        prefixes = data.draw(
            st.lists(
                st.binary(min_size=1, max_size=4).map(
                    lambda b: bytes(x & 3 for x in b)
                ),
                min_size=1,
                max_size=8,
                unique=True,
            ),
            label="prefixes",
        )
        for n, p in enumerate(prefixes):
            trie.insert_prefix(p, n)
        probe = bytes(data.draw(st.lists(alphabet, min_size=4, max_size=4)))
    trie.seal()

    program = TrieCfa()
    compiled = specialize_program(program)
    key_addr = trie.store_key(probe)
    assert_agree(program, compiled, trie.header_addr, key_addr, mem.space)


# --------------------------------------------------------------------- #
# Mutation programs (prebound tier): twin systems, both walkers write
# --------------------------------------------------------------------- #


def _twin(build, items):
    """Build one (system, structure, mutator) twin deterministically."""
    system = System(small_config())
    system.enable_mutations()
    structure = build(system, items)
    from repro.core.mutations import make_mutator

    return system, structure, make_mutator(system, structure)


def _build_mut_hash(system, items):
    s = CuckooHashTable(system.mem, key_length=KEY_LENGTH, num_buckets=32)
    for k, v in items:
        s.insert(k, v)
    return s


def _build_mut_skiplist(system, items):
    s = SkipList(system.mem, key_length=KEY_LENGTH)
    for k, v in items:
        s.insert(k, v)
    return s


def _build_mut_btree(system, items):
    ticket = system.update_firmware([BPlusTreeCfa()])
    system.engine.run()
    assert ticket.done
    s = BPlusTree(system.mem, key_length=KEY_LENGTH, fanout=8)
    s.bulk_load(sorted(items))
    return s


MUT_BUILDERS = {
    "hash": _build_mut_hash,
    "skiplist": _build_mut_skiplist,
    "btree": _build_mut_btree,
}

MUT_OPS = {"update": OP_UPDATE, "delete": OP_DELETE, "insert": OP_INSERT}


@pytest.mark.parametrize("kind", sorted(MUT_BUILDERS))
@settings(max_examples=8, **COMMON_SETTINGS)
@given(data=st.data())
def test_mutation_prebound_agrees(kind, data):
    stored = data.draw(
        st.lists(st.integers(0, 2**32), min_size=2, max_size=12, unique=True),
        label="stored",
    )
    items = [(_key(i), 1000 + n) for n, i in enumerate(stored)]
    op_name = data.draw(st.sampled_from(sorted(MUT_OPS)), label="op")
    op = MUT_OPS[op_name]
    if op == OP_INSERT:
        target_int = data.draw(
            st.integers(0, 2**32).filter(lambda i: i not in stored), label="target"
        )
    else:
        # Present or absent target: both the hit and miss paths.
        target_int = data.draw(
            st.one_of(st.sampled_from(stored), st.integers(0, 2**32)),
            label="target",
        )
    target = _key(target_int)
    value = data.draw(st.integers(0, 2**20), label="value")
    conflict = data.draw(st.booleans(), label="conflict")

    traces = []
    for _ in range(2):  # generic twin, compiled twin
        system, structure, mutator = _twin(MUT_BUILDERS[kind], items)
        space = system.mem.space
        type_code = space.read_u8(structure.header_addr + 8)
        program = system.firmware.program_for(type_code, op=OP_INSERT)
        operand = mutator.stage(op, target, value)
        key_addr = structure.store_key(target)
        if conflict:
            # Hold the seqlock (odd version): the writer must back off
            # MAX_LOCK_ATTEMPTS times and fault identically on both tiers.
            space.write_u64(
                structure.header_addr + VERSION_OFFSET,
                space.read_u64(structure.header_addr + VERSION_OFFSET) | 1,
            )
        traces.append((system, program, structure, key_addr, operand))

    sys_g, program, struct_g, key_g, operand_g = traces[0]
    sys_c, _, struct_c, key_c, operand_c = traces[1]
    # Twin determinism: identical layout means identical addresses.
    assert key_g == key_c and operand_g == operand_c
    assert struct_g.header_addr == struct_c.header_addr

    ctx_g = QueryContext(
        header_addr=struct_g.header_addr, key_addr=key_g, op=op, operand=operand_g
    )
    trace_g = run_generic(program, ctx_g, sys_g.mem.space)

    compiled = compile_firmware(sys_c.firmware)[1][
        sys_c.mem.space.read_u8(struct_c.header_addr + 8)
    ]
    assert compiled.prebound, "mutation CFAs ride the prebound tier"
    ctx_c = QueryContext(
        header_addr=struct_c.header_addr, key_addr=key_c, op=op, operand=operand_c
    )
    trace_c = run_compiled(compiled, ctx_c, sys_c.mem.space)

    assert trace_c == trace_g
    if conflict:
        assert trace_g[-1][0] == "fault", "held seqlock must end in a fault"
    # Both twins' memories must have converged to the same structure state.
    for k, _ in items:
        assert struct_g.lookup(k) == struct_c.lookup(k)
    assert struct_g.lookup(target) == struct_c.lookup(target)


# --------------------------------------------------------------------- #
# Compiler-shape invariants (cheap, non-Hypothesis)
# --------------------------------------------------------------------- #


def test_every_builtin_lookup_is_specialized():
    for program in (
        LinkedListCfa(),
        HashTableCfa(),
        SkipListCfa(),
        BinaryTreeCfa(),
        TrieCfa(),
        HashOfListsCfa(),
        BPlusTreeCfa(),
    ):
        compiled = specialize_program(program)
        assert not compiled.prebound
        assert compiled.nregs >= 2
        assert compiled.name == program.NAME


def test_subclassed_program_falls_back_to_prebound():
    class Tweaked(LinkedListCfa):
        """Overrides step; must NOT be matched to the parent's closure."""

    compiled = specialize_program(Tweaked())
    assert compiled.prebound


def test_compile_firmware_covers_registered_tables():
    system = System(small_config())
    system.enable_mutations()
    lookups, mutators = compile_firmware(system.firmware)
    assert set(mutators) == set(system.firmware.mutation_types())
    assert lookups, "factory firmware registers lookup programs"
