"""System-level integration tests: schemes, NoC behaviour, ablations."""

import pytest

from repro import IntegrationScheme, small_config
from repro.config import SystemConfig, QeiConfig
from repro.core.accelerator import QueryRequest
from repro.datastructs import CuckooHashTable
from repro.errors import ConfigurationError
from repro.system import System


def make_table(system, n=120, buckets=128):
    table = CuckooHashTable(system.mem, key_length=16, num_buckets=buckets)
    keys = [(b"k%d" % i).ljust(16, b"_") for i in range(n)]
    for i, key in enumerate(keys):
        table.insert(key, i)
    return table, keys


def run_queries(system, table, keys, *, count=30):
    handles = []
    for key in keys[:count]:
        handles.append(
            system.accelerator.submit(
                QueryRequest(
                    header_addr=table.header_addr,
                    key_addr=table.store_key(key),
                ),
                system.engine.now,
            )
        )
    done = max(system.accelerator.wait_for(h) for h in handles)
    return handles, done


class TestSchemeBehaviour:
    def test_all_schemes_produce_identical_values(self):
        reference = None
        for scheme in IntegrationScheme:
            system = System(small_config(), scheme)
            table, keys = make_table(system)
            handles, _ = run_queries(system, table, keys)
            values = [h.value for h in handles]
            if reference is None:
                reference = values
            assert values == reference, scheme

    def test_device_scheme_is_slower_than_core_integrated(self):
        latencies = {}
        for scheme in ("core-integrated", "device-indirect"):
            system = System(small_config(), scheme)
            system.warm_llc()
            table, keys = make_table(system)
            start = system.engine.now
            _, done = run_queries(system, table, keys, count=8)
            latencies[scheme] = done - start
        assert latencies["device-indirect"] > latencies["core-integrated"]

    def test_cha_schemes_distribute_across_slices(self):
        system = System(small_config(), "cha-tlb")
        table, keys = make_table(system)
        homes = {
            system.integration.home_node(0, table.header_addr, table.store_key(k))
            for k in keys[:40]
        }
        assert len(homes) > 1  # queries spread over CHAs

    def test_device_scheme_centralizes(self):
        system = System(small_config(), "device-direct")
        table, keys = make_table(system)
        homes = {
            system.integration.home_node(0, table.header_addr, table.store_key(k))
            for k in keys[:20]
        }
        assert len(homes) == 1

    def test_qst_capacity_per_scheme(self):
        config = small_config()
        assert config.effective_qst_entries("core-integrated") == 10
        assert config.effective_qst_entries("cha-tlb") == 10 * config.llc.slices
        assert (
            config.effective_qst_entries("device-direct")
            == 10 * config.num_cores
        )

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            System(small_config(), "quantum-entangled")


class TestNocHotspot:
    def test_device_scheme_creates_hotter_links_than_distributed(self):
        """The paper's Sec. V argument: a centralized accelerator makes a
        traffic hotspot around its NoC stop."""
        results = {}
        for scheme in ("device-direct", "cha-tlb"):
            system = System(small_config(), scheme)
            system.warm_llc()
            table, keys = make_table(system)
            system.noc.reset_traffic()
            _, done = run_queries(system, table, keys, count=40)
            results[scheme] = system.noc.hotspot_factor(max(1, done))
        assert results["device-direct"] > results["cha-tlb"]


class TestQstOccupancyAblation:
    """The paper picked ten QST entries for 50-90% occupancy (Sec. VI-A)."""

    def _throughput(self, qst_entries):
        config = small_config().replace(
            qei=QeiConfig(qst_entries=qst_entries)
        )
        system = System(config, "core-integrated")
        system.warm_llc()
        table, keys = make_table(system)
        start = system.engine.now
        _, done = run_queries(system, table, keys, count=40)
        return done - start, system.accelerator.qst.mean_occupancy()

    def test_more_entries_help_with_diminishing_returns(self):
        t2, _ = self._throughput(2)
        t10, occ10 = self._throughput(10)
        t40, _ = self._throughput(40)
        assert t10 < t2                       # 10 entries beat 2
        assert t40 <= t10                     # capacity never hurts
        # Marginal gain per added entry shrinks past the paper's pick of 10.
        gain_2_to_10 = (t2 - t10) / 8
        gain_10_to_40 = (t10 - t40) / 30
        assert gain_2_to_10 > gain_10_to_40
        assert 0.2 < occ10 <= 1.0             # the table is actually used


class TestStatsPlumbing:
    def test_accelerator_stats_accumulate(self):
        system = System(small_config())
        table, keys = make_table(system)
        before = system.stats.snapshot()
        run_queries(system, table, keys, count=10)
        delta = system.stats.diff(before)
        assert delta.get("qei.queries.completed", 0) == 10
        assert delta.get("qei.cee.steps", 0) > 10
        assert any("uops.mem" in k and v > 0 for k, v in delta.items())

    def test_flush_caches_resets_timing_state(self):
        system = System(small_config())
        table, keys = make_table(system)
        run_queries(system, table, keys, count=5)
        system.flush_caches()
        line = system.hierarchy.line_of(
            system.space.translate(table.table_addr)
        )
        assert not system.hierarchy.l2[0].probe(line)
