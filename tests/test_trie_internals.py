"""Extra trie internals: serialization, edge search, seal semantics."""

import pytest

from repro.datastructs import AhoCorasickTrie, ProcessMemory, Trie
from repro.datastructs.trie import EDGE_BYTES, NODE_BYTES
from repro.errors import DataStructureError


@pytest.fixture
def mem():
    return ProcessMemory(physical_bytes=32 * 1024 * 1024)


class TestSerialization:
    def test_seal_is_idempotent(self, mem):
        trie = Trie(mem, key_length=8)
        trie.insert(b"abc", 1)
        trie.seal()
        root = trie.header().root_ptr
        trie.seal()
        assert trie.header().root_ptr == root

    def test_insert_after_seal_rejected(self, mem):
        trie = Trie(mem, key_length=8)
        trie.insert(b"a", 0)
        trie.seal()
        with pytest.raises(DataStructureError):
            trie.insert(b"b", 1)

    def test_edges_serialized_sorted(self, mem):
        trie = Trie(mem, key_length=8)
        for byte in (0x7A, 0x41, 0x5A, 0x30):  # unsorted insert order
            trie.insert(bytes([byte]), byte)
        trie.seal()
        root = trie.header().root_ptr
        _, _, count, edges_ptr = trie._node_fields(root)
        assert count == 4
        stored = [
            mem.space.read_u64(edges_ptr + i * EDGE_BYTES) for i in range(count)
        ]
        assert stored == sorted(stored)

    def test_node_count_in_header(self, mem):
        trie = Trie(mem, key_length=8)
        trie.insert(b"ab", 0)
        trie.insert(b"ac", 1)
        trie.seal()
        # root + 'a' + 'b' + 'c' = 4 nodes
        assert trie.header().size == 4

    def test_empty_key_rejected(self, mem):
        trie = Trie(mem, key_length=8)
        with pytest.raises(DataStructureError):
            trie.insert(b"", 1)

    def test_negative_value_rejected(self, mem):
        trie = Trie(mem, key_length=8)
        with pytest.raises(DataStructureError):
            trie.insert(b"a", -1)


class TestEdgeSearch:
    def test_find_edge_early_exit_on_sorted_order(self, mem):
        trie = Trie(mem, key_length=8)
        trie.insert(bytes([10]), 0)
        trie.insert(bytes([200]), 1)
        trie.seal()
        root = trie.header().root_ptr
        # Searching for byte 50 stops at the first greater edge (200).
        child, probes = trie._find_edge(root, 50)
        assert child == 0
        assert probes == 2

    def test_find_edge_hit_returns_child(self, mem):
        trie = Trie(mem, key_length=8)
        trie.insert(bytes([7, 9]), 3)
        trie.seal()
        root = trie.header().root_ptr
        child, _ = trie._find_edge(root, 7)
        assert child != 0
        grand, _ = trie._find_edge(child, 9)
        assert grand != 0


class TestAhoCorasickLinks:
    def test_fail_links_point_to_longest_proper_suffix(self, mem):
        ac = AhoCorasickTrie(mem, key_length=16)
        ac.insert(b"ab", 0)
        ac.insert(b"bab", 1)
        ac.seal()
        # Node for "bab": its fail must be the node for "ab".
        root = ac.header().root_ptr
        node_b, _ = ac._find_edge(root, ord("b"))
        node_ba, _ = ac._find_edge(node_b, ord("a"))
        node_bab, _ = ac._find_edge(node_ba, ord("b"))
        node_a, _ = ac._find_edge(root, ord("a"))
        node_ab, _ = ac._find_edge(node_a, ord("b"))
        fail_of_bab = ac._node_fields(node_bab)[0]
        assert fail_of_bab == node_ab

    def test_root_children_fail_to_root(self, mem):
        ac = AhoCorasickTrie(mem, key_length=16)
        ac.insert(b"x", 0)
        ac.seal()
        root = ac.header().root_ptr
        node_x, _ = ac._find_edge(root, ord("x"))
        assert ac._node_fields(node_x)[0] == root

    def test_overlapping_matches_counted_per_position(self, mem):
        ac = AhoCorasickTrie(mem, key_length=16)
        ac.insert(b"aa", 0)
        ac.seal()
        matches = ac.match(b"aaaa")
        assert [p for p, _ in matches] == [1, 2, 3]
