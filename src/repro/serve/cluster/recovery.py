"""Log shipping, write quorums and crash recovery (docs/recovery.md).

One :class:`ReplicationManager` per node owns the durability half of the
cluster write path:

* **Shipping** — every local primary commit is appended to the node's
  :class:`~repro.serve.cluster.wal.CommitLog` (via the
  ``core/mutations.py`` export hook) and pushed to the key's replica
  group as a cumulative unacked-suffix message.  Receivers apply in
  origin-ordinal order (:func:`~repro.serve.cluster.wal.apply_stream`)
  and ack a cumulative watermark, so dropped, duplicated or reordered
  shipments all converge.
* **Quorum** — a write's ``ok`` response to the LB is *deferred* until
  ``write_quorum`` distinct replicas (committing primary included) hold
  the commit.  An unreachable quorum is indistinguishable from a slow
  node: the LB times out and retries, and an unacked write carries no
  durability promise.
* **Hinted handoff** — unacked suffixes double as hint buffers for DOWN
  replicas, bounded by ``handoff_limit``; overflow drops the buffer and
  flags the replica for a *full resync* instead of incremental replay.
* **Catch-up** — a recovered node announces CATCHING_UP, asks every
  healthy peer to flush its buffered records (or, after a hint overflow
  or a detected WAL ordinal gap, to transfer its primary shards' current
  state), and reports caught-up — re-entering the ring — only once every
  peer's stream has drained to its promised watermark.

Convergence under races is last-writer-wins per key on the global commit
cycle (ties broken by origin id, then ordinal): a zombie commit from a
crashed primary that resurfaces during catch-up can never overwrite a
younger acked write on a healthy replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ...config import ClusterConfig
from ...core.mutations import CommitRecord
from .membership import NodeState
from .wal import CommitLog, WalRecord

#: Stamp ordering for last-writer-wins: (commit cycle, origin, ordinal).
_Stamp = Tuple[int, int, int]


@dataclass
class _QuorumWait:
    """One committed write waiting for replica acks before its client ok."""

    ordinal: int
    key_pos: int
    epoch: int
    op: int
    #: The value a read of the key returns once this write is visible
    #: (None for a delete) — what the LB's settled map will hold.
    settled_value: Optional[int]
    group: Tuple[int, ...]
    acked: Set[int] = field(default_factory=set)
    #: Deferred LB response: ``(token, result_value)``; None once sent (or
    #: when the node died before resolution).
    respond: Optional[Tuple[object, Optional[int]]] = None
    quorum_notified: bool = False


class ReplicationManager:
    """Per-node commit-log shipping, quorum tracking and catch-up."""

    def __init__(
        self,
        node,
        config: ClusterConfig,
        *,
        send: Callable[[int, Callable[[], None]], None],
        notify_lb: Callable[..., None],
        replica_group: Callable[[int], List[int]],
        peer_state: Callable[[int], NodeState],
        pos_of_key: Dict[bytes, int],
        on_caught_up: Callable[[int], None],
        on_lag: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.node = node
        self.node_id = node.node_id
        self.engine = node.system.engine
        self.config = config
        #: ``send(dst, thunk)`` ships one message over the node<->node
        #: fabric (latency, partitions and dead endpoints applied there).
        self._send = send
        self._notify_lb = notify_lb
        self._replica_group = replica_group
        self._peer_state = peer_state
        self._pos_of_key = pos_of_key
        self._on_caught_up = on_caught_up
        self._on_lag = on_lag
        self.wal = CommitLog(self.node_id)
        #: Reorder window: the mutator's export hook fires at *completion
        #: event* time, which can run ahead of (or behind) seqlock order;
        #: commits are held here and emitted in strict ordinal order so the
        #: log, the stamps and every replica stream agree with the physical
        #: write history.  (The seqlock hands out contiguous even ordinals:
        #: software misses export no-ops, accelerated misses and aborts
        #: restore the pre-lock version and burn nothing.)
        self._export_buf: Dict[int, Tuple[CommitRecord, Optional[Tuple[int, int, int]]]] = {}
        self._next_export = 0
        #: Per-replica outbound suffix of my records it has not acked yet.
        self._outbound: Dict[int, List[WalRecord]] = {}
        #: Per-replica cumulative ack watermark (my ordinal space).
        self._acked: Dict[int, int] = {}
        #: Replicas whose hint buffer overflowed: incremental replay can no
        #: longer make them whole; they get a state transfer at catch-up.
        self._needs_resync: Set[int] = set()
        #: Per-origin watermark of applied origin ordinals.
        self._applied: Dict[int, int] = {}
        #: Per-origin records delivered but not yet applied (lock retries).
        self._apply_buf: Dict[int, Dict[int, WalRecord]] = {}
        #: Per-key last-writer stamp for cross-stream convergence.
        self._stamps: Dict[bytes, _Stamp] = {}
        #: Quorum waits by local ordinal.
        self._waits: Dict[int, _QuorumWait] = {}
        #: Origin/ordinal of the record currently being applied, so the
        #: mutator's commit hook logs it as an apply rather than re-shipping
        #: it as a fresh primary commit.
        self._applying: Optional[WalRecord] = None
        #: Catch-up state: peers whose DONE watermark is still outstanding.
        self._catchup_pending: Dict[int, Optional[int]] = {}
        self._catching_up = False
        self._force_resync = False
        # Telemetry (plain ints: read into the report, never mutated by it).
        self.shipped = 0
        self.applies = 0
        self.apply_duplicates = 0
        self.acks_sent = 0
        self.hint_overflows = 0
        self.resyncs = 0
        self.gap_detected = 0

    # ------------------------------------------------------------------ #
    # Local commits (mutator export hook, via ClusterNode)
    # ------------------------------------------------------------------ #

    def align_baseline(self, structure_version: int) -> None:
        """Anchor the log and the export cursor at the structure's version.

        Called once at wiring time, before any commit can fire: the build
        phase writes the structure directly (the seqlock never moves), so
        this is normally version 0 — but anchoring from ``lock.read()``
        keeps the invariant honest if a future seed pre-warms the lock.
        """
        self.wal.reset(structure_version)
        self._next_export = structure_version

    def local_commit(self, rec: CommitRecord) -> None:
        """Every local structure commit lands here, applies included.

        The export hook fires at *completion event* time, which can lag or
        lead seqlock order; the record is parked in the reorder window and
        emitted only when every lower ordinal has been exported, so the
        WAL, the LWW stamps and every replica stream observe commits in
        physical (lock acquisition) order.  The origin attribution has to
        be captured *now* — ``_applying`` is only set for the duration of
        the apply call.
        """
        applying = self._applying
        if applying is not None:
            origin_info = (
                applying.origin, applying.origin_ordinal, applying.commit_cycle
            )
        else:
            origin_info = None
        self._export_buf[rec.ordinal] = (rec, origin_info)
        while self._next_export in self._export_buf:
            pending, info = self._export_buf.pop(self._next_export)
            self._next_export += 2
            self._export_one(pending, info)

    def _export_one(
        self,
        rec: CommitRecord,
        origin_info: Optional[Tuple[int, int, int]],
    ) -> None:
        if origin_info is not None:
            # An apply: keep the *origin's* stamp so every replica of the
            # key orders this write identically under last-writer-wins.
            origin, origin_ordinal, cycle = origin_info
        else:
            # A primary commit: stamp with the emission cycle, which is
            # monotone in ordinal order (unlike the completion cycle).
            origin, origin_ordinal = self.node_id, rec.ordinal
            cycle = self.engine.now
        record = WalRecord(
            ordinal=rec.ordinal,
            origin=origin,
            origin_ordinal=origin_ordinal,
            op=rec.op,
            key=rec.key,
            value=rec.value,
            result=rec.result,
            commit_cycle=cycle,
        )
        self.wal.append(record)
        self._stamps[rec.key] = self._stamp_of(cycle, origin, origin_ordinal)
        if origin_info is not None or rec.result is None:
            return  # applies never re-ship; misses replicate nothing
        key_pos = self._pos_of_key.get(rec.key)
        if key_pos is None:
            return
        self._enqueue(record, key_pos)
        self._ship_now()

    def _enqueue(self, record: WalRecord, key_pos: int) -> None:
        for replica in self._replica_group(key_pos):
            if replica == self.node_id:
                continue
            if record.ordinal <= self._acked.get(replica, -1):
                continue
            queue = self._outbound.setdefault(replica, [])
            queue.append(record)
            if len(queue) > self.config.handoff_limit:
                # Hint buffer overflow: drop the stream and remember that
                # incremental replay can no longer make this replica whole.
                queue.clear()
                self._outbound.pop(replica, None)
                self._needs_resync.add(replica)
                self.hint_overflows += 1

    @staticmethod
    def _stamp_of(cycle: int, origin: int, ordinal: int) -> _Stamp:
        return (cycle, origin, ordinal)

    # ------------------------------------------------------------------ #
    # Quorum tracking
    # ------------------------------------------------------------------ #

    def open_wait(
        self,
        *,
        ordinal: int,
        key_pos: int,
        epoch: int,
        op: int,
        settled_value: Optional[int],
        token: object,
        result_value: Optional[int],
    ) -> None:
        """Defer a write's ok until ``write_quorum`` replicas hold it."""
        group = tuple(self._replica_group(key_pos))
        wait = _QuorumWait(
            ordinal=ordinal,
            key_pos=key_pos,
            epoch=epoch,
            op=op,
            settled_value=settled_value,
            group=group,
            acked={self.node_id},
            respond=(token, result_value),
        )
        # Shipping started at commit time, before the server resolved the
        # request: count any replica whose cumulative ack already covers
        # this ordinal.
        for replica in group:
            if self._acked.get(replica, -1) >= ordinal:
                wait.acked.add(replica)
        self._waits[ordinal] = wait
        self._check_wait(wait)

    def _check_wait(self, wait: _QuorumWait) -> None:
        needed = min(self.config.write_quorum, len(wait.group))
        if len(wait.acked) >= needed and wait.respond is not None:
            token, result_value = wait.respond
            wait.respond = None
            self.node.quorum_respond(token, result_value)
        if len(wait.acked) >= needed and not wait.quorum_notified:
            wait.quorum_notified = True
            self._send_lb_update(wait, full=False)
        if wait.respond is None and set(wait.group) <= wait.acked:
            self._send_lb_update(wait, full=True)
            self._waits.pop(wait.ordinal, None)

    def _send_lb_update(self, wait: _QuorumWait, *, full: bool) -> None:
        self._notify_lb(
            self.node_id,
            wait.key_pos,
            wait.epoch,
            wait.settled_value,
            tuple(sorted(wait.acked)),
            full,
        )

    def on_ack(self, replica: int, watermark: int) -> None:
        """A replica acked my stream up to ``watermark`` (cumulative)."""
        if not self.node.alive:
            return
        if watermark <= self._acked.get(replica, -1):
            return
        self._acked[replica] = watermark
        queue = self._outbound.get(replica)
        if queue:
            queue[:] = [r for r in queue if r.ordinal > watermark]
            if not queue:
                self._outbound.pop(replica, None)
        for wait in sorted(self._waits.values(), key=lambda w: w.ordinal):
            if wait.ordinal <= watermark and replica in wait.group:
                wait.acked.add(replica)
                self._check_wait(wait)

    # ------------------------------------------------------------------ #
    # Shipping / receiving
    # ------------------------------------------------------------------ #

    def _ship_now(self) -> None:
        if not self.node.alive:
            return
        for replica in sorted(self._outbound):
            if self._peer_state(replica) is NodeState.DOWN:
                continue  # hinted handoff: hold the suffix for recovery
            self._ship_to(replica)

    def _ship_to(self, replica: int) -> None:
        queue = self._outbound.get(replica)
        if not queue:
            return
        batch = tuple(queue)
        self.shipped += len(batch)
        self._send(
            replica,
            lambda origin=self.node_id, records=batch: self._deliver_apply(
                replica, origin, records
            ),
        )

    def _deliver_apply(
        self, replica: int, origin: int, records: Tuple[WalRecord, ...]
    ) -> None:
        self.node.peer(replica).on_apply(origin, records)

    def on_apply(self, origin: int, records: Tuple[WalRecord, ...]) -> None:
        """An apply-stream shipment arriving off the fabric."""
        if not self.node.alive:
            return
        watermark = self._applied.get(origin, -1)
        buf = self._apply_buf.setdefault(origin, {})
        for record in records:
            if record.origin_ordinal <= watermark:
                self.apply_duplicates += 1
            elif record.origin_ordinal not in buf:
                buf[record.origin_ordinal] = record
        self._drain_applies(origin)

    def _drain_applies(self, origin: int) -> None:
        from ...errors import DataStructureError

        buf = self._apply_buf.get(origin)
        if buf is None:
            return
        while buf:
            ordinal = min(buf)
            record = buf[ordinal]
            try:
                self._apply_one(record)
            except DataStructureError:
                # Seqlock held by a live local writer: retry shortly, in
                # order — later records wait behind this one.
                self.engine.schedule(
                    64, lambda o=origin: self._drain_applies(o)
                )
                return
            del buf[ordinal]
            self._applied[origin] = ordinal
        if not buf:
            self._apply_buf.pop(origin, None)
        self._send_ack(origin)
        self._check_catchup(origin)

    def _apply_one(self, record: WalRecord) -> None:
        """Apply one shipped commit locally (LWW-guarded), oracle included."""
        stamp = self._stamp_of(
            record.commit_cycle, record.origin, record.origin_ordinal
        )
        if record.result is None or stamp <= self._stamps.get(record.key, (-1, -1, -1)):
            # A logged no-op, or a commit older than what this key already
            # holds (e.g. a zombie write resurfacing after catch-up).
            self.applies += 1
            return
        server = self.node.server
        oracle = server._oracle
        mutator = server._mutator
        now = self.engine.now
        token = oracle.begin_write(record.op, record.key, record.value, now)
        self._applying = record
        try:
            result = mutator.software_apply(record.op, record.key, record.value)
        except BaseException:
            oracle.cancel_write(token)
            raise
        finally:
            self._applying = None
        oracle.end_write(
            token,
            result,
            commit_seq=mutator.last_commit_version,
            commit_cycle=now,
        )
        self.applies += 1
        if self._on_lag is not None:
            self._on_lag(now - record.commit_cycle)

    def _send_ack(self, origin: int) -> None:
        watermark = self._applied.get(origin, -1)
        self.acks_sent += 1
        self._send(
            origin,
            lambda me=self.node_id, w=watermark: self.node.peer(
                origin
            ).on_ack(me, w),
        )

    # ------------------------------------------------------------------ #
    # Retry tick
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Arm the periodic retransmit sweep (writes-enabled runs only)."""
        self.engine.schedule(
            self.config.replication_retry_cycles + self.node_id + 1,
            self._tick,
        )

    def _tick(self) -> None:
        if self.node.alive:
            self._ship_now()
            if self._catching_up:
                self._chase_catchup()
        self.engine.schedule(self.config.replication_retry_cycles, self._tick)

    # ------------------------------------------------------------------ #
    # Crash recovery / catch-up
    # ------------------------------------------------------------------ #

    def on_fail(self) -> None:
        """The node crashed: volatile state dies, the WAL survives."""
        self._apply_buf.clear()
        for wait in self._waits.values():
            wait.respond = None  # the LB token died with the process
        self._waits.clear()
        # The outbound queues are process memory: gone.  They are rebuilt
        # from the durable log when catch-up completes; ``_acked`` is kept
        # because it describes the *peers'* durable progress, which a local
        # crash cannot regress.
        self._outbound.clear()
        self._needs_resync.clear()

    def begin_catchup(self, peers: List[int]) -> None:
        """Rejoin after a crash: replay peers' logs from durable ordinals.

        ``peers`` is the set of nodes (from the LB's membership view) this
        node must hear a drained stream — or a state transfer — from
        before it may re-enter the ring.
        """
        self._catching_up = True
        # Recompute the per-origin durable watermarks from the WAL (the
        # in-memory ones died with the process).
        self._applied = {}
        for record in self.wal.records:
            if record.origin != self.node_id:
                prev = self._applied.get(record.origin, -1)
                if record.origin_ordinal > prev:
                    self._applied[record.origin] = record.origin_ordinal
        structure_version = self.node.server._mutator.lock.read()
        self._force_resync = self.wal.has_gap(
            structure_version=structure_version
        )
        if self._force_resync:
            self.gap_detected += 1
            self._purge_torn_stamps()
        self._catchup_pending = {
            peer: None for peer in peers if peer != self.node_id
        }
        if not self._catchup_pending:
            self._finish_catchup()
            return
        self._chase_catchup()

    def _purge_torn_stamps(self) -> None:
        """Disown memory state whose WAL record the truncation destroyed.

        The structure is durable but so is the damage: a commit applied to
        memory whose log record was truncated survives in *this* node's
        table only — no WAL anywhere backs it, the crash wiped the
        outbound queue that would have shipped it, and the quorum wait
        died with the process, so no client was ever acked.  Dropping the
        key's stamp lets the donors' state transfer roll the key back
        authoritatively (the stamp guard in :meth:`on_resync` would
        otherwise preserve the orphaned value, and a retried write that
        no-ops against it would skip replication entirely, leaving the
        replicas diverged).  Self-origin stamps are exactly the ones the
        local WAL must justify; peer-origin stamps stay — the origin's own
        log still holds those records and its donation re-asserts them.
        """
        surviving = {record.ordinal for record in self.wal.records}
        for key, stamp in list(self._stamps.items()):
            _, origin, ordinal = stamp
            if origin == self.node_id and ordinal not in surviving:
                del self._stamps[key]

    def _chase_catchup(self) -> None:
        """(Re)issue CATCHUP_BEGIN to every peer still owing a stream."""
        for peer in sorted(list(self._catchup_pending)):
            if self._peer_state(peer) is NodeState.DOWN:
                # A peer that died mid-catch-up owes us nothing; its data
                # is covered by the surviving replicas' streams.
                self._catchup_pending.pop(peer, None)
                continue
            self._send(
                peer,
                lambda me=self.node_id, resync=self._force_resync, p=peer: (
                    self.node.peer(p).on_catchup_begin(me, resync)
                ),
            )
        if not self._catchup_pending:
            self._finish_catchup()

    def on_catchup_begin(self, who: int, resync: bool) -> None:
        """A recovering peer asked for everything we hold for it."""
        if not self.node.alive:
            return
        if resync or who in self._needs_resync:
            self._send_resync(who)
            return
        # Incremental: flush the hint buffer, then promise a watermark the
        # recovering node can verify its applies against.
        self._ship_to(who)
        queue = self._outbound.get(who, [])
        promised = queue[-1].ordinal if queue else self._acked.get(who, -1)
        self.resync_done(who, promised)

    def resync_done(self, who: int, promised: int) -> None:
        self._send(
            who,
            lambda me=self.node_id, p=promised: self.node.peer(
                who
            ).on_catchup_done(me, p),
        )

    def _send_resync(self, who: int) -> None:
        """State transfer: current values of every shard ``who`` co-owns.

        Every shard the recovering node is in the replica group of gets
        donated by every other group member, not just the shard's primary:
        the recovering node may *be* the primary (nobody else ranks first
        for its natural shards), and the freshest value may live on a
        sloppy stand-in that acked a write while the natural owner was
        down.  Duplicate donations are harmless — the receiver is
        stamp-guarded (:meth:`on_resync`).
        """
        self.resyncs += 1
        items: List[Tuple[bytes, Optional[int], _Stamp]] = []
        mutator = self.node.server._mutator
        for key, key_pos in sorted(self._pos_of_key.items()):
            group = self._replica_group(key_pos)
            if self.node_id not in group or who not in group:
                continue
            stamp = self._stamps.get(key, (0, -1, -1))
            items.append((key, mutator.current(key), stamp))
        # The stream restarts from scratch after a state transfer.
        self._outbound.pop(who, None)
        self._needs_resync.discard(who)
        self._acked[who] = self.wal.last_ordinal
        promised = self.wal.last_ordinal
        self._send(
            who,
            lambda me=self.node_id, batch=tuple(items), p=promised: (
                self.node.peer(who).on_resync(me, batch, p)
            ),
        )

    def on_resync(
        self,
        donor: int,
        items: Tuple[Tuple[bytes, Optional[int], _Stamp], ...],
        promised: int,
    ) -> None:
        """Absolute state transfer for the donor's primary shards."""
        if not self.node.alive:
            return
        from ...core.cfa import OP_DELETE, OP_INSERT
        from ...errors import DataStructureError

        server = self.node.server
        mutator = server._mutator
        oracle = server._oracle
        now = self.engine.now
        for key, value, stamp in items:
            if tuple(stamp) <= self._stamps.get(key, (-1, -1, -1)):
                # A donor whose copy is no fresher than what this key
                # already holds (several donors overlap on shared shards):
                # applying it could regress a newer value.
                continue
            if mutator.current(key) == value:
                self._stamps[key] = max(
                    self._stamps.get(key, (-1, -1, -1)), tuple(stamp)
                )
                if stamp[1] == self.node_id:
                    # A commit of OUR OWN the donor handed back: memory
                    # held it through the crash but the truncation ate the
                    # log record, so the outbound rebuild at catch-up end
                    # cannot re-ship it.  Nobody else will either — the
                    # donor applied it, it never originates.  Reconstruct
                    # the record and re-offer it to the replica group
                    # (members whose cumulative ack already covers the
                    # ordinal are skipped by :meth:`_enqueue`).
                    self._reoffer_own(key, value, tuple(stamp))
                continue
            op = OP_DELETE if value is None else OP_INSERT
            token = oracle.begin_write(op, key, value or 0, now)
            # Attribute the apply to the stamp's *origin*, not the donor:
            # the WAL record this exports keeps per-origin watermarks
            # honest, and when the origin is this node itself (a donor
            # handing back a commit the local truncation destroyed), the
            # record re-enters the outbound rebuild at catch-up end — the
            # only remaining path to natural owners the crash left behind.
            self._applying = WalRecord(
                ordinal=0,
                origin=stamp[1],
                origin_ordinal=stamp[2],
                op=op,
                key=key,
                value=value or 0,
                result=None,
                commit_cycle=stamp[0],
            )
            try:
                result = mutator.software_apply(op, key, value or 0)
            except DataStructureError:
                # A live local writer mid-resync: retry the whole transfer
                # shortly; applied items are idempotent (value compare).
                oracle.cancel_write(token)
                self._applying = None
                self.engine.schedule(
                    64,
                    lambda d=donor, b=items, p=promised: self.on_resync(
                        d, b, p
                    ),
                )
                return
            self._applying = None
            oracle.end_write(
                token,
                result,
                commit_seq=mutator.last_commit_version,
                commit_cycle=now,
            )
            self._stamps[key] = max(
                self._stamps.get(key, (-1, -1, -1)), tuple(stamp)
            )
        # The incremental stream from this donor restarts here: everything
        # it ever committed is reflected in the transferred state.
        self._applied[donor] = promised
        self.on_catchup_done(donor, promised)

    def _reoffer_own(
        self, key: bytes, value: Optional[int], stamp: _Stamp
    ) -> None:
        """Rebuild a truncated self-origin commit as a shippable record.

        The stamp *is* the record's replication identity: for a primary
        commit the origin ordinal equals the local ordinal, so receivers
        dedup it against their per-origin watermark exactly as if the
        original shipment had survived.  The WAL is not touched — the
        local baseline has moved past this ordinal and the table already
        reflects the commit; only the group offer was lost.
        """
        from ...core.cfa import OP_DELETE, OP_INSERT
        from ...core.mutations import MUT_DELETED, MUT_INSERTED

        key_pos = self._pos_of_key.get(key)
        if key_pos is None:
            return
        if any(r.ordinal == stamp[2] for r in self.wal.records):
            # The durable record survived the truncation; the outbound
            # rebuild at catch-up end re-offers it from the log itself.
            return
        record = WalRecord(
            ordinal=stamp[2],
            origin=self.node_id,
            origin_ordinal=stamp[2],
            op=OP_DELETE if value is None else OP_INSERT,
            key=key,
            value=value or 0,
            result=MUT_DELETED if value is None else MUT_INSERTED,
            commit_cycle=stamp[0],
        )
        self._enqueue(record, key_pos)

    def on_catchup_done(self, peer: int, promised: int) -> None:
        """A peer finished flushing; done once our applies reach its mark."""
        if not self.node.alive or not self._catching_up:
            return
        if peer in self._catchup_pending:
            self._catchup_pending[peer] = promised
        self._check_catchup(peer)

    def _check_catchup(self, origin: int) -> None:
        if not self._catching_up:
            return
        promised = self._catchup_pending.get(origin)
        if promised is None:
            return
        if self._applied.get(origin, -1) >= promised:
            self._catchup_pending.pop(origin, None)
        if not self._catchup_pending:
            self._finish_catchup()

    def _finish_catchup(self) -> None:
        if not self._catching_up:
            return
        self._catching_up = False
        self._force_resync = False
        # Rebuild the outbound queues (process memory, lost in the crash)
        # from the durable log: commits only this node ever held get
        # re-offered to their replica groups.  Receivers discard anything
        # at or below their cumulative watermark, so the re-offer is
        # idempotent.  The queues are NOT cleared first: ``on_fail``
        # already emptied them, and anything enqueued since is a
        # :meth:`_reoffer_own` record — a self-origin commit a donor
        # handed back whose WAL record the truncation destroyed, which
        # this log scan therefore cannot regenerate.  Re-shipping those is
        # the only path that repairs a natural owner the crash cut off
        # mid-stream.  This must read the log *before* the gap reset below
        # discards it.
        for record in self.wal.records:
            if record.origin != self.node_id or record.result is None:
                continue
            key_pos = self._pos_of_key.get(record.key)
            if key_pos is not None:
                self._enqueue(record, key_pos)
        if self.wal.has_gap(
            structure_version=self.node.server._mutator.lock.read()
        ):
            # The replayed applies themselves are in the WAL now; a gap at
            # this point can only mean the log baseline moved — reset it so
            # future recoveries replay from here.
            self.wal.reset(self.node.server._mutator.lock.read())
        self._ship_now()
        self._on_caught_up(self.node_id)
