"""Hash functions shared by software baselines and the QEI hash unit.

Both sides must compute identical values (the accelerator's hashing unit
"supports common hash functions", Sec. IV-B), so these are plain-Python,
dependency-free implementations of FNV-1a plus helpers for signatures,
bucket selection and a deterministic branch-outcome model.
"""

from __future__ import annotations

from functools import lru_cache

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x00000100000001B3
MASK64 = (1 << 64) - 1

#: Memo size for the pure hash functions below.  Workload key sets are tens
#: of thousands of distinct byte strings hashed millions of times (every
#: probe, signature check and branch model re-hashes the key), so an LRU
#: memo turns the per-byte FNV loop into a dict hit on the hot path.
_MEMO_SIZE = 1 << 17


@lru_cache(maxsize=_MEMO_SIZE)
def fnv1a64(data: bytes, seed: int = FNV_OFFSET) -> int:
    """64-bit FNV-1a over ``data`` starting from ``seed``."""
    h = seed & MASK64
    for byte in data:
        h ^= byte
        h = (h * FNV_PRIME) & MASK64
    return h


@lru_cache(maxsize=_MEMO_SIZE)
def primary_hash(key: bytes) -> int:
    """First cuckoo hash."""
    return fnv1a64(key)


@lru_cache(maxsize=_MEMO_SIZE)
def secondary_hash(key: bytes) -> int:
    """Second cuckoo hash: an avalanche mix of the primary.

    Matches the common trick (used by DPDK's hash library) of deriving the
    alternative signature from the primary one, so displacement only needs
    the stored signature.
    """
    return mix64(primary_hash(key) ^ 0x5BD1E9955BD1E995)


def mix64(x: int) -> int:
    """Finalizer from splitmix64 — a cheap full-avalanche mixer."""
    x &= MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & MASK64
    x ^= x >> 31
    return x


@lru_cache(maxsize=_MEMO_SIZE)
def signature_of(key: bytes) -> int:
    """Short signature stored in hash buckets to pre-filter comparisons."""
    return mix64(primary_hash(key)) & MASK64


@lru_cache(maxsize=_MEMO_SIZE)
def lsh_hash(key: bytes, table_index: int) -> int:
    """Per-table hash for locality-sensitive-hashing workloads (FLANN)."""
    return fnv1a64(key, seed=(FNV_OFFSET ^ (0x9E3779B97F4A7C15 * (table_index + 1)) & MASK64))


@lru_cache(maxsize=_MEMO_SIZE)
def branch_outcome(key: bytes, salt: int, mispredict_rate: float) -> bool:
    """Deterministic stand-in for a branch predictor's *misprediction*.

    Returns True when a data-dependent branch should be charged a
    misprediction.  Outcomes are a pure function of (key, salt) so runs are
    reproducible and identical across integration schemes.
    """
    if mispredict_rate <= 0.0:
        return False
    if mispredict_rate >= 1.0:
        return True
    draw = mix64(fnv1a64(key) ^ (salt * 0x9E3779B97F4A7C15)) & 0xFFFF
    return draw < int(mispredict_rate * 0x10000)
