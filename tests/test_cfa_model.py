"""Unit tests for the CFA model, firmware registry, QST and DPU pools."""

import pytest

from repro.core.cfa import (
    AluOp,
    CfaProgram,
    Compare,
    Done,
    Fault,
    FirmwareImage,
    HashOp,
    MemRead,
    QueryContext,
    StepOutcome,
    STATE_DONE,
    STATE_START,
)
from repro.core.dpu import AluPool, ComparatorPool, HashUnit, UnitPool
from repro.core.programs import (
    BinaryTreeCfa,
    HashTableCfa,
    LinkedListCfa,
    SkipListCfa,
    TrieCfa,
    default_firmware,
)
from repro.core.qst import QueryStateTable
from repro.errors import AcceleratorError, FirmwareError


class TestMicroActions:
    def test_memread_segments_iterate_in_order(self):
        action = MemRead(0x1000, 64, "a", also=((0x2000, 8, "b"), (0x3000, 16, "c")))
        segments = list(action.segments())
        assert segments == [(0x1000, 64, "a"), (0x2000, 8, "b"), (0x3000, 16, "c")]

    def test_actions_are_immutable(self):
        action = Compare(1, 2, 16, "cmp")
        with pytest.raises(AttributeError):
            action.length = 32

    def test_query_context_scratch_u64(self):
        ctx = QueryContext(header_addr=0x100, key_addr=0x200)
        ctx.scratch["node"] = (123456789).to_bytes(8, "little") + b"\x01" + b"\x00" * 7
        assert ctx.scratch_u64("node") == 123456789
        assert ctx.scratch_u64("node", 8) == 1


class TestFirmwareImage:
    def test_default_firmware_covers_builtin_types(self):
        image = default_firmware()
        for type_code in (1, 2, 3, 4, 5):
            assert image.supports(type_code)
        assert not image.supports(6)  # hash-of-lists is a runtime add-on
        assert image.types() == [1, 2, 3, 4, 5]

    def test_unknown_type_raises(self):
        image = default_firmware()
        with pytest.raises(FirmwareError):
            image.program_for(99)

    def test_program_must_declare_states(self):
        class Empty(CfaProgram):
            TYPE_CODE = 42
            NAME = "empty"
            STATES = ()

        with pytest.raises(FirmwareError):
            FirmwareImage().register(Empty())

    def test_program_must_include_architectural_states(self):
        class NoDone(CfaProgram):
            TYPE_CODE = 43
            NAME = "nodone"
            STATES = (STATE_START, "X")

        with pytest.raises(FirmwareError):
            FirmwareImage().register(NoDone())

    def test_all_builtin_programs_fit_the_state_budget(self):
        for program in (
            LinkedListCfa(),
            HashTableCfa(),
            SkipListCfa(),
            BinaryTreeCfa(),
            TrieCfa(),
        ):
            program.validate(256)
            assert STATE_DONE in program.STATES


class TestQueryStateTable:
    def ctx(self):
        return QueryContext(header_addr=0x40, key_addr=0x80)

    def test_allocate_until_full(self):
        qst = QueryStateTable(3)
        entries = [qst.allocate(self.ctx(), blocking=True) for _ in range(3)]
        assert all(e is not None for e in entries)
        assert {e.index for e in entries} == {0, 1, 2}
        assert qst.allocate(self.ctx(), blocking=True) is None
        assert qst.free_slots == 0

    def test_release_recycles_lowest_slot(self):
        qst = QueryStateTable(2)
        first = qst.allocate(self.ctx(), blocking=True)
        qst.allocate(self.ctx(), blocking=True)
        qst.release(first)
        again = qst.allocate(self.ctx(), blocking=False, result_addr=0x999)
        assert again.index == first.index
        assert not again.mode_blocking
        assert again.result_addr == 0x999

    def test_double_release_rejected(self):
        qst = QueryStateTable(1)
        entry = qst.allocate(self.ctx(), blocking=True)
        qst.release(entry)
        with pytest.raises(AcceleratorError):
            qst.release(entry)

    def test_occupancy_sampling(self):
        qst = QueryStateTable(4)
        entry = qst.allocate(self.ctx(), blocking=True)
        qst.release(entry)
        assert 0.0 < qst.mean_occupancy() <= 1.0

    def test_non_blocking_listing(self):
        qst = QueryStateTable(4)
        qst.allocate(self.ctx(), blocking=True)
        nb = qst.allocate(self.ctx(), blocking=False, result_addr=8)
        assert qst.non_blocking_entries() == [nb]

    def test_zero_capacity_rejected(self):
        with pytest.raises(AcceleratorError):
            QueryStateTable(0)


class TestDpuPools:
    def test_pool_picks_earliest_free_unit(self):
        pool = UnitPool(2, "test")
        a = pool.issue(0, 10)   # unit 0 busy until 10
        b = pool.issue(0, 10)   # unit 1 busy until 10
        c = pool.issue(0, 10)   # queues behind the earliest (10)
        assert (a, b) == (10, 10)
        assert c == 20

    def test_queue_cycles_accounted(self):
        pool = UnitPool(1, "test")
        pool.issue(0, 5)
        pool.issue(0, 5)
        assert pool.stats.counter("queue_cycles").value == 5

    def test_comparator_busy_scales_with_bytes(self):
        pool = ComparatorPool(1, "cmp")
        short = pool.compare(0, 8)
        pool.reset_timing()
        long = pool.compare(0, 100)
        assert long - 0 == 13  # ceil(100/8)
        assert short == 1

    def test_hash_unit_setup_plus_per_qword(self):
        unit = HashUnit(setup_cycles=3)
        assert unit.hash(0, 16) == 3 + 2

    def test_alu_pool_latency(self):
        pool = AluPool(5, "alus")
        assert pool.alu(100, 2) == 102

    def test_invalid_issue_rejected(self):
        pool = UnitPool(1, "test")
        with pytest.raises(AcceleratorError):
            pool.issue(0, 0)
        with pytest.raises(AcceleratorError):
            UnitPool(0, "empty")


class TestStepOutcome:
    def test_internal_transition_has_no_action(self):
        outcome = StepOutcome("NEXT")
        assert outcome.action is None
        assert outcome.next_state == "NEXT"

    def test_terminal_actions(self):
        assert Done(5).value == 5
        assert Done(None).value is None
        fault = Fault(detail="boom")
        assert fault.code == 3  # RESULT_FAULT
        assert HashOp("key", "h").kind == "fnv1a"
        assert AluOp().cycles == 1
