"""Integration tests: workloads end-to-end on the simulated system.

These are the load-bearing tests of the reproduction: for every benchmark,
the accelerator's answers must equal the software reference, and the QEI
run must be faster than the baseline.
"""

import pytest

from repro import small_config
from repro.system import System
from repro.workloads import (
    TupleSpaceWorkload,
    make_workload,
    run_baseline,
    run_qei,
)

SMALL_PARAMS = {
    "dpdk": dict(num_flows=256, num_buckets=128, num_queries=40),
    "rocksdb": dict(num_items=200, num_queries=20),
    "jvm": dict(num_objects=400, num_queries=30),
    "snort": dict(num_keywords=80, payload_bytes=96, num_queries=4),
    "flann": dict(num_tables=4, num_items=200, num_points=5, num_buckets=128),
}


def build(name, scheme="core-integrated"):
    system = System(small_config(), scheme)
    workload = make_workload(name, system, **SMALL_PARAMS[name])
    return system, workload


@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
def test_baseline_trace_produces_expected_values(name):
    system, workload = build(name)
    trace, values = workload.baseline_trace()
    assert values == workload.expected
    assert len(trace) > len(workload.queries)


@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
def test_qei_results_match_software(name):
    system, workload = build(name)
    run_qei(system, workload)  # verify=True raises on any mismatch


@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
def test_qei_is_faster_than_baseline(name):
    system, workload = build(name)
    baseline = run_baseline(system, workload)
    system2, workload2 = build(name)
    qei = run_qei(system2, workload2)
    assert qei.cycles < baseline.cycles, (
        f"{name}: qei={qei.cycles} baseline={baseline.cycles}"
    )


@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
def test_qei_reduces_dynamic_instructions(name):
    system, workload = build(name)
    baseline = run_baseline(system, workload)
    system2, workload2 = build(name)
    qei = run_qei(system2, workload2)
    assert qei.instructions < baseline.instructions


def test_nonblocking_tuple_space_correct():
    system = System(small_config())
    workload = TupleSpaceWorkload(
        system, num_tuples=3, flows_per_tuple=64, num_packets=8, num_buckets=128
    )
    workload.build()
    result = run_qei(system, workload, non_blocking=True, poll_every=workload.nb_poll_every())
    assert result.queries == 24
    # Results land in memory: spot-check the status flags.
    trace, batches = workload.qei_nb_trace()
    assert batches


def test_query_density_shapes_parallelism():
    """RocksDB's heavy seek loop must limit overlap more than DPDK's."""
    system_d, wl_d = build("dpdk")
    base_d = run_baseline(system_d, wl_d)
    system_d2, wl_d2 = build("dpdk")
    qei_d = run_qei(system_d2, wl_d2)

    system_r, wl_r = build("rocksdb")
    base_r = run_baseline(system_r, wl_r)
    system_r2, wl_r2 = build("rocksdb")
    qei_r = run_qei(system_r2, wl_r2)

    # Both speed up...
    assert base_d.cycles > qei_d.cycles
    assert base_r.cycles > qei_r.cycles


def test_jvm_paths_are_deep():
    system, workload = build("jvm")
    assert workload.mean_path_depth() > 5


def test_workload_registry_rejects_unknown():
    system = System(small_config())
    with pytest.raises(ValueError):
        make_workload("nope", system)
