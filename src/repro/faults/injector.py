"""Seed-driven fault injector over simulated memory (the chaos half).

The injector mutates a *live* data structure the way a hostile or buggy
cloud tenant would: corrupting its single-cacheline metadata header,
breaking pointer chains mid-structure, flipping stored key bytes, or
unmapping a page the accelerator is about to walk through.  Every mutation
is recorded in an undo log so :meth:`FaultInjector.heal` restores memory
byte-exactly — modelling the OS repairing the damage before the software
fallback retries.

All strategies are driven by one ``random.Random`` instance, so a campaign
seeded identically reproduces the identical fault sequence.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.abort import AbortCode
from ..core.header import HEADER_BYTES, DataStructureHeader, StructureType
from ..errors import ReproError
from ..mem.paging import AddressSpace, PageTableEntry

#: Node-layout constants shared with :mod:`repro.core.programs`.
_LIST_NODE_NEXT = 16
_TREE_LEFT, _TREE_RIGHT = 16, 24
_SKIP_NEXT0 = 24
_TRIE_FAIL, _TRIE_EDGE_COUNT, _TRIE_EDGES_PTR = 0, 16, 24
_EDGE_BYTES = 16
_SLOT_BYTES = 16

#: Far above any arena allocation; asserted unmapped before use.
DANGLE_BASE = 0x7FFF_F000_0000

#: Cap on nodes discovered per structure (keeps injection O(1)-ish).
DISCOVER_LIMIT = 96


class FaultKind(str, enum.Enum):
    """The fault taxonomy (docs/fault-injection.md)."""

    HEADER_CLEAR_VALID = "header-clear-valid"
    HEADER_BAD_MAGIC = "header-bad-magic"
    HEADER_BAD_TYPE = "header-bad-type"
    HEADER_BAD_SUBTYPE = "header-bad-subtype"
    HEADER_BAD_KEY_LENGTH = "header-bad-key-length"
    HEADER_BAD_SIZE = "header-bad-size"
    HEADER_BAD_AUX = "header-bad-aux"
    POINTER_DANGLE = "pointer-dangle"
    POINTER_NULL_KEY = "pointer-null-key"
    POINTER_CYCLE = "pointer-cycle"
    KEY_FLIP = "key-flip"
    PAGE_UNMAP = "page-unmap"
    INTERRUPT_FLUSH = "interrupt-flush"
    SLICE_FAIL = "slice-fail"
    SLICE_FLAP = "slice-flap"
    FIRMWARE_SWAP = "firmware-swap"
    NODE_KILL = "node-kill"
    NODE_FLAP = "node-flap"
    NET_PARTITION = "net-partition"
    #: Replication faults (docs/recovery.md): a replica whose apply stream
    #: is delivered late, and a crashed node restarting with the tail of
    #: its commit log missing (it must detect the ordinal gap and
    #: full-resync rather than ship or serve its stale history).
    REPLICA_LAG = "replica-lag"
    LOG_TRUNCATE = "log-truncate"
    WRITE_ABORT = "write-abort"
    VERSION_STORM = "version-storm"
    RESIZE_STALL = "resize-stall"


#: Infrastructure kinds are machine state, not memory state: the campaign
#: raises them through the System control surface (``fail_slice``,
#: ``recover_slice``, ``update_firmware``), never through :meth:`inject`.
MACHINE_KINDS = frozenset(
    {
        FaultKind.INTERRUPT_FLUSH,
        FaultKind.SLICE_FAIL,
        FaultKind.SLICE_FLAP,
        FaultKind.FIRMWARE_SWAP,
    }
)

#: Cluster-scope kinds operate on whole serving nodes and LB<->node links,
#: not on one machine; they are raised through the SimulatedCluster fault
#: surface (``fail_node``/``recover_node``/``partition``/``heal``) by the
#: cluster-chaos harness and never appear in single-machine campaigns.
CLUSTER_KINDS = frozenset(
    {
        FaultKind.NODE_KILL,
        FaultKind.NODE_FLAP,
        FaultKind.NET_PARTITION,
        FaultKind.REPLICA_LAG,
        FaultKind.LOG_TRUNCATE,
    }
)

#: Write-path kinds (docs/mutations.md) exercise the seqlock protocol —
#: a dead writer's orphaned lock, a reader racing a storm of version
#: bumps, a write landing while an online resize is stalled mid-migration.
#: They are orchestrated through the mutation control surface
#: (``System.mutations()`` / ``System.start_resize``) by the campaign
#: driver, never through :meth:`inject`, and only against structures whose
#: workload supports mutation.
WRITE_KINDS = frozenset(
    {
        FaultKind.WRITE_ABORT,
        FaultKind.VERSION_STORM,
        FaultKind.RESIZE_STALL,
    }
)


#: Abort codes each kind may legitimately surface.  Pointer faults planted
#: off the queried path may also be *masked* (the query completes); the
#: campaign validates completed results against the un-faulted oracle.
EXPECTED_CODES: Dict[FaultKind, Tuple[AbortCode, ...]] = {
    FaultKind.HEADER_CLEAR_VALID: (AbortCode.HEADER_INVALID,),
    FaultKind.HEADER_BAD_MAGIC: (AbortCode.BAD_MAGIC,),
    FaultKind.HEADER_BAD_TYPE: (AbortCode.BAD_TYPE,),
    FaultKind.HEADER_BAD_SUBTYPE: (AbortCode.BAD_SUBTYPE,),
    FaultKind.HEADER_BAD_KEY_LENGTH: (AbortCode.BAD_KEY_LENGTH,),
    FaultKind.HEADER_BAD_SIZE: (AbortCode.BAD_SIZE,),
    FaultKind.HEADER_BAD_AUX: (AbortCode.BAD_AUX,),
    FaultKind.POINTER_DANGLE: (AbortCode.SEGFAULT,),
    FaultKind.POINTER_NULL_KEY: (AbortCode.NULL_POINTER, AbortCode.SEGFAULT),
    FaultKind.POINTER_CYCLE: (
        AbortCode.WATCHDOG,
        AbortCode.NULL_POINTER,
        AbortCode.SEGFAULT,
    ),
    FaultKind.KEY_FLIP: (),
    FaultKind.PAGE_UNMAP: (AbortCode.SEGFAULT,),
    FaultKind.INTERRUPT_FLUSH: (AbortCode.FLUSH,),
    FaultKind.SLICE_FAIL: (AbortCode.SLICE_DOWN,),
    FaultKind.SLICE_FLAP: (AbortCode.SLICE_DOWN,),
    # A hot-swap quiesces instead of aborting: queries drain, then the
    # table swaps; no abort code is ever legitimate.
    FaultKind.FIRMWARE_SWAP: (),
    # Cluster-scope faults never surface accelerator abort codes: the LB
    # masks them with replica failover (timeouts and retries, not aborts).
    FaultKind.NODE_KILL: (),
    FaultKind.NODE_FLAP: (),
    FaultKind.NET_PARTITION: (),
    # Replication faults surface as latency (quorum waits) or a recovery
    # resync, never as accelerator aborts.
    FaultKind.REPLICA_LAG: (),
    FaultKind.LOG_TRUNCATE: (),
    # Seqlock contention and resize routing both surface as
    # VERSION_CONFLICT; the software path then applies (or re-reads)
    # against settled state.
    FaultKind.WRITE_ABORT: (AbortCode.VERSION_CONFLICT,),
    FaultKind.VERSION_STORM: (AbortCode.VERSION_CONFLICT,),
    FaultKind.RESIZE_STALL: (AbortCode.VERSION_CONFLICT,),
}

#: Kinds whose damage can miss the queried path entirely (masked outcome).
MASKABLE_KINDS = frozenset(
    {
        FaultKind.POINTER_DANGLE,
        FaultKind.POINTER_NULL_KEY,
        FaultKind.POINTER_CYCLE,
        FaultKind.KEY_FLIP,
        FaultKind.PAGE_UNMAP,
        FaultKind.INTERRUPT_FLUSH,
        # Multi-slice schemes reroute around a dead slice, and a swap
        # drains cleanly, so queries routinely complete unaffected.
        FaultKind.SLICE_FAIL,
        FaultKind.SLICE_FLAP,
        FaultKind.FIRMWARE_SWAP,
        # Replicated serving masks whole-node loss the same way; a lagging
        # or truncated replica is masked by quorums and the full resync.
        FaultKind.NODE_KILL,
        FaultKind.NODE_FLAP,
        FaultKind.NET_PARTITION,
        FaultKind.REPLICA_LAG,
        FaultKind.LOG_TRUNCATE,
        # A read threading the gap between two version bumps completes
        # untouched, as does one that lands entirely old-or-new during a
        # stalled resize.
        FaultKind.VERSION_STORM,
        FaultKind.RESIZE_STALL,
    }
)

#: Header-field kinds applicable to every structure type.
_GENERIC_HEADER_KINDS = (
    FaultKind.HEADER_CLEAR_VALID,
    FaultKind.HEADER_BAD_MAGIC,
    FaultKind.HEADER_BAD_TYPE,
    FaultKind.HEADER_BAD_SUBTYPE,
    FaultKind.HEADER_BAD_KEY_LENGTH,
)

#: Structure-type -> fault kinds that make sense for it.
KINDS_BY_TYPE: Dict[StructureType, Tuple[FaultKind, ...]] = {
    StructureType.LINKED_LIST: _GENERIC_HEADER_KINDS
    + (
        FaultKind.POINTER_DANGLE,
        FaultKind.POINTER_NULL_KEY,
        FaultKind.POINTER_CYCLE,
        FaultKind.KEY_FLIP,
        FaultKind.PAGE_UNMAP,
    ),
    StructureType.HASH_TABLE: _GENERIC_HEADER_KINDS
    + (
        FaultKind.HEADER_BAD_SIZE,
        FaultKind.POINTER_DANGLE,
        FaultKind.KEY_FLIP,
        FaultKind.PAGE_UNMAP,
    ),
    StructureType.SKIP_LIST: _GENERIC_HEADER_KINDS
    + (
        FaultKind.HEADER_BAD_AUX,
        FaultKind.POINTER_DANGLE,
        FaultKind.POINTER_NULL_KEY,
        FaultKind.POINTER_CYCLE,
        FaultKind.KEY_FLIP,
        FaultKind.PAGE_UNMAP,
    ),
    StructureType.BINARY_TREE: _GENERIC_HEADER_KINDS
    + (
        FaultKind.POINTER_DANGLE,
        FaultKind.POINTER_NULL_KEY,
        FaultKind.POINTER_CYCLE,
        FaultKind.KEY_FLIP,
        FaultKind.PAGE_UNMAP,
    ),
    StructureType.TRIE: _GENERIC_HEADER_KINDS
    + (
        FaultKind.POINTER_DANGLE,
        FaultKind.POINTER_CYCLE,
        FaultKind.PAGE_UNMAP,
    ),
}


@dataclass
class InjectedFault:
    """What one injection did, for campaign bookkeeping."""

    kind: FaultKind
    description: str
    expected: Tuple[AbortCode, ...] = ()
    #: Addresses the injection touched (pokes and unmapped pages).
    touched: Tuple[int, ...] = ()


class InjectionError(ReproError):
    """The injector could not apply the requested fault kind here."""


class FaultInjector:
    """Applies one fault at a time to a structure, with byte-exact heal."""

    def __init__(self, space: AddressSpace, rng: Optional[random.Random] = None):
        self.space = space
        self.rng = rng or random.Random(0)
        self._pokes: List[Tuple[int, bytes]] = []
        self._unmapped: List[Tuple[int, PageTableEntry]] = []
        #: Bumped per injection so deferred repairs (e.g. an OS-repair event
        #: scheduled on the engine) can tell they outlived their fault.
        self.epoch = 0

    # ------------------------------------------------------------------ #
    # Undo log
    # ------------------------------------------------------------------ #

    @property
    def armed(self) -> bool:
        """True while injected damage is still live in memory."""
        return bool(self._pokes or self._unmapped)

    def heal(self) -> None:
        """Undo every live mutation byte-exactly (pages first, then bytes)."""
        while self._unmapped:
            vaddr, entry = self._unmapped.pop()
            self.space.restore_page(vaddr, entry)
        while self._pokes:
            vaddr, original = self._pokes.pop()
            self.space.write(vaddr, original)

    def _poke(self, vaddr: int, data: bytes) -> None:
        self._pokes.append((vaddr, self.space.read(vaddr, len(data))))
        self.space.write(vaddr, data)

    def _poke_u64(self, vaddr: int, value: int) -> None:
        self._poke(vaddr, value.to_bytes(8, "little"))

    def _unmap(self, vaddr: int) -> None:
        page = vaddr - vaddr % self.space.page_bytes
        entry = self.space.unmap_page(page, free_frame=False)
        self._unmapped.append((page, entry))

    def _u64(self, vaddr: int) -> int:
        return self.space.read_u64(vaddr)

    # ------------------------------------------------------------------ #
    # Injection entry point
    # ------------------------------------------------------------------ #

    def kinds_for(self, header_addr: int) -> Tuple[FaultKind, ...]:
        """The fault kinds applicable to the structure at ``header_addr``."""
        header = DataStructureHeader.load(self.space, header_addr)
        return KINDS_BY_TYPE.get(header.structure_type, _GENERIC_HEADER_KINDS)

    def inject(self, kind: FaultKind, header_addr: int) -> InjectedFault:
        """Apply one fault of ``kind`` to the structure at ``header_addr``.

        Exactly one fault may be armed at a time; heal the previous one
        first.  ``MACHINE_KINDS`` are machine state, not memory state — the
        campaign raises them through ``Accelerator.flush()`` or the
        ``System`` slice/firmware control surface directly.
        """
        if self.armed:
            raise InjectionError("previous fault not healed; call heal() first")
        if kind in MACHINE_KINDS:
            raise InjectionError(
                f"{kind.value} is machine state; raise it via the "
                "Accelerator/System control surface, not inject()"
            )
        if kind in WRITE_KINDS:
            raise InjectionError(
                f"{kind.value} is write-path state; orchestrate it via "
                "System.mutations()/start_resize(), not inject()"
            )
        self.epoch += 1
        header = DataStructureHeader.load(self.space, header_addr)
        handler = getattr(self, f"_inject_{kind.name.lower()}")
        description = handler(header_addr, header)
        return InjectedFault(
            kind=kind,
            description=description,
            expected=EXPECTED_CODES[kind],
            touched=tuple(addr for addr, _ in self._pokes)
            + tuple(addr for addr, _ in self._unmapped),
        )

    # ------------------------------------------------------------------ #
    # Header corruption (offsets per core/header.py)
    # ------------------------------------------------------------------ #

    def _inject_header_clear_valid(self, addr: int, header) -> str:
        self._poke(addr + 12, (header.flags & ~0x1).to_bytes(4, "little"))
        return "cleared the header VALID flag"

    def _inject_header_bad_magic(self, addr: int, header) -> str:
        # Bytes 32..39 are the seqlock version word (core/header.py): any
        # value there is legitimate mutation state, so garbage must land in
        # the genuinely-reserved tail 40..63 to be a magic violation.
        offset = 40 + self.rng.randrange(HEADER_BYTES - 40)
        self._poke(addr + offset, bytes([1 + self.rng.randrange(255)]))
        return f"wrote garbage into reserved header byte {offset}"

    def _inject_header_bad_type(self, addr: int, header) -> str:
        self._poke(addr + 8, bytes([0xEE]))
        return "replaced the type byte with unknown code 0xEE"

    def _inject_header_bad_subtype(self, addr: int, header) -> str:
        self._poke(addr + 9, bytes([0xFF]))
        return "set the subtype byte to out-of-range 0xFF"

    def _inject_header_bad_key_length(self, addr: int, header) -> str:
        bad = 0 if self.rng.random() < 0.5 else 0x8000
        self._poke(addr + 10, bad.to_bytes(2, "little"))
        return f"set the key-length field to {bad}"

    def _inject_header_bad_size(self, addr: int, header) -> str:
        self._poke(addr + 16, (0).to_bytes(8, "little"))
        return "zeroed the size field (bucket count)"

    def _inject_header_bad_aux(self, addr: int, header) -> str:
        self._poke(addr + 24, (0).to_bytes(8, "little"))
        return "zeroed the aux field (skip-list max level)"

    # ------------------------------------------------------------------ #
    # Pointer-chain corruption
    # ------------------------------------------------------------------ #

    def _dangle_addr(self) -> int:
        for _ in range(64):
            addr = DANGLE_BASE + self.space.page_bytes * self.rng.randrange(1 << 16)
            if not self.space.is_mapped(addr):
                return addr + self.rng.randrange(self.space.page_bytes - 64)
        raise InjectionError("could not find an unmapped dangle target")

    def _inject_pointer_dangle(self, addr: int, header) -> str:
        slots = self._pointer_slots(header)
        if not slots:
            raise InjectionError("structure has no pointer slots to corrupt")
        slot, label = self.rng.choice(slots)
        target = self._dangle_addr()
        self._poke_u64(slot, target)
        return f"pointed {label} at unmapped 0x{target:x}"

    def _inject_pointer_null_key(self, addr: int, header) -> str:
        nodes = self._key_nodes(header)
        if not nodes:
            raise InjectionError("structure has no keyed nodes")
        node = self.rng.choice(nodes)
        self._poke_u64(node, 0)
        return f"zeroed the key pointer of node 0x{node:x}"

    def _inject_pointer_cycle(self, addr: int, header) -> str:
        kind = header.structure_type
        if kind is StructureType.LINKED_LIST:
            nodes = self._list_nodes(header.root_ptr, _LIST_NODE_NEXT)
            if not nodes:
                raise InjectionError("empty list; no cycle possible")
            node = self.rng.choice(nodes)
            self._poke_u64(node + _LIST_NODE_NEXT, nodes[0])
            return f"looped list node 0x{node:x}.next back to the head"
        if kind is StructureType.SKIP_LIST:
            nodes = self._skip_nodes(header.root_ptr)
            if not nodes:
                raise InjectionError("empty skip list; no cycle possible")
            node = self.rng.choice(nodes)
            self._poke_u64(node + _SKIP_NEXT0, node)
            return f"looped skip-list node 0x{node:x}.next[0] onto itself"
        if kind is StructureType.BINARY_TREE:
            nodes = self._tree_nodes(header.root_ptr)
            if not nodes:
                raise InjectionError("empty tree; no cycle possible")
            node = self.rng.choice(nodes)
            self._poke_u64(node + _TREE_LEFT, node)
            self._poke_u64(node + _TREE_RIGHT, node)
            return f"looped both children of BST node 0x{node:x} onto itself"
        if kind is StructureType.TRIE:
            nodes = self._trie_nodes(header.root_ptr)
            candidates = [n for n in nodes if n != header.root_ptr]
            if not candidates:
                raise InjectionError("trie has no non-root nodes")
            node = self.rng.choice(candidates)
            self._poke_u64(node + _TRIE_FAIL, node)
            return f"looped trie node 0x{node:x}'s fail pointer onto itself"
        raise InjectionError(f"no cycle strategy for {kind.name}")

    def _inject_key_flip(self, addr: int, header) -> str:
        keys = self._stored_keys(header)
        if not keys:
            raise InjectionError("structure stores no keys to flip")
        key_addr = self.rng.choice(keys)
        offset = self.rng.randrange(max(1, header.key_length))
        original = self.space.read_u8(key_addr + offset)
        self._poke(key_addr + offset, bytes([original ^ (1 << self.rng.randrange(8))]))
        return f"flipped one bit of the stored key at 0x{key_addr + offset:x}"

    def _inject_page_unmap(self, addr: int, header) -> str:
        nodes = self._all_nodes(header)
        if not nodes:
            raise InjectionError("structure has no nodes; nothing to unmap")
        node = self.rng.choice(nodes)
        self._unmap(node)
        page = node - node % self.space.page_bytes
        return f"unmapped page 0x{page:x} under node 0x{node:x}"

    # ------------------------------------------------------------------ #
    # Structure discovery (functional reads over simulated memory)
    # ------------------------------------------------------------------ #

    def _list_nodes(self, root: int, next_offset: int) -> List[int]:
        nodes: List[int] = []
        seen = set()
        addr = root
        while addr and addr not in seen and len(nodes) < DISCOVER_LIMIT:
            seen.add(addr)
            nodes.append(addr)
            addr = self._u64(addr + next_offset)
        return nodes

    def _skip_nodes(self, head: int) -> List[int]:
        """Level-0 chain, excluding the keyless head sentinel."""
        return self._list_nodes(head, _SKIP_NEXT0)[1:]

    def _tree_nodes(self, root: int) -> List[int]:
        nodes: List[int] = []
        stack = [root] if root else []
        seen = set()
        while stack and len(nodes) < DISCOVER_LIMIT:
            addr = stack.pop()
            if not addr or addr in seen:
                continue
            seen.add(addr)
            nodes.append(addr)
            stack.append(self._u64(addr + _TREE_LEFT))
            stack.append(self._u64(addr + _TREE_RIGHT))
        return nodes

    def _trie_nodes(self, root: int) -> List[int]:
        nodes: List[int] = []
        queue = [root] if root else []
        seen = set()
        while queue and len(nodes) < DISCOVER_LIMIT:
            addr = queue.pop(0)
            if not addr or addr in seen:
                continue
            seen.add(addr)
            nodes.append(addr)
            count = self._u64(addr + _TRIE_EDGE_COUNT)
            edges = self._u64(addr + _TRIE_EDGES_PTR)
            for i in range(min(count, 64)):
                queue.append(self._u64(edges + i * _EDGE_BYTES + 8))
        return nodes

    def _hash_slots(self, header) -> List[int]:
        """Occupied slot addresses of a cuckoo table (sig != 0)."""
        slots: List[int] = []
        total = header.size * header.subtype
        for i in range(min(total, 4 * DISCOVER_LIMIT)):
            slot = header.root_ptr + i * _SLOT_BYTES
            if self._u64(slot):
                slots.append(slot)
                if len(slots) >= DISCOVER_LIMIT:
                    break
        return slots

    def _pointer_slots(self, header) -> List[Tuple[int, str]]:
        """(address, label) of every u64 pointer slot a dangle can target."""
        kind = header.structure_type
        out: List[Tuple[int, str]] = []
        if kind is StructureType.LINKED_LIST:
            for node in self._list_nodes(header.root_ptr, _LIST_NODE_NEXT):
                out.append((node + _LIST_NODE_NEXT, f"list node 0x{node:x}.next"))
        elif kind is StructureType.SKIP_LIST:
            for node in self._list_nodes(header.root_ptr, _SKIP_NEXT0):
                out.append((node + _SKIP_NEXT0, f"skip node 0x{node:x}.next[0]"))
        elif kind is StructureType.BINARY_TREE:
            for node in self._tree_nodes(header.root_ptr):
                out.append((node + _TREE_LEFT, f"BST node 0x{node:x}.left"))
                out.append((node + _TREE_RIGHT, f"BST node 0x{node:x}.right"))
        elif kind is StructureType.TRIE:
            for node in self._trie_nodes(header.root_ptr):
                count = self._u64(node + _TRIE_EDGE_COUNT)
                edges = self._u64(node + _TRIE_EDGES_PTR)
                for i in range(min(count, 8)):
                    out.append(
                        (edges + i * _EDGE_BYTES + 8, f"trie edge {i} of 0x{node:x}")
                    )
        elif kind is StructureType.HASH_TABLE:
            for slot in self._hash_slots(header):
                out.append((slot + 8, f"hash slot 0x{slot:x}.kv"))
        return out

    def _key_nodes(self, header) -> List[int]:
        """Node addresses whose offset-0 word is a key pointer."""
        kind = header.structure_type
        if kind is StructureType.LINKED_LIST:
            return self._list_nodes(header.root_ptr, _LIST_NODE_NEXT)
        if kind is StructureType.SKIP_LIST:
            return self._skip_nodes(header.root_ptr)
        if kind is StructureType.BINARY_TREE:
            return self._tree_nodes(header.root_ptr)
        return []

    def _stored_keys(self, header) -> List[int]:
        """Addresses of stored key bytes (for KEY_FLIP)."""
        kind = header.structure_type
        if kind is StructureType.HASH_TABLE:
            return [self._u64(slot + 8) + 8 for slot in self._hash_slots(header)]
        return [self._u64(node) for node in self._key_nodes(header) if self._u64(node)]

    def _all_nodes(self, header) -> List[int]:
        kind = header.structure_type
        if kind is StructureType.HASH_TABLE:
            return self._hash_slots(header) or [header.root_ptr]
        if kind is StructureType.TRIE:
            return self._trie_nodes(header.root_ptr)
        nodes = self._key_nodes(header)
        return nodes or ([header.root_ptr] if header.root_ptr else [])
