"""Fault injection for the QEI accelerator stack.

A deterministic, seed-driven :class:`~repro.faults.injector.FaultInjector`
mutates live simulated memory and machine state — corrupted headers, broken
pointer chains, flipped key bytes, pages unmapped mid-walk — so campaigns
can prove every hostile input degrades to an abort code plus a correct
software-fallback result (see ``docs/fault-injection.md``).
"""

from .injector import FaultInjector, FaultKind, InjectedFault

__all__ = ["FaultInjector", "FaultKind", "InjectedFault"]
