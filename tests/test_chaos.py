"""Chaos-resilience tests: slice failure/failover, deadlines, breakers,
firmware hot-swap, and the chaos harness contract.

The infrastructure-fault layer must degrade to slower-but-correct service,
never wrong answers or hangs: a dead slice reroutes (or aborts with
``SLICE_DOWN`` and resolves through the software fallback), deadlines shed
instead of dispatching dead work, a poisoned tenant trips its circuit
breaker without dragging the others' p99 down, and a firmware hot-swap
drains in-flight queries before committing atomically.
"""

import pytest

from repro.config import ServeConfig, small_config
from repro.core.abort import AbortCode
from repro.core.accelerator import QueryRequest, QueryStatus
from repro.core.integration import SliceState
from repro.core.programs import HashOfListsCfa
from repro.core.programs_ext import BPlusTreeCfa
from repro.errors import ConfigurationError, FirmwareError
from repro.faults.chaos import ChaosError, chaos_schedule, run_chaos
from repro.serve import (
    BreakerState,
    CircuitBreaker,
    ClosedLoopGenerator,
    QueryServer,
    build_serving_system,
    run_serving,
)
from repro.system import System
from repro.workloads import make_workload


def make_system(scheme="cha-tlb", cores=2):
    system = System(small_config(cores), scheme)
    workload = make_workload(
        "dpdk", system, seed=7, num_flows=256, num_buckets=128, num_queries=32
    )
    system.warm_llc()
    return system, workload


def submit_nb(system, workload, indices):
    base = system.mem.alloc(16 * len(indices), align=64)
    handles = []
    for j, qidx in enumerate(indices):
        system.space.write_u64(base + 16 * j, 0)
        system.space.write_u64(base + 16 * j + 8, 0)
        handles.append(
            system.accelerator.submit(
                QueryRequest(
                    header_addr=workload.header_addr_for(qidx),
                    key_addr=workload._query_addrs[qidx],
                    blocking=False,
                    result_addr=base + 16 * j,
                ),
                system.engine.now,
            )
        )
    return handles


def settle(system, handles):
    for handle in handles:
        if not handle.done:
            system.accelerator.wait_for(handle)


# --------------------------------------------------------------------- #
# Slice health: failover, SLICE_DOWN aborts, recovery
# --------------------------------------------------------------------- #


def test_failed_slice_reroutes_to_survivors():
    system, wl = make_system("cha-tlb")
    integration = system.integration
    home = integration.home_node(0, wl.header_addr_for(0), wl._query_addrs[0])
    system.fail_slice(home)
    assert integration.home_state(home) is SliceState.FAILED
    rerouted = integration.home_node(
        0, wl.header_addr_for(0), wl._query_addrs[0]
    )
    assert rerouted != home
    assert rerouted in integration.routable_homes()
    # The rerouted query still completes with the oracle answer.
    handle = system.accelerator.submit(
        QueryRequest(
            header_addr=wl.header_addr_for(0), key_addr=wl._query_addrs[0]
        ),
        system.engine.now,
    )
    system.accelerator.wait_for(handle)
    assert handle.status is not QueryStatus.ABORTED
    assert handle.value == wl.expected[0]
    # Recovery restores the original routing.
    system.recover_slice(home)
    assert (
        integration.home_node(0, wl.header_addr_for(0), wl._query_addrs[0])
        == home
    )


def test_fail_slice_aborts_in_flight_with_slice_down():
    system, wl = make_system("cha-tlb")
    handles = submit_nb(system, wl, list(range(8)))
    system.engine.advance(5)  # still in the submit network
    victims = {h._home for h in handles}
    victim = sorted(victims)[0]
    system.fail_slice(victim)
    settle(system, handles)
    aborted = [h for h in handles if h.status is QueryStatus.ABORTED]
    for handle in aborted:
        assert handle.abort_code is AbortCode.SLICE_DOWN
    for handle in handles:
        if handle.status is not QueryStatus.ABORTED:
            qidx = handles.index(handle)
            assert handle.value == wl.expected[qidx]
    assert aborted, "at least the victim-bound queries must abort"
    # Every abort resolves through the software fallback.
    for handle in aborted:
        qidx = handles.index(handle)
        outcome = system.fallback.run_software(
            lambda qi=qidx: wl.software_lookup(qi),
            abort_code=AbortCode.SLICE_DOWN,
        )
        assert outcome.resolved
        assert outcome.value == wl.expected[qidx]


def test_single_home_scheme_aborts_while_down_then_recovers():
    system, wl = make_system("device-indirect")
    (home,) = system.integration.accelerator_homes()
    system.fail_slice(home)
    handle = system.accelerator.submit(
        QueryRequest(
            header_addr=wl.header_addr_for(1), key_addr=wl._query_addrs[1]
        ),
        system.engine.now,
    )
    system.accelerator.wait_for(handle)
    assert handle.status is QueryStatus.ABORTED
    assert handle.abort_code is AbortCode.SLICE_DOWN
    system.recover_slice(home)
    handle = system.accelerator.submit(
        QueryRequest(
            header_addr=wl.header_addr_for(1), key_addr=wl._query_addrs[1]
        ),
        system.engine.now,
    )
    system.accelerator.wait_for(handle)
    assert handle.value == wl.expected[1]


def test_fail_slice_rejects_unknown_home():
    system, _ = make_system("cha-tlb")
    with pytest.raises(ConfigurationError):
        system.fail_slice(10_000)


# --------------------------------------------------------------------- #
# Firmware hot-swap
# --------------------------------------------------------------------- #


def test_firmware_hot_swap_waits_for_drain_then_commits():
    system, wl = make_system("cha-tlb")
    handles = submit_nb(system, wl, list(range(8)))
    system.engine.advance(5)
    ticket = system.update_firmware([BPlusTreeCfa(), HashOfListsCfa()])
    assert not ticket.done, "swap must defer until in-flight queries drain"
    assert not system.firmware.supports(BPlusTreeCfa.TYPE_CODE)
    system.engine.run()
    assert ticket.done
    assert system.firmware.supports(BPlusTreeCfa.TYPE_CODE)
    assert system.firmware.supports(HashOfListsCfa.TYPE_CODE)
    settle(system, handles)
    for qidx, handle in enumerate(handles):
        assert handle.status is not QueryStatus.ABORTED
        assert handle.value == wl.expected[qidx]
    # Homes drained for the swap are healthy again.
    for home in system.integration.accelerator_homes():
        assert system.integration.home_state(home) is SliceState.HEALTHY


def test_firmware_swap_rolls_back_on_validation_error():
    system, _ = make_system("cha-tlb")
    with pytest.raises(FirmwareError):
        # Duplicate registration without replace: validation fails on the
        # staged copy; the live table and slice states are untouched.
        system.update_firmware(
            [BPlusTreeCfa(), BPlusTreeCfa()], replace=False
        )
    assert not system.firmware.supports(BPlusTreeCfa.TYPE_CODE)
    for home in system.integration.accelerator_homes():
        assert system.integration.home_state(home) is SliceState.HEALTHY


def test_idle_firmware_swap_commits_immediately():
    system, _ = make_system("device-indirect")
    ticket = system.update_firmware([BPlusTreeCfa()])
    assert ticket.done
    assert system.firmware.supports(BPlusTreeCfa.TYPE_CODE)


# --------------------------------------------------------------------- #
# Deadlines
# --------------------------------------------------------------------- #


def test_deadline_expired_work_is_shed_not_dispatched():
    # A 60-cycle deadline against a 256-cycle flush timer: requests expire
    # inside open bursts and must shed with the distinct SLO outcome.
    config = ServeConfig(
        tenants=2,
        deadline_cycles=60,
        batch_size=16,
        batch_timeout_cycles=256,
        think_cycles=10,
    )
    report = run_serving(
        "cha-tlb", requests=60, seed=7, closed_loop=True, serve_config=config
    )
    aggregate = report.aggregate
    assert aggregate["deadline_shed"] > 0
    assert aggregate["result_errors"] == 0
    # Liveness: every admitted request still terminates.
    assert aggregate["availability"] == 1.0
    assert aggregate["completed"] + aggregate["deadline_shed"] == (
        aggregate["admitted"]
    )


def test_serve_config_validates_resilience_knobs():
    with pytest.raises(ConfigurationError):
        ServeConfig(deadline_cycles=-1)
    with pytest.raises(ConfigurationError):
        ServeConfig(breaker_threshold=0.0)
    with pytest.raises(ConfigurationError):
        ServeConfig(hedge_quantile=100.0)
    with pytest.raises(ConfigurationError):
        ServeConfig(hedge_multiplier=0.5)


# --------------------------------------------------------------------- #
# Circuit breaker
# --------------------------------------------------------------------- #


def breaker_config(**kw):
    defaults = dict(
        tenants=2,
        breaker_window=4,
        breaker_threshold=0.5,
        breaker_open_cycles=100,
        breaker_probes=2,
    )
    defaults.update(kw)
    return ServeConfig(**defaults)


def test_breaker_trips_open_and_rejects():
    breaker = CircuitBreaker(breaker_config())
    for _ in range(4):
        breaker.record(0, False, now=10)
    assert breaker.state_of(0, now=11) is BreakerState.OPEN
    allowed, retry_after = breaker.allow(0, now=11)
    assert not allowed
    assert retry_after == 99  # reopen at 110
    # The healthy tenant's circuit is independent.
    assert breaker.allow(1, now=11) == (True, 0)


def test_breaker_half_open_probes_then_closes():
    breaker = CircuitBreaker(breaker_config())
    for _ in range(4):
        breaker.record(0, False, now=0)
    assert breaker.state_of(0, now=100) is BreakerState.HALF_OPEN
    # Probes are strictly serial: one slot, freed only by its verdict.
    assert breaker.allow(0, now=100) == (True, 0)
    allowed, _ = breaker.allow(0, now=101)
    assert not allowed
    breaker.record(0, True, now=110)
    assert breaker.allow(0, now=110) == (True, 0)
    breaker.record(0, True, now=111)
    assert breaker.state_of(0, now=112) is BreakerState.CLOSED
    assert breaker.allow(0, now=112) == (True, 0)


def test_breaker_half_open_single_probe_slot_under_concurrency():
    """Concurrent same-cycle arrivals during HALF_OPEN must admit exactly
    one probe; the slot re-opens per verdict, never widening the budget."""
    breaker = CircuitBreaker(breaker_config())
    for _ in range(4):
        breaker.record(0, False, now=0)
    assert breaker.state_of(0, now=100) is BreakerState.HALF_OPEN
    verdicts = [breaker.allow(0, now=100)[0] for _ in range(8)]
    assert verdicts.count(True) == 1
    # A burst racing the first verdict still gets exactly one more probe.
    breaker.record(0, True, now=105)
    verdicts = [breaker.allow(0, now=105)[0] for _ in range(8)]
    assert verdicts.count(True) == 1
    # Budget (2 probes) now spent: nothing more until the circuit closes.
    breaker.record(0, True, now=106)
    assert breaker.state_of(0, now=107) is BreakerState.CLOSED


def test_breaker_probe_failure_retrips():
    breaker = CircuitBreaker(breaker_config())
    for _ in range(4):
        breaker.record(0, False, now=0)
    assert breaker.state_of(0, now=100) is BreakerState.HALF_OPEN
    breaker.allow(0, now=100)
    breaker.record(0, False, now=105)
    assert breaker.state_of(0, now=106) is BreakerState.OPEN


def poisoned_server(config, seed=7):
    """A server whose tenant-0 queries all point at a corrupt header."""
    system, built = build_serving_system(
        "cha-tlb", seed=seed, serve_config=config
    )
    bad_header = system.mem.alloc(64, align=64)  # zeroed: VALID flag clear

    class PoisonedServer(QueryServer):
        def _prepare_nb(self, request):
            qreq = super()._prepare_nb(request)
            if request.tenant == 0:
                qreq.header_addr = bad_header
            return qreq

    server = PoisonedServer(system, built, config, seed=seed)
    for tenant in range(config.tenants):
        server.attach(
            ClosedLoopGenerator(
                tenant,
                config=config,
                num_requests=40,
                num_queries=len(built.queries),
                seed=seed,
                stats=system.stats,
            )
        )
    return server


def test_breaker_isolates_poisoned_tenant():
    # Baseline: no faults, no breaker.
    base_config = ServeConfig(tenants=4)
    baseline = run_serving(
        "cha-tlb", requests=160, seed=7, closed_loop=True,
        serve_config=base_config,
    )
    # Tenant 0 at 100% aborts (corrupt header), breaker armed.
    config = ServeConfig(
        tenants=4,
        breaker_window=8,
        breaker_threshold=0.5,
        breaker_open_cycles=20_000,
        breaker_probes=2,
    )
    report = poisoned_server(config).run()
    poisoned_row = report.tenant(0)
    assert poisoned_row["breaker_rejected"] > 0, "open circuit must shed"
    assert poisoned_row["fallbacks"] > 0
    assert report.aggregate["result_errors"] == 0
    # The healthy tenants' p99 stays within 2x of the no-fault baseline.
    for tenant in (1, 2, 3):
        assert report.tenant(tenant)["p99"] <= 2 * baseline.tenant(tenant)[
            "p99"
        ], f"tenant {tenant} p99 degraded more than 2x"


# --------------------------------------------------------------------- #
# Hedged retries
# --------------------------------------------------------------------- #


def test_hedged_retries_are_bounded_and_correct():
    config = ServeConfig(
        tenants=2,
        hedge_quantile=50.0,
        hedge_multiplier=1.0,
        hedge_min_samples=4,
        hedge_budget=16,
    )
    report = run_serving(
        "cha-tlb", requests=120, seed=7, closed_loop=True, serve_config=config
    )
    aggregate = report.aggregate
    assert 0 < aggregate["hedges"] <= config.hedge_budget
    # A hedge twin must never double-resolve or corrupt a result slot.
    assert aggregate["completed"] == 120
    assert aggregate["result_errors"] == 0
    assert aggregate["availability"] == 1.0


# --------------------------------------------------------------------- #
# The chaos harness
# --------------------------------------------------------------------- #


def test_chaos_schedule_covers_the_contract():
    events = chaos_schedule([0, 1, 2, 3], 400)
    actions = [event.action for event in events]
    assert actions.count("slice-fail") == 2
    assert actions.count("slice-recover") == 2
    assert actions.count("firmware-swap") == 1
    assert [event.trigger for event in events] == sorted(
        event.trigger for event in events
    )


def test_chaos_run_meets_contract_and_is_deterministic():
    report = run_chaos("cha-tlb", seed=7, requests=200)
    checks = report.checks
    assert checks["result_errors"] == 0
    assert checks["failed"] == 0
    assert checks["availability"] == 1.0
    assert checks["slice_kills"] == 2
    assert checks["slice_recoveries"] == 2
    assert checks["firmware_swaps"] == 1
    assert checks["swap_committed"]
    assert checks["extension_programs_live"]
    assert all(event["fired_cycle"] is not None for event in report.events)
    # Phase rows segment the timeline at every event.
    names = [phase["name"] for phase in report.serving["phases"]]
    assert names[0] == "baseline" and len(names) == 6
    # Same seed -> byte-identical report.
    again = run_chaos("cha-tlb", seed=7, requests=200)
    assert again.dump() == report.dump()


def test_chaos_contract_violation_raises():
    report = run_chaos("cha-tlb", seed=7, requests=200, verify=False)
    report.checks["result_errors"] = 3
    from repro.faults.chaos import _verify

    with pytest.raises(ChaosError):
        _verify(report)
