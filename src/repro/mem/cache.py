"""Set-associative cache model with LRU replacement.

The cache tracks *presence* of physical cachelines (tags only; data lives in
:class:`~repro.mem.physical.PhysicalMemory`).  It is used for L1D, L2 and
each LLC slice.  Writeback/dirty state is tracked so eviction statistics are
meaningful, but coherence is modelled at the hierarchy level (single-writer
approximation — the paper evaluates single-threaded ROIs, Sec. VI-B).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..config import CacheConfig
from ..sim.stats import StatsRegistry


class CacheLevelName(str, enum.Enum):
    """Symbolic cache level names, used in access breakdowns."""

    L1 = "l1"
    L2 = "l2"
    LLC = "llc"
    DRAM = "dram"


class Cache:
    """One set-associative, write-back, write-allocate cache."""

    def __init__(
        self,
        config: CacheConfig,
        *,
        stats: Optional[StatsRegistry] = None,
        name: str = "cache",
    ) -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        # set index -> OrderedDict[tag, dirty]
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}
        self.stats = (stats or StatsRegistry()).scoped(name)
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._evictions = self.stats.counter("evictions")
        self._writebacks = self.stats.counter("writebacks")

    # ------------------------------------------------------------------ #

    def _index_tag(self, line_addr: int) -> Tuple[int, int]:
        return line_addr % self.num_sets, line_addr // self.num_sets

    def _set(self, index: int) -> "OrderedDict[int, bool]":
        entry_set = self._sets.get(index)
        if entry_set is None:
            entry_set = OrderedDict()
            self._sets[index] = entry_set
        return entry_set

    # ------------------------------------------------------------------ #

    def access(self, line_addr: int, *, write: bool = False) -> bool:
        """Look up a cacheline (by line address = paddr // 64).

        Returns True on hit.  On miss the line is *not* filled; callers
        decide (the hierarchy fills after resolving the next level).
        """
        index, tag = self._index_tag(line_addr)
        entry_set = self._set(index)
        if tag in entry_set:
            entry_set.move_to_end(tag)
            if write:
                entry_set[tag] = True
            self._hits.add()
            return True
        self._misses.add()
        return False

    def probe(self, line_addr: int) -> bool:
        """Presence check without LRU update or statistics."""
        index, tag = self._index_tag(line_addr)
        return tag in self._sets.get(index, ())

    def fill(self, line_addr: int, *, dirty: bool = False) -> Optional[int]:
        """Insert a line; returns the evicted line address (or None)."""
        index, tag = self._index_tag(line_addr)
        entry_set = self._set(index)
        victim_line = None
        if tag in entry_set:
            entry_set.move_to_end(tag)
            entry_set[tag] = entry_set[tag] or dirty
            return None
        if len(entry_set) >= self.config.associativity:
            victim_tag, victim_dirty = entry_set.popitem(last=False)
            victim_line = victim_tag * self.num_sets + index
            self._evictions.add()
            if victim_dirty:
                self._writebacks.add()
        entry_set[tag] = dirty
        return victim_line

    def invalidate(self, line_addr: Optional[int] = None) -> None:
        """Drop one line, or flush everything when ``line_addr`` is None."""
        if line_addr is None:
            self._sets.clear()
            return
        index, tag = self._index_tag(line_addr)
        self._sets.get(index, OrderedDict()).pop(tag, None)

    # ------------------------------------------------------------------ #

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets.values())

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
