"""Pointer-based data structures resident in *simulated* memory.

Every structure here is genuinely serialized into a simulated process
address space (little-endian, 8-byte pointers) and queried by pointer
chasing — both by the software baseline (which emits micro-op traces for the
core timing model) and by the QEI accelerator's CFA programs (which interpret
the same bytes).  The two paths must agree; tests assert they do.
"""

from .base import ProcessMemory
from .bst import BinarySearchTree
from .btree import BPlusTree
from .hashtable import CuckooHashTable
from .linkedlist import LinkedList
from .skiplist import SkipList
from .trie import AhoCorasickTrie, LpmTrie, Trie
from .hash_of_lists import HashOfLists

__all__ = [
    "AhoCorasickTrie",
    "BPlusTree",
    "BinarySearchTree",
    "CuckooHashTable",
    "HashOfLists",
    "LinkedList",
    "LpmTrie",
    "ProcessMemory",
    "SkipList",
    "Trie",
]
