"""Tuple-space search over DPDK hash tables: the QUERY_NB showcase (Fig. 10).

Packet classification with T tuples keeps one hash table per tuple mask;
every packet's key is looked up in *all* T tables, and the highest-priority
hit wins.  The probes are mutually independent, so the software can issue
32 x T non-blocking queries before polling — the paper's ideal use case for
QUERY_NB (Sec. VII-B).
"""

from __future__ import annotations

from typing import List, Optional

from ..cpu.trace import TraceBuilder
from ..datastructs import CuckooHashTable
from ..datastructs.hashing import mix64, primary_hash
from ..system import System
from .base import QueryWorkload
from .generator import make_keys, pick_queries

KEY_LENGTH = 16


def tuple_key(packet_key: bytes, tuple_index: int) -> bytes:
    """Apply the tuple's mask: a per-tuple deterministic key transform."""
    h = mix64(primary_hash(packet_key) ^ (0xABCDEF137 * (tuple_index + 1)))
    return h.to_bytes(8, "little") + packet_key[8:]


class TupleSpaceWorkload(QueryWorkload):
    """Packet classification across ``num_tuples`` hash tables."""

    name = "tuple-space"
    roi_other_work = 6        # per-probe mask application
    app_other_work = 220

    def __init__(
        self,
        system: System,
        *,
        num_tuples: int = 5,
        flows_per_tuple: int = 512,
        num_packets: int = 64,
        num_buckets: int = 512,
        match_tuple_ratio: float = 0.4,
        seed: int = 31,
    ) -> None:
        super().__init__(system, num_queries=num_packets * num_tuples, seed=seed)
        self.num_tuples = num_tuples
        self.flows_per_tuple = flows_per_tuple
        self.num_packets = num_packets
        self.num_buckets = num_buckets
        self.match_tuple_ratio = match_tuple_ratio
        self.tables: List[CuckooHashTable] = []
        self._probe_tables: List[int] = []

    def build(self) -> None:
        packets = make_keys(
            self.flows_per_tuple, KEY_LENGTH, seed=self.seed
        )
        self.tables = []
        for t in range(self.num_tuples):
            table = CuckooHashTable(
                self.system.mem, key_length=KEY_LENGTH, num_buckets=self.num_buckets
            )
            # Each tuple's table holds a share of the flows under its mask.
            share = packets[:: max(1, int(1 / self.match_tuple_ratio))]
            for i, flow in enumerate(share):
                table.insert(tuple_key(flow, t), 0x300000 + t * 10_000 + i)
            self.tables.append(table)

        stream = pick_queries(
            packets, self.num_packets, key_length=KEY_LENGTH, seed=self.seed + 1
        )
        queries, expected, probe_tables = [], [], []
        for packet in stream:
            for t in range(self.num_tuples):
                probe = tuple_key(packet, t)
                queries.append(probe)
                probe_tables.append(t)
                expected.append(self.tables[t].lookup(probe))
        self._probe_tables = probe_tables
        self._register_queries(queries, expected)

    def header_addr_for(self, index: int) -> int:
        return self.tables[self._probe_tables[index]].header_addr

    def emit_software_query(self, builder: TraceBuilder, index: int):
        table = self.tables[self._probe_tables[index]]
        return table.emit_lookup(
            builder, self._query_addrs[index], self._queries[index]
        )

    def nb_poll_every(self) -> int:
        """The paper polls every 32 packets: 32 x tuple_count requests."""
        return 32 * self.num_tuples
