"""Tests for software-side update operations (Sec. IV-A).

Updates stay in software; these tests verify the structures stay consistent
after removals — including that the *accelerator* sees the post-update
state, since QEI reads the same simulated memory.
"""

import pytest

from repro import small_config
from repro.core.accelerator import QueryRequest, QueryStatus
from repro.datastructs import (
    BinarySearchTree,
    CuckooHashTable,
    LinkedList,
    ProcessMemory,
    SkipList,
)
from repro.system import System


def keys_of(n, length=16):
    return [(b"k%d" % i).ljust(length, b"_") for i in range(n)]


@pytest.fixture
def mem():
    return ProcessMemory(physical_bytes=64 * 1024 * 1024)


class TestLinkedListUpdates:
    def test_remove_head_middle_tail(self, mem):
        ll = LinkedList(mem, key_length=16)
        keys = keys_of(5)
        for i, k in enumerate(keys):
            ll.insert(k, i)
        # Prepend order: keys[4] is head, keys[0] is tail.
        assert ll.remove(keys[4])  # head
        assert ll.remove(keys[2])  # middle
        assert ll.remove(keys[0])  # tail
        assert len(ll) == 2
        assert ll.lookup(keys[4]) is None
        assert ll.lookup(keys[3]) == 3
        assert ll.lookup(keys[1]) == 1

    def test_remove_absent_returns_false(self, mem):
        ll = LinkedList(mem, key_length=16)
        ll.insert(keys_of(1)[0], 1)
        assert not ll.remove(b"missing".ljust(16, b"_"))
        assert len(ll) == 1

    def test_update_in_place(self, mem):
        ll = LinkedList(mem, key_length=16)
        k = keys_of(1)[0]
        ll.insert(k, 1)
        assert ll.update(k, 99)
        assert ll.lookup(k) == 99
        assert not ll.update(b"missing".ljust(16, b"_"), 5)


class TestHashTableDelete:
    def test_delete_then_lookup_misses(self, mem):
        ht = CuckooHashTable(mem, key_length=16, num_buckets=64)
        keys = keys_of(80)
        for i, k in enumerate(keys):
            ht.insert(k, i)
        assert ht.delete(keys[10])
        assert ht.lookup(keys[10]) is None
        assert len(ht) == 79
        # The rest survive.
        assert all(ht.lookup(k) == i for i, k in enumerate(keys) if i != 10)

    def test_slot_is_reusable_after_delete(self, mem):
        ht = CuckooHashTable(mem, key_length=16, num_buckets=64)
        keys = keys_of(50)
        for i, k in enumerate(keys):
            ht.insert(k, i)
        ht.delete(keys[5])
        ht.insert(keys[5], 555)
        assert ht.lookup(keys[5]) == 555

    def test_delete_absent(self, mem):
        ht = CuckooHashTable(mem, key_length=16, num_buckets=64)
        assert not ht.delete(keys_of(1)[0])


class TestSkipListRemove:
    def test_remove_preserves_order_and_links(self, mem):
        sl = SkipList(mem, key_length=16)
        keys = keys_of(60)
        for i, k in enumerate(keys):
            sl.insert(k, i)
        removed = keys[::7]
        for k in removed:
            assert sl.remove(k)
        survivors = sorted(set(keys) - set(removed))
        assert [k for k, _ in sl.items()] == survivors
        assert all(sl.lookup(k) is None for k in removed)
        assert all(sl.lookup(k) is not None for k in survivors)

    def test_remove_absent(self, mem):
        sl = SkipList(mem, key_length=16)
        sl.insert(keys_of(1)[0], 1)
        assert not sl.remove(b"zzz".ljust(16, b"z"))


class TestBstDelete:
    def test_delete_leaf_one_child_two_children(self, mem):
        bst = BinarySearchTree(mem, key_length=16)
        keys = keys_of(40)
        for i, k in enumerate(keys):
            bst.insert(k, i)
        victims = [keys[0], keys[7], keys[20], keys[39]]
        for v in victims:
            assert bst.delete(v)
            assert bst.lookup(v) is None
        survivors = sorted(set(keys) - set(victims))
        assert [k for k, _ in bst.items()] == survivors
        assert len(bst) == len(survivors)

    def test_delete_root_repeatedly(self, mem):
        bst = BinarySearchTree(mem, key_length=16)
        keys = keys_of(15)
        for i, k in enumerate(keys):
            bst.insert(k, i)
        remaining = set(keys)
        while remaining:
            root_key = bst._key_of(bst.header().root_ptr)
            assert bst.delete(root_key)
            remaining.discard(root_key)
            assert [k for k, _ in bst.items()] == sorted(remaining)

    def test_delete_absent(self, mem):
        bst = BinarySearchTree(mem, key_length=16)
        bst.insert(keys_of(1)[0], 1)
        assert not bst.delete(b"absent".ljust(16, b"_"))


class TestAcceleratorSeesUpdates:
    """QEI reads the same bytes: post-update queries must reflect updates."""

    def test_query_after_delete(self):
        system = System(small_config())
        ht = CuckooHashTable(system.mem, key_length=16, num_buckets=64)
        keys = keys_of(30)
        for i, k in enumerate(keys):
            ht.insert(k, i)

        def query(k):
            handle = system.accelerator.submit(
                QueryRequest(header_addr=ht.header_addr, key_addr=ht.store_key(k)),
                system.engine.now,
            )
            system.accelerator.wait_for(handle)
            return handle

        assert query(keys[3]).value == 3
        ht.delete(keys[3])
        after = query(keys[3])
        assert after.status is QueryStatus.NOT_FOUND
        ht.insert(keys[3], 777)
        assert query(keys[3]).value == 777
