"""CPI-stack decomposition of a core run (Sniper-style cycle accounting).

The paper's motivation rests on top-down analysis: hash-table queries are
*backend* bound, pointer-chasing queries are *frontend* bound (Sec. II-A).
This module decomposes a :class:`~repro.cpu.core.CoreResult` into the same
categories so the claim can be checked on our own runs:

* **base** — instructions / issue width (the ideal pipeline),
* **branch** — misprediction redirects,
* **frontend** — explicit instruction-supply stalls,
* **memory** — the remainder, attributed to data-access latency the OoO
  window could not hide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import CoreConfig
from ..cpu.core import CoreResult


@dataclass(frozen=True)
class CpiStack:
    """One run's cycle breakdown (cycles, not CPI, for easy summing)."""

    total: int
    base: float
    branch: float
    frontend: float
    memory: float

    def shares(self) -> Dict[str, float]:
        """Each category's share of total cycles, in [0, 1]."""
        if self.total <= 0:
            return {"base": 0.0, "branch": 0.0, "frontend": 0.0, "memory": 0.0}
        return {
            "base": self.base / self.total,
            "branch": self.branch / self.total,
            "frontend": self.frontend / self.total,
            "memory": self.memory / self.total,
        }

    def dominant(self) -> str:
        """The non-base category with the largest share."""
        shares = self.shares()
        return max(("branch", "frontend", "memory"), key=shares.__getitem__)

    def format(self) -> str:
        shares = self.shares()
        parts = "  ".join(
            f"{name}={shares[name]:.0%}" for name in ("base", "branch", "frontend", "memory")
        )
        return f"cycles={self.total}  {parts}"


def cpi_stack(result: CoreResult, config: CoreConfig) -> CpiStack:
    """Decompose a core run's cycles into stack components.

    The decomposition is attribution, not simulation: base is the
    issue-width bound, branch and frontend use the run's own event counts,
    and memory absorbs the remainder (bounded below at zero — overlapped
    categories can oversubscribe slightly in pathological traces).
    """
    base = result.instructions / config.issue_width
    branch = result.branch_mispredicts * config.branch_mispredict_cycles
    frontend = float(result.frontend_stall_cycles)
    memory = max(0.0, result.cycles - base - branch - frontend)
    return CpiStack(
        total=result.cycles,
        base=base,
        branch=branch,
        frontend=frontend,
        memory=memory,
    )
