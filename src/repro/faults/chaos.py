"""Chaos harness: infrastructure faults under closed-loop serving load.

``python -m repro chaos`` drives one scaled-down machine with multi-tenant
closed-loop load while a deterministic event schedule kills and recovers
accelerator slices and hot-swaps CFA firmware mid-run.  The contract it
asserts is the ROADMAP's availability story:

* **zero wrong results** — every completed request matches the software
  oracle, whether it ran accelerated, rerouted to a survivor slice, or
  resolved through the software fallback after a ``SLICE_DOWN`` abort;
* **zero hangs** — every admitted request reaches a terminal outcome
  (completion or an explicit deadline shed), i.e. availability is 100%;
* **determinism** — the same seed reproduces a byte-identical report,
  faults included (``--repeats`` re-runs and compares the dumps).

Events fire when the fleet-wide terminal-request count crosses seeded
thresholds — a cycle-free trigger, so the schedule is identical across
runs regardless of how timing shifts as the code evolves.  The timeline is
segmented into phases at every event; the report carries availability and
p99 per phase.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import IntegrationScheme, ServeConfig
from ..core.programs import HashOfListsCfa
from ..core.programs_ext import BPlusTreeCfa
from ..errors import ReproError

#: Event actions.
SLICE_FAIL = "slice-fail"
SLICE_RECOVER = "slice-recover"
FIRMWARE_SWAP = "firmware-swap"


class ChaosError(ReproError):
    """The chaos contract was violated (wrong result, hang, lost event)."""


@dataclass
class ChaosEvent:
    """One scheduled infrastructure fault.

    ``trigger`` is the fleet-wide terminal-request count at which the
    event fires; ``home`` identifies the victim slice for fail/recover.
    """

    action: str
    trigger: int
    home: Optional[int] = None
    fired_cycle: Optional[int] = None
    #: SLICE_DOWN aborts caused (slice-fail only).
    aborted: int = 0

    def row(self) -> Dict[str, object]:
        return {
            "action": self.action,
            "trigger": self.trigger,
            "home": self.home,
            "fired_cycle": self.fired_cycle,
            "aborted": self.aborted,
        }


@dataclass
class ChaosReport:
    """One chaos run: the event log, the serving report, and the verdicts."""

    scheme: str
    seed: int
    requests: int
    events: List[Dict[str, object]] = field(default_factory=list)
    serving: Dict[str, object] = field(default_factory=dict)
    checks: Dict[str, object] = field(default_factory=dict)

    def dump(self) -> str:
        """Canonical JSON (byte-identical across same-seed runs)."""
        return json.dumps(
            {
                "scheme": self.scheme,
                "seed": self.seed,
                "requests": self.requests,
                "events": self.events,
                "serving": self.serving,
                "checks": self.checks,
            },
            sort_keys=True,
            separators=(",", ":"),
        )


def chaos_schedule(homes: List[int], requests: int) -> List[ChaosEvent]:
    """The canonical event schedule: 2 kills, 2 recoveries, 1 hot-swap.

    Victims are the first two accelerator homes (the same home twice for
    single-home schemes — kill, recover, kill again).  Triggers sit at
    fixed fractions of the request budget so the schedule scales with run
    length.
    """
    first = homes[0]
    second = homes[1] if len(homes) > 1 else homes[0]
    return [
        ChaosEvent(SLICE_FAIL, max(1, requests * 15 // 100), home=first),
        ChaosEvent(SLICE_RECOVER, max(2, requests * 30 // 100), home=first),
        ChaosEvent(SLICE_FAIL, max(3, requests * 45 // 100), home=second),
        ChaosEvent(SLICE_RECOVER, max(4, requests * 60 // 100), home=second),
        ChaosEvent(FIRMWARE_SWAP, max(5, requests * 75 // 100)),
    ]


def run_chaos(
    scheme: str,
    *,
    seed: int = 7,
    requests: int = 400,
    tenants: int = 4,
    workload: str = "dpdk",
    serve_config: Optional[ServeConfig] = None,
    verify: bool = True,
) -> ChaosReport:
    """One closed-loop serving run under the canonical chaos schedule."""
    from ..serve import ClosedLoopGenerator, build_serving_system

    if serve_config is None:
        serve_config = ServeConfig(tenants=tenants)
    system, built = build_serving_system(
        scheme, seed=seed, serve_config=serve_config, workload=workload
    )
    server = system.make_server(built, serve_config, seed=seed)
    per_tenant = max(1, requests // serve_config.tenants)
    for tenant in range(serve_config.tenants):
        server.attach(
            ClosedLoopGenerator(
                tenant,
                config=serve_config,
                num_requests=per_tenant,
                num_queries=len(built.queries),
                seed=seed,
                stats=system.stats,
            )
        )
    budget = per_tenant * serve_config.tenants

    events = chaos_schedule(system.integration.accelerator_homes(), budget)
    pending = list(events)
    swap_tickets = []
    server.slo.begin_phase("baseline", system.engine.now)

    def fire(event: ChaosEvent) -> None:
        event.fired_cycle = system.engine.now
        if event.action == SLICE_FAIL:
            event.aborted = system.fail_slice(event.home)
        elif event.action == SLICE_RECOVER:
            system.recover_slice(event.home)
        else:
            # Live hot-swap: stop pulling new work, push the open bursts
            # through, then quiesce-and-commit; dispatch resumes at commit.
            server.pause_dispatch()
            server.batcher.flush_all()
            ticket = system.update_firmware(
                [BPlusTreeCfa(), HashOfListsCfa()],
                on_complete=lambda upd: server.resume_dispatch(),
            )
            swap_tickets.append(ticket)
        label = (
            event.action
            if event.home is None
            else f"{event.action}-{event.home}"
        )
        server.slo.begin_phase(label, system.engine.now)

    def on_tick(srv) -> None:
        while pending and srv.slo.terminal >= pending[0].trigger:
            fire(pending.pop(0))

    serving_report = server.run(on_tick=on_tick)
    # A trigger past the budget (tiny runs) would never fire mid-run;
    # fire the stragglers now so the schedule always completes.
    while pending:
        fire(pending.pop(0))
        system.engine.run()

    aggregate = serving_report.aggregate
    swap_committed = all(t.done for t in swap_tickets)
    extensions_live = system.firmware.supports(
        BPlusTreeCfa.TYPE_CODE
    ) and system.firmware.supports(HashOfListsCfa.TYPE_CODE)
    report = ChaosReport(
        scheme=IntegrationScheme.parse(scheme).value,
        seed=seed,
        requests=budget,
        events=[event.row() for event in events],
        serving={
            "aggregate": aggregate,
            "phases": serving_report.phases,
            "tenants": serving_report.tenants,
            "elapsed_cycles": serving_report.elapsed_cycles,
        },
        checks={
            "result_errors": aggregate["result_errors"],
            "failed": aggregate["failed"],
            "availability": aggregate["availability"],
            "slice_kills": sum(
                1 for e in events if e.action == SLICE_FAIL
            ),
            "slice_recoveries": sum(
                1 for e in events if e.action == SLICE_RECOVER
            ),
            "firmware_swaps": len(swap_tickets),
            "swap_committed": swap_committed,
            "extension_programs_live": extensions_live,
            "slice_down_aborts": sum(e.aborted for e in events),
        },
    )
    if verify:
        _verify(report)
    return report


def _verify(report: ChaosReport) -> None:
    checks = report.checks
    problems = []
    if checks["result_errors"]:
        problems.append(f"{checks['result_errors']} wrong results")
    if checks["failed"]:
        problems.append(f"{checks['failed']} unresolved requests")
    if checks["availability"] != 1.0:
        problems.append(f"availability {checks['availability']:.4f} != 1.0")
    if not checks["swap_committed"]:
        problems.append("firmware hot-swap never committed")
    if not checks["extension_programs_live"]:
        problems.append("extension programs missing after hot-swap")
    if any(event["fired_cycle"] is None for event in report.events):
        problems.append("chaos schedule did not complete")
    if problems:
        raise ChaosError(
            f"chaos contract violated on {report.scheme}: "
            + "; ".join(problems)
        )


def chaos_experiment(
    *,
    schemes=None,
    seed: int = 7,
    requests: int = 400,
    tenants: int = 4,
    repeats: int = 2,
):
    """Chaos campaign: slice kills, recoveries and a live firmware swap
    under closed-loop load, with a same-seed determinism re-run."""
    from ..analysis.report import ExperimentResult

    scheme_names = [
        IntegrationScheme.parse(s).value
        for s in (schemes or [IntegrationScheme.CHA_TLB.value])
    ]
    result = ExperimentResult(
        "chaos",
        (
            f"{requests} closed-loop requests x {tenants} tenants under "
            f"2 slice kills + 2 recoveries + 1 firmware hot-swap (seed {seed})"
        ),
        [
            "scheme",
            "phase",
            "admitted",
            "completed",
            "shed",
            "availability",
            "p99",
            "aborts",
            "errors",
        ],
    )
    for scheme in scheme_names:
        report = run_chaos(
            scheme, seed=seed, requests=requests, tenants=tenants
        )
        for _ in range(max(0, repeats - 1)):
            again = run_chaos(
                scheme, seed=seed, requests=requests, tenants=tenants
            )
            if again.dump() != report.dump():
                raise ChaosError(
                    f"chaos run on {scheme} is not deterministic: "
                    f"same-seed re-run produced a different report"
                )
        for phase in report.serving["phases"]:
            result.add_row(
                scheme=scheme,
                phase=phase["name"],
                admitted=phase["admitted"],
                completed=phase["completed"],
                shed=phase["deadline_shed"],
                availability=phase["availability"],
                p99=phase["p99"],
                aborts="",
                errors="",
            )
        checks = report.checks
        result.add_row(
            scheme=scheme,
            phase="all",
            admitted=report.serving["aggregate"]["admitted"],
            completed=report.serving["aggregate"]["completed"],
            shed=report.serving["aggregate"]["deadline_shed"],
            availability=checks["availability"],
            p99=report.serving["aggregate"]["p99"],
            aborts=checks["slice_down_aborts"],
            errors=checks["result_errors"],
        )
    result.notes.append(
        "contract: zero wrong results, zero hangs (availability 1.0), "
        "firmware swap commits with extension programs live"
    )
    result.notes.append(
        f"determinism: {repeats} same-seed runs produced byte-identical "
        "chaos reports"
    )
    return result
