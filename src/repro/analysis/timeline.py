"""Observability helpers: QST occupancy timelines and latency reports.

The accelerator already records per-query latencies and occupancy samples;
these helpers turn a run's records into terminal-friendly summaries —
useful when tuning batch depths or diagnosing why a scheme underperforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.accelerator import QeiAccelerator, QueryHandle

_BARS = " .:-=+*#%@"


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of completed query latencies."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def format(self) -> str:
        return (
            f"queries={self.count}  mean={self.mean:.0f}  p50={self.p50:.0f}  "
            f"p90={self.p90:.0f}  p99={self.p99:.0f}  max={self.maximum:.0f} cycles"
        )


def latency_summary(accelerator: QeiAccelerator) -> LatencySummary:
    """Summarise the accelerator's completed-query latency histogram."""
    histogram = accelerator._latency
    return LatencySummary(
        count=histogram.count,
        mean=histogram.mean,
        p50=histogram.percentile(50),
        p90=histogram.percentile(90),
        p99=histogram.percentile(99),
        maximum=histogram.maximum,
    )


def occupancy_timeline(
    handles: Sequence[QueryHandle],
    *,
    buckets: int = 60,
    capacity: Optional[int] = None,
) -> str:
    """An ASCII sparkline of in-flight queries over the run.

    Each column covers an equal slice of the run; its glyph encodes the
    mean number of in-flight queries in that slice (normalised to
    ``capacity`` when given, else to the observed peak).
    """
    spans = [
        (h.submit_cycle, h.completion_cycle)
        for h in handles
        if h.completion_cycle is not None
    ]
    if not spans:
        return "(no completed queries)"
    start = min(s for s, _ in spans)
    end = max(e for _, e in spans)
    width = max(1, end - start)
    step = width / buckets

    levels: List[float] = []
    for bucket in range(buckets):
        lo = start + bucket * step
        hi = lo + step
        in_flight = sum(1 for s, e in spans if s < hi and e > lo)
        levels.append(in_flight)
    peak = capacity or max(levels) or 1
    glyphs = "".join(
        _BARS[min(len(_BARS) - 1, int(level / peak * (len(_BARS) - 1)))]
        for level in levels
    )
    return (
        f"[{glyphs}]  peak={int(max(levels))}"
        + (f"/{capacity}" if capacity else "")
        + f"  span={width} cycles"
    )


def per_query_table(
    handles: Sequence[QueryHandle], *, limit: int = 20
) -> str:
    """A per-query table: submit, completion, latency, status, value."""
    lines = [f"{'#':>3}  {'submit':>9}  {'done':>9}  {'latency':>8}  {'status':<10} value"]
    for i, handle in enumerate(handles[:limit]):
        done = handle.completion_cycle
        latency = (done - handle.submit_cycle) if done is not None else None
        lines.append(
            f"{i:>3}  {handle.submit_cycle:>9}  "
            f"{done if done is not None else '-':>9}  "
            f"{latency if latency is not None else '-':>8}  "
            f"{handle.status.value:<10} {handle.value}"
        )
    if len(handles) > limit:
        lines.append(f"... ({len(handles) - limit} more)")
    return "\n".join(lines)


def jitter_report(handles: Sequence[QueryHandle]) -> Tuple[float, float]:
    """(mean latency, p99/p50 jitter ratio) — the paper's QoS concern.

    Latency jitter is why the paper rejects batching-only solutions for
    latency-sensitive workloads (Sec. II-B / VII-A).
    """
    latencies = sorted(
        h.completion_cycle - h.submit_cycle
        for h in handles
        if h.completion_cycle is not None
    )
    if not latencies:
        return 0.0, 0.0
    mean = sum(latencies) / len(latencies)
    p50 = latencies[max(0, int(0.50 * len(latencies)) - 1)]
    p99 = latencies[max(0, int(0.99 * len(latencies)) - 1)]
    return mean, (p99 / p50 if p50 else 0.0)
