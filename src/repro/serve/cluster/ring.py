"""Consistent-hash ring: key-space partitioning with R-way replica groups.

Every node contributes ``vnodes`` virtual tokens placed by a *stable* hash
(blake2b — never Python's salted ``hash``), so token placement, shard
ownership and therefore the whole cluster simulation are identical across
processes and runs.  A key's replica group is the first ``replication``
distinct nodes walking clockwise from the key's position; membership health
filters that walk, so marking a node DOWN remaps exactly the shards it
owned to their ring successors (the minimal-disruption property that makes
rebalancing cheap) and recovery remaps them back.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Optional, Set, Tuple

_SPACE_BITS = 64
_SPACE = 1 << _SPACE_BITS


def stable_hash(data: bytes) -> int:
    """A 64-bit position on the ring, stable across processes and runs."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


def key_position(key: bytes) -> int:
    """Ring position of one query key."""
    return stable_hash(b"key:" + key)


class HashRing:
    """Virtual-token consistent-hash ring over integer node ids."""

    def __init__(self, nodes: int, vnodes: int = 8) -> None:
        if nodes <= 0:
            raise ValueError("ring needs at least one node")
        if vnodes <= 0:
            raise ValueError("ring needs at least one vnode per node")
        self.nodes = nodes
        self.vnodes = vnodes
        tokens: List[Tuple[int, int]] = []
        for node in range(nodes):
            for vnode in range(vnodes):
                position = stable_hash(b"node:%d:vnode:%d" % (node, vnode))
                tokens.append((position, node))
        tokens.sort()
        self._positions = [position for position, _ in tokens]
        self._owners = [node for _, node in tokens]

    # ------------------------------------------------------------------ #

    def owners(
        self,
        key_position: int,
        replication: int,
        *,
        routable: Optional[Set[int]] = None,
    ) -> List[int]:
        """The ordered replica group for a key: primary first.

        ``routable`` (when given) filters the clockwise walk — a DOWN node
        is skipped and its shards fall to the next distinct nodes on the
        ring, which *is* the rebalance: no state moves, ownership remaps.
        Returns fewer than ``replication`` nodes when not enough distinct
        routable nodes exist.
        """
        owners: List[int] = []
        count = len(self._positions)
        start = bisect.bisect_left(self._positions, key_position % _SPACE)
        for step in range(count):
            node = self._owners[(start + step) % count]
            if node in owners:
                continue
            if routable is not None and node not in routable:
                continue
            owners.append(node)
            if len(owners) >= replication:
                break
        return owners

    def primary_map(self, routable: Set[int]) -> List[Optional[int]]:
        """Per-token primary owner under a routable set (None when empty)."""
        count = len(self._positions)
        owners: List[Optional[int]] = []
        for index in range(count):
            owner: Optional[int] = None
            for step in range(count):
                node = self._owners[(index + step) % count]
                if node in routable:
                    owner = node
                    break
            owners.append(owner)
        return owners

    def remapped_share(
        self, before: Iterable[int], after: Iterable[int]
    ) -> float:
        """Ring fraction whose *primary* changed between two routable sets.

        The drain-and-remap metric the membership log reports: a node kill
        should remap only (about) that node's own share of the ring, not
        reshuffle the whole key space.
        """
        before_map = self.primary_map(set(before))
        after_map = self.primary_map(set(after))
        count = len(self._positions)
        moved = 0.0
        for index in range(count):
            if before_map[index] != after_map[index]:
                # Keys map to the first token at-or-after their position, so
                # token ``index`` owns the arc reaching back to its
                # predecessor.
                here = self._positions[index]
                prev = self._positions[index - 1]
                moved += ((here - prev) % _SPACE or _SPACE) / _SPACE
        return moved
