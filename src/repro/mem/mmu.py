"""MMU: timed address translation through a TLB hierarchy.

The MMU owns an L1 dTLB and an L2 TLB (Skylake-like).  A translation returns
both the physical address (functional, via the page table) and the number of
cycles the translation cost (timing: TLB hit levels or a page walk).

Integration schemes reuse this class in different positions:

* the core's MMU (used by software, and by CHA-noTLB accelerators with an
  extra round-trip);
* the Core-integrated scheme translates through the *L2 TLB only* (QEI sits
  next to the L2, Sec. V-A);
* the CHA-TLB scheme instantiates a dedicated single-level TLB per CHA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..config import TlbConfig
from ..sim.stats import StatsRegistry
from .paging import AddressSpace
from .tlb import Tlb

#: Cycles for a full radix page-table walk when every TLB level misses.
PAGE_WALK_CYCLES = 60


@dataclass(frozen=True)
class Translation:
    """Result of one timed translation."""

    paddr: int
    cycles: int
    tlb_hit_level: Optional[int]  # 0 = first TLB, None = page walk


class Mmu:
    """A TLB hierarchy in front of a page table."""

    def __init__(
        self,
        space: AddressSpace,
        tlb_configs: Sequence[TlbConfig],
        *,
        stats: Optional[StatsRegistry] = None,
        name: str = "mmu",
        page_walk_cycles: int = PAGE_WALK_CYCLES,
    ) -> None:
        if not tlb_configs:
            raise ValueError("an MMU needs at least one TLB level")
        self.space = space
        self.name = name
        self.page_walk_cycles = page_walk_cycles
        registry = stats or StatsRegistry()
        self.tlbs = [
            Tlb(cfg, stats=registry, name=f"{name}.tlb{i}")
            for i, cfg in enumerate(tlb_configs)
        ]
        self.stats = registry.scoped(name)
        self._walks = self.stats.counter("page_walks")
        self._translations = self.stats.counter("translations")

    def translate(self, vaddr: int, access: str = "r") -> Translation:
        """Translate ``vaddr``; faults propagate from the page table.

        TLB entries are keyed by the page's *translation key*: a 4KB VPN
        for small pages, or a tagged huge-page number — so one slot covers
        an entire 2MB mapping.
        """
        self._translations.value += 1
        key, base_paddr, span = self.space.translation_entry(vaddr, access)
        offset = vaddr % span

        cycles = 0
        for level, tlb in enumerate(self.tlbs):
            cycles += tlb.config.latency_cycles
            cached_base = tlb.lookup(key)
            if cached_base is not None:
                self._fill_upper_levels(level, key, cached_base)
                return Translation(cached_base + offset, cycles, level)

        # Full page walk (the functional lookup above already resolved it,
        # memoized in :meth:`AddressSpace.translation_entry`).
        cycles += self.page_walk_cycles
        self._walks.value += 1
        self._fill_upper_levels(len(self.tlbs), key, base_paddr)
        return Translation(base_paddr + offset, cycles, None)

    def _fill_upper_levels(self, hit_level: int, key: int, base_paddr: int) -> None:
        for tlb in self.tlbs[:hit_level]:
            tlb.insert(key, base_paddr)

    def flush(self) -> None:
        """TLB shootdown of every level (context switch)."""
        for tlb in self.tlbs:
            tlb.invalidate()

    def invalidate(self, vpn: int) -> None:
        for tlb in self.tlbs:
            tlb.invalidate(vpn)
