"""Abstract micro-operation ISA for the trace-driven core model.

Only what the timing model needs: operation class, memory address for
loads/stores, register dependences (as indices of earlier trace ops), and
branch outcome.  ``QUERY_B`` / ``QUERY_NB`` / ``WAIT_RESULT`` are resolved by
an external port (the QEI accelerator) during timing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


class OpKind(enum.Enum):
    """Micro-op classes distinguished by the timing model."""

    LOAD = "load"
    STORE = "store"
    ALU = "alu"
    BRANCH = "branch"
    #: QEI blocking query: behaves like a long-latency load (Sec. IV-C).
    QUERY_B = "query_b"
    #: QEI non-blocking query: behaves like a store, retires on accept.
    QUERY_NB = "query_nb"
    #: Wide poll of non-blocking results (SNAPSHOT_READ-style).
    WAIT_RESULT = "wait_result"
    #: Instruction-supply stall: the fetch unit misses the L1I / decodes a
    #: cold code path.  A pseudo-op: it redirects the frontend for
    #: ``latency_override`` cycles but retires no instruction.  Workload
    #: baselines emit these where the paper's top-down profiling finds
    #: frontend-bound behaviour (Sec. II-A).
    IFETCH_STALL = "ifetch_stall"


#: Op kinds that occupy a load-queue slot.
LOAD_LIKE = (OpKind.LOAD, OpKind.QUERY_B)
#: Op kinds that occupy a store-queue slot.
STORE_LIKE = (OpKind.STORE, OpKind.QUERY_NB)


@dataclass
class MicroOp:
    """One dynamic micro-operation in a trace.

    Attributes:
        kind: operation class.
        vaddr: virtual address for memory ops (None otherwise).
        deps: indices of earlier ops whose results this op consumes.
        mispredicted: for branches — whether the (data-dependent) branch
            direction was mispredicted; the workload's trace builder decides
            using its branch model.
        payload: opaque handle for external ops (a query descriptor for
            QUERY_B/QUERY_NB, a batch handle for WAIT_RESULT).
        latency_override: fixed execution latency, used for multi-cycle ALU
            ops such as hash mixing.
    """

    kind: OpKind
    vaddr: Optional[int] = None
    deps: Tuple[int, ...] = field(default_factory=tuple)
    mispredicted: bool = False
    payload: Any = None
    latency_override: Optional[int] = None

    def is_load_like(self) -> bool:
        return self.kind in LOAD_LIKE

    def is_store_like(self) -> bool:
        return self.kind in STORE_LIKE
