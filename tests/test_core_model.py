"""Unit tests for the OoO core timing model.

The behaviours asserted here are exactly the ones the paper's analysis
depends on: MLP for independent loads, serialisation for dependent loads,
frontend cost of mispredicted branches, and ROB-window limits.
"""

import pytest

from repro.config import small_config
from repro.cpu import OoOCore, TraceBuilder
from repro.cpu.isa import MicroOp, OpKind
from repro.errors import SimulationError
from repro.mem import AddressSpace, MemoryHierarchy, Mmu, PhysicalMemory


@pytest.fixture
def system():
    cfg = small_config()
    hierarchy = MemoryHierarchy(cfg)
    space = AddressSpace(PhysicalMemory(cfg.memory_bytes))
    for i in range(1, 512):
        space.map_page(i * 4096)
    mmu = Mmu(space, [cfg.core.l1_dtlb, cfg.core.l2_tlb])
    core = OoOCore(0, cfg.core, hierarchy, mmu)
    return cfg, core, space


def warm(core, addrs):
    """Prime TLBs and caches so timing tests measure steady state."""
    b = TraceBuilder()
    for a in addrs:
        b.load(a)
    core.execute(b.trace)


def test_empty_trace_costs_nothing(system):
    _, core, _ = system
    res = core.execute(TraceBuilder().trace)
    assert res.cycles == 0
    assert res.instructions == 0


def test_alu_chain_serialises(system):
    _, core, _ = system
    b = TraceBuilder()
    b.alu(count=100)
    res = core.execute(b.trace)
    assert res.cycles >= 100


def test_independent_alus_reach_issue_width(system):
    cfg, core, _ = system
    b = TraceBuilder()
    for _ in range(400):
        b.trace.ops.append(MicroOp(OpKind.ALU))
    res = core.execute(b.trace)
    assert res.ipc == pytest.approx(cfg.core.issue_width, rel=0.1)


def test_independent_loads_overlap(system):
    _, core, _ = system
    addrs = [0x1000 + i * 4096 for i in range(8)]
    warm(core, [a for a in addrs])  # TLB warm, caches warm
    # Now evict caches but keep TLB: use fresh lines in the same pages.
    b_ind = TraceBuilder()
    for a in addrs:
        b_ind.load(a + 128)
    independent = core.execute(b_ind.trace).cycles

    b_dep = TraceBuilder()
    prev = b_dep.load(addrs[0] + 256)
    for a in addrs[1:]:
        prev = b_dep.load(a + 256, deps=(prev,))
    dependent = core.execute(b_dep.trace).cycles

    assert dependent > 3 * independent


def test_mispredicted_branch_stalls_frontend(system):
    cfg, core, _ = system
    b_good = TraceBuilder()
    for _ in range(50):
        b_good.alu()
        b_good.branch()
    good = core.execute(b_good.trace).cycles

    b_bad = TraceBuilder()
    for _ in range(50):
        b_bad.alu()
        b_bad.branch(mispredicted=True)
    bad = core.execute(b_bad.trace).cycles
    assert bad >= good + 40 * cfg.core.branch_mispredict_cycles


def test_rob_window_limits_mlp(system):
    cfg, core, space = system
    # More independent loads than the ROB can hold, with filler between
    # them, so the window limit binds.
    warm(core, [0x1000])
    b = TraceBuilder()
    for i in range(4):
        b.load(0x100000 + i * 4096)
        b.other_work(cfg.core.rob_entries)
    res = core.execute(b.trace)
    assert res.loads == 4
    # With the window full of filler, loads can't all overlap: the run must
    # be longer than one DRAM latency + filler issue time.
    assert res.cycles > cfg.dram.latency_cycles


def test_stores_do_not_block_pipeline(system):
    _, core, _ = system
    warm(core, [0x3000])
    b = TraceBuilder()
    for i in range(64):
        b.store(0x3000 + (i % 4) * 8)
    res = core.execute(b.trace)
    assert res.cycles < 200
    assert res.stores == 64


def test_query_without_resolver_raises(system):
    _, core, _ = system
    b = TraceBuilder()
    b.query_b(payload=None)
    with pytest.raises(SimulationError):
        core.execute(b.trace)


def test_external_resolver_invoked(system):
    _, core, _ = system
    b = TraceBuilder()
    q = b.query_b(payload="q1")
    b.alu(deps=(q,))
    seen = []

    def resolver(op, issue):
        seen.append((op.payload, issue))
        return issue + 500, 0

    res = core.execute(b.trace, external=resolver)
    assert seen and seen[0][0] == "q1"
    assert res.cycles >= 500
    assert res.queries_issued == 1


def test_external_completion_before_issue_rejected(system):
    _, core, _ = system
    b = TraceBuilder()
    b.alu(count=10)
    b.query_b(payload=None, deps=(9,))
    with pytest.raises(SimulationError):
        core.execute(b.trace, external=lambda op, issue: (0, 0))


def test_malformed_forward_dependence_rejected(system):
    _, core, _ = system
    b = TraceBuilder()
    b.trace.ops.append(MicroOp(OpKind.ALU, deps=(5,)))
    with pytest.raises(SimulationError):
        core.execute(b.trace)


def test_level_breakdown_recorded(system):
    _, core, _ = system
    b = TraceBuilder()
    b.load(0x5000)
    b.load(0x5000)
    res = core.execute(b.trace)
    assert res.level_breakdown.get("dram") == 1
    assert res.level_breakdown.get("l1") == 1
