"""Unit tests for statistics primitives."""

import pytest

from repro.sim import StatsRegistry
from repro.sim.stats import Histogram


def test_counter_accumulates_and_resets():
    reg = StatsRegistry()
    c = reg.counter("hits")
    c.add()
    c.add(4)
    assert c.value == 5
    c.reset()
    assert c.value == 0


def test_counter_identity_by_name():
    reg = StatsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.counter("x") is not reg.counter("y")


def test_scoped_registry_shares_storage():
    reg = StatsRegistry()
    view = reg.scoped("l2")
    view.counter("misses").add(3)
    assert reg.snapshot()["l2.misses"] == 3


def test_nested_scopes_compose_prefixes():
    reg = StatsRegistry()
    inner = reg.scoped("core0").scoped("l1d")
    inner.counter("hits").add()
    assert "core0.l1d.hits" in reg.snapshot()


def test_histogram_statistics():
    h = Histogram("lat")
    for v in [10, 20, 30, 40]:
        h.record(v)
    assert h.count == 4
    assert h.mean == 25
    assert h.minimum == 10
    assert h.maximum == 40
    assert h.percentile(50) == 20
    assert h.percentile(100) == 40


def test_histogram_percentile_validation():
    h = Histogram("lat")
    h.record(1)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_empty_histogram_is_safe():
    h = Histogram("lat")
    assert h.mean == 0.0
    assert h.percentile(99) == 0.0


def test_diff_reports_deltas():
    reg = StatsRegistry()
    reg.counter("a").add(2)
    before = reg.snapshot()
    reg.counter("a").add(5)
    reg.counter("b").add(1)
    delta = reg.diff(before)
    assert delta["a"] == 5
    assert delta["b"] == 1


def test_report_filters_by_prefix():
    reg = StatsRegistry()
    reg.counter("l1.hits").add(1)
    reg.counter("l2.hits").add(2)
    text = reg.report(only=["l1"])
    assert "l1.hits" in text
    assert "l2.hits" not in text
