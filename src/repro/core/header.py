"""The 64-byte data-structure metadata header (paper Fig. 4, Sec. III-B).

Software populates one cacheline of metadata per queried data structure; the
accelerator's CFA parses it before executing a query.  Fields:

====== ===== =====================================================
offset size  field
====== ===== =====================================================
0      8     root pointer (start of the data structure)
8      1     type (selects the CFA program)
9      1     subtype (per-type parameter, e.g. entries per bucket)
10     2     key length in bytes
12     4     flags
16     8     size (static structures: bucket count / node count)
24     8     aux pointer (per-type, e.g. skip-list max level)
32     8     version (seqlock generation counter; odd = write in progress)
40     24    reserved for future extension
====== ===== =====================================================

The version word is the reader/writer coexistence protocol (docs/
mutations.md): writers CAS it from even to odd before mutating and write
it back even+2 after; readers record it at PARSE and re-check it at
completion, aborting with :attr:`AbortCode.VERSION_CONFLICT` on any
mismatch.  Read-only structures keep version 0, so their encoded headers
are byte-identical to the pre-mutation layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import DataStructureError
from ..mem.paging import AddressSpace
from .abort import AbortCode

HEADER_BYTES = 64

#: flags
FLAG_VALID = 0x1
FLAG_READ_ONLY = 0x2
#: An online resize is in flight: the aux field points at an out-of-line
#: resize descriptor and lookups route per-bucket old-vs-new (docs/
#: mutations.md).  Only meaningful for HASH_TABLE headers.
FLAG_RESIZING = 0x4
#: Every flag bit the architecture defines; anything else is garbage.
KNOWN_FLAGS_MASK = FLAG_VALID | FLAG_READ_ONLY | FLAG_RESIZING

#: Byte offset of the u64 seqlock version word inside the header line.
VERSION_OFFSET = 32

#: Architectural bound on the key-length field.  The CFA stages keys through
#: 64B scratch lines, so keys are streamed; anything past one page is a
#: corrupted header, not a real key.
MAX_KEY_LENGTH = 4096


class StructureType(enum.IntEnum):
    """Built-in data-structure type codes understood by QEI firmware."""

    LINKED_LIST = 1
    HASH_TABLE = 2
    SKIP_LIST = 3
    BINARY_TREE = 4
    TRIE = 5
    #: Combined structure example from Sec. III-A: hash table of lists.
    HASH_OF_LISTS = 6
    #: Database index extension (firmware add-on, like HASH_OF_LISTS).
    BPLUS_TREE = 7


@dataclass(frozen=True)
class DataStructureHeader:
    """Decoded header contents."""

    root_ptr: int
    type_code: int
    subtype: int
    key_length: int
    flags: int
    size: int
    aux: int
    #: Seqlock generation counter (0 for read-only structures).
    version: int = 0

    @property
    def structure_type(self) -> StructureType:
        try:
            return StructureType(self.type_code)
        except ValueError as exc:
            raise DataStructureError(
                f"unknown structure type code {self.type_code}"
            ) from exc

    @property
    def valid(self) -> bool:
        return bool(self.flags & FLAG_VALID)

    # ------------------------------------------------------------------ #

    def validate(
        self,
        *,
        expected_type: "int | None" = None,
        raw: bytes = b"",
    ) -> AbortCode:
        """Strict decode-time checks (Sec. IV-D hardening).

        Returns the abort code a corrupted field maps to, or
        :attr:`AbortCode.NONE` for a well-formed header.  The CFA runs this
        in its PARSE state so malformed metadata aborts before the walk ever
        dereferences a pointer, instead of failing deep inside the CFA.

        ``raw`` (the full 64B cacheline, when available) additionally checks
        that the reserved tail bytes are zero — the cheapest way hardware
        spots a header cacheline that was overwritten wholesale.
        """
        if self.flags & ~KNOWN_FLAGS_MASK:
            return AbortCode.BAD_MAGIC
        if len(raw) >= HEADER_BYTES and any(raw[VERSION_OFFSET + 8 : HEADER_BYTES]):
            return AbortCode.BAD_MAGIC
        if self.version & 1:
            return AbortCode.VERSION_CONFLICT
        if not self.valid:
            return AbortCode.HEADER_INVALID
        if not 0 < self.key_length <= MAX_KEY_LENGTH:
            return AbortCode.BAD_KEY_LENGTH
        if expected_type is not None and self.type_code != expected_type:
            return AbortCode.BAD_TYPE
        return AbortCode.NONE

    # ------------------------------------------------------------------ #

    def encode(self) -> bytes:
        """Serialise to the 64B on-memory layout."""
        if not 0 <= self.key_length < 2**16:
            raise DataStructureError(f"key_length {self.key_length} out of range")
        if not 0 <= self.type_code < 256 or not 0 <= self.subtype < 256:
            raise DataStructureError("type/subtype must fit one byte")
        out = bytearray(HEADER_BYTES)
        out[0:8] = self.root_ptr.to_bytes(8, "little")
        out[8] = self.type_code
        out[9] = self.subtype
        out[10:12] = self.key_length.to_bytes(2, "little")
        out[12:16] = self.flags.to_bytes(4, "little")
        out[16:24] = self.size.to_bytes(8, "little")
        out[24:32] = self.aux.to_bytes(8, "little")
        out[32:40] = self.version.to_bytes(8, "little")
        return bytes(out)

    @classmethod
    def decode(cls, raw: bytes) -> "DataStructureHeader":
        if len(raw) < HEADER_BYTES:
            raise DataStructureError(
                f"header needs {HEADER_BYTES} bytes, got {len(raw)}"
            )
        return cls(
            root_ptr=int.from_bytes(raw[0:8], "little"),
            type_code=raw[8],
            subtype=raw[9],
            key_length=int.from_bytes(raw[10:12], "little"),
            flags=int.from_bytes(raw[12:16], "little"),
            size=int.from_bytes(raw[16:24], "little"),
            aux=int.from_bytes(raw[24:32], "little"),
            version=int.from_bytes(raw[32:40], "little"),
        )

    # ------------------------------------------------------------------ #

    def store(self, space: AddressSpace, vaddr: int) -> None:
        """Write the header into simulated memory at ``vaddr``."""
        if vaddr % HEADER_BYTES:
            raise DataStructureError(
                "header must be cacheline aligned (single-cacheline metadata)"
            )
        space.write(vaddr, self.encode())

    @classmethod
    def load(cls, space: AddressSpace, vaddr: int) -> "DataStructureHeader":
        return cls.decode(space.read(vaddr, HEADER_BYTES))
