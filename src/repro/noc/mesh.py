"""2D mesh NoC with XY routing, hop latency and link utilisation tracking.

The paper's device-scheme critique rests on two NoC effects (Sec. V):

* every access to a *centralised* accelerator crosses more of the mesh, and
* the accelerator's single stop becomes a traffic hotspot ("each QEI
  accelerator can saturate as much as 8% of the mesh NoC bandwidth").

We model both: XY-routed messages charge bytes to each traversed link, and
:meth:`hotspot_factor` reports the most-loaded link's share of capacity so
experiments can show the congestion asymmetry between distributed and
centralised placements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..config import NocConfig
from ..errors import ConfigurationError
from ..sim.stats import StatsRegistry

Link = Tuple[int, int]  # (src_node, dst_node), directed


@dataclass
class LinkUtilization:
    """Bytes carried by one directed link."""

    link: Link
    bytes_carried: int


class MeshNoc:
    """A width x height mesh with deterministic XY routing."""

    def __init__(self, config: NocConfig, *, stats: Optional[StatsRegistry] = None) -> None:
        self.config = config
        self._link_bytes: Dict[Link, int] = {}
        self.stats = (stats or StatsRegistry()).scoped("noc")
        self._messages = self.stats.counter("messages")
        self._total_bytes = self.stats.counter("bytes")
        self._total_cycles = 0  # observation window length
        #: (src, dst) -> (directed links on the XY path, zero-load latency).
        #: Routing is a pure function of the pair on a fixed topology, so
        #: the cache is exact; it only skips recomputing the same path
        #: arithmetic on every message.
        self._route_cache: Dict[Link, Tuple[Tuple[Link, ...], int]] = {}
        #: Batched send charges from the hierarchy fast path (mem/fastpath.py):
        #: (src, dst) -> [message count, total bytes, latest `now`].  Charging
        #: is commutative — per-link byte sums, message/byte totals and a
        #: running max of `now` — so replaying a batch at flush time lands the
        #: exact same state as the equivalent sequence of :meth:`send` calls.
        self._pending_charges: Dict[Link, List[int]] = {}
        self.stats.add_flush_hook(self._flush_charges)

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def coords(self, node: int) -> Tuple[int, int]:
        if not 0 <= node < self.config.num_nodes:
            raise ConfigurationError(f"node {node} outside mesh")
        return node % self.config.width, node // self.config.width

    def node_at(self, x: int, y: int) -> int:
        return y * self.config.width + x

    def route(self, src: int, dst: int) -> List[int]:
        """XY route: travel in X first, then Y. Includes both endpoints."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        x, y = sx, sy
        step_x = 1 if dx > sx else -1
        while x != dx:
            x += step_x
            path.append(self.node_at(x, y))
        step_y = 1 if dy > sy else -1
        while y != dy:
            y += step_y
            path.append(self.node_at(x, y))
        return path

    def hops(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src: int, dst: int) -> int:
        """Zero-load latency of one message."""
        return self._routed(src, dst)[1]

    def _routed(self, src: int, dst: int) -> Tuple[Tuple[Link, ...], int]:
        """Cached (path links, zero-load latency) for one (src, dst) pair."""
        cached = self._route_cache.get((src, dst))
        if cached is None:
            path = self.route(src, dst)
            per_hop = self.config.hop_cycles + self.config.router_cycles
            cached = (
                tuple(zip(path, path[1:])),
                self.hops(src, dst) * per_hop,
            )
            self._route_cache[(src, dst)] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Traffic accounting
    # ------------------------------------------------------------------ #

    def send(self, src: int, dst: int, num_bytes: int, now: int = 0) -> int:
        """Account one message and return its zero-load latency.

        Bandwidth effects are summarised post-hoc via utilisation, rather
        than back-pressuring each message; that keeps the simulator fast
        while still exposing hotspots.
        """
        self._messages.add()
        self._total_bytes.add(num_bytes)
        links, latency = self._routed(src, dst)
        link_bytes = self._link_bytes
        for link in links:
            link_bytes[link] = link_bytes.get(link, 0) + num_bytes
        if now > self._total_cycles:
            self._total_cycles = now
        serialization = (num_bytes + self.config.link_bytes_per_cycle - 1) // (
            self.config.link_bytes_per_cycle
        )
        return latency + max(0, serialization - 1)

    def charge(self, src: int, dst: int, num_bytes: int, now: int = 0) -> None:
        """Batched :meth:`send` accounting, without computing the latency.

        For callers that already know the message latency (the hierarchy
        fast path replays a memoized latency), only the traffic accounting
        side effects of :meth:`send` remain — and those are commutative
        sums/maxes, so they accumulate per (src, dst) pair and replay over
        the cached route at flush time.  Flush happens on every stats read
        and before any utilisation query, so observers never see a deficit.
        """
        entry = self._pending_charges.get((src, dst))
        if entry is None:
            self._pending_charges[(src, dst)] = [1, num_bytes, now]
        else:
            entry[0] += 1
            entry[1] += num_bytes
            if now > entry[2]:
                entry[2] = now

    def _flush_charges(self) -> None:
        pending = self._pending_charges
        if not pending:
            return
        link_bytes = self._link_bytes
        messages = 0
        total_bytes = 0
        for (src, dst), (count, nbytes, max_now) in pending.items():
            messages += count
            total_bytes += nbytes
            links, _latency = self._routed(src, dst)
            for link in links:
                link_bytes[link] = link_bytes.get(link, 0) + nbytes
            if max_now > self._total_cycles:
                self._total_cycles = max_now
        self._messages.value += messages
        self._total_bytes.value += total_bytes
        pending.clear()

    def link_utilisations(self) -> Iterator[LinkUtilization]:
        self._flush_charges()
        for link, nbytes in sorted(self._link_bytes.items()):
            yield LinkUtilization(link, nbytes)

    def hotspot_factor(self, window_cycles: int) -> float:
        """Most-loaded link's utilisation over a window, in [0, 1+]."""
        self._flush_charges()
        if window_cycles <= 0 or not self._link_bytes:
            return 0.0
        capacity = window_cycles * self.config.link_bytes_per_cycle
        return max(self._link_bytes.values()) / capacity

    def mean_link_utilisation(self, window_cycles: int) -> float:
        self._flush_charges()
        if window_cycles <= 0 or not self._link_bytes:
            return 0.0
        capacity = window_cycles * self.config.link_bytes_per_cycle
        # Count every directed link in the mesh, including idle ones.
        w, h = self.config.width, self.config.height
        num_links = 2 * ((w - 1) * h + (h - 1) * w)
        return sum(self._link_bytes.values()) / (capacity * num_links)

    def reset_traffic(self) -> None:
        # Pending charges predate the reset: fold them in first so the
        # message/byte counters keep them (as unbatched sends would have)
        # while the per-link window state is cleared.
        self._flush_charges()
        self._link_bytes.clear()
        self._total_cycles = 0
