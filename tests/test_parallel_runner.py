"""Golden determinism of the sharded runner, and the result cache.

The ISSUE-level guarantee: ``--jobs N`` produces byte-identical CLI output
to a serial run, because sharded rows re-merge in the serial iteration
order and every task carries explicit seeds.  Exercised end-to-end through
``repro.__main__.main`` for a row-per-workload experiment (fig7) and an
unsharded one (serve).
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.analysis.parallel import Task, merge_shards, plan_tasks, run_tasks
from repro.analysis.report import ExperimentResult
from repro.analysis.rescache import ResultCache, task_key


def _cli_output(capsys, argv) -> str:
    assert main(argv) == 0
    return capsys.readouterr().out


@pytest.mark.parametrize(
    "argv",
    [
        ["fig7", "--workloads", "dpdk", "rocksdb"],
        ["serve", "--tenants", "2", "--requests", "400"],
    ],
    ids=["fig7", "serve"],
)
def test_jobs4_output_byte_identical_to_serial(capsys, argv):
    serial = _cli_output(capsys, argv + ["--no-cache"])
    parallel = _cli_output(capsys, argv + ["--no-cache", "--jobs", "4"])
    assert parallel == serial


def test_plan_tasks_shards_row_per_workload_experiments():
    tasks = plan_tasks(
        ["fig7", "serve"],
        {"fig7": {"quick": True, "workloads": ["dpdk", "flann"]}, "serve": {}},
    )
    assert [t.experiment for t in tasks] == ["fig7", "fig7", "serve"]
    assert tasks[0].kwargs == {"quick": True, "workloads": ["dpdk"]}
    assert tasks[1].kwargs == {"quick": True, "workloads": ["flann"]}
    assert tasks[2].kwargs == {}


def test_merge_shards_concatenates_rows_in_order():
    shards = []
    for name in ("a", "b"):
        shard = ExperimentResult("Fig. X", "t", ["workload", "v"])
        shard.add_row(workload=name, v=1)
        shards.append(shard)
    merged = merge_shards("figx", shards)
    assert [row["workload"] for row in merged.rows] == ["a", "b"]


def test_result_cache_round_trip_and_invalidation(tmp_path):
    cache = ResultCache(tmp_path)
    result = ExperimentResult("Fig. X", "title", ["workload", "v"], notes=["n"])
    result.add_row(workload="dpdk", v=1.5)

    assert cache.get("figx", {"quick": True}) is None
    cache.put("figx", {"quick": True}, result)

    hit = cache.get("figx", {"quick": True})
    assert hit is not None
    assert hit.format() == result.format()
    # Different kwargs -> different key -> miss.
    assert cache.get("figx", {"quick": False}) is None
    assert task_key("figx", {"quick": True}) != task_key("figx", {"quick": False})

    assert cache.clear() == 1
    assert cache.get("figx", {"quick": True}) is None


def test_run_tasks_serves_hits_from_cache_without_recompute(tmp_path):
    calls = []

    class CountingCache(ResultCache):
        def get(self, name, kwargs):
            calls.append(("get", name))
            return super().get(name, kwargs)

    cache = CountingCache(tmp_path)
    tasks = [Task("tab1", "tab1", {})]
    first = run_tasks(tasks, cache=cache)
    assert len(list(tmp_path.glob("*.json"))) == 1

    # Second run must come from disk and format identically.
    second = run_tasks(tasks, cache=cache)
    assert second[0].format() == first[0].format()
    assert calls == [("get", "tab1"), ("get", "tab1")]


def test_cached_cli_rerun_output_identical(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    argv = ["tab1"]
    cold = _cli_output(capsys, argv)
    assert list(tmp_path.glob("*.json")), "expected a cache entry on disk"
    warm = _cli_output(capsys, argv)
    assert warm == cold


def test_cache_entries_are_valid_json(tmp_path):
    cache = ResultCache(tmp_path)
    result = ExperimentResult("Fig. X", "t", ["a"])
    result.add_row(a=1)
    cache.put("figx", {}, result)
    (entry,) = tmp_path.glob("*.json")
    payload = json.loads(entry.read_text())
    assert payload["rows"] == [{"a": 1}]
