"""Workload protocol and ROI runners.

A workload builds its data structures into a :class:`~repro.system.System`'s
process memory, then produces two micro-op traces for the same query stream:

* the **baseline** — the software routine walking the structure with loads,
  compares and data-dependent branches; and
* the **QEI** version — the routine rewritten around QUERY_B / QUERY_NB, the
  way the paper rewrites each benchmark's region of interest (Sec. VI-B).

Both traces carry the workload's characteristic *query density*: the number
of unrelated instructions executed per request (``roi_other_work``), which
determines how many queries the core can keep in flight (Sec. VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.isa import NbBatch, QueryOperands, QueryPort
from ..cpu.core import CoreResult
from ..cpu.trace import Trace, TraceBuilder
from ..errors import WorkloadError
from ..system import System


@dataclass
class RoiRun:
    """Outcome of timing one ROI trace."""

    cycles: int
    instructions: int
    queries: int
    core_result: CoreResult
    values: List[Optional[int]] = field(default_factory=list)

    @property
    def cycles_per_query(self) -> float:
        return self.cycles / self.queries if self.queries else 0.0


@dataclass
class WorkloadResult:
    """Baseline-vs-QEI comparison for one workload on one scheme."""

    workload: str
    scheme: str
    baseline: RoiRun
    qei: RoiRun

    @property
    def speedup(self) -> float:
        return self.baseline.cycles / self.qei.cycles if self.qei.cycles else 0.0

    @property
    def instruction_reduction(self) -> float:
        if not self.baseline.instructions:
            return 0.0
        return 1.0 - self.qei.instructions / self.baseline.instructions


class QueryWorkload:
    """Base class for the five benchmarks."""

    name = "abstract"
    #: Instructions of unrelated work per request inside the ROI loop.
    roi_other_work = 16
    #: Instructions of non-query application work per request (Fig. 1/9).
    app_other_work = 300
    #: Cycles of non-ROI application time per request, beyond what
    #: ``app_other_work``'s instructions account for.  Real applications
    #: spend a calibrated multiple of the query time outside the ROI
    #: (serialised work, I/O waits, code-footprint stalls our trace model
    #: does not capture); this budget is emitted as dependent long-latency
    #: chains so Fig. 1's query-share and Fig. 9's end-to-end numbers
    #: reflect the paper's profiled application mix.
    app_other_cycles = 0
    #: Latency of each link in the non-ROI dependency chain.
    APP_CHAIN_LINK_CYCLES = 8
    #: Emit application work every N queries (fan-out workloads such as
    #: FLANN issue several probes per application request).
    app_work_stride = 1
    #: Cachelines of per-request buffer (packet payload, request state) the
    #: non-query work touches.  This is what keeps the core's private caches
    #: busy in real request loops — and why near-LLC query execution avoids
    #: polluting them (Sec. V).
    request_buffer_lines = 8
    #: Distinct in-flight request buffers before the ring recycles (DPDK
    #: mbuf-pool-like).
    buffer_ring_requests = 128

    def __init__(self, system: System, *, num_queries: int = 200, seed: int = 7):
        self.system = system
        self.num_queries = num_queries
        self.seed = seed
        self._built = False
        self._queries: List[bytes] = []
        self._query_addrs: List[int] = []
        self._expected: List[Optional[int]] = []
        self._buffer_base = 0

    # ----------------- to implement per workload ----------------------- #

    def build(self) -> None:
        """Create the data structures and the query stream."""
        raise NotImplementedError

    def header_addr_for(self, index: int) -> int:
        """Header the ``index``-th query targets (single-structure default)."""
        raise NotImplementedError

    def emit_software_query(
        self, builder: TraceBuilder, index: int
    ) -> Optional[int]:
        """Emit the baseline routine for query ``index``; returns its value."""
        raise NotImplementedError

    def software_lookup(self, index: int) -> Optional[int]:
        """Functionally re-execute query ``index`` on the CPU path.

        This is the fallback executor's retry body: the same lookup the
        baseline trace models, run directly against the live simulated
        structure (so it observes any damage — or repair — the structure
        has seen since build time).  No timing is charged here; the
        :class:`~repro.system.FallbackExecutor` accounts for the retry cost
        via its backoff budget.
        """
        raise NotImplementedError

    # ----------------- provided machinery ------------------------------ #

    def _register_queries(
        self, queries: Sequence[bytes], expected: Sequence[Optional[int]]
    ) -> None:
        self._queries = list(queries)
        self._expected = list(expected)
        self._query_addrs = [
            self.system.mem.store_bytes(q) for q in self._queries
        ]
        if self.request_buffer_lines:
            ring_bytes = (
                self.buffer_ring_requests * self.request_buffer_lines * 64
            )
            self._buffer_base = self.system.mem.alloc(ring_bytes, align=64)
        self._built = True

    def _emit_other_work(
        self, builder: TraceBuilder, index: int, instructions: int
    ) -> None:
        """Unrelated per-request work: ALU chains plus buffer-line touches.

        The loads hit the request's own buffer in the ring (a packet payload
        or request object), so baseline and QEI runs face the same private-
        cache pressure from the application itself.
        """
        if instructions:
            builder.other_work(instructions)
        if not self.request_buffer_lines:
            return
        slot = index % self.buffer_ring_requests
        base = self._buffer_base + slot * self.request_buffer_lines * 64
        for line in range(self.request_buffer_lines):
            builder.load(base + line * 64)

    def _emit_app_work(self, builder: TraceBuilder, index: int) -> None:
        """Non-ROI application work: instructions plus a latency budget."""
        if index % self.app_work_stride:
            return
        self._emit_other_work(builder, index, self.app_other_work)
        if self.app_other_cycles:
            link = self.APP_CHAIN_LINK_CYCLES
            builder.alu(
                count=max(1, self.app_other_cycles // link), latency=link
            )

    # ----------------- mutation support (docs/mutations.md) ------------ #

    #: Workloads whose primary structure has a registered mutation CFA set
    #: this True and implement :meth:`mutable_structure`.
    MUTABLE = False

    def supports_mutation(self) -> bool:
        return self.MUTABLE

    def mutable_structure(self):
        """The structure write traffic targets (header + software side)."""
        raise WorkloadError(f"workload {self.name!r} has no mutable structure")

    def make_mutator(self):
        """A :class:`~repro.core.mutations.StructureMutator` for this
        workload's primary structure."""
        from ..core.mutations import make_mutator

        return make_mutator(self.system, self.mutable_structure())

    def key_for(self, index: int) -> bytes:
        """The ``index``-th query key (write generators mutate hot keys)."""
        self._require_built()
        return self._queries[index % len(self._queries)]

    @property
    def queries(self) -> List[bytes]:
        return self._queries

    @property
    def expected(self) -> List[Optional[int]]:
        return self._expected

    def _require_built(self) -> None:
        if not self._built:
            raise WorkloadError(f"workload {self.name!r} not built; call build()")

    # ----------------- trace builders ---------------------------------- #

    def baseline_trace(self) -> Tuple[Trace, List[Optional[int]]]:
        """The software ROI: per request, other work + the query routine."""
        self._require_built()
        builder = TraceBuilder()
        values = []
        for i in range(len(self._queries)):
            self._emit_other_work(builder, i, self.roi_other_work)
            values.append(self.emit_software_query(builder, i))
        return builder.trace, values

    def qei_trace(self, *, batch: int = 8) -> Trace:
        """The rewritten ROI: batched QUERY_B plus per-request other work.

        Queries issue in small *double-buffered* batches (the paper's List 2
        pattern): batch k's results are consumed only after batch k+1 has
        been issued, so the accelerator always has work while the core uses
        results — exactly how a performance engineer pipelines blocking
        queries against the QST capacity.
        """
        self._require_built()
        builder = TraceBuilder()
        previous: List[int] = []
        pending: List[int] = []
        for i in range(len(self._queries)):
            self._emit_other_work(builder, i, self.roi_other_work)
            op = builder.query_b(
                QueryOperands(self.header_addr_for(i), self._query_addrs[i])
            )
            pending.append(op)
            if len(pending) >= batch:
                for q in previous:
                    builder.alu(deps=(q,))  # consume the older batch
                previous, pending = pending, []
        for q in previous + pending:
            builder.alu(deps=(q,))
        return builder.trace

    def qei_nb_trace(self, *, poll_every: int = 32) -> Tuple[Trace, List[NbBatch]]:
        """Non-blocking ROI: QUERY_NB bursts polled every ``poll_every``."""
        self._require_built()
        builder = TraceBuilder()
        batches: List[NbBatch] = []
        result_base = self.system.mem.alloc(16 * len(self._queries), align=64)
        batch = NbBatch(result_base)
        batch_fill = 0  # queries assigned to the current batch at build time
        for i in range(len(self._queries)):
            self._emit_other_work(builder, i, self.roi_other_work)
            operands = QueryOperands(
                self.header_addr_for(i),
                self._query_addrs[i],
                result_addr=result_base + 16 * i,
            )
            builder.query_nb((operands, batch))
            batch_fill += 1
            if batch_fill >= poll_every:
                builder.wait_result(batch)
                batches.append(batch)
                batch = NbBatch(result_base)
                batch_fill = 0
        if batch_fill:
            builder.wait_result(batch)
            batches.append(batch)
        return builder.trace, batches

    def app_trace_baseline(self) -> Tuple[Trace, List[Optional[int]]]:
        """Whole-application request loop (non-ROI work + software query)."""
        self._require_built()
        builder = TraceBuilder()
        values = []
        for i in range(len(self._queries)):
            self._emit_app_work(builder, i)
            if self.roi_other_work:
                builder.other_work(self.roi_other_work)
            values.append(self.emit_software_query(builder, i))
        return builder.trace, values

    def app_trace_qei(self, *, batch: int = 8) -> Trace:
        """Whole-application request loop with the ROI offloaded to QEI."""
        self._require_built()
        builder = TraceBuilder()
        previous: List[int] = []
        pending: List[int] = []
        for i in range(len(self._queries)):
            self._emit_app_work(builder, i)
            if self.roi_other_work:
                builder.other_work(self.roi_other_work)
            op = builder.query_b(
                QueryOperands(self.header_addr_for(i), self._query_addrs[i])
            )
            pending.append(op)
            if len(pending) >= batch:
                for q in previous:
                    builder.alu(deps=(q,))
                previous, pending = pending, []
        for q in previous + pending:
            builder.alu(deps=(q,))
        return builder.trace

    def app_trace_other_only(self) -> Trace:
        """The application loop with the query routine removed.

        Used for Fig. 1's cycle attribution: the difference between the full
        application run and this run is the time spent in query operations.
        """
        self._require_built()
        builder = TraceBuilder()
        for i in range(len(self._queries)):
            self._emit_app_work(builder, i)
            if self.roi_other_work:
                builder.other_work(self.roi_other_work)
        return builder.trace

    # ----------------- verification ------------------------------------ #

    def verify_port(self, port: QueryPort) -> None:
        """Cross-check accelerator results against the software reference."""
        got = [h.value for h in port.handles]
        if len(got) != len(self._expected):
            raise WorkloadError(
                f"{self.name}: expected {len(self._expected)} results, "
                f"accelerator produced {len(got)}"
            )
        for i, (value, expected) in enumerate(zip(got, self._expected)):
            if value != expected:
                raise WorkloadError(
                    f"{self.name}: query {i} returned {value!r}, software "
                    f"reference says {expected!r}"
                )


# ------------------------------------------------------------------ #
# Runners
# ------------------------------------------------------------------ #


def run_baseline(
    system: System, workload: QueryWorkload, *, app: bool = False, warm: bool = True
) -> RoiRun:
    """Time the software ROI (or whole app) on core 0."""
    if warm:
        system.warm_llc()
    trace, values = (
        workload.app_trace_baseline() if app else workload.baseline_trace()
    )
    result = system.run_trace(trace)
    return RoiRun(
        cycles=result.cycles,
        instructions=result.instructions,
        queries=len(workload.queries),
        core_result=result,
        values=values,
    )


def run_qei(
    system: System,
    workload: QueryWorkload,
    *,
    app: bool = False,
    non_blocking: bool = False,
    batch: int = 8,
    poll_every: int = 32,
    verify: bool = True,
    warm: bool = True,
) -> RoiRun:
    """Time the QEI-offloaded ROI (or whole app) on core 0."""
    if warm:
        system.warm_llc()
    if non_blocking:
        trace, _ = workload.qei_nb_trace(poll_every=poll_every)
    elif app:
        trace = workload.app_trace_qei(batch=batch)
    else:
        trace = workload.qei_trace(batch=batch)
    port = system.query_port(0)
    result = system.run_trace(trace, port=port)
    if verify:
        workload.verify_port(port)
    return RoiRun(
        cycles=result.cycles,
        instructions=result.instructions,
        queries=len(workload.queries),
        core_result=result,
        values=[h.value for h in port.handles],
    )


def compare_schemes(
    workload_name: str,
    make_system_and_workload,
    schemes: Sequence[str],
) -> Dict[str, WorkloadResult]:
    """Run baseline + QEI for each scheme with a fresh system per scheme."""
    out: Dict[str, WorkloadResult] = {}
    for scheme in schemes:
        system, workload = make_system_and_workload(scheme)
        baseline = run_baseline(system, workload)
        qei = run_qei(system, workload)
        out[scheme] = WorkloadResult(workload_name, scheme, baseline, qei)
    return out
