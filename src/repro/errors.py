"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause.  Simulated
*architectural* faults (page faults, protection faults observed by the QEI
accelerator) are modelled as data (error codes in the Query State Table), not
as Python exceptions; the classes below signal *misuse of the library* or an
internally inconsistent simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, out of range, or inconsistent."""


class MemoryError_(ReproError):
    """Base class for simulated-memory errors (name avoids the builtin)."""


class SegmentationFault(MemoryError_):
    """A virtual address was accessed that is not mapped in the process."""

    def __init__(self, vaddr: int, message: str = "") -> None:
        detail = message or f"unmapped virtual address 0x{vaddr:x}"
        super().__init__(detail)
        self.vaddr = vaddr


class ProtectionFault(MemoryError_):
    """A mapped virtual address was accessed with insufficient permission."""

    def __init__(self, vaddr: int, access: str) -> None:
        super().__init__(f"{access} access denied at 0x{vaddr:x}")
        self.vaddr = vaddr
        self.access = access


class OutOfMemory(MemoryError_):
    """The simulated physical memory or a virtual arena is exhausted."""


class AllocationError(MemoryError_):
    """The simulated allocator cannot satisfy a request (bad size/free)."""


class DataStructureError(ReproError):
    """A simulated data structure is malformed or misused."""


class DuplicateKeyError(DataStructureError):
    """An insert found the key already present and duplicates are forbidden."""


class CapacityError(DataStructureError):
    """A bounded structure (e.g. cuckoo hash table) cannot take more items."""


class FirmwareError(ReproError):
    """A CFA firmware image is malformed or references unknown states."""


class AcceleratorError(ReproError):
    """The QEI accelerator was driven outside its architectural contract."""


class QstOverflowError(AcceleratorError):
    """More in-flight queries were submitted than the QST has entries.

    The paper makes the software responsible for tracking QST slot
    availability (Sec. IV-B); submitting past capacity is a program bug.
    """


class SimulationError(ReproError):
    """The event-driven simulation reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload was configured or driven incorrectly."""
