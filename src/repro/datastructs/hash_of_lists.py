"""A combined structure: hash table whose buckets are linked lists.

The paper (Sec. III-A) notes the accelerator "can even operate on combined
data structures such as a hash table of linked lists" by treating the
combination as a unique subtype with a dedicated CFA.  This module is that
example — and the firmware-update demonstration: its CFA program is *not*
pre-loaded in the accelerator; tests register it at runtime.

Layout: root_ptr -> array of ``size`` u64 bucket heads; each head starts a
linked-list chain of 24B nodes {key_ptr, value, next}.
"""

from __future__ import annotations

from typing import Optional

from ..core.header import StructureType
from ..errors import DataStructureError
from ..cpu.trace import TraceBuilder
from .base import MATCH_EXIT_MISPREDICT_RATE, ProcessMemory, SimStructure
from .hashing import branch_outcome, primary_hash
from .linkedlist import NODE_BYTES


class HashOfLists(SimStructure):
    """Chained hash table: the combined-structure subtype."""

    TYPE = StructureType.HASH_OF_LISTS

    def __init__(
        self, mem: ProcessMemory, *, key_length: int, num_buckets: int = 256
    ) -> None:
        if num_buckets <= 0 or num_buckets & (num_buckets - 1):
            raise DataStructureError("num_buckets must be a power of two")
        super().__init__(mem, key_length=key_length, size=num_buckets)
        self.num_buckets = num_buckets
        table = mem.alloc(num_buckets * 8, align=64)
        for i in range(num_buckets):
            mem.space.write_u64(table + i * 8, 0)
        self._update_header(root_ptr=table)
        self.table_addr = table
        self._count = 0

    def _bucket_slot(self, key: bytes) -> int:
        return self.table_addr + (primary_hash(key) % self.num_buckets) * 8

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    def insert(self, key: bytes, value: int) -> None:
        key = self._check_key(key)
        space = self.mem.space
        slot = self._bucket_slot(key)

        # Update in place when present.
        node = space.read_u64(slot)
        while node:
            key_ptr = space.read_u64(node)
            if space.read(key_ptr, self.key_length) == key:
                space.write_u64(node + 8, value)
                return
            node = space.read_u64(node + 16)

        key_addr = self.mem.store_bytes(key)
        node = self.mem.alloc(NODE_BYTES, align=8)
        space.write_u64(node + 0, key_addr)
        space.write_u64(node + 8, value)
        space.write_u64(node + 16, space.read_u64(slot))
        space.write_u64(slot, node)
        self._count += 1

    # ------------------------------------------------------------------ #

    def lookup(self, key: bytes) -> Optional[int]:
        key = self._check_key(key)
        space = self.mem.space
        node = space.read_u64(self._bucket_slot(key))
        while node:
            key_ptr = space.read_u64(node)
            if space.read(key_ptr, self.key_length) == key:
                return space.read_u64(node + 8)
            node = space.read_u64(node + 16)
        return None

    # ------------------------------------------------------------------ #

    def emit_lookup(
        self, builder: TraceBuilder, key_addr: int, key: bytes
    ) -> Optional[int]:
        key = self._check_key(key)
        space = self.mem.space

        header_load = builder.load(self.header_addr)
        key_loads = builder.load_span(key_addr, self.key_length)
        hash_op = builder.alu(
            deps=tuple(key_loads + [header_load]),
            count=max(8, 3 * self.key_length),
        )
        slot = self._bucket_slot(key)
        slot_load = builder.load(slot, (hash_op,))
        node = space.read_u64(slot)
        cursor = slot_load
        probes = 0

        while node:
            node_loads = builder.load_span(node, NODE_BYTES, (cursor,))
            key_ptr = space.read_u64(node)
            cmp_op = self._emit_memcmp(
                builder, key_ptr, key_addr, self.key_length, tuple(node_loads)
            )
            matched = space.read(key_ptr, self.key_length) == key
            builder.branch(
                deps=(cmp_op,),
                mispredicted=matched
                and branch_outcome(key, probes, MATCH_EXIT_MISPREDICT_RATE),
            )
            if matched:
                return space.read_u64(node + 8)
            cursor = builder.alu(deps=tuple(node_loads))
            node = space.read_u64(node + 16)
            probes += 1

        builder.branch(deps=(cursor,), mispredicted=True)
        return None
