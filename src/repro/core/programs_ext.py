"""Extension firmware: CFA programs beyond the factory image.

These programs demonstrate the paper's firmware-update story (Sec. IV-B) on
structures the accelerator did not ship with.  Register them at runtime::

    system.firmware.register(BPlusTreeCfa())

Registration triggers recompilation in :mod:`repro.core.specialize`:
programs whose exact class the specializer knows get a flat compiled
closure; anything else (including subclasses of the built-ins) runs
through the prebound tier, which wraps ``step`` without reinterpreting
it.  Either way the CEE's batched drain executes the result, so loaded
firmware pays no interpreter penalty relative to the factory image.
"""

from __future__ import annotations

from .cfa import (
    AluOp,
    Compare,
    Done,
    MemRead,
    QueryContext,
    StepOutcome,
    STATE_DONE,
)
from .header import StructureType
from .programs import _StandardProgram, _u64

_BTREE_HEADER = 40
_LEAF_FLAG = 0x1


class BPlusTreeCfa(_StandardProgram):
    """B+-tree index lookup: descend separators, scan the leaf.

    Per level: fetch the node header, then compare separators one at a
    time (the comparator provides ordered results, so the walk follows the
    first separator greater than the key).  At the leaf, compare stored
    keys for an exact match and read the aligned value slot.
    """

    TYPE_CODE = int(StructureType.BPLUS_TREE)
    NAME = "bplus-tree"
    #: subtype = fanout; a tree needs at least two children per node.
    SUBTYPE_MIN = 2
    SUBTYPE_MAX = 64
    STATES = _StandardProgram.PRELUDE_STATES + (
        "FETCH_NODE",
        "SEPARATOR",
        "SEPARATOR_CHECK",
        "LEAF_KEY",
        "LEAF_CHECK",
        "READ_CHILD",
        "READ_VALUE",
    )

    def after_parse(self, ctx: QueryContext) -> StepOutcome:
        root = ctx.header.root_ptr
        if not root:
            return StepOutcome(STATE_DONE, Done(None))
        ctx.vars["node"] = root
        return StepOutcome("FETCH_NODE", MemRead(root, _BTREE_HEADER, "node"))

    def dispatch(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        if ctx.state == "FETCH_NODE":
            v["flags"] = ctx.scratch_u64("node", 0)
            v["count"] = ctx.scratch_u64("node", 8)
            v["keys_ptr"] = ctx.scratch_u64("node", 24)
            v["slots_ptr"] = ctx.scratch_u64("node", 32)
            v["index"] = 0
            if v["flags"] & _LEAF_FLAG:
                return self._leaf_step(ctx)
            return self._separator_step(ctx)

        if ctx.state == "SEPARATOR_CHECK":
            if ctx.results["cmp"] > 0:  # separator > key: take this child
                return self._read_child(ctx, v["index"])
            v["index"] += 1
            return self._separator_step(ctx)

        if ctx.state == "LEAF_CHECK":
            if ctx.results["cmp"] == 0:
                slot = v["slots_ptr"] + 8 * v["index"]
                return StepOutcome("READ_VALUE", MemRead(slot, 8, "value"))
            v["index"] += 1
            return self._leaf_step(ctx)

        if ctx.state == "READ_CHILD":
            child = ctx.scratch_u64("child")
            v["node"] = child
            return StepOutcome("FETCH_NODE", MemRead(child, _BTREE_HEADER, "node"))

        if ctx.state == "READ_VALUE":
            return StepOutcome(STATE_DONE, Done(ctx.scratch_u64("value")))

        raise AssertionError(f"unreachable state {ctx.state}")

    # ---------------- helpers ---------------- #

    def _separator_step(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        if v["index"] >= v["count"]:
            return self._read_child(ctx, v["count"])  # rightmost child
        sep_addr = v["keys_ptr"] + v["index"] * ctx.header.key_length
        return StepOutcome(
            "SEPARATOR_CHECK",
            Compare(sep_addr, ctx.key_addr, ctx.header.key_length, "cmp"),
        )

    def _leaf_step(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        if v["index"] >= v["count"]:
            return StepOutcome(STATE_DONE, Done(None))
        key_addr = v["keys_ptr"] + v["index"] * ctx.header.key_length
        return StepOutcome(
            "LEAF_CHECK",
            Compare(key_addr, ctx.key_addr, ctx.header.key_length, "cmp"),
        )

    def _read_child(self, ctx: QueryContext, index: int) -> StepOutcome:
        slot = ctx.vars["slots_ptr"] + 8 * index
        return StepOutcome("READ_CHILD", MemRead(slot, 8, "child"))
