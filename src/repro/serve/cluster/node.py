"""One cluster node: a full simulated machine behind its own frontend.

A :class:`ClusterNode` is *not* a latency model — it wraps a complete
:class:`~repro.system.System` (accelerator, caches, NoC, fallback executor)
plus the single-node :class:`~repro.serve.QueryServer` (bounded admission
queues, QUERY_NB batcher, per-tenant SLO sketches), all scheduling on the
cluster's shared event engine.  Everything PRs 1-3 hardened — abort codes,
watchdogs, software fallback, slice health — therefore holds per node,
unchanged, under cluster load.

The node's ingress enforces ring ownership: a request for a shard this node
does not own under the current membership view is answered ``not-owner``
and the LB re-routes it — the drain-and-remap race a rebalance creates is
resolved by retry, never by serving a shard the ring moved away.  A node
killed by :meth:`fail` keeps its simulation state (the engine events it
already scheduled still fire) but drops every response at the egress, which
is exactly what a crashed process looks like from the LB's side.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ...config import ServeConfig
from ...core.cfa import OP_DELETE, OP_LOOKUP
from ...sim.stats import StatsRegistry
from ..frontend import ServeRequest
from ..server import QueryServer

#: Response kinds a node can send back to the LB.
RESP_OK = "ok"
RESP_FAILED = "failed"
RESP_SHED = "shed"
RESP_REJECTED = "rejected"
RESP_NOT_OWNER = "not-owner"

#: Retry-after hint attached to a ``not-owner`` response: the LB re-routes
#: against its (already newer) membership view after this short pause.
NOT_OWNER_RETRY_CYCLES = 32


class _TenantPort:
    """The per-tenant 'load generator' the node's QueryServer reports to.

    The single-node server calls the same callbacks a tenant's load
    generator would receive; here they terminate node-side service and hand
    the disposition back to the node, which answers the LB over the link.
    """

    def __init__(self, node: "ClusterNode", tenant: int) -> None:
        self.node = node
        self.tenant = tenant
        self.finished = False  # the cluster loop never calls server.run()

    def bind(self, server) -> None:  # QueryServer.attach protocol
        pass

    def on_rejected(self, request: ServeRequest, retry_after: int) -> None:
        self.node._admission_rejected(request, retry_after)

    def on_resolved(self, request: ServeRequest) -> None:
        self.node._resolved(request)


class ClusterNode:
    """One replica: full System + frontend, addressable over the LB link."""

    def __init__(
        self,
        node_id: int,
        system,
        workload,
        serve_config: ServeConfig,
        *,
        seed: int,
        respond: Callable[[int, object, str, Optional[int], int], None],
        owns_key: Callable[[int, int], bool],
    ) -> None:
        self.node_id = node_id
        self.system = system
        self.workload = workload
        self.server = QueryServer(
            system, workload, serve_config, mode="batched", seed=seed
        )
        #: ``respond(node_id, token, kind, value, retry_after)`` hands a
        #: response to the cluster fabric (which applies link state/latency).
        self._respond = respond
        #: ``owns_key(node_id, key_position)`` consults the ring + the
        #: LB-authoritative membership view (docs/serving.md).
        self._owns_key = owns_key
        self.alive = True
        self._next_id = 0
        #: node request key -> the LB's opaque request token.
        self._tokens: Dict[int, object] = {}
        #: node request key -> (key_position, LB write epoch, LB serial):
        #: what the replication layer needs to defer a write's ok on its
        #: quorum, plus the retry-stable identity for write dedup.
        self._meta: Dict[int, Tuple[int, int, int]] = {}
        #: LB request serial -> (commit ordinal, result): writes this node
        #: already committed, kept so a quorum-timeout retry re-arms the
        #: original commit instead of executing the mutation twice.
        self._write_commits: Dict[int, Tuple[int, Optional[int]]] = {}
        #: Durability layer (docs/recovery.md); None until the cluster
        #: calls :meth:`enable_replication` (writes-enabled runs only).
        self.replication = None
        self._peers: Optional[Callable[[int], object]] = None
        stats = system.stats.scoped(f"cluster.node{node_id}")
        self._received = stats.counter("received")
        self._dropped_dead = stats.counter("dropped.dead")
        self._not_owner = stats.counter("not_owner")
        self._killed_inflight = stats.counter("killed.inflight")
        self._write_dedup = stats.counter("write.dedup")
        for tenant in range(serve_config.tenants):
            self.server.attach(_TenantPort(self, tenant))

    # ------------------------------------------------------------------ #
    # Ingress (called by the cluster fabric at link-delivery time)
    # ------------------------------------------------------------------ #

    def receive(
        self,
        token: object,
        tenant: int,
        index: int,
        key_position: int,
        op: int = 0,
        value: int = 0,
        epoch: int = 0,
        serial: int = 0,
    ) -> None:
        """One request arriving off the LB link."""
        if not self.alive:
            self._dropped_dead.add()
            return  # a dead node answers nothing; the LB times out
        self._received.add()
        if not self._owns_key(self.node_id, key_position):
            self._not_owner.add()
            self._respond(
                self.node_id, token, RESP_NOT_OWNER, None,
                NOT_OWNER_RETRY_CYCLES,
            )
            return
        if (
            self.replication is not None
            and op != OP_LOOKUP
            and serial in self._write_commits
        ):
            # The LB is retrying a write whose first attempt committed but
            # whose quorum-deferred ok never made it back (e.g. a replica
            # died mid-quorum).  Re-executing would apply the mutation a
            # second time with a fresh stamp, serialized *after* — and so
            # clobbering — writes committed since the original.  Exactly
            # once: re-arm the quorum wait on the original commit.
            self._write_dedup.add()
            ordinal, result_value = self._write_commits[serial]
            self.replication.open_wait(
                ordinal=ordinal,
                key_pos=key_position,
                epoch=epoch,
                op=op,
                settled_value=None if op == OP_DELETE else value,
                token=token,
                result_value=result_value,
            )
            return
        self._next_id += 1
        request = ServeRequest(
            tenant=tenant,
            index=index,
            request_id=self._next_id,
            arrival_cycle=self.system.engine.now,
            op=op,
            value=value,
        )
        key = self._key(request)
        self._tokens[key] = token
        self._meta[key] = (key_position, epoch, serial)
        self.server.accept(self.server._generators_by_tenant[tenant], request)

    def _key(self, request: ServeRequest) -> int:
        return request.request_id * self.server.config.tenants + request.tenant

    # ------------------------------------------------------------------ #
    # Egress (QueryServer callbacks via _TenantPort)
    # ------------------------------------------------------------------ #

    def _admission_rejected(
        self, request: ServeRequest, retry_after: int
    ) -> None:
        key = self._key(request)
        token = self._tokens.pop(key, None)
        self._meta.pop(key, None)
        if token is None or not self.alive:
            return
        # The node-level Admission verdict travels up with its retry-after
        # hint so the LB (and through it the client) backs off against this
        # node instead of hammering it.
        self._respond(
            self.node_id, token, RESP_REJECTED, None, retry_after
        )

    def _resolved(self, request: ServeRequest) -> None:
        key = self._key(request)
        token = self._tokens.pop(key, None)
        meta = self._meta.pop(key, None)
        if token is None or not self.alive:
            return
        kind = {
            "ok": RESP_OK,
            "failed": RESP_FAILED,
            "shed": RESP_SHED,
        }[request.outcome or "failed"]
        if (
            kind == RESP_OK
            and request.commit_seq is not None
            and self.replication is not None
            and meta is not None
        ):
            # A published write: its ok is a durability promise, so it
            # waits for the replica quorum (docs/recovery.md).  Misses
            # (commit_seq None) changed nothing and answer immediately.
            key_position, epoch, serial = meta
            if serial:
                self._write_commits[serial] = (
                    request.commit_seq, request.result_value
                )
            self.replication.open_wait(
                ordinal=request.commit_seq,
                key_pos=key_position,
                epoch=epoch,
                op=request.op,
                settled_value=(
                    None if request.op == OP_DELETE else request.value
                ),
                token=token,
                result_value=request.result_value,
            )
            return
        self._respond(self.node_id, token, kind, request.result_value, 0)

    def quorum_respond(self, token: object, result_value: Optional[int]) -> None:
        """Deferred write ok, released by the replication quorum."""
        if not self.alive:
            return
        self._respond(self.node_id, token, RESP_OK, result_value, 0)

    # ------------------------------------------------------------------ #
    # Replication wiring (writes-enabled cluster runs only)
    # ------------------------------------------------------------------ #

    def enable_replication(self, manager, peers: Callable[[int], object]) -> None:
        """Attach the durability layer and export structure commits to it."""
        self.replication = manager
        self._peers = peers
        mutator = self.server._mutator
        if mutator is not None:
            manager.align_baseline(mutator.lock.read())
            mutator.on_commit = manager.local_commit

    def peer(self, node: int):
        """The :class:`ReplicationManager` of another node (fabric hop)."""
        assert self._peers is not None
        return self._peers(node)

    # ------------------------------------------------------------------ #
    # The cluster loop's drive hooks + fault surface
    # ------------------------------------------------------------------ #

    def pump(self) -> None:
        """Retire completions and refill the dispatch window (one tick)."""
        server = self.server
        if server._completions:
            server._drain_completions()
        if server.frontend.pending and server._outstanding < server.limit:
            server._dispatch()

    def flush(self) -> bool:
        """Force open batches out (stall recovery); True when any flushed."""
        return self.server.batcher.flush_all()

    def write_problems(self) -> List[str]:
        """The node's lost/phantom-update audit (empty when read-only).

        The cluster loop drives :meth:`pump` directly and never calls
        ``QueryServer.run``, so the shadow-oracle final check has to be
        requested explicitly once the fleet drains.
        """
        oracle = self.server._oracle
        if oracle is None:
            return []
        return oracle.final_check()

    @property
    def busy(self) -> bool:
        return bool(
            self.server._outstanding
            or self.server.frontend.pending
            or self.server._completions
        )

    def fail(self) -> int:
        """Kill the node; returns the requests it will never answer."""
        lost = len(self._tokens)
        self._killed_inflight.add(lost)
        self.alive = False
        # A crashed process loses its socket state: forget the in-flight
        # tokens so a response computed later (the simulation keeps running
        # the already-scheduled events) can never reach the LB.
        self._tokens.clear()
        self._meta.clear()
        # The dedup table is session state, not durable state: commits it
        # points at may be rolled back during recovery (torn-WAL resync),
        # so post-recovery retries must re-execute rather than re-arm.
        self._write_commits.clear()
        if self.replication is not None:
            self.replication.on_fail()
        return lost

    def recover(self) -> None:
        """Restart the node (empty queues; the prober re-admits it)."""
        self.alive = True
