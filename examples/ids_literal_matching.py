"""Intrusion-prevention literal matching on QEI (the Snort scenario).

Builds an Aho-Corasick automaton over a keyword dictionary in simulated
memory and scans packet payloads with it — once as the software baseline,
once as a single QEI trie-CFA query per payload (subtype 1: the "key" is
the payload text; the result is the number of keyword hits).

Run:  python examples/ids_literal_matching.py
"""

import random

from repro.datastructs import AhoCorasickTrie
from repro.system import System
from repro.core.accelerator import QueryRequest
from repro.cpu.trace import TraceBuilder
from repro.workloads.snort import make_dictionary, make_payload

PAYLOAD_BYTES = 256
KEYWORDS = 300


def main() -> None:
    system = System(scheme="core-integrated")

    automaton = AhoCorasickTrie(system.mem, key_length=PAYLOAD_BYTES)
    dictionary = make_dictionary(KEYWORDS, seed=17)
    for i, word in enumerate(dictionary):
        automaton.insert(word, i)
    automaton.seal()
    print(f"automaton: {KEYWORDS} keywords, "
          f"{automaton.header().size} serialized nodes\n")

    rng = random.Random(99)
    payloads = [
        make_payload(PAYLOAD_BYTES, dictionary, hit_density=0.03, rng=rng)
        for _ in range(4)
    ]

    system.warm_llc()
    for i, payload in enumerate(payloads):
        # Software scan (emits the baseline trace as a side effect).
        builder = TraceBuilder()
        addr = system.mem.store_bytes(payload)
        matches = automaton.emit_match(builder, addr, payload)
        software = system.cores[0].execute(builder.trace)

        # QEI scan: one query over the whole payload.
        handle = system.accelerator.submit(
            QueryRequest(header_addr=automaton.header_addr, key_addr=addr),
            system.engine.now,
        )
        system.accelerator.wait_for(handle)
        assert handle.value == len(matches), "CFA and software must agree"

        hits = ", ".join(
            dictionary[v][:12].decode() for _, v in matches[:3]
        ) or "none"
        print(f"payload {i}: {len(matches):>2} keyword hits ({hits}...)")
        print(f"  software scan : {software.cycles:>7} cycles, "
              f"{software.instructions} instructions")
        print(f"  QEI trie CFA  : "
              f"{handle.completion_cycle - handle.submit_cycle:>7} cycles, "
              "1 instruction on the core\n")

    print("Per-payload latency is comparable, but the core retires ~0 "
          "instructions for the scan — and payloads overlap in the QST, "
          "which is where the Fig. 7 throughput win comes from.")


if __name__ == "__main__":
    main()
