"""McPAT-style aggregation: components -> configuration totals.

The paper's methodology (Sec. VI-A) is incremental: configure the baseline
CPU, add QEI's components, subtract — the difference is QEI's cost.  Here
components are explicit, so a configuration *is* the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .cacti import SramMacro


@dataclass(frozen=True)
class ComponentCost:
    """One named component's contribution."""

    name: str
    area_mm2: float
    static_power_mw: float

    @classmethod
    def from_macro(cls, macro: SramMacro) -> "ComponentCost":
        return cls(macro.name, macro.area_mm2, macro.leakage_mw)


@dataclass
class Configuration:
    """A named set of components (one Tab. III row)."""

    name: str
    components: List[ComponentCost] = field(default_factory=list)

    def add(self, component: "ComponentCost | SramMacro") -> "Configuration":
        if isinstance(component, SramMacro):
            component = ComponentCost.from_macro(component)
        self.components.append(component)
        return self

    @property
    def area_mm2(self) -> float:
        return sum(c.area_mm2 for c in self.components)

    @property
    def static_power_mw(self) -> float:
        return sum(c.static_power_mw for c in self.components)

    def breakdown(self) -> str:
        lines = [f"{self.name}:"]
        for c in self.components:
            lines.append(
                f"  {c.name:<18} {c.area_mm2:8.4f} mm2  {c.static_power_mw:8.4f} mW"
            )
        lines.append(
            f"  {'total':<18} {self.area_mm2:8.4f} mm2  "
            f"{self.static_power_mw:8.4f} mW"
        )
        return "\n".join(lines)
