"""Fig. 10 — tuple-space search with non-blocking queries."""

import pytest

from repro.analysis import fig10_tuple_space

pytestmark = pytest.mark.slow


@pytest.mark.figure
def test_fig10_tuple_space(run_once, quick):
    result = run_once(fig10_tuple_space, quick=quick)
    print()
    print(result.format())

    schemes = [c for c in result.columns if c != "tuples"]
    # Speedup grows with the tuple count for the scalable schemes
    # (more independent queries in flight, Sec. VII-B).
    for scheme in ("cha-tlb", "cha-notlb", "device-direct", "device-indirect"):
        series = result.column(scheme)
        assert series[-1] > series[0] * 1.05, (scheme, series)

    # Device schemes close the gap under batching: device-direct's relative
    # distance to CHA-TLB is much smaller here than for blocking queries.
    for row in result.rows:
        assert row["device-direct"] > 0.5 * row["cha-tlb"], row

    # The core-integrated scheme's ten-entry QST caps its non-blocking
    # parallelism (Sec. VII-B) — it scales worse than CHA-TLB...
    ci = result.column("core-integrated")
    cha = result.column("cha-tlb")
    assert cha[-1] / cha[0] > ci[-1] / ci[0]
    # ...but it still accelerates every configuration.
    assert all(v > 1.0 for v in ci)
