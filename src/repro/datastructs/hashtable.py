"""A bucketised cuckoo hash table in simulated memory (DPDK-style).

Layout follows DPDK's hash library shape: a power-of-two array of buckets,
each bucket holding ``entries_per_bucket`` slots of ``{signature, kv_ptr}``.
Every key has two candidate buckets (primary/secondary hash); inserts
displace entries cuckoo-style between the two candidates.

Bucket slot (16 bytes)::

    offset 0: u64 signature   (0 = empty)
    offset 8: u64 kv_ptr      -> key/value record

Key/value record::

    offset 0:          u64 value
    offset 8:          key bytes (key_length long)

A lookup touches: header, hash of the key, primary bucket (signature
pre-filter), key record compare, and possibly the secondary bucket — the
small, fixed number of memory accesses the paper calls out for hash tables
(Sec. VII-A).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.header import StructureType
from ..errors import CapacityError, DataStructureError
from ..cpu.trace import TraceBuilder
from .base import MATCH_EXIT_MISPREDICT_RATE, ProcessMemory, SimStructure
from .hashing import branch_outcome, primary_hash, secondary_hash, signature_of

SLOT_BYTES = 16
MAX_DISPLACEMENTS = 64
#: Per-bucket software bookkeeping in the baseline: DPDK's lookup manages
#: prefetches, unpacks signatures and maintains hit masks around the scan.
BUCKET_SCAN_INSTRUCTIONS = 8
#: One fetch redirect per lookup: DPDK's loop is compact (only 7.5%
#: frontend bound per the paper), so stalls are rare.
IFETCH_STALL_CYCLES = 14


class CuckooHashTable(SimStructure):
    """Bucketised cuckoo hash table with out-of-line key/value records."""

    TYPE = StructureType.HASH_TABLE

    def __init__(
        self,
        mem: ProcessMemory,
        *,
        key_length: int,
        num_buckets: int = 1024,
        entries_per_bucket: int = 8,
    ) -> None:
        if num_buckets <= 0 or num_buckets & (num_buckets - 1):
            raise DataStructureError("num_buckets must be a power of two")
        if not 1 <= entries_per_bucket <= 255:
            raise DataStructureError("entries_per_bucket must fit the subtype byte")
        super().__init__(
            mem,
            key_length=key_length,
            subtype=entries_per_bucket,
            size=num_buckets,
        )
        self.num_buckets = num_buckets
        self.entries_per_bucket = entries_per_bucket
        self.bucket_bytes = entries_per_bucket * SLOT_BYTES
        table = mem.alloc(num_buckets * self.bucket_bytes, align=64)
        self._update_header(root_ptr=table)
        self.table_addr = table
        self._count = 0

    # ------------------------------------------------------------------ #

    def _bucket_addr(self, bucket_index: int) -> int:
        return self.table_addr + bucket_index * self.bucket_bytes

    def _candidate_buckets(self, key: bytes) -> Tuple[int, int]:
        h1 = primary_hash(key) % self.num_buckets
        h2 = secondary_hash(key) % self.num_buckets
        return h1, h2

    def _slot(self, bucket_index: int, slot_index: int) -> int:
        return self._bucket_addr(bucket_index) + slot_index * SLOT_BYTES

    def _read_slot(self, bucket_index: int, slot_index: int) -> Tuple[int, int]:
        addr = self.table_addr + bucket_index * self.bucket_bytes + slot_index * SLOT_BYTES
        return self.mem.space.read_2u64(addr)

    def _write_slot(self, bucket_index: int, slot_index: int, sig: int, kv: int) -> None:
        addr = self._slot(bucket_index, slot_index)
        self.mem.space.write_u64(addr, sig)
        self.mem.space.write_u64(addr + 8, kv)

    def _kv_key(self, kv_ptr: int) -> bytes:
        return self.mem.space.read(kv_ptr + 8, self.key_length)

    # ------------------------------------------------------------------ #
    # Construction (software-side; updates stay in software, Sec. IV-A)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    def insert(self, key: bytes, value: int) -> None:
        """Insert or update; raises :class:`CapacityError` when stuck."""
        key = self._check_key(key)
        sig = signature_of(key) or 1  # 0 means empty
        b1, b2 = self._candidate_buckets(key)

        # Update in place if present.
        existing = self._find_slot(key, sig)
        if existing is not None:
            bucket, slot, kv = existing
            self.mem.space.write_u64(kv, value)
            return

        kv = self.mem.alloc(8 + self.key_length, align=8)
        self.mem.space.write_u64(kv, value)
        self.mem.space.write(kv + 8, key)

        if self._try_place(b1, sig, kv) or self._try_place(b2, sig, kv):
            self._count += 1
            return
        # Cuckoo displacement from the primary bucket.
        if self._displace(b1, sig, kv, depth=0):
            self._count += 1
            return
        raise CapacityError(
            f"cuckoo insertion failed after {MAX_DISPLACEMENTS} displacements "
            f"({self._count} items in {self.num_buckets} buckets)"
        )

    def _try_place(self, bucket: int, sig: int, kv: int) -> bool:
        for slot in range(self.entries_per_bucket):
            stored_sig, _ = self._read_slot(bucket, slot)
            if stored_sig == 0:
                self._write_slot(bucket, slot, sig, kv)
                return True
        return False

    def _displace(self, bucket: int, sig: int, kv: int, depth: int) -> bool:
        if depth >= MAX_DISPLACEMENTS:
            return False
        # Kick the entry whose slot index rotates with depth (simple policy).
        victim_slot = depth % self.entries_per_bucket
        victim_sig, victim_kv = self._read_slot(bucket, victim_slot)
        self._write_slot(bucket, victim_slot, sig, kv)
        victim_key = self._kv_key(victim_kv)
        vb1, vb2 = self._candidate_buckets(victim_key)
        target = vb2 if vb1 == bucket else vb1
        if self._try_place(target, victim_sig, victim_kv):
            return True
        return self._displace(target, victim_sig, victim_kv, depth + 1)

    def delete(self, key: bytes) -> bool:
        """Clear the key's slot; returns True when the key was present.

        Deletes stay in software (Sec. IV-A): clearing the signature makes
        the slot reusable while in-flight accelerator lookups simply stop
        matching it.
        """
        key = self._check_key(key)
        sig = signature_of(key) or 1
        found = self._find_slot(key, sig)
        if found is None:
            return False
        bucket, slot, _ = found
        self._write_slot(bucket, slot, 0, 0)
        self._count -= 1
        return True

    def _find_slot(self, key: bytes, sig: int) -> Optional[Tuple[int, int, int]]:
        for bucket in self._candidate_buckets(key):
            for slot in range(self.entries_per_bucket):
                stored_sig, kv = self._read_slot(bucket, slot)
                if stored_sig == sig and kv and self._kv_key(kv) == key:
                    return bucket, slot, kv
        return None

    # ------------------------------------------------------------------ #
    # Query — functional reference
    # ------------------------------------------------------------------ #

    def lookup(self, key: bytes) -> Optional[int]:
        key = self._check_key(key)
        sig = signature_of(key) or 1
        found = self._find_slot(key, sig)
        if found is None:
            return None
        return self.mem.space.read_u64(found[2])

    # ------------------------------------------------------------------ #
    # Query — software baseline (functional + micro-op trace)
    # ------------------------------------------------------------------ #

    def emit_lookup(
        self, builder: TraceBuilder, key_addr: int, key: bytes
    ) -> Optional[int]:
        """DPDK-style lookup: hash, signature scan, key compare."""
        key = self._check_key(key)
        space = self.mem.space
        sig = signature_of(key) or 1

        header_load = builder.load(self.header_addr)
        key_loads = builder.load_span(key_addr, self.key_length)
        # Software hash: ~3 ALU ops per key byte (jhash-style mixing
        # rounds), plus the lookup API prologue.
        hash_op = builder.alu(
            deps=tuple(key_loads + [header_load]),
            count=max(8, 3 * self.key_length),
        )
        builder.ifetch_stall(IFETCH_STALL_CYCLES)

        for which, bucket in enumerate(self._candidate_buckets(key)):
            bucket_addr = self._bucket_addr(bucket)
            bucket_loads = builder.load_span(bucket_addr, self.bucket_bytes, (hash_op,))
            builder.alu(deps=tuple(bucket_loads), count=BUCKET_SCAN_INSTRUCTIONS)
            for slot in range(self.entries_per_bucket):
                stored_sig, kv = self._read_slot(bucket, slot)
                sig_cmp = builder.alu(deps=tuple(bucket_loads))
                builder.branch(deps=(sig_cmp,))  # signature filter: predictable
                if stored_sig != sig or not kv:
                    continue
                cmp_op = self._emit_memcmp(
                    builder, kv + 8, key_addr, self.key_length, (sig_cmp,)
                )
                matched = self._kv_key(kv) == key
                builder.branch(
                    deps=(cmp_op,),
                    mispredicted=matched
                    and branch_outcome(key, which, MATCH_EXIT_MISPREDICT_RATE),
                )
                if matched:
                    value_load = builder.load(kv, (cmp_op,))
                    return space.read_u64(kv)
        builder.branch(deps=(hash_op,), mispredicted=True)  # miss exit
        return None
