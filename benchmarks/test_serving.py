"""Serving-tier benchmark: throughput-vs-p99 across the integration schemes.

Sweeps offered load per scheme and prints the throughput-vs-tail-latency
curve a capacity planner would read off, then pins the headline claim:
coalescing admitted requests into QUERY_NB bursts sustains strictly more
throughput than per-request blocking submission at the same offered load.
"""

import pytest

from repro.analysis.report import ExperimentResult
from repro.serve import MODE_BATCHED, MODE_BLOCKING, run_serving
from repro.serve.driver import SCHEME_ORDER

pytestmark = pytest.mark.slow

#: Offered loads swept per scheme (queries/cycle/tenant).
LOADS = [0.005, 0.01, 0.02]


def throughput_curve(quick: bool) -> ExperimentResult:
    requests = 600 if quick else 4000
    result = ExperimentResult(
        "serve-curve",
        f"throughput vs p99, {requests} requests x 4 tenants per point",
        ["scheme", "offered_load", "completed", "rejected", "p50", "p99", "qps"],
    )
    for scheme in SCHEME_ORDER:
        for load in LOADS:
            report = run_serving(
                scheme, requests=requests, seed=7, offered_load=load
            )
            aggregate = report.aggregate
            result.add_row(
                scheme=scheme,
                offered_load=load,
                completed=aggregate["completed"],
                rejected=aggregate["rejected"],
                p50=aggregate["p50"],
                p99=aggregate["p99"],
                qps=aggregate["qps"],
            )
    return result


@pytest.mark.figure
def test_throughput_vs_p99_curve(run_once, quick):
    result = run_once(throughput_curve, quick)
    print()
    print(result.format())
    for scheme in SCHEME_ORDER:
        points = [row for row in result.rows if row["scheme"] == scheme]
        assert len(points) == len(LOADS)
        for row in points:
            assert row["completed"] > 0
            assert 0 < row["p50"] <= row["p99"]
        # More offered load must buy more served throughput on the curve's
        # swept range (the batcher absorbs it; nothing saturates yet).
        assert points[-1]["qps"] > points[0]["qps"]


def batched_vs_blocking(quick: bool):
    requests = 600 if quick else 4000
    load = 0.02
    runs = {}
    for mode in (MODE_BATCHED, MODE_BLOCKING):
        report = run_serving(
            "cha-tlb", requests=requests, seed=7, mode=mode, offered_load=load
        )
        runs[mode] = report.aggregate
    return runs


@pytest.mark.figure
def test_batched_beats_blocking_at_equal_offered_load(run_once, quick):
    runs = run_once(batched_vs_blocking, quick)
    batched, blocking = runs[MODE_BATCHED], runs[MODE_BLOCKING]
    print()
    print(
        f"\nbatched : qps={batched['qps']:.3e} p99={batched['p99']:.0f} "
        f"rejected={batched['rejected']}"
        f"\nblocking: qps={blocking['qps']:.3e} p99={blocking['p99']:.0f} "
        f"rejected={blocking['rejected']}"
    )
    # The tentpole claim: QUERY_NB bursts overlap queries in the QST, so the
    # batched tier serves the same offered load with far more throughput and
    # a lower tail than one blocking QUERY_B per tenant at a time.
    assert batched["qps"] > 1.5 * blocking["qps"]
    assert batched["p99"] < blocking["p99"]
    assert batched["rejected"] <= blocking["rejected"]
    assert batched["result_errors"] == 0
    assert blocking["result_errors"] == 0
