"""CACTI-like area/leakage primitives at the paper's 22nm node.

Constants are *calibrated*, not invented: the paper publishes three
McPAT/CACTI data points (Tab. III) — QEI-10 (0.1752mm2 / 10.8984mW),
QEI-10+TLB (0.5730 / 30.9049) and QEI-240 (1.0901 / 20.8764) — and we fit
this model's coefficients to land on them:

* the TLB adds 0.3978mm2 and 20.0065mW for 1024 entries, giving the
  per-entry CAM+SRAM constants;
* the QST scales sub-linearly from 10 to 240 entries (24x entries, 12.0x
  area, 2.5x leakage): small multi-ported scheduler arrays are dominated by
  per-entry flops and comparison logic, while the large device-side table
  banks its storage and amortises peripheral overhead (and retains idle
  entries in a low-leakage state), which CACTI reports as a power-law in
  entry count.
"""

from __future__ import annotations

from dataclasses import dataclass

# ----------------------------------------------------------------------- #
# TLB (CAM tags + SRAM data, per entry)
# ----------------------------------------------------------------------- #

#: mm^2 per TLB entry: 0.3978 mm^2 / 1024 entries.
CAM_MM2_PER_ENTRY = 3.8848e-4
#: mW leakage per TLB entry: 20.0065 mW / 1024 entries.
CAM_MW_PER_ENTRY = 1.9537e-2

# ----------------------------------------------------------------------- #
# QST scheduler array (power-law fits, see module docstring)
# ----------------------------------------------------------------------- #

QST_AREA_COEFF_MM2 = 0.013244
QST_AREA_EXPONENT = 0.78215
QST_LEAK_COEFF_MW = 2.7232
QST_LEAK_EXPONENT = 0.28904

# ----------------------------------------------------------------------- #
# Logic blocks (McPAT-style per-unit constants at 22nm)
# ----------------------------------------------------------------------- #

#: (area mm^2, leakage mW) per unit.
LOGIC_UNITS = {
    "alu": (0.008, 0.50),
    "comparator": (0.004, 0.25),
    "hash_unit": (0.012, 0.60),
    "cee": (0.035, 2.00),  # microcode store + sequencer + state-update logic
}


@dataclass(frozen=True)
class SramMacro:
    """One storage macro's modelled area and leakage."""

    name: str
    area_mm2: float
    leakage_mw: float


def tlb_macro(entries: int) -> SramMacro:
    """A dedicated accelerator TLB (CHA-TLB / device schemes)."""
    if entries <= 0:
        raise ValueError("TLB entries must be positive")
    return SramMacro(
        f"tlb[{entries}]",
        entries * CAM_MM2_PER_ENTRY,
        entries * CAM_MW_PER_ENTRY,
    )


def qst_macro(entries: int) -> SramMacro:
    """The Query State Table scheduler array."""
    if entries <= 0:
        raise ValueError("QST entries must be positive")
    return SramMacro(
        f"qst[{entries}]",
        QST_AREA_COEFF_MM2 * entries**QST_AREA_EXPONENT,
        QST_LEAK_COEFF_MW * entries**QST_LEAK_EXPONENT,
    )


def logic_block(kind: str, count: int = 1) -> SramMacro:
    """``count`` instances of a DPU/CEE logic unit."""
    try:
        area, leak = LOGIC_UNITS[kind]
    except KeyError as exc:
        kinds = ", ".join(sorted(LOGIC_UNITS))
        raise ValueError(f"unknown logic block {kind!r}; expected {kinds}") from exc
    if count <= 0:
        raise ValueError("count must be positive")
    return SramMacro(f"{kind}x{count}", area * count, leak * count)
