"""QEI configuration costs (Tab. III) and dynamic energy per query (Fig. 12).

Three configurations match Sec. VII-D:

* **QEI-10** — one ten-entry accelerator (CHA-based / Core-integrated), five
  ALUs, two comparators, the hash unit and the CEE;
* **QEI-10+TLB** — the same plus a dedicated 1024-entry TLB (CHA-TLB);
* **QEI-240** — the centralized device accelerator: 240-entry QST, ten
  comparators, a dedicated TLB is reported separately by the paper so it is
  excluded here too.

The dynamic model charges event energies (per retired instruction, per
cache/LLC/DRAM access, per QEI micro-op) to reproduce Fig. 12's result that
the accelerators cut >60% of per-query dynamic power, mostly by eliminating
frontend work and private-cache accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import QeiConfig
from .cacti import logic_block, qst_macro, tlb_macro
from .mcpat import Configuration

#: Dynamic energy constants at 22nm, in picojoules per event.  The core
#: instruction energy covers fetch/decode/rename/issue/retire (McPAT's
#: frontend + OoO engine activity per instruction — the dominant term, which
#: is why eliminating dynamic instructions saves most of the power, Fig.
#: 12); memory energies are per-cacheline-access CACTI values and are
#: charged from the cache hierarchy's own counters.
ENERGY_PJ = {
    "instruction": 500.0,
    "l1_access": 30.0,
    "l2_access": 180.0,
    "llc_access": 600.0,
    "dram_access": 12_000.0,
    "branch_mispredict": 250.0,
    # QEI events
    "cee_step": 15.0,
    "qei_translate": 25.0,
    "qei_compare_qword": 12.0,
    "qei_hash_uop": 180.0,
    "qei_alu_uop": 20.0,
    "noc_message": 45.0,
}


def qei_configuration(
    name: str,
    *,
    qst_entries: int,
    comparators: int,
    with_tlb: bool = False,
    qei: QeiConfig = QeiConfig(),
) -> Configuration:
    """Build one accelerator configuration's cost breakdown."""
    config = Configuration(name)
    config.add(qst_macro(qst_entries))
    config.add(logic_block("cee"))
    config.add(logic_block("alu", qei.alus_per_dpu))
    config.add(logic_block("comparator", comparators))
    config.add(logic_block("hash_unit"))
    if with_tlb:
        config.add(tlb_macro(qei.cha_tlb.entries))
    return config


def tab3_configurations(qei: QeiConfig = QeiConfig()) -> List[Configuration]:
    """The three rows of Tab. III."""
    return [
        qei_configuration(
            "QEI-10",
            qst_entries=qei.qst_entries,
            comparators=qei.comparators_per_cha,
            qei=qei,
        ),
        qei_configuration(
            "QEI-10+TLB",
            qst_entries=qei.qst_entries,
            comparators=qei.comparators_per_cha,
            with_tlb=True,
            qei=qei,
        ),
        qei_configuration(
            "QEI-240",
            qst_entries=qei.qst_entries * 24,
            comparators=qei.comparators_per_device_dpu,
            qei=qei,
        ),
    ]


@dataclass
class DynamicEnergyModel:
    """Event-based per-query dynamic energy (Fig. 12)."""

    energies_pj: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.energies_pj is None:
            self.energies_pj = dict(ENERGY_PJ)

    # ------------------------------------------------------------------ #

    def _memory_energy_pj(self, stats_delta: Dict[str, float]) -> float:
        """Cache/DRAM energy, charged from the hierarchy's own counters."""
        e = self.energies_pj
        total = 0.0

        def count(pattern: str) -> float:
            return sum(
                v for k, v in stats_delta.items() if pattern in k and v > 0
            )

        total += count(".l1d.hits") * e["l1_access"]
        total += count(".l1d.misses") * e["l1_access"]
        total += count(".l2.hits") * e["l2_access"]
        total += count(".l2.misses") * e["l2_access"]
        llc = sum(
            v
            for k, v in stats_delta.items()
            if "llc.slice" in k and (k.endswith(".hits") or k.endswith(".misses"))
        )
        total += llc * e["llc_access"]
        total += count("dram.accesses") * e["dram_access"]
        total += count("noc.messages") * e["noc_message"]
        return total

    def baseline_query_energy_pj(
        self, core_result, stats_delta: Dict[str, float], queries: int
    ) -> float:
        """Per-query software energy from a baseline ROI run."""
        e = self.energies_pj
        total = core_result.instructions * e["instruction"]
        total += core_result.branch_mispredicts * e["branch_mispredict"]
        total += self._memory_energy_pj(stats_delta)
        return total / max(1, queries)

    def qei_query_energy_pj(
        self, core_result, stats_delta: Dict[str, float], queries: int
    ) -> float:
        """Per-query energy of the QEI run: residual core + accelerator.

        ``stats_delta`` is a StatsRegistry diff spanning the QEI ROI run;
        cache/NoC activity (both the core's residual loads and the
        accelerator's fetches) is charged from the hierarchy counters.
        """
        e = self.energies_pj
        total = core_result.instructions * e["instruction"]
        total += core_result.branch_mispredicts * e["branch_mispredict"]
        total += self._memory_energy_pj(stats_delta)

        def delta(suffix: str) -> float:
            return sum(v for k, v in stats_delta.items() if k.endswith(suffix))

        total += delta("qei.cee.steps") * e["cee_step"]
        total += delta("qei.uops.hash") * e["qei_hash_uop"]
        total += delta("qei.uops.alu") * e["qei_alu_uop"]
        total += delta("comparators.busy_cycles") * e["qei_compare_qword"]
        # Accelerator-side translations (micro-TLB + scheme TLB lookups).
        total += sum(
            v for k, v in stats_delta.items() if k.endswith(".translations")
        ) * e["qei_translate"]
        return total / max(1, queries)

    def relative_dynamic_power(
        self,
        baseline_result,
        baseline_delta: Dict[str, float],
        baseline_queries: int,
        qei_result,
        qei_delta: Dict[str, float],
        qei_queries: int,
    ) -> float:
        """Fig. 12's metric: QEI dynamic consumption per query vs baseline.

        Reported as the ratio of per-query dynamic energy (the paper's
        "average dynamic power consumption per query"): the accelerator's
        saving comes from eliminated frontend activity and private-cache
        accesses, so the ratio lands well below 40% (a >60% reduction).
        """
        e_base = self.baseline_query_energy_pj(
            baseline_result, baseline_delta, baseline_queries
        )
        e_qei = self.qei_query_energy_pj(qei_result, qei_delta, qei_queries)
        if e_base <= 0:
            return 0.0
        return e_qei / e_base
