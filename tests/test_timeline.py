"""Tests for the observability helpers (timeline, latency, jitter)."""

import pytest

from repro import small_config
from repro.analysis.timeline import (
    jitter_report,
    latency_summary,
    occupancy_timeline,
    per_query_table,
)
from repro.core.accelerator import QueryRequest
from repro.datastructs import CuckooHashTable
from repro.system import System


@pytest.fixture
def run():
    system = System(small_config())
    table = CuckooHashTable(system.mem, key_length=16, num_buckets=128)
    keys = [(b"k%d" % i).ljust(16, b"_") for i in range(40)]
    for i, key in enumerate(keys):
        table.insert(key, i)
    handles = []
    for key in keys[:20]:
        handles.append(
            system.accelerator.submit(
                QueryRequest(
                    header_addr=table.header_addr,
                    key_addr=table.store_key(key),
                ),
                system.engine.now,
            )
        )
    for handle in handles:
        system.accelerator.wait_for(handle)
    return system, handles


def test_latency_summary_fields(run):
    system, _ = run
    summary = latency_summary(system.accelerator)
    assert summary.count == 20
    assert 0 < summary.p50 <= summary.p90 <= summary.p99 <= summary.maximum
    assert "queries=20" in summary.format()


def test_occupancy_timeline_renders(run):
    _, handles = run
    line = occupancy_timeline(handles, capacity=10)
    assert line.startswith("[")
    assert "peak=" in line and "/10" in line


def test_occupancy_timeline_empty():
    assert occupancy_timeline([]) == "(no completed queries)"


def test_per_query_table_limits_rows(run):
    _, handles = run
    table = per_query_table(handles, limit=5)
    assert "more)" in table
    assert table.count("\n") == 6  # header + 5 rows + trailer


def test_jitter_report_values(run):
    _, handles = run
    mean, jitter = jitter_report(handles)
    assert mean > 0
    assert jitter >= 1.0


def test_jitter_report_empty():
    assert jitter_report([]) == (0.0, 0.0)
