"""Co-runner interference study: QEI vs software under a noisy neighbour.

Cloud CPUs are shared; query latency on a real machine depends on what the
*other* cores are doing to the LLC and DRAM.  This study co-runs each query
workload with a streaming antagonist (a memory-bandwidth hog on another
core) and compares how much the software baseline and the QEI version each
degrade — a consequence of the paper's design the evaluation section
doesn't isolate, but that its QoS motivation (Sec. II-B challenge 2)
implies.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import small_config
from ..cpu import TraceBuilder, run_multiprogrammed
from ..system import System
from ..workloads import make_workload
from .experiments import workload_params
from .report import ExperimentResult


def streaming_antagonist(
    system: System, *, footprint_bytes: int = 8 * 1024 * 1024, passes: int = 2
):
    """A core-1 trace that streams through a large private buffer."""
    base = system.mem.alloc(footprint_bytes, align=64)
    builder = TraceBuilder()
    for _ in range(passes):
        for offset in range(0, footprint_bytes, 64 * 2):  # strided stream
            builder.load(base + offset)
            builder.alu()
    return builder.trace


def corun_interference(
    *,
    quick: bool = True,
    workloads: Optional[List[str]] = None,
    antagonist_mb: int = 8,
) -> ExperimentResult:
    """Slowdown of software vs QEI queries under a streaming co-runner.

    Runs on the scaled-down 4-core machine so the antagonist's footprint
    actually exceeds the LLC and evicts the victim's working set (on the
    full 33MB-LLC machine an 8MB stream is absorbed without contention).
    """
    result = ExperimentResult(
        "Interference",
        f"query slowdown with a {antagonist_mb}MB streaming co-runner",
        [
            "workload",
            "software_slowdown_pct",
            "qei_slowdown_pct",
        ],
        notes=[
            "both victims degrade heavily once the antagonist exceeds the"
            " LLC: the software baseline is partially shielded by its"
            " private L1/L2 copies, while QEI's near-LLC compares depend"
            " on LLC residency — co-location effects matter for both",
        ],
    )
    for name in workloads or ["dpdk", "jvm"]:
        params = workload_params(name, quick)

        def solo_baseline():
            system = System(small_config(), "core-integrated")
            workload = make_workload(name, system, **params)
            system.warm_llc()
            trace, _ = workload.baseline_trace()
            return system.cores[0].execute(trace).cycles

        def corun_baseline():
            system = System(small_config(), "core-integrated")
            workload = make_workload(name, system, **params)
            antagonist = streaming_antagonist(
                system, footprint_bytes=antagonist_mb * 1024 * 1024
            )
            system.warm_llc()
            trace, _ = workload.baseline_trace()
            multi = run_multiprogrammed(
                [(system.cores[0], trace), (system.cores[1], antagonist)]
            )
            return multi.per_core[0].cycles

        def solo_qei():
            system = System(small_config(), "core-integrated")
            workload = make_workload(name, system, **params)
            system.warm_llc()
            port = system.query_port(0)
            trace = workload.qei_trace()
            return system.run_trace(trace, port=port).cycles

        def corun_qei():
            system = System(small_config(), "core-integrated")
            workload = make_workload(name, system, **params)
            antagonist = streaming_antagonist(
                system, footprint_bytes=antagonist_mb * 1024 * 1024
            )
            system.warm_llc()
            port = system.query_port(0)
            trace = workload.qei_trace()
            multi = run_multiprogrammed(
                [(system.cores[0], trace), (system.cores[1], antagonist)],
                externals={0: port},
            )
            return multi.per_core[0].cycles

        base_solo, base_corun = solo_baseline(), corun_baseline()
        qei_solo, qei_corun = solo_qei(), corun_qei()
        result.add_row(
            workload=name,
            software_slowdown_pct=100 * (base_corun / base_solo - 1),
            qei_slowdown_pct=100 * (qei_corun / qei_solo - 1),
        )
    return result
