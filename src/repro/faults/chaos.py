"""Chaos harness: infrastructure faults under closed-loop serving load.

``python -m repro chaos`` drives one scaled-down machine with multi-tenant
closed-loop load while a deterministic event schedule kills and recovers
accelerator slices and hot-swaps CFA firmware mid-run.  The contract it
asserts is the ROADMAP's availability story:

* **zero wrong results** — every completed request matches the software
  oracle, whether it ran accelerated, rerouted to a survivor slice, or
  resolved through the software fallback after a ``SLICE_DOWN`` abort;
* **zero hangs** — every admitted request reaches a terminal outcome
  (completion or an explicit deadline shed), i.e. availability is 100%;
* **determinism** — the same seed reproduces a byte-identical report,
  faults included (``--repeats`` re-runs and compares the dumps).

Events fire when the fleet-wide terminal-request count crosses seeded
thresholds — a cycle-free trigger, so the schedule is identical across
runs regardless of how timing shifts as the code evolves.  The timeline is
segmented into phases at every event; the report carries availability and
p99 per phase.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import ClusterConfig, IntegrationScheme, ServeConfig
from ..core.programs import HashOfListsCfa
from ..core.programs_ext import BPlusTreeCfa
from ..errors import ReproError

#: Event actions (single-machine chaos).
SLICE_FAIL = "slice-fail"
SLICE_RECOVER = "slice-recover"
FIRMWARE_SWAP = "firmware-swap"

#: Event actions (mixed read/write chaos, docs/mutations.md).
RESIZE_START = "resize-start"
RESIZE_COMMIT = "resize-commit"

#: Event actions (cluster chaos; kill/flap/partition mirror the
#: FaultKind.NODE_KILL / NODE_FLAP / NET_PARTITION taxonomy entries).
NODE_KILL = "node-kill"
NODE_FLAP = "node-flap"
NODE_RECOVER = "node-recover"
NET_PARTITION = "net-partition"
NET_HEAL = "net-heal"

#: A flapped node restarts this many cycles after its kill.
FLAP_OUTAGE_CYCLES = 3_000

#: Event actions (recovery chaos; mirror FaultKind.REPLICA_LAG /
#: LOG_TRUNCATE in the fault taxonomy).
REPLICA_LAG = "replica-lag"
LOG_TRUNCATE = "log-truncate"

#: Extra node->node delivery latency a REPLICA_LAG event injects.
REPLICA_LAG_CYCLES = 4_096

#: Post-run drain quantum while replicas converge / catch-up completes.
RECOVERY_DRAIN_CYCLES = 8_192


class ChaosError(ReproError):
    """The chaos contract was violated (wrong result, hang, lost event)."""


@dataclass
class ChaosEvent:
    """One scheduled infrastructure fault.

    ``trigger`` is the fleet-wide terminal-request count at which the
    event fires; ``home`` identifies the victim slice for fail/recover.
    """

    action: str
    trigger: int
    home: Optional[int] = None
    fired_cycle: Optional[int] = None
    #: SLICE_DOWN aborts caused (slice-fail only).
    aborted: int = 0

    def row(self) -> Dict[str, object]:
        return {
            "action": self.action,
            "trigger": self.trigger,
            "home": self.home,
            "fired_cycle": self.fired_cycle,
            "aborted": self.aborted,
        }


@dataclass
class ChaosReport:
    """One chaos run: the event log, the serving report, and the verdicts."""

    scheme: str
    seed: int
    requests: int
    events: List[Dict[str, object]] = field(default_factory=list)
    serving: Dict[str, object] = field(default_factory=dict)
    checks: Dict[str, object] = field(default_factory=dict)

    def dump(self) -> str:
        """Canonical JSON (byte-identical across same-seed runs)."""
        return json.dumps(
            {
                "scheme": self.scheme,
                "seed": self.seed,
                "requests": self.requests,
                "events": self.events,
                "serving": self.serving,
                "checks": self.checks,
            },
            sort_keys=True,
            separators=(",", ":"),
        )


def chaos_schedule(homes: List[int], requests: int) -> List[ChaosEvent]:
    """The canonical event schedule: 2 kills, 2 recoveries, 1 hot-swap.

    Victims are the first two accelerator homes (the same home twice for
    single-home schemes — kill, recover, kill again).  Triggers sit at
    fixed fractions of the request budget so the schedule scales with run
    length.
    """
    first = homes[0]
    second = homes[1] if len(homes) > 1 else homes[0]
    return [
        ChaosEvent(SLICE_FAIL, max(1, requests * 15 // 100), home=first),
        ChaosEvent(SLICE_RECOVER, max(2, requests * 30 // 100), home=first),
        ChaosEvent(SLICE_FAIL, max(3, requests * 45 // 100), home=second),
        ChaosEvent(SLICE_RECOVER, max(4, requests * 60 // 100), home=second),
        ChaosEvent(FIRMWARE_SWAP, max(5, requests * 75 // 100)),
    ]


def run_chaos(
    scheme: str,
    *,
    seed: int = 7,
    requests: int = 400,
    tenants: int = 4,
    workload: str = "dpdk",
    serve_config: Optional[ServeConfig] = None,
    verify: bool = True,
) -> ChaosReport:
    """One closed-loop serving run under the canonical chaos schedule."""
    from ..serve import ClosedLoopGenerator, build_serving_system

    if serve_config is None:
        serve_config = ServeConfig(tenants=tenants)
    system, built = build_serving_system(
        scheme, seed=seed, serve_config=serve_config, workload=workload
    )
    server = system.make_server(built, serve_config, seed=seed)
    per_tenant = max(1, requests // serve_config.tenants)
    for tenant in range(serve_config.tenants):
        server.attach(
            ClosedLoopGenerator(
                tenant,
                config=serve_config,
                num_requests=per_tenant,
                num_queries=len(built.queries),
                seed=seed,
                stats=system.stats,
            )
        )
    budget = per_tenant * serve_config.tenants

    events = chaos_schedule(system.integration.accelerator_homes(), budget)
    pending = list(events)
    swap_tickets = []
    server.slo.begin_phase("baseline", system.engine.now)

    def fire(event: ChaosEvent) -> None:
        event.fired_cycle = system.engine.now
        if event.action == SLICE_FAIL:
            event.aborted = system.fail_slice(event.home)
        elif event.action == SLICE_RECOVER:
            system.recover_slice(event.home)
        else:
            # Live hot-swap: stop pulling new work, push the open bursts
            # through, then quiesce-and-commit; dispatch resumes at commit.
            server.pause_dispatch()
            server.batcher.flush_all()
            ticket = system.update_firmware(
                [BPlusTreeCfa(), HashOfListsCfa()],
                on_complete=lambda upd: server.resume_dispatch(),
            )
            swap_tickets.append(ticket)
        label = (
            event.action
            if event.home is None
            else f"{event.action}-{event.home}"
        )
        server.slo.begin_phase(label, system.engine.now)

    def on_tick(srv) -> None:
        while pending and srv.slo.terminal >= pending[0].trigger:
            fire(pending.pop(0))

    serving_report = server.run(on_tick=on_tick)
    # A trigger past the budget (tiny runs) would never fire mid-run;
    # fire the stragglers now so the schedule always completes.
    while pending:
        fire(pending.pop(0))
        system.engine.run()

    aggregate = serving_report.aggregate
    swap_committed = all(t.done for t in swap_tickets)
    extensions_live = system.firmware.supports(
        BPlusTreeCfa.TYPE_CODE
    ) and system.firmware.supports(HashOfListsCfa.TYPE_CODE)
    report = ChaosReport(
        scheme=IntegrationScheme.parse(scheme).value,
        seed=seed,
        requests=budget,
        events=[event.row() for event in events],
        serving={
            "aggregate": aggregate,
            "phases": serving_report.phases,
            "tenants": serving_report.tenants,
            "elapsed_cycles": serving_report.elapsed_cycles,
        },
        checks={
            "result_errors": aggregate["result_errors"],
            "failed": aggregate["failed"],
            "availability": aggregate["availability"],
            "slice_kills": sum(
                1 for e in events if e.action == SLICE_FAIL
            ),
            "slice_recoveries": sum(
                1 for e in events if e.action == SLICE_RECOVER
            ),
            "firmware_swaps": len(swap_tickets),
            "swap_committed": swap_committed,
            "extension_programs_live": extensions_live,
            "slice_down_aborts": sum(e.aborted for e in events),
        },
    )
    if verify:
        _verify(report)
    return report


def _verify(report: ChaosReport) -> None:
    checks = report.checks
    problems = []
    if checks["result_errors"]:
        problems.append(f"{checks['result_errors']} wrong results")
    if checks["failed"]:
        problems.append(f"{checks['failed']} unresolved requests")
    if checks["availability"] != 1.0:
        problems.append(f"availability {checks['availability']:.4f} != 1.0")
    if not checks["swap_committed"]:
        problems.append("firmware hot-swap never committed")
    if not checks["extension_programs_live"]:
        problems.append("extension programs missing after hot-swap")
    if any(event["fired_cycle"] is None for event in report.events):
        problems.append("chaos schedule did not complete")
    if problems:
        raise ChaosError(
            f"chaos contract violated on {report.scheme}: "
            + "; ".join(problems)
        )


def run_mutation_chaos(
    scheme: str,
    *,
    seed: int = 7,
    requests: int = 400,
    tenants: int = 4,
    write_ratio: float = 0.5,
    workload: str = "dpdk",
    verify: bool = True,
) -> ChaosReport:
    """The mixed read/write chaos run (docs/mutations.md).

    The canonical slice-kill/recover/hot-swap schedule runs unchanged, but
    every tenant issues ``write_ratio`` of its requests as accelerated
    INSERT/UPDATE/DELETE traffic, and one full online hash-table resize is
    driven to completion mid-run: started at 20% of the budget, migrating
    one chunk per terminal request, committed (through the accelerator
    quiesce) the moment the migration drains.  On top of the read-only
    contract the run must show **zero wrong reads** (every read value was
    plausibly visible in the shadow oracle's timeline) and **zero lost or
    phantom updates** (the drained structure equals the oracle's
    sequential final state).
    """
    from ..serve import ClosedLoopGenerator, build_serving_system

    serve_config = ServeConfig(tenants=tenants, write_ratio=write_ratio)
    system, built = build_serving_system(
        scheme, seed=seed, serve_config=serve_config, workload=workload
    )
    server = system.make_server(built, serve_config, seed=seed)
    per_tenant = max(1, requests // serve_config.tenants)
    for tenant in range(serve_config.tenants):
        server.attach(
            ClosedLoopGenerator(
                tenant,
                config=serve_config,
                num_requests=per_tenant,
                num_queries=len(built.queries),
                seed=seed,
                stats=system.stats,
            )
        )
    budget = per_tenant * serve_config.tenants

    events = chaos_schedule(system.integration.accelerator_homes(), budget)
    pending = list(events)
    swap_tickets = []
    server.slo.begin_phase("baseline", system.engine.now)

    resizer = system.start_resize(
        built.mutable_structure(), chunk_buckets=8
    )
    resize_start = ChaosEvent(RESIZE_START, max(1, budget * 20 // 100))
    resize_commit = ChaosEvent(RESIZE_COMMIT, resize_start.trigger)
    events = events + [resize_start, resize_commit]
    resize = {"stepped_at": -1, "committing": False}

    def commit_resize() -> None:
        # Mirror the firmware hot-swap: stop pulling new work, push the
        # open bursts through, quiesce-and-flip, resume at commit.
        resize["committing"] = True
        server.pause_dispatch()
        server.batcher.flush_all()

        def committed() -> None:
            resize_commit.fired_cycle = system.engine.now
            server.resume_dispatch()

        resizer.commit(on_complete=committed)

    def drive_resize(terminal: int) -> None:
        if resize["committing"]:
            return
        if resize_start.fired_cycle is None:
            if terminal >= resize_start.trigger:
                resize_start.fired_cycle = system.engine.now
                resizer.start()
                server.slo.begin_phase("resize", system.engine.now)
        elif not resizer.finished:
            # One chunk per terminal request: the migration overlaps live
            # reads and writes instead of completing inside one tick.
            if terminal > resize["stepped_at"]:
                resize["stepped_at"] = terminal
                resizer.step()
        else:
            commit_resize()

    def fire(event: ChaosEvent) -> None:
        event.fired_cycle = system.engine.now
        if event.action == SLICE_FAIL:
            event.aborted = system.fail_slice(event.home)
        elif event.action == SLICE_RECOVER:
            system.recover_slice(event.home)
        else:
            server.pause_dispatch()
            server.batcher.flush_all()
            ticket = system.update_firmware(
                [BPlusTreeCfa(), HashOfListsCfa()],
                on_complete=lambda upd: server.resume_dispatch(),
            )
            swap_tickets.append(ticket)
        label = (
            event.action
            if event.home is None
            else f"{event.action}-{event.home}"
        )
        server.slo.begin_phase(label, system.engine.now)

    def on_tick(srv) -> None:
        while pending and srv.slo.terminal >= pending[0].trigger:
            fire(pending.pop(0))
        drive_resize(srv.slo.terminal)

    serving_report = server.run(on_tick=on_tick)
    while pending:
        fire(pending.pop(0))
        system.engine.run()
    if resize_commit.fired_cycle is None:
        # Tiny runs can drain the budget before the migration does; finish
        # the protocol so the run always includes one *complete* resize.
        if resize_start.fired_cycle is None:
            resize_start.fired_cycle = system.engine.now
            resizer.start()
        while not resizer.finished:
            resizer.step()
        if not resize["committing"]:
            commit_resize()
        system.engine.run()

    oracle = server._oracle
    aggregate = serving_report.aggregate
    swap_committed = all(t.done for t in swap_tickets)
    report = ChaosReport(
        scheme=IntegrationScheme.parse(scheme).value,
        seed=seed,
        requests=budget,
        events=[event.row() for event in events],
        serving={
            "aggregate": aggregate,
            "phases": serving_report.phases,
            "tenants": serving_report.tenants,
            "elapsed_cycles": serving_report.elapsed_cycles,
        },
        checks={
            "write_ratio": write_ratio,
            "result_errors": aggregate["result_errors"],
            "failed": aggregate["failed"],
            "availability": aggregate["availability"],
            "reads_checked": oracle.reads_checked,
            "wrong_reads": oracle.wrong_reads,
            "writes_tracked": oracle.writes_tracked,
            "lost_or_phantom": len(server.write_problems or []),
            "write_problems": list(server.write_problems or []),
            "slice_kills": sum(1 for e in events if e.action == SLICE_FAIL),
            "firmware_swaps": len(swap_tickets),
            "swap_committed": swap_committed,
            "resize_committed": resizer.committed,
            "slice_down_aborts": sum(e.aborted for e in events),
        },
    )
    if verify:
        _verify_mutation(report)
    return report


def _verify_mutation(report: ChaosReport) -> None:
    checks = report.checks
    problems = []
    if checks["wrong_reads"]:
        problems.append(f"{checks['wrong_reads']} wrong reads")
    if checks["result_errors"]:
        problems.append(f"{checks['result_errors']} result errors")
    if checks["lost_or_phantom"]:
        problems.append(
            f"{checks['lost_or_phantom']} lost/phantom updates: "
            + "; ".join(checks["write_problems"][:3])
        )
    if checks["failed"]:
        problems.append(f"{checks['failed']} unresolved requests")
    if checks["availability"] != 1.0:
        problems.append(f"availability {checks['availability']:.4f} != 1.0")
    if not checks["swap_committed"]:
        problems.append("firmware hot-swap never committed")
    if not checks["resize_committed"]:
        problems.append("online resize never committed")
    if any(event["fired_cycle"] is None for event in report.events):
        problems.append("mutation chaos schedule did not complete")
    if problems:
        raise ChaosError(
            f"mutation chaos contract violated on {report.scheme} "
            f"(write_ratio={checks['write_ratio']}): " + "; ".join(problems)
        )


def chaos_experiment(
    *,
    schemes=None,
    seed: int = 7,
    requests: int = 400,
    tenants: int = 4,
    repeats: int = 2,
):
    """Chaos campaign: slice kills, recoveries and a live firmware swap
    under closed-loop load, with a same-seed determinism re-run."""
    from ..analysis.report import ExperimentResult

    scheme_names = [
        IntegrationScheme.parse(s).value
        for s in (schemes or [IntegrationScheme.CHA_TLB.value])
    ]
    result = ExperimentResult(
        "chaos",
        (
            f"{requests} closed-loop requests x {tenants} tenants under "
            f"2 slice kills + 2 recoveries + 1 firmware hot-swap (seed {seed})"
        ),
        [
            "scheme",
            "phase",
            "admitted",
            "completed",
            "shed",
            "availability",
            "p99",
            "aborts",
            "errors",
        ],
    )
    for scheme in scheme_names:
        report = run_chaos(
            scheme, seed=seed, requests=requests, tenants=tenants
        )
        for _ in range(max(0, repeats - 1)):
            again = run_chaos(
                scheme, seed=seed, requests=requests, tenants=tenants
            )
            if again.dump() != report.dump():
                raise ChaosError(
                    f"chaos run on {scheme} is not deterministic: "
                    f"same-seed re-run produced a different report"
                )
        for phase in report.serving["phases"]:
            result.add_row(
                scheme=scheme,
                phase=phase["name"],
                admitted=phase["admitted"],
                completed=phase["completed"],
                shed=phase["deadline_shed"],
                availability=phase["availability"],
                p99=phase["p99"],
                aborts="",
                errors="",
            )
        checks = report.checks
        result.add_row(
            scheme=scheme,
            phase="all",
            admitted=report.serving["aggregate"]["admitted"],
            completed=report.serving["aggregate"]["completed"],
            shed=report.serving["aggregate"]["deadline_shed"],
            availability=checks["availability"],
            p99=report.serving["aggregate"]["p99"],
            aborts=checks["slice_down_aborts"],
            errors=checks["result_errors"],
        )
    # Mixed read/write phase (docs/mutations.md): the same schedule plus
    # one full online resize, under 95/5 and 50/50 write mixes.
    mixed_scheme = scheme_names[0]
    for label, write_ratio in (("mixed-95/5", 0.05), ("mixed-50/50", 0.5)):
        report = run_mutation_chaos(
            mixed_scheme,
            seed=seed,
            requests=requests,
            tenants=tenants,
            write_ratio=write_ratio,
        )
        for _ in range(max(0, repeats - 1)):
            again = run_mutation_chaos(
                mixed_scheme,
                seed=seed,
                requests=requests,
                tenants=tenants,
                write_ratio=write_ratio,
            )
            if again.dump() != report.dump():
                raise ChaosError(
                    f"mutation chaos run on {mixed_scheme} is not "
                    "deterministic: same-seed re-run produced a different "
                    "report"
                )
        checks = report.checks
        result.add_row(
            scheme=mixed_scheme,
            phase=label,
            admitted=report.serving["aggregate"]["admitted"],
            completed=report.serving["aggregate"]["completed"],
            shed=report.serving["aggregate"]["deadline_shed"],
            availability=checks["availability"],
            p99=report.serving["aggregate"]["p99"],
            aborts=checks["slice_down_aborts"],
            errors=checks["wrong_reads"] + checks["lost_or_phantom"],
        )
    result.notes.append(
        "contract: zero wrong results, zero hangs (availability 1.0), "
        "firmware swap commits with extension programs live"
    )
    result.notes.append(
        "mixed phases: accelerated writes under the same schedule plus one "
        "full online resize — zero wrong reads, zero lost/phantom updates "
        "(errors column = wrong reads + lost/phantom)"
    )
    result.notes.append(
        f"determinism: {repeats} same-seed runs produced byte-identical "
        "chaos reports"
    )
    return result


# ---------------------------------------------------------------------- #
# Cluster chaos: whole-node and network faults over the replicated tier
# ---------------------------------------------------------------------- #


@dataclass
class ClusterChaosEvent:
    """One scheduled cluster-scope fault (or its recovery).

    ``trigger`` is the fleet-wide terminal-request count at which the
    event fires; ``nodes`` lists the victims (one for kill/flap/recover,
    several for a partition, empty for the heal).
    """

    action: str
    trigger: int
    nodes: List[int] = field(default_factory=list)
    fired_cycle: Optional[int] = None
    #: In-flight requests lost to a kill/flap (the LB re-drives them).
    lost: int = 0

    def row(self) -> Dict[str, object]:
        return {
            "action": self.action,
            "trigger": self.trigger,
            "nodes": self.nodes,
            "fired_cycle": self.fired_cycle,
            "lost": self.lost,
        }


@dataclass
class ClusterChaosReport:
    """One cluster-chaos run: events, the cluster report, the verdicts."""

    scheme: str
    seed: int
    nodes: int
    replication: int
    requests: int
    events: List[Dict[str, object]] = field(default_factory=list)
    cluster: Dict[str, object] = field(default_factory=dict)
    checks: Dict[str, object] = field(default_factory=dict)

    def dump(self) -> str:
        """Canonical JSON (byte-identical across same-seed runs)."""
        return json.dumps(
            {
                "scheme": self.scheme,
                "seed": self.seed,
                "nodes": self.nodes,
                "replication": self.replication,
                "requests": self.requests,
                "events": self.events,
                "cluster": self.cluster,
                "checks": self.checks,
            },
            sort_keys=True,
            separators=(",", ":"),
        )


def cluster_chaos_schedule(
    nodes: int, requests: int
) -> List[ClusterChaosEvent]:
    """The canonical cluster schedule: a kill, a flap, and a partition.

    Victims are spread deterministically over the fleet: the kill takes
    node 0, the partition isolates the two highest node ids, and the flap
    takes the middle node (stepping to node 1 when the middle falls inside
    the partition set, as it does on tiny fleets).  Triggers sit at fixed
    fractions of the request budget so the schedule scales with run length.
    """
    if nodes < 4:
        raise ChaosError(
            f"cluster chaos needs at least 4 nodes, got {nodes}"
        )
    partitioned = [nodes - 2, nodes - 1]
    kill_victim = 0
    flap_victim = nodes // 2
    if flap_victim in partitioned or flap_victim == kill_victim:
        flap_victim = 1
    return [
        ClusterChaosEvent(
            NODE_KILL, max(1, requests * 15 // 100), nodes=[kill_victim]
        ),
        ClusterChaosEvent(
            NODE_FLAP, max(2, requests * 30 // 100), nodes=[flap_victim]
        ),
        ClusterChaosEvent(
            NODE_RECOVER, max(3, requests * 45 // 100), nodes=[kill_victim]
        ),
        ClusterChaosEvent(
            NET_PARTITION, max(4, requests * 60 // 100), nodes=partitioned
        ),
        ClusterChaosEvent(NET_HEAL, max(5, requests * 75 // 100)),
    ]


def _chaos_cluster_config(
    nodes: int, replication: int, availability_floor: float
) -> ClusterConfig:
    """The tuned fleet the chaos verb drives.

    Faster probing and shorter request timeouts than the library defaults,
    so one run walks victims through the full UP -> SUSPECT -> DOWN -> UP
    lifecycle and failover latency stays in the same ballpark as service
    latency.
    """
    return ClusterConfig(
        nodes=nodes,
        replication=replication,
        probe_interval_cycles=1_024,
        probe_timeout_cycles=256,
        request_timeout_cycles=8_192,
        timeout_embargo_cycles=2_048,
        availability_floor=availability_floor,
    )


def run_cluster_chaos(
    scheme: str,
    *,
    seed: int = 7,
    requests: int = 400,
    nodes: int = 10,
    replication: int = 2,
    tenants: int = 4,
    workload: str = "dpdk",
    availability_floor: float = 0.95,
    verify: bool = True,
) -> ClusterChaosReport:
    """One cluster run under the canonical kill/flap/partition schedule."""
    from ..serve.cluster import SimulatedCluster

    cluster_config = _chaos_cluster_config(
        nodes, replication, availability_floor
    )
    cluster = SimulatedCluster(
        scheme,
        cluster_config=cluster_config,
        serve_config=ServeConfig(tenants=tenants),
        seed=seed,
        requests=requests,
        workload=workload,
    )
    recorder = cluster.attach_history()
    budget = cluster.requests
    events = cluster_chaos_schedule(nodes, budget)
    pending = list(events)

    def fire(event: ClusterChaosEvent) -> None:
        event.fired_cycle = cluster.engine.now
        if event.action == NODE_KILL:
            event.lost = cluster.fail_node(event.nodes[0])
        elif event.action == NODE_FLAP:
            victim = event.nodes[0]
            event.lost = cluster.fail_node(victim)
            # The flap restarts on a cycle timer (not a request-count
            # trigger): a short outage that may race the DOWN marking.
            cluster.engine.schedule(
                FLAP_OUTAGE_CYCLES, lambda v=victim: cluster.recover_node(v)
            )
        elif event.action == NODE_RECOVER:
            cluster.recover_node(event.nodes[0])
        elif event.action == NET_PARTITION:
            cluster.partition(event.nodes)
        elif event.action == NET_HEAL:
            cluster.heal()
        else:
            raise ChaosError(f"unknown cluster chaos action {event.action!r}")
        label = (
            event.action
            if not event.nodes
            else event.action + "-" + "-".join(map(str, event.nodes))
        )
        cluster.slo.begin_phase(label, cluster.engine.now)

    def on_tick(cl) -> None:
        while pending and cl.slo.terminal >= pending[0].trigger:
            fire(pending.pop(0))

    cluster_report = cluster.run(on_tick=on_tick)
    # Triggers past the budget (tiny runs) never fire mid-run; fire the
    # stragglers and drain so recoveries land before the checks run.
    while pending:
        fire(pending.pop(0))
        cluster.drain(2 * FLAP_OUTAGE_CYCLES)

    verdict = recorder.check()
    fleet = cluster_report.fleet
    phases = cluster_report.phases
    terminal = fleet["completed"] + fleet["failed"] + fleet["giveups"]
    report = ClusterChaosReport(
        scheme=cluster.scheme,
        seed=seed,
        nodes=nodes,
        replication=replication,
        requests=budget,
        events=[event.row() for event in events],
        cluster={
            "fleet": fleet,
            "phases": phases,
            "tenants": cluster_report.tenants,
            "node_rows": cluster_report.node_rows,
            "membership_log": cluster_report.membership_log,
            "rebalances": cluster_report.rebalances,
            "elapsed_cycles": cluster_report.elapsed_cycles,
        },
        checks={
            "result_errors": fleet["result_errors"],
            "availability": fleet["availability"],
            "min_phase_availability": min(
                phase["availability"] for phase in phases
            ),
            "availability_floor": availability_floor,
            "terminal": terminal,
            "budget": budget,
            "issued_resolved": fleet["issued"]
            == fleet["completed"] + fleet["failed"],
            "node_kills": sum(
                1 for e in events if e.action in (NODE_KILL, NODE_FLAP)
            ),
            "partitions": sum(
                1 for e in events if e.action == NET_PARTITION
            ),
            "lost_inflight": fleet["lost_inflight"],
            "timeouts": fleet["timeouts"],
            "retries": fleet["retries"],
            "membership_transitions": len(cluster_report.membership_log),
            "history_ops": verdict.ops,
            "history_linearizable": verdict.linearizable,
            "history_violations": sorted(verdict.violations),
            "history_inconclusive": len(verdict.inconclusive),
        },
    )
    if verify:
        _verify_cluster(report)
    return report


def _verify_cluster(report: ClusterChaosReport) -> None:
    checks = report.checks
    problems = []
    if checks["result_errors"]:
        problems.append(f"{checks['result_errors']} wrong results")
    if checks["terminal"] != checks["budget"]:
        problems.append(
            f"{checks['budget'] - checks['terminal']} requests never "
            "reached a terminal outcome (hang)"
        )
    if not checks["issued_resolved"]:
        problems.append("issued requests unaccounted for at the LB (hang)")
    floor = checks["availability_floor"]
    if checks["min_phase_availability"] < floor:
        problems.append(
            f"phase availability {checks['min_phase_availability']:.4f} "
            f"below the {floor:.4f} floor"
        )
    if checks["availability"] < floor:
        problems.append(
            f"aggregate availability {checks['availability']:.4f} below "
            f"the {floor:.4f} floor"
        )
    if any(event["fired_cycle"] is None for event in report.events):
        problems.append("cluster chaos schedule did not complete")
    if not checks.get("history_linearizable", True):
        problems.append(
            "per-key history is not linearizable (keys "
            f"{checks['history_violations']})"
        )
    if problems:
        raise ChaosError(
            f"cluster chaos contract violated on {report.scheme}: "
            + "; ".join(problems)
        )


def cluster_chaos_experiment(
    *,
    schemes=None,
    seed: int = 7,
    requests: int = 400,
    nodes: int = 10,
    replication: int = 2,
    tenants: int = 4,
    repeats: int = 2,
):
    """Cluster chaos campaign: node kill, node flap and a network
    partition over the replicated serving tier, with a same-seed
    determinism re-run."""
    from ..analysis.report import ExperimentResult

    scheme_names = [
        IntegrationScheme.parse(s).value
        for s in (schemes or [IntegrationScheme.CHA_TLB.value])
    ]
    result = ExperimentResult(
        "cluster-chaos",
        (
            f"{requests} closed-loop requests x {tenants} tenants over "
            f"{nodes} nodes (R={replication}) under 1 node kill + 1 node "
            f"flap + 1 network partition (seed {seed})"
        ),
        [
            "scheme",
            "phase",
            "issued",
            "completed",
            "failed",
            "giveups",
            "availability",
            "p99",
        ],
    )
    for scheme in scheme_names:
        report = run_cluster_chaos(
            scheme,
            seed=seed,
            requests=requests,
            nodes=nodes,
            replication=replication,
            tenants=tenants,
        )
        for _ in range(max(0, repeats - 1)):
            again = run_cluster_chaos(
                scheme,
                seed=seed,
                requests=requests,
                nodes=nodes,
                replication=replication,
                tenants=tenants,
            )
            if again.dump() != report.dump():
                raise ChaosError(
                    f"cluster chaos run on {scheme} is not deterministic: "
                    f"same-seed re-run produced a different report"
                )
        for phase in report.cluster["phases"]:
            result.add_row(
                scheme=scheme,
                phase=phase["name"],
                issued=phase["issued"],
                completed=phase["completed"],
                failed=phase["failed"],
                giveups=phase["giveups"],
                availability=phase["availability"],
                p99=phase["p99"],
            )
        fleet = report.cluster["fleet"]
        result.add_row(
            scheme=scheme,
            phase="all",
            issued=fleet["issued"],
            completed=fleet["completed"],
            failed=fleet["failed"],
            giveups=fleet["giveups"],
            availability=report.checks["availability"],
            p99="",
        )
    result.notes.append(
        "contract: zero wrong results, zero hangs (every request terminal), "
        f"availability >= floor in every phase; fleet of {nodes} full-"
        "machine nodes on one shared event engine"
    )
    result.notes.append(
        f"determinism: {repeats} same-seed runs produced byte-identical "
        "cluster chaos reports"
    )
    return result


# ---------------------------------------------------------------------- #
# Recovery chaos: durability of acknowledged writes under crash/recovery
# ---------------------------------------------------------------------- #


def recovery_chaos_schedule(
    nodes: int, requests: int
) -> List[ClusterChaosEvent]:
    """The durability schedule: two crash legs over a mixed write run.

    Leg one exercises incremental replay: the primary-heavy node 0 dies
    mid-mix, a replica lags behind the apply stream, and the recovered
    node rejoins by replaying peers' commit logs (hinted handoff).  Leg
    two exercises gap detection: node 2 dies, its commit log is truncated
    while it is down, and its recovery must detect the ordinal gap and
    full-resync instead of serving a stale history.  A partition of the
    highest node id stretches quorum waits in between.
    """
    if nodes < 4:
        raise ChaosError(
            f"recovery chaos needs at least 4 nodes, got {nodes}"
        )
    return [
        ClusterChaosEvent(
            NODE_KILL, max(1, requests * 12 // 100), nodes=[0]
        ),
        ClusterChaosEvent(
            REPLICA_LAG, max(2, requests * 25 // 100), nodes=[1]
        ),
        ClusterChaosEvent(
            NODE_RECOVER, max(3, requests * 40 // 100), nodes=[0]
        ),
        ClusterChaosEvent(
            NET_PARTITION, max(4, requests * 55 // 100), nodes=[nodes - 1]
        ),
        ClusterChaosEvent(NET_HEAL, max(5, requests * 70 // 100)),
        ClusterChaosEvent(
            NODE_KILL, max(6, requests * 75 // 100), nodes=[2]
        ),
        ClusterChaosEvent(
            LOG_TRUNCATE, max(7, requests * 82 // 100), nodes=[2]
        ),
        ClusterChaosEvent(
            NODE_RECOVER, max(8, requests * 90 // 100), nodes=[2]
        ),
    ]


def run_recovery_chaos(
    scheme: str,
    *,
    seed: int = 7,
    requests: int = 400,
    nodes: int = 6,
    replication: int = 2,
    quorum: int = 2,
    tenants: int = 4,
    workload: str = "dpdk",
    write_ratio: float = 0.5,
    availability_floor: float = 0.9,
    verify: bool = True,
) -> ClusterChaosReport:
    """One mixed-workload cluster run under the durability schedule.

    The contract (docs/recovery.md): **zero lost acknowledged writes** —
    after every node recovers and replication drains, each written key's
    natural replicas hold one converged value, and that value is among
    the finals some linearization of the recorded client history allows.
    The per-key history itself must be linearizable.
    """
    from ..serve.cluster import SimulatedCluster
    from dataclasses import replace as _dc_replace

    cluster_config = _dc_replace(
        _chaos_cluster_config(nodes, replication, availability_floor),
        write_quorum=quorum,
    )
    cluster = SimulatedCluster(
        scheme,
        cluster_config=cluster_config,
        serve_config=ServeConfig(tenants=tenants, write_ratio=write_ratio),
        seed=seed,
        requests=requests,
        workload=workload,
    )
    recorder = cluster.attach_history()
    budget = cluster.requests
    events = recovery_chaos_schedule(nodes, budget)
    pending = list(events)

    def recover_when_down(victim: int) -> None:
        # A dead node restarting before the fleet marks it DOWN would
        # take the plain-restart path and skip catch-up; hold the restart
        # until the failure detector has converged (probe-interval poll,
        # deterministic).
        from ..serve.cluster.membership import NodeState

        if (
            not cluster.nodes[victim].alive
            and cluster.membership.state_of(victim) is not NodeState.DOWN
        ):
            cluster.engine.schedule(
                cluster.config.probe_interval_cycles,
                lambda: recover_when_down(victim),
            )
            return
        cluster.recover_node(victim)

    def fire(event: ClusterChaosEvent) -> None:
        event.fired_cycle = cluster.engine.now
        if event.action == NODE_KILL:
            event.lost = cluster.fail_node(event.nodes[0])
        elif event.action == NODE_RECOVER:
            recover_when_down(event.nodes[0])
        elif event.action == REPLICA_LAG:
            cluster.inject_replica_lag(event.nodes[0], REPLICA_LAG_CYCLES)
        elif event.action == NET_PARTITION:
            cluster.partition(event.nodes)
        elif event.action == NET_HEAL:
            cluster.heal()
            # The heal also lifts any standing apply-stream lag.
            for node in range(nodes):
                cluster.inject_replica_lag(node, 0)
        elif event.action == LOG_TRUNCATE:
            # Drop the dead node's entire commit log: recovery must see
            # the ordinal gap (structure version past the log's tail).
            event.lost = cluster.truncate_log(event.nodes[0], 1 << 30)
        else:
            raise ChaosError(
                f"unknown recovery chaos action {event.action!r}"
            )
        label = (
            event.action
            if not event.nodes
            else event.action + "-" + "-".join(map(str, event.nodes))
        )
        cluster.slo.begin_phase(label, cluster.engine.now)

    def on_tick(cl) -> None:
        while pending and cl.slo.terminal >= pending[0].trigger:
            fire(pending.pop(0))

    cluster_report = cluster.run(on_tick=on_tick)
    while pending:
        fire(pending.pop(0))
        cluster.drain(2 * FLAP_OUTAGE_CYCLES)
    # Let deferred restarts land, then let the recoveries catch up and
    # every apply stream drain, before judging convergence (bounded).
    for _ in range(16):
        if all(node.alive for node in cluster.nodes):
            break
        cluster.drain(RECOVERY_DRAIN_CYCLES)
    replication_settled = cluster.drain_replication(RECOVERY_DRAIN_CYCLES)

    verdict = recorder.check()
    written = recorder.written_keys()
    finals = cluster.final_values(written)
    diverged = sorted(
        pos for pos, values in finals.items()
        if len(set(values.values())) > 1
    )
    lost_acked = sorted(
        pos
        for pos, values in finals.items()
        if not set(values.values())
        <= verdict.possible_finals.get(pos, frozenset())
    )
    write_problems = cluster.write_audit()

    fleet = cluster_report.fleet
    phases = cluster_report.phases
    terminal = fleet["completed"] + fleet["failed"] + fleet["giveups"]
    replication_stats = fleet.get("replication", {})
    from ..serve.cluster.membership import NodeState

    report = ClusterChaosReport(
        scheme=cluster.scheme,
        seed=seed,
        nodes=nodes,
        replication=replication,
        requests=budget,
        events=[event.row() for event in events],
        cluster={
            "fleet": fleet,
            "phases": phases,
            "tenants": cluster_report.tenants,
            "node_rows": cluster_report.node_rows,
            "membership_log": cluster_report.membership_log,
            "rebalances": cluster_report.rebalances,
            "elapsed_cycles": cluster_report.elapsed_cycles,
        },
        checks={
            "result_errors": fleet["result_errors"],
            "availability": fleet["availability"],
            "min_phase_availability": min(
                phase["availability"] for phase in phases
            ),
            "availability_floor": availability_floor,
            "terminal": terminal,
            "budget": budget,
            "issued_resolved": fleet["issued"]
            == fleet["completed"] + fleet["failed"],
            "write_quorum": quorum,
            "replication_settled": replication_settled,
            "history_ops": verdict.ops,
            "history_linearizable": verdict.linearizable,
            "history_violations": sorted(verdict.violations),
            "history_inconclusive": len(verdict.inconclusive),
            "written_keys": len(written),
            "diverged_keys": diverged,
            "lost_acked_writes": lost_acked,
            "write_problems": write_problems,
            "recoveries": len(cluster.recoveries),
            "node_kills": sum(
                1 for e in events if e.action == NODE_KILL
            ),
            "gaps_detected": replication_stats.get("gaps_detected", 0),
            "resyncs": replication_stats.get("resyncs", 0),
            "hint_overflows": replication_stats.get("hint_overflows", 0),
            "shipped": replication_stats.get("shipped", 0),
            "applies": replication_stats.get("applies", 0),
            "all_nodes_up": all(
                cluster.membership.state_of(node) is NodeState.UP
                for node in range(nodes)
            ),
            "lost_inflight": fleet["lost_inflight"],
            "timeouts": fleet["timeouts"],
            "retries": fleet["retries"],
        },
    )
    if verify:
        _verify_recovery(report)
    return report


def _verify_recovery(report: ClusterChaosReport) -> None:
    checks = report.checks
    problems = []
    if checks["result_errors"]:
        problems.append(f"{checks['result_errors']} wrong results")
    if checks["terminal"] != checks["budget"]:
        problems.append(
            f"{checks['budget'] - checks['terminal']} requests never "
            "reached a terminal outcome (hang)"
        )
    if not checks["issued_resolved"]:
        problems.append("issued requests unaccounted for at the LB (hang)")
    floor = checks["availability_floor"]
    if checks["min_phase_availability"] < floor:
        problems.append(
            f"phase availability {checks['min_phase_availability']:.4f} "
            f"below the {floor:.4f} floor"
        )
    if checks["availability"] < floor:
        problems.append(
            f"aggregate availability {checks['availability']:.4f} below "
            f"the {floor:.4f} floor"
        )
    if any(event["fired_cycle"] is None for event in report.events):
        problems.append("recovery chaos schedule did not complete")
    if not checks["replication_settled"]:
        problems.append("replication did not settle after the drain")
    if not checks["history_linearizable"]:
        problems.append(
            "per-key history is not linearizable (keys "
            f"{checks['history_violations']})"
        )
    if checks["lost_acked_writes"]:
        problems.append(
            "acknowledged writes lost on keys "
            f"{checks['lost_acked_writes']}"
        )
    if checks["diverged_keys"]:
        problems.append(
            f"replicas diverged on keys {checks['diverged_keys']}"
        )
    if checks["write_problems"]:
        problems.append(
            f"shadow-oracle write audit: {checks['write_problems']}"
        )
    if checks["recoveries"] < checks["node_kills"]:
        problems.append(
            f"only {checks['recoveries']} of {checks['node_kills']} "
            "killed nodes completed catch-up"
        )
    if not checks["all_nodes_up"]:
        problems.append("a node ended the run below UP")
    if checks["gaps_detected"] < 1 or checks["resyncs"] < 1:
        problems.append(
            "the truncated-log leg exercised no gap detection / resync "
            f"(gaps={checks['gaps_detected']}, "
            f"resyncs={checks['resyncs']})"
        )
    if problems:
        raise ChaosError(
            f"recovery chaos contract violated on {report.scheme}: "
            + "; ".join(problems)
        )


def recovery_chaos_experiment(
    *,
    schemes=None,
    seed: int = 7,
    requests: int = 400,
    nodes: int = 6,
    replication: int = 2,
    quorum: int = 2,
    tenants: int = 4,
    repeats: int = 2,
):
    """Durability campaign: crash/recover the primary mid write mix, lag a
    replica, truncate a commit log, and assert zero lost acknowledged
    writes plus a linearizable per-key history, with a same-seed
    determinism re-run."""
    from ..analysis.report import ExperimentResult

    scheme_names = [
        IntegrationScheme.parse(s).value
        for s in (schemes or [IntegrationScheme.CHA_TLB.value])
    ]
    result = ExperimentResult(
        "recovery-chaos",
        (
            f"{requests} mixed read/write requests x {tenants} tenants "
            f"over {nodes} nodes (R={replication}, W={quorum}) under 2 "
            "node crashes + replica lag + 1 partition + 1 log truncation "
            f"(seed {seed})"
        ),
        [
            "scheme",
            "phase",
            "issued",
            "completed",
            "failed",
            "giveups",
            "availability",
            "p99",
        ],
    )
    for scheme in scheme_names:
        report = run_recovery_chaos(
            scheme,
            seed=seed,
            requests=requests,
            nodes=nodes,
            replication=replication,
            quorum=quorum,
            tenants=tenants,
        )
        for _ in range(max(0, repeats - 1)):
            again = run_recovery_chaos(
                scheme,
                seed=seed,
                requests=requests,
                nodes=nodes,
                replication=replication,
                quorum=quorum,
                tenants=tenants,
            )
            if again.dump() != report.dump():
                raise ChaosError(
                    f"recovery chaos run on {scheme} is not "
                    "deterministic: same-seed re-run produced a "
                    "different report"
                )
        for phase in report.cluster["phases"]:
            result.add_row(
                scheme=scheme,
                phase=phase["name"],
                issued=phase["issued"],
                completed=phase["completed"],
                failed=phase["failed"],
                giveups=phase["giveups"],
                availability=phase["availability"],
                p99=phase["p99"],
            )
        fleet = report.cluster["fleet"]
        result.add_row(
            scheme=scheme,
            phase="all",
            issued=fleet["issued"],
            completed=fleet["completed"],
            failed=fleet["failed"],
            giveups=fleet["giveups"],
            availability=report.checks["availability"],
            p99="",
        )
        result.notes.append(
            f"{scheme}: {report.checks['history_ops']} client ops over "
            f"{report.checks['written_keys']} written keys -- history "
            "linearizable, 0 lost acknowledged writes, 0 diverged "
            f"replicas; {report.checks['recoveries']} crash recoveries "
            f"({report.checks['resyncs']} full resyncs after "
            f"{report.checks['gaps_detected']} detected log gaps)"
        )
    result.notes.append(
        "contract: every write acknowledged at quorum W survives both "
        "crashes; recovered nodes replay peers' commit logs (or full-"
        "resync on a truncated log) before re-entering the ring"
    )
    result.notes.append(
        f"determinism: {repeats} same-seed runs produced byte-identical "
        "recovery chaos reports"
    )
    return result
