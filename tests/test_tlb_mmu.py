"""Unit tests for the TLB and MMU timing models."""

import pytest

from repro.config import TlbConfig
from repro.errors import SegmentationFault
from repro.mem import AddressSpace, Mmu, PhysicalMemory, Tlb
from repro.mem.mmu import PAGE_WALK_CYCLES


@pytest.fixture
def space():
    s = AddressSpace(PhysicalMemory(8 * 1024 * 1024))
    for i in range(1, 64):
        s.map_page(i * 4096)
    return s


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(TlbConfig(entries=8, associativity=2, latency_cycles=1))
        assert tlb.lookup(5) is None
        tlb.insert(5, 99)
        assert tlb.lookup(5) == 99
        assert tlb.hits == 1
        assert tlb.misses == 1

    def test_lru_eviction_within_set(self):
        tlb = Tlb(TlbConfig(entries=4, associativity=2, latency_cycles=1))
        # Set index = vpn % 2; VPNs 0, 2, 4 all land in set 0.
        tlb.insert(0, 10)
        tlb.insert(2, 12)
        tlb.lookup(0)       # make VPN 0 most-recent
        tlb.insert(4, 14)   # evicts VPN 2
        assert tlb.lookup(0) == 10
        assert tlb.lookup(2) is None
        assert tlb.lookup(4) == 14

    def test_invalidate_single_and_all(self):
        tlb = Tlb(TlbConfig(entries=8, associativity=2, latency_cycles=1))
        tlb.insert(1, 11)
        tlb.insert(2, 22)
        tlb.invalidate(1)
        assert tlb.lookup(1) is None
        assert tlb.lookup(2) == 22
        tlb.invalidate()
        assert tlb.lookup(2) is None

    def test_reinsert_updates_mapping(self):
        tlb = Tlb(TlbConfig(entries=8, associativity=2, latency_cycles=1))
        tlb.insert(3, 30)
        tlb.insert(3, 31)
        assert tlb.lookup(3) == 31
        assert tlb.occupancy == 1


class TestMmu:
    def make_mmu(self, space):
        return Mmu(
            space,
            [TlbConfig(16, 4, 1), TlbConfig(64, 4, 7)],
            name="mmu",
        )

    def test_first_access_walks_page_table(self, space):
        mmu = self.make_mmu(space)
        t = mmu.translate(0x1000)
        assert t.tlb_hit_level is None
        assert t.cycles == 1 + 7 + PAGE_WALK_CYCLES
        assert t.paddr == space.translate(0x1000)

    def test_second_access_hits_l1_tlb(self, space):
        mmu = self.make_mmu(space)
        mmu.translate(0x1000)
        t = mmu.translate(0x1FFF)
        assert t.tlb_hit_level == 0
        assert t.cycles == 1
        assert t.paddr == space.translate(0x1FFF)

    def test_l2_tlb_hit_after_l1_eviction(self, space):
        mmu = self.make_mmu(space)
        mmu.translate(0x1000)
        # Touch enough pages mapping to the same L1 set to evict VPN 1 from
        # the 16-entry L1 TLB but keep it in the 64-entry L2 TLB.
        for i in range(2, 40):
            mmu.translate(i * 4096)
        t = mmu.translate(0x1000)
        assert t.tlb_hit_level == 1
        assert t.cycles == 1 + 7

    def test_flush_forces_full_walk(self, space):
        mmu = self.make_mmu(space)
        mmu.translate(0x1000)
        mmu.flush()
        t = mmu.translate(0x1000)
        assert t.tlb_hit_level is None

    def test_fault_propagates_and_does_not_fill_tlb(self, space):
        mmu = self.make_mmu(space)
        with pytest.raises(SegmentationFault):
            mmu.translate(0xDEAD0000)
        with pytest.raises(SegmentationFault):
            mmu.translate(0xDEAD0000)

    def test_page_walk_counter(self, space):
        mmu = self.make_mmu(space)
        mmu.translate(0x1000)
        mmu.translate(0x1008)
        mmu.translate(0x2000)
        assert mmu.stats.counter("page_walks").value == 2
