"""Fig. 7 — ROI query speedup per workload per integration scheme."""

import pytest

from repro.analysis import fig7_speedup

pytestmark = pytest.mark.slow


@pytest.mark.figure
def test_fig07_speedup(run_once, quick):
    result = run_once(fig7_speedup, quick=quick)
    print()
    print(result.format())

    near_cache = ["cha-tlb", "core-integrated"]
    for row in result.rows:
        name = row["workload"]
        # Near-cache schemes beat both device schemes on every workload.
        best_near = max(row[s] for s in near_cache)
        assert best_near > row["device-direct"], name
        assert best_near > row["device-indirect"], name
        # Device-indirect is the worst scheme everywhere (Sec. VII-A).
        assert row["device-indirect"] == min(
            v for k, v in row.items() if k != "workload"
        ), name
        # CHA-noTLB trails CHA-TLB (dedicated translation wins, Sec. VII-A).
        assert row["cha-notlb"] <= row["cha-tlb"] * 1.02, name

    # The proposed core-integrated scheme accelerates every workload...
    ci = result.column("core-integrated")
    assert all(v > 1.0 for v in ci)
    # ...substantially on the query-dense ones.
    assert max(ci) > 3.0
    # Hash-table workloads punish device schemes hardest: DPDK's
    # device-indirect speedup is far below its near-cache speedup.
    dpdk = result.row_for("workload", "dpdk")
    assert dpdk["device-indirect"] < 0.5 * max(dpdk[s] for s in near_cache)
