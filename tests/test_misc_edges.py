"""Remaining edge cases across small modules."""

import pytest

from repro.config import NocConfig
from repro.errors import SimulationError
from repro.noc import MeshNoc
from repro.sim import Engine


class TestEngineEdges:
    def test_cancel_then_reschedule(self):
        engine = Engine()
        fired = []
        event = engine.schedule(5, lambda: fired.append("a"))
        event.cancel()
        engine.schedule(5, lambda: fired.append("b"))
        engine.run()
        assert fired == ["b"]

    def test_event_scheduled_during_callback_same_cycle(self):
        engine = Engine()
        order = []

        def outer():
            order.append("outer")
            engine.schedule(0, lambda: order.append("inner"))

        engine.schedule(3, outer)
        engine.run()
        assert order == ["outer", "inner"]
        assert engine.now == 3

    def test_pending_counts_only_live_events(self):
        engine = Engine()
        keep = engine.schedule(1, lambda: None)
        drop = engine.schedule(2, lambda: None)
        drop.cancel()
        assert engine.pending() == 1
        keep.cancel()
        assert engine.pending() == 0

    def test_run_is_not_reentrant(self):
        engine = Engine()

        def recurse():
            engine.run()

        engine.schedule(1, recurse)
        with pytest.raises(SimulationError):
            engine.run()


class TestMeshEdges:
    def make(self):
        return MeshNoc(NocConfig(width=4, height=3))

    def test_route_to_self_is_single_node(self):
        mesh = self.make()
        assert mesh.route(5, 5) == [5]
        assert mesh.latency(5, 5) == 0

    def test_route_pure_vertical(self):
        mesh = self.make()
        path = mesh.route(1, mesh.node_at(1, 2))
        assert path == [1, mesh.node_at(1, 1), mesh.node_at(1, 2)]

    def test_route_pure_horizontal_backwards(self):
        mesh = self.make()
        path = mesh.route(3, 0)
        assert path == [3, 2, 1, 0]

    def test_link_bytes_accumulate_across_sends(self):
        mesh = self.make()
        mesh.send(0, 1, 64)
        mesh.send(0, 1, 64)
        links = {u.link: u.bytes_carried for u in mesh.link_utilisations()}
        assert links[(0, 1)] == 128

    def test_hotspot_zero_without_traffic(self):
        mesh = self.make()
        assert mesh.hotspot_factor(100) == 0.0
        assert mesh.mean_link_utilisation(100) == 0.0
