"""Virtual memory: page tables and per-process address spaces.

The paper's central integration argument is that queried data structures
"seldom reside in a contiguous memory address space" larger than a 4KB page,
so an accelerator *must* translate addresses (Sec. I, Sec. V).  We therefore
model real 4KB paging: each process owns a page table mapping virtual page
numbers to physical frames, and the :class:`~repro.mem.allocator`
deliberately scatters physically-backed pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..config import PAGE_BYTES
from ..errors import ProtectionFault, SegmentationFault, SimulationError
from .physical import PhysicalMemory


@dataclass
class PageTableEntry:
    """One VPN -> PFN mapping with permissions."""

    frame_number: int
    readable: bool = True
    writable: bool = True

    def permits(self, access: str) -> bool:
        if access == "r":
            return self.readable
        if access == "w":
            return self.writable
        raise SimulationError(f"unknown access kind {access!r}")


class PageTable:
    """A flat VPN -> PTE map (a radix walk is modelled by the MMU's cost)."""

    def __init__(self, page_bytes: int = PAGE_BYTES) -> None:
        self.page_bytes = page_bytes
        self._entries: Dict[int, PageTableEntry] = {}

    def map(self, vpn: int, frame_number: int, *, writable: bool = True) -> None:
        if vpn in self._entries:
            raise SimulationError(f"VPN 0x{vpn:x} is already mapped")
        self._entries[vpn] = PageTableEntry(frame_number, writable=writable)

    def unmap(self, vpn: int) -> PageTableEntry:
        try:
            return self._entries.pop(vpn)
        except KeyError as exc:
            raise SegmentationFault(
                vpn * self.page_bytes, f"unmap of unmapped VPN 0x{vpn:x}"
            ) from exc

    def lookup(self, vpn: int) -> Optional[PageTableEntry]:
        return self._entries.get(vpn)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[int, PageTableEntry]]:
        return iter(sorted(self._entries.items()))


class AddressSpace:
    """One process's virtual address space over shared physical memory.

    Functional translation only; timing (TLB hits, page-walk cycles) is the
    MMU's job.  The zero page is never mapped so a NULL pointer dereference
    raises :class:`SegmentationFault` — which the QEI accelerator surfaces as
    its architectural EXCEPTION state.
    """

    #: 2MB huge pages (x86 PDE mappings).
    HUGE_PAGE_BYTES = 2 * 1024 * 1024
    #: Tag added to huge-page numbers so TLB keys never collide with VPNs.
    HUGE_KEY_BASE = 1 << 40

    def __init__(
        self, physical: PhysicalMemory, *, asid: int = 0, page_bytes: int = PAGE_BYTES
    ) -> None:
        self.physical = physical
        self.asid = asid
        self.page_bytes = page_bytes
        self.page_table = PageTable(page_bytes)
        #: huge-page number -> base frame of a physically contiguous run.
        self._huge_pages: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #

    def map_page(self, vaddr: int, *, writable: bool = True) -> int:
        """Back the page containing ``vaddr`` with a fresh physical frame."""
        if vaddr % self.page_bytes:
            raise SimulationError(f"map_page needs page-aligned vaddr, got 0x{vaddr:x}")
        vpn = vaddr // self.page_bytes
        if vpn == 0:
            raise SimulationError("refusing to map the zero page")
        frame = self.physical.allocate_frame()
        self.page_table.map(vpn, frame, writable=writable)
        return frame

    def map_huge_page(self, vaddr: int) -> int:
        """Back a 2MB-aligned region with physically contiguous frames.

        One TLB entry covers the whole region — the assumption prior work
        (HALO) builds on, and the paper argues is fragile under
        fragmentation (Sec. II-B challenge 3).  Returns the base frame.
        """
        if vaddr % self.HUGE_PAGE_BYTES:
            raise SimulationError(
                f"huge pages must be 2MB aligned, got 0x{vaddr:x}"
            )
        hpn = vaddr // self.HUGE_PAGE_BYTES
        if hpn in self._huge_pages:
            raise SimulationError(f"huge page 0x{vaddr:x} is already mapped")
        frames = self.HUGE_PAGE_BYTES // self.page_bytes
        base_frame = self.physical.allocate_contiguous(frames)
        self._huge_pages[hpn] = base_frame
        return base_frame

    def unmap_page(self, vaddr: int, *, free_frame: bool = True) -> PageTableEntry:
        """Drop the mapping for ``vaddr``'s page; returns the removed PTE.

        ``free_frame=False`` keeps the physical frame (contents intact) so
        the page can later be re-established with :meth:`restore_page` —
        the fault injector's unmap-mid-walk / OS-repair hook.
        """
        vpn = vaddr // self.page_bytes
        entry = self.page_table.unmap(vpn)
        if free_frame:
            self.physical.free_frame(entry.frame_number)
        return entry

    def restore_page(self, vaddr: int, entry: PageTableEntry) -> None:
        """Re-establish a mapping removed with ``unmap_page(free_frame=False)``."""
        self.page_table.map(
            vaddr // self.page_bytes, entry.frame_number, writable=entry.writable
        )

    def is_mapped(self, vaddr: int) -> bool:
        if vaddr // self.HUGE_PAGE_BYTES in self._huge_pages:
            return True
        return self.page_table.lookup(vaddr // self.page_bytes) is not None

    def translation_entry(self, vaddr: int, access: str = "r"):
        """(tlb_key, base_paddr, span) for the page covering ``vaddr``.

        Huge pages return one entry spanning 2MB (a single TLB slot covers
        the whole region); small pages return per-4KB entries.
        """
        if vaddr < 0:
            raise SegmentationFault(vaddr)
        hpn = vaddr // self.HUGE_PAGE_BYTES
        base_frame = self._huge_pages.get(hpn)
        if base_frame is not None:
            return (
                self.HUGE_KEY_BASE + hpn,
                base_frame * self.page_bytes,
                self.HUGE_PAGE_BYTES,
            )
        vpn = vaddr // self.page_bytes
        entry = self.page_table.lookup(vpn)
        if entry is None:
            raise SegmentationFault(vaddr)
        if not entry.permits(access):
            raise ProtectionFault(vaddr, access)
        return vpn, entry.frame_number * self.page_bytes, self.page_bytes

    def translate(self, vaddr: int, access: str = "r") -> int:
        """Virtual -> physical, raising simulated faults on bad accesses."""
        _, base_paddr, span = self.translation_entry(vaddr, access)
        return base_paddr + vaddr % span

    # ------------------------------------------------------------------ #
    # Byte access (virtual addresses); splits at page boundaries
    # ------------------------------------------------------------------ #

    def read(self, vaddr: int, length: int) -> bytes:
        out = bytearray()
        addr, remaining = vaddr, length
        while remaining:
            offset = addr % self.page_bytes
            chunk = min(remaining, self.page_bytes - offset)
            out += self.physical.read(self.translate(addr, "r"), chunk)
            addr += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, vaddr: int, data: bytes) -> None:
        addr = vaddr
        view = memoryview(data)
        while view:
            offset = addr % self.page_bytes
            chunk = min(len(view), self.page_bytes - offset)
            self.physical.write(self.translate(addr, "w"), bytes(view[:chunk]))
            addr += chunk
            view = view[chunk:]

    # Convenience fixed-width accessors (little-endian, like x86).

    def read_u64(self, vaddr: int) -> int:
        return int.from_bytes(self.read(vaddr, 8), "little")

    def write_u64(self, vaddr: int, value: int) -> None:
        self.write(vaddr, (value & (2**64 - 1)).to_bytes(8, "little"))

    def read_u32(self, vaddr: int) -> int:
        return int.from_bytes(self.read(vaddr, 4), "little")

    def write_u32(self, vaddr: int, value: int) -> None:
        self.write(vaddr, (value & (2**32 - 1)).to_bytes(4, "little"))

    def read_u16(self, vaddr: int) -> int:
        return int.from_bytes(self.read(vaddr, 2), "little")

    def write_u16(self, vaddr: int, value: int) -> None:
        self.write(vaddr, (value & 0xFFFF).to_bytes(2, "little"))

    def read_u8(self, vaddr: int) -> int:
        return self.read(vaddr, 1)[0]

    def write_u8(self, vaddr: int, value: int) -> None:
        self.write(vaddr, bytes([value & 0xFF]))
