"""Batcher/sharder: coalesce admitted requests into QUERY_NB bursts.

Each admitted request is routed to the accelerator instance that will
execute its CFA — the *home* chosen by the integration scheme's probe
(:meth:`~repro.core.integration.Integration.home_node`): the NUCA home of
the primary bucket for hash tables, a key-content hash for pointer-chasing
structures, the device stop for the centralized schemes.  Requests sharing
a home are coalesced into bursts of ``batch_size`` and submitted through
:meth:`~repro.core.accelerator.QeiAccelerator.submit_batch`, which pays the
core-accelerator doorbell once per burst.

A partial burst does not wait forever: the first request entering an empty
burst arms a flush timer (``batch_timeout_cycles``), bounding the batching
delay any single request can absorb.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..config import ServeConfig
from ..core.accelerator import QueryHandle, QueryRequest
from ..errors import MemoryError_
from ..sim.stats import StatsRegistry
from ..system import System
from .frontend import ServeRequest


class Batcher:
    """Per-home-slice coalescing of serving requests into QUERY_NB bursts."""

    def __init__(
        self,
        system: System,
        config: ServeConfig,
        *,
        stats: Optional[StatsRegistry] = None,
        on_done: Callable[[ServeRequest, QueryHandle], None],
        on_shed: Optional[Callable[[ServeRequest], None]] = None,
    ) -> None:
        self.system = system
        self.engine = system.engine
        self.accelerator = system.accelerator
        self.integration = system.integration
        self.config = config
        self.on_done = on_done
        self.on_shed = on_shed
        self.stats = (stats or StatsRegistry()).scoped("serve.batcher")
        self._open: Dict[int, List[Tuple[ServeRequest, QueryRequest]]] = {}
        #: Bumped per home at every flush so a stale timeout event cannot
        #: flush the *next* burst that opened on the same home.
        self._epochs: Dict[int, int] = {}
        self._batches = self.stats.counter("batches")
        self._requests = self.stats.counter("requests")
        self._timeout_flushes = self.stats.counter("flushes.timeout")
        self._full_flushes = self.stats.counter("flushes.full")
        self._deadline_sheds = self.stats.counter("sheds.deadline")
        self._sizes = self.stats.histogram("batch.size")

    # ------------------------------------------------------------------ #

    def add(self, sreq: ServeRequest, qreq: QueryRequest) -> None:
        """Route one request to its home burst; flush when the burst fills."""
        self._requests.add()
        home = self._route(qreq)
        burst = self._open.setdefault(home, [])
        burst.append((sreq, qreq))
        if len(burst) >= self.config.batch_size:
            self._full_flushes.add()
            self._flush(home)
        elif len(burst) == 1 and self.config.batch_timeout_cycles:
            epoch = self._epochs.get(home, 0)
            self.engine.schedule(
                self.config.batch_timeout_cycles,
                lambda: self._timeout_flush(home, epoch),
            )

    def _route(self, qreq: QueryRequest) -> int:
        """The serving tier's copy of the hardware's home probe."""
        try:
            return self.integration.home_node(
                qreq.core_id, qreq.header_addr, qreq.key_addr
            )
        except MemoryError_:
            # A hostile header steered the probe off the map; group under
            # home 0 and let the submit path raise the proper abort code.
            return 0

    # ------------------------------------------------------------------ #

    def _timeout_flush(self, home: int, epoch: int) -> None:
        if self._epochs.get(home, 0) == epoch and self._open.get(home):
            self._timeout_flushes.add()
            self._flush(home)

    def _flush(self, home: int) -> None:
        burst = self._open.pop(home, [])
        self._epochs[home] = self._epochs.get(home, 0) + 1
        if not burst:
            return
        now = self.engine.now
        if self.on_shed is not None:
            # A batch never dispatches work whose deadline already expired:
            # shed it here (distinct SLO outcome) instead of burning a QST
            # slot on a request the client has given up on.
            live = []
            for sreq, qreq in burst:
                if sreq.deadline_cycle is not None and now > sreq.deadline_cycle:
                    self._deadline_sheds.add()
                    self.on_shed(sreq)
                else:
                    live.append((sreq, qreq))
            burst = live
            if not burst:
                return
        self._batches.add()
        self._sizes.record(len(burst))
        handles = self.accelerator.submit_batch(
            [qreq for _, qreq in burst], now
        )
        for (sreq, _), handle in zip(burst, handles):
            sreq.dispatch_cycle = now
            handle.on_done(lambda h, s=sreq: self.on_done(s, h))

    def flush_all(self) -> bool:
        """Force every open burst out; True when anything was submitted."""
        homes = [home for home, burst in self._open.items() if burst]
        for home in homes:
            self._flush(home)
        return bool(homes)

    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        """Requests sitting in open (not yet submitted) bursts."""
        return sum(len(burst) for burst in self._open.values())
