"""Simulated multi-node serving cluster (see docs/serving.md).

A consistent-hash-partitioned, R-way-replicated fleet of full-machine
serving nodes behind a load balancer with health probing, bounded-retry
failover and deterministic fault injection (node kills, flaps, network
partitions) — the cluster generalisation of the single-node serving tier.
"""

from .cluster import (
    CLUSTER_CORES,
    CLUSTER_WORKLOADS,
    ClusterError,
    ClusterReport,
    SimulatedCluster,
)
from .lb import FleetSlo, LoadBalancer
from .membership import Membership, NodeState, Prober
from .node import ClusterNode
from .ring import HashRing, key_position, stable_hash

__all__ = [
    "CLUSTER_CORES",
    "CLUSTER_WORKLOADS",
    "ClusterError",
    "ClusterNode",
    "ClusterReport",
    "FleetSlo",
    "HashRing",
    "LoadBalancer",
    "Membership",
    "NodeState",
    "Prober",
    "SimulatedCluster",
    "key_position",
    "stable_hash",
]
