"""Open- and closed-loop load generators for the serving tier.

Both generators follow the deterministic seed discipline of
:mod:`repro.faults`: each tenant owns one ``random.Random`` derived from the
run seed and the tenant id by integer arithmetic (never object hashing,
which is salted per interpreter), so the same seed and configuration always
produce the identical arrival sequence, query mix and — because the event
engine orders same-cycle events by scheduling order — the identical
simulated execution.

* :class:`OpenLoopGenerator` — Poisson arrivals at a fixed offered load,
  independent of completions (the cloud-frontend model: rejected requests
  are *dropped* and counted, the tenant does not slow down).
* :class:`ClosedLoopGenerator` — a fixed number of synchronous clients per
  tenant with think time; rejected requests honour the retry-after hint.
"""

from __future__ import annotations

import random
from typing import Optional

from ..config import ServeConfig
from ..core.cfa import OP_DELETE, OP_INSERT, OP_LOOKUP, OP_UPDATE
from ..sim.stats import StatsRegistry
from .frontend import ServeRequest

#: Large odd multipliers decorrelate per-tenant streams from the run seed.
_SEED_STRIDE = 1_000_003
_TENANT_STRIDE = 7_919


def tenant_rng(seed: int, tenant: int) -> random.Random:
    """A per-tenant RNG derived deterministically from the run seed."""
    return random.Random(seed * _SEED_STRIDE + tenant * _TENANT_STRIDE)


class LoadGenerator:
    """Shared bookkeeping: request budget, ids, and the resolution count."""

    def __init__(
        self,
        tenant: int,
        *,
        num_requests: int,
        num_queries: int,
        seed: int,
        stats: Optional[StatsRegistry] = None,
        write_ratio: float = 0.0,
    ) -> None:
        if num_requests <= 0:
            raise ValueError("load generator needs a positive request budget")
        if num_queries <= 0:
            raise ValueError("load generator needs a non-empty query stream")
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        self.tenant = tenant
        self.num_requests = num_requests
        self.num_queries = num_queries
        self.write_ratio = write_ratio
        self.rng = tenant_rng(seed, tenant)
        self.stats = (stats or StatsRegistry()).scoped(
            f"serve.tenant{tenant}.client"
        )
        self._dropped = self.stats.counter("dropped")
        self._retries = self.stats.counter("admission.retries")
        self._failed = self.stats.counter("admission.failed")
        self.issued = 0
        self.resolved = 0
        self.server = None
        self.engine = None

    # ------------------------------------------------------------------ #

    def bind(self, server) -> None:
        self.server = server
        self.engine = server.engine

    def start(self) -> None:
        raise NotImplementedError

    @property
    def finished(self) -> bool:
        return self.resolved >= self.num_requests

    # ------------------------------------------------------------------ #

    #: Write-op mix among writes: mostly in-place UPDATEs with a tail of
    #: route-add INSERTs and withdrawals (DELETEs), like a FIB control plane.
    WRITE_MIX = ((0.70, OP_UPDATE), (0.90, OP_INSERT), (1.01, OP_DELETE))

    def _make_request(self) -> ServeRequest:
        self.issued += 1
        op = OP_LOOKUP
        value = 0
        # Gate every extra RNG draw on the ratio so a read-only run consumes
        # the exact pre-mutation arrival stream (golden-stats discipline).
        if self.write_ratio and self.rng.random() < self.write_ratio:
            roll = self.rng.random()
            for cutoff, candidate in self.WRITE_MIX:
                if roll < cutoff:
                    op = candidate
                    break
            # Unique per (tenant, request) so the shadow oracle can tell
            # every write's payload apart when checking for torn reads.
            value = (self.tenant + 1) * 1_000_000 + self.issued
        return ServeRequest(
            tenant=self.tenant,
            index=self.rng.randrange(self.num_queries),
            request_id=self.issued,
            arrival_cycle=self.engine.now,
            op=op,
            value=value,
        )

    # Server callbacks ------------------------------------------------- #

    def on_rejected(self, request: ServeRequest, retry_after: int) -> None:
        raise NotImplementedError

    def on_resolved(self, request: ServeRequest) -> None:
        self.resolved += 1


class OpenLoopGenerator(LoadGenerator):
    """Poisson arrivals at ``rate`` queries/cycle, oblivious to completions."""

    def __init__(
        self,
        tenant: int,
        *,
        rate: float,
        num_requests: int,
        num_queries: int,
        seed: int,
        stats: Optional[StatsRegistry] = None,
        write_ratio: float = 0.0,
    ) -> None:
        super().__init__(
            tenant,
            num_requests=num_requests,
            num_queries=num_queries,
            seed=seed,
            stats=stats,
            write_ratio=write_ratio,
        )
        if rate <= 0:
            raise ValueError("open-loop rate must be positive")
        self.rate = rate

    def start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self.issued >= self.num_requests:
            return
        gap = max(1, round(self.rng.expovariate(self.rate)))
        self.engine.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        if self.issued >= self.num_requests:
            return
        request = self._make_request()
        self._schedule_next()
        self.server.accept(self, request)

    def on_rejected(self, request: ServeRequest, retry_after: int) -> None:
        # An open-loop client does not wait: the request is shed.  The
        # retry-after hint only shapes the *next* independent arrival in a
        # real deployment; here the arrival process is fixed by design.
        self._dropped.add()
        self.resolved += 1


class ClosedLoopGenerator(LoadGenerator):
    """``concurrency`` synchronous clients per tenant with think time."""

    def __init__(
        self,
        tenant: int,
        *,
        config: ServeConfig,
        num_requests: int,
        num_queries: int,
        seed: int,
        stats: Optional[StatsRegistry] = None,
        write_ratio: Optional[float] = None,
    ) -> None:
        super().__init__(
            tenant,
            num_requests=num_requests,
            num_queries=num_queries,
            seed=seed,
            stats=stats,
            write_ratio=(
                config.write_ratio_of(tenant)
                if write_ratio is None
                else write_ratio
            ),
        )
        self.concurrency = config.concurrency
        self.think_cycles = config.think_cycles
        self.max_attempts = config.max_admission_attempts

    def start(self) -> None:
        # Stagger the initial wave one cycle apart so same-cycle arrival
        # order never depends on tenant iteration order.
        for slot in range(min(self.concurrency, self.num_requests)):
            self.engine.schedule(slot + 1, self._launch)

    def _launch(self) -> None:
        if self.issued >= self.num_requests:
            return
        self.server.accept(self, self._make_request())

    def on_rejected(self, request: ServeRequest, retry_after: int) -> None:
        if request.attempts >= self.max_attempts:
            # This client gives up on the request; the slot moves on.
            self._failed.add()
            self.resolved += 1
            self.engine.schedule(max(1, self.think_cycles), self._launch)
            return
        request.attempts += 1
        self._retries.add()
        self.engine.schedule(
            max(1, retry_after), lambda: self.server.accept(self, request)
        )

    def on_resolved(self, request: ServeRequest) -> None:
        super().on_resolved(request)
        self.engine.schedule(max(1, self.think_cycles), self._launch)
