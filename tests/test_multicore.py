"""Tests for multi-programmed multicore execution."""

import pytest

from repro import small_config
from repro.cpu import TraceBuilder
from repro.cpu.multicore import run_multiprogrammed
from repro.datastructs import CuckooHashTable
from repro.errors import SimulationError
from repro.system import System
from repro.workloads import make_workload


@pytest.fixture
def system():
    return System(small_config())


def alu_trace(n):
    builder = TraceBuilder()
    builder.alu(count=n)
    return builder.trace


def load_trace(addrs):
    builder = TraceBuilder()
    prev = -1
    for addr in addrs:
        prev = builder.load(addr, deps=(prev,) if prev >= 0 else ())
    return builder.trace


class TestBasics:
    def test_single_core_matches_execute(self, system):
        trace = alu_trace(200)
        solo = system.cores[0].execute(trace)
        system2 = System(small_config())
        multi = run_multiprogrammed([(system2.cores[0], alu_trace(200))])
        assert multi.per_core[0].cycles == solo.cycles

    def test_independent_cores_run_concurrently(self, system):
        # Two CPU-bound cores: the makespan is one core's time, not two.
        jobs = [(system.cores[0], alu_trace(400)), (system.cores[1], alu_trace(400))]
        result = run_multiprogrammed(jobs)
        assert result.per_core[0].cycles == result.per_core[1].cycles
        assert result.makespan == result.per_core[0].cycles
        assert result.aggregate_throughput > 1.0

    def test_duplicate_core_rejected(self, system):
        with pytest.raises(SimulationError):
            run_multiprogrammed(
                [(system.cores[0], alu_trace(5)), (system.cores[0], alu_trace(5))]
            )

    def test_empty_traces_are_fine(self, system):
        result = run_multiprogrammed([(system.cores[0], alu_trace(1))])
        assert result.per_core[0].instructions == 1


class TestSharedResourceContention:
    def test_corun_slows_memory_bound_traces(self):
        """Two cores chasing disjoint data contend in LLC/DRAM: each runs
        slower than it would alone."""
        def addresses(base):
            return [base + i * 4096 + (i % 8) * 64 for i in range(200)]

        solo_system = System(small_config())
        for a in addresses(0x2000_0000) + addresses(0x3000_0000):
            page = a - a % 4096
            if not solo_system.space.is_mapped(page):
                solo_system.space.map_page(page)
        solo = solo_system.cores[0].execute(load_trace(addresses(0x2000_0000)))

        co_system = System(small_config())
        for a in addresses(0x2000_0000) + addresses(0x3000_0000):
            page = a - a % 4096
            if not co_system.space.is_mapped(page):
                co_system.space.map_page(page)
        multi = run_multiprogrammed(
            [
                (co_system.cores[0], load_trace(addresses(0x2000_0000))),
                (co_system.cores[1], load_trace(addresses(0x3000_0000))),
            ]
        )
        # DRAM channel occupancy makes the co-run at least as slow.
        assert multi.per_core[0].cycles >= solo.cycles

    def test_queries_from_two_cores_share_the_accelerator(self):
        system = System(small_config())
        table = CuckooHashTable(system.mem, key_length=16, num_buckets=128)
        keys = [(b"k%d" % i).ljust(16, b"_") for i in range(40)]
        for i, key in enumerate(keys):
            table.insert(key, i)

        from repro.core.isa import QueryOperands

        def qtrace(key_slice):
            builder = TraceBuilder()
            for key in key_slice:
                q = builder.query_b(
                    QueryOperands(table.header_addr, table.store_key(key))
                )
                builder.alu(deps=(q,))
            return builder.trace

        ports = {i: system.query_port(i) for i in (0, 1)}
        result = run_multiprogrammed(
            [
                (system.cores[0], qtrace(keys[:10])),
                (system.cores[1], qtrace(keys[10:20])),
            ],
            externals=ports,
        )
        system.engine.run()
        values = sorted(
            h.value for port in ports.values() for h in port.handles
        )
        assert values == list(range(20))
        assert result.per_core[0].queries_issued == 10
        assert result.per_core[1].queries_issued == 10
