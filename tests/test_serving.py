"""Serving-tier tests: admission control, batching, SLO reports, fallback.

The serving layer (src/repro/serve/) fronts one simulated machine with
multi-tenant load; these tests pin its contracts — bounded queues reject
with retry-after hints, partial bursts flush on timeout, saturation turns
into rejections rather than unbounded buffering, aborted queries resolve
through the software fallback, and every accelerated result agrees with
the software oracle.
"""

import pytest

from repro.config import ServeConfig
from repro.errors import ConfigurationError
from repro.serve import (
    MODE_BLOCKING,
    Frontend,
    OpenLoopGenerator,
    ServeRequest,
    ServingError,
    build_serving_system,
    run_serving,
    serve_experiment,
)


def request_for(tenant, request_id=1, index=0, arrival=0):
    return ServeRequest(
        tenant=tenant, index=index, request_id=request_id, arrival_cycle=arrival
    )


# --------------------------------------------------------------------- #
# Frontend: bounded admission + backpressure
# --------------------------------------------------------------------- #


def test_frontend_rejects_when_queue_full_with_retry_after():
    config = ServeConfig(tenants=1, queue_depth=2)
    frontend = Frontend(config)
    assert frontend.offer(request_for(0, 1), now=0).admitted
    assert frontend.offer(request_for(0, 2), now=0).admitted
    verdict = frontend.offer(request_for(0, 3), now=0)
    assert not verdict.admitted
    assert verdict.retry_after == (
        config.retry_after_cycles + Frontend.RETRY_BACKLOG_CYCLES * 2
    )


def test_frontend_saturated_hook_sheds_load():
    config = ServeConfig(tenants=1, queue_depth=64)
    frontend = Frontend(config, saturated=lambda: True)
    verdict = frontend.offer(request_for(0), now=0)
    assert not verdict.admitted
    assert verdict.retry_after >= config.retry_after_cycles


def test_frontend_drains_tenants_round_robin():
    config = ServeConfig(tenants=2, queue_depth=8)
    frontend = Frontend(config)
    for request_id in range(1, 4):
        frontend.offer(request_for(0, request_id), now=0)
        frontend.offer(request_for(1, request_id), now=0)
    order = [frontend.next_request(now=1).tenant for _ in range(6)]
    assert order == [0, 1, 0, 1, 0, 1]
    assert frontend.next_request(now=2) is None
    assert frontend.pending == 0


def test_saturated_tenant_cannot_starve_others():
    # Regression: tenant 0 keeps its queue full while tenants 1/2 trickle;
    # across a full dispatch window every round-robin scan must still visit
    # the light tenants — the hot tenant never gets two pops in a row while
    # another tenant has work queued.
    config = ServeConfig(tenants=3, queue_depth=8)
    frontend = Frontend(config)
    request_id = 0
    for _ in range(8):
        request_id += 1
        frontend.offer(request_for(0, request_id), now=0)
    for tenant in (1, 2):
        request_id += 1
        frontend.offer(request_for(tenant, request_id), now=0)
    drained = []
    for _ in range(12):
        # The saturated tenant instantly refills the slot it just vacated.
        request = frontend.next_request(now=1)
        if request is None:
            break
        drained.append(request.tenant)
        if request.tenant == 0:
            request_id += 1
            frontend.offer(request_for(0, request_id), now=1)
    # Both light tenants are served within one full scan of the tenant set,
    # and back-to-back hot-tenant pops only happen once they are empty.
    assert drained[:3] == [0, 1, 2]
    assert drained[3:] == [0] * len(drained[3:])


def test_serve_config_validation():
    with pytest.raises(ConfigurationError):
        ServeConfig(tenants=0)
    with pytest.raises(ConfigurationError):
        ServeConfig(queue_depth=0)
    with pytest.raises(ConfigurationError):
        ServeConfig(offered_load=0.0)


# --------------------------------------------------------------------- #
# End-to-end serving runs
# --------------------------------------------------------------------- #


def test_batched_run_reports_correct_results():
    report = run_serving("cha-tlb", tenants=2, requests=120, seed=7)
    aggregate = report.aggregate
    # Open-loop: every generated request either completes or is rejected.
    assert aggregate["completed"] + aggregate["rejected"] == 120
    assert aggregate["completed"] > 0
    assert aggregate["result_errors"] == 0
    assert aggregate["failed"] == 0
    assert aggregate["fallback_fraction"] == 0.0
    assert 0 < aggregate["p50"] <= aggregate["p95"] <= aggregate["p99"]
    assert aggregate["qps"] > 0
    assert report.elapsed_cycles > 0
    for row in report.tenants:
        assert row["slo_budget_p99"] == ServeConfig.slo_p99_cycles
        assert row["completed"] + row["rejected"] == 60


def test_closed_loop_run_completes():
    report = run_serving(
        "core-integrated", tenants=2, requests=80, seed=7, closed_loop=True
    )
    assert report.aggregate["completed"] == 80
    assert report.aggregate["result_errors"] == 0


def test_blocking_mode_completes():
    report = run_serving(
        "cha-tlb", tenants=2, requests=60, seed=7, mode=MODE_BLOCKING
    )
    assert report.mode == MODE_BLOCKING
    assert report.aggregate["completed"] + report.aggregate["rejected"] == 60
    assert report.aggregate["result_errors"] == 0


def test_saturation_turns_into_rejections():
    # One request in flight at a time, 4-deep queues, arrivals every ~20
    # cycles against a ~500-cycle service time: queues fill, then bounce.
    config = ServeConfig(
        tenants=2, queue_depth=4, max_in_flight=1, offered_load=0.05
    )
    report = run_serving(
        "cha-tlb", requests=200, seed=7, serve_config=config
    )
    assert report.aggregate["rejected"] > 0
    assert report.aggregate["completed"] > 0
    assert report.aggregate["completed"] + report.aggregate["rejected"] == 200


def test_partial_bursts_flush_on_timeout():
    # Arrivals ~1000 cycles apart can never fill a 64-deep burst; the
    # flush timer must bound the batching delay instead.
    config = ServeConfig(
        tenants=1, batch_size=64, batch_timeout_cycles=128, offered_load=0.001
    )
    system, built = build_serving_system(
        "cha-tlb", seed=7, serve_config=config
    )
    server = system.make_server(built, config, seed=7)
    server.attach(
        OpenLoopGenerator(
            0,
            rate=config.offered_load,
            num_requests=30,
            num_queries=len(built.queries),
            seed=7,
            stats=system.stats,
        )
    )
    report = server.run()
    snapshot = system.stats.snapshot()
    assert snapshot["serve.batcher.flushes.timeout"] > 0
    assert report.aggregate["completed"] == 30
    assert report.aggregate["result_errors"] == 0


def test_aborted_queries_resolve_through_software_fallback():
    # A one-step watchdog aborts every accelerated query; the PR-1
    # fallback contract must still produce correct results under load.
    report = run_serving(
        "cha-tlb", tenants=2, requests=40, seed=7, watchdog_steps=1
    )
    assert report.aggregate["completed"] > 0
    assert report.aggregate["fallback_fraction"] == 1.0
    assert report.aggregate["result_errors"] == 0
    assert report.aggregate["failed"] == 0


# --------------------------------------------------------------------- #
# Wiring validation
# --------------------------------------------------------------------- #


def make_small_server(config):
    system, built = build_serving_system("cha-tlb", seed=7, serve_config=config)
    return system.make_server(built, config, seed=7), built, system


def generator_for(tenant, built, system, config):
    return OpenLoopGenerator(
        tenant,
        rate=config.offered_load,
        num_requests=5,
        num_queries=len(built.queries),
        seed=7,
        stats=system.stats,
    )


def test_duplicate_tenant_generator_rejected():
    config = ServeConfig(tenants=2)
    server, built, system = make_small_server(config)
    server.attach(generator_for(0, built, system, config))
    with pytest.raises(ServingError):
        server.attach(generator_for(0, built, system, config))


def test_run_requires_one_generator_per_tenant():
    config = ServeConfig(tenants=2)
    server, built, system = make_small_server(config)
    server.attach(generator_for(0, built, system, config))
    with pytest.raises(ServingError):
        server.run()


def test_unknown_mode_rejected():
    config = ServeConfig(tenants=1)
    system, built = build_serving_system("cha-tlb", seed=7, serve_config=config)
    with pytest.raises(ServingError):
        system.make_server(built, config, mode="pipelined")


def test_unknown_serving_workload_rejected():
    with pytest.raises(ValueError):
        build_serving_system(
            "cha-tlb", seed=7, serve_config=ServeConfig(), workload="snort"
        )


# --------------------------------------------------------------------- #
# The experiment driver
# --------------------------------------------------------------------- #


def test_serve_experiment_one_scheme():
    result = serve_experiment(schemes=["cha-tlb"], tenants=2, requests=60, seed=7)
    assert result.experiment == "serve"
    # Per-tenant rows plus one aggregate row.
    assert len(result.rows) == 3
    assert result.rows[-1]["tenant"] == "all"
    assert all(row["scheme"] == "cha-tlb" for row in result.rows)
