"""Event-driven simulation kernel.

The kernel is deliberately small: a priority queue of timestamped events and
a statistics registry.  Components (caches, NoC, the QEI accelerator) are
plain objects that schedule callbacks on a shared :class:`Engine`.
"""

from .engine import Engine, Event
from .stats import Counter, Histogram, PercentileSketch, StatsRegistry

__all__ = [
    "Engine",
    "Event",
    "Counter",
    "Histogram",
    "PercentileSketch",
    "StatsRegistry",
]
