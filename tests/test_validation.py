"""Tests for the self-validation battery."""

from repro.analysis.validation import ValidationReport, validate_system


def test_validation_passes_on_clean_system():
    report = validate_system(seed=11, keys_per_structure=8)
    assert report.passed, report.format()
    assert report.checks > 50
    assert "OK" in report.format()


def test_validation_is_seed_deterministic():
    a = validate_system(seed=3, keys_per_structure=6)
    b = validate_system(seed=3, keys_per_structure=6)
    assert a.checks == b.checks
    assert a.passed and b.passed


def test_validation_works_on_cha_scheme():
    report = validate_system(seed=5, keys_per_structure=6, scheme="cha-tlb")
    assert report.passed, report.format()


def test_report_formats_mismatches():
    report = ValidationReport(checks=3, mismatches=["x: got 1, want 2"])
    assert not report.passed
    assert "FAILED" in report.format()
    assert "x: got 1" in report.format()
