"""Chip-wide scalability study: offered load from many cores.

Tab. I grades the schemes' *scalability* qualitatively (CHA-based and
Core-integrated "Good", device-based "Medium").  This study quantifies it:
N cores concurrently offer query streams to the accelerator fabric and we
measure sustained throughput (queries per kilocycle) as N grows.

* Core-integrated: each core drives its own private engine (QST=10 each),
  so capacity scales with N by construction.
* CHA schemes: queries spread across the 24 per-slice accelerators.
* Device schemes: one centralized engine serves everyone; its single
  interface and NoC stop saturate.

The drive bypasses the core pipeline models (pure offered load), which is
exactly what a multi-programmed throughput experiment measures.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.accelerator import QeiAccelerator, QueryRequest
from ..core.integration import build_integration
from ..core.programs import default_firmware
from ..datastructs import CuckooHashTable
from ..system import System
from ..workloads.generator import make_keys
from .report import ExperimentResult


def _build_core_private_accelerators(system: System, cores: int) -> List[QeiAccelerator]:
    """Per-core engines for the core-integrated scheme (one QST each)."""
    accelerators = [system.accelerator]
    for core in range(1, cores):
        integration = build_integration(
            "core-integrated",
            system.config,
            system.hierarchy,
            system.noc,
            system.space,
            system.core_mmus,
            stats=system.stats.scoped(f"extra{core}"),
        )
        accelerators.append(
            QeiAccelerator(
                system.engine,
                default_firmware(),
                integration,
                system.space,
                qst_entries=system.config.qei.qst_entries,
                stats=system.stats.scoped(f"extra{core}"),
                name=f"qei{core}",
            )
        )
    return accelerators


def scalability_study(
    *,
    core_counts: Optional[List[int]] = None,
    queries_per_core: int = 16,
    issue_gap_cycles: int = 30,
) -> ExperimentResult:
    """Sustained throughput versus number of querying cores."""
    core_counts = core_counts or [1, 4, 12, 24]
    result = ExperimentResult(
        "Scalability",
        "sustained query throughput vs querying cores (queries / kcycle)",
        ["cores", "core-integrated", "cha-tlb", "device-direct", "device-indirect"],
        notes=[
            "Tab. I: near-cache schemes scale 'Good', device schemes"
            " 'Medium' — the centralized engine saturates as cores grow",
        ],
    )
    for cores in core_counts:
        row = {"cores": cores}
        for scheme in ("core-integrated", "cha-tlb", "device-direct", "device-indirect"):
            system = System(None, scheme)
            table = CuckooHashTable(system.mem, key_length=16, num_buckets=2048)
            keys = make_keys(1024, 16, seed=5)
            for i, key in enumerate(keys):
                table.insert(key, i)
            system.warm_llc()

            if scheme == "core-integrated":
                engines = _build_core_private_accelerators(system, cores)
            else:
                engines = [system.accelerator] * cores

            handles = []
            for core in range(cores):
                accel = engines[core if scheme == "core-integrated" else 0]
                for q in range(queries_per_core):
                    key = keys[(core * 131 + q * 7) % len(keys)]
                    handles.append(
                        accel.submit(
                            QueryRequest(
                                header_addr=table.header_addr,
                                key_addr=table.store_key(key),
                                core_id=core,
                            ),
                            q * issue_gap_cycles,
                        )
                    )
            done = 0
            for handle in handles:
                accel = engines[0]
                done = max(done, _wait(system, handle))
            total = cores * queries_per_core
            row[scheme] = 1000.0 * total / max(1, done)
        result.add_row(**row)
    return result


def _wait(system: System, handle) -> int:
    while not handle.done:
        if not system.engine.step():
            raise RuntimeError("engine drained with pending query")
    return handle.completion_cycle
