"""Data Processing Unit resources: ALUs, comparators, and the hash unit.

Each pool is an occupancy model: ``issue(now, busy_cycles)`` picks the unit
that frees earliest and returns the operation's completion time.  Comparator
pools exist per CHA for the distributed schemes (two per CHA, Tab. II) and
as one larger local pool for device schemes (ten per DPU).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import AcceleratorError
from ..sim.stats import StatsRegistry


class UnitPool:
    """N identical single-operation functional units."""

    def __init__(
        self,
        units: int,
        name: str,
        *,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        if units <= 0:
            raise AcceleratorError(f"{name}: need at least one unit")
        self.name = name
        self._free_at: List[int] = [0] * units
        self.stats = (stats or StatsRegistry()).scoped(name)
        self._ops = self.stats.counter("ops")
        self._busy_cycles = self.stats.counter("busy_cycles")
        self._queue_cycles = self.stats.counter("queue_cycles")

    @property
    def units(self) -> int:
        return len(self._free_at)

    def issue(self, now: int, busy_cycles: int) -> int:
        """Occupy the earliest-free unit; returns the completion cycle."""
        if busy_cycles <= 0:
            raise AcceleratorError(f"{self.name}: busy_cycles must be positive")
        best = min(range(len(self._free_at)), key=self._free_at.__getitem__)
        start = max(now, self._free_at[best])
        self._queue_cycles.add(start - now)
        completion = start + busy_cycles
        self._free_at[best] = completion
        self._ops.add()
        self._busy_cycles.add(busy_cycles)
        return completion

    def reset_timing(self) -> None:
        self._free_at = [0] * len(self._free_at)


class ComparatorPool(UnitPool):
    """64-bit-per-cycle comparators (Sec. IV-B)."""

    def compare(self, now: int, num_bytes: int) -> int:
        qwords = max(1, (num_bytes + 7) // 8)
        return self.issue(now, qwords)


class HashUnit(UnitPool):
    """The DPU hashing unit: fixed setup plus one cycle per 8 key bytes."""

    def __init__(
        self,
        *,
        setup_cycles: int = 3,
        stats: Optional[StatsRegistry] = None,
        name: str = "hash_unit",
    ) -> None:
        super().__init__(1, name, stats=stats)
        self.setup_cycles = setup_cycles

    def hash(self, now: int, num_bytes: int) -> int:
        return self.issue(now, self.setup_cycles + max(1, (num_bytes + 7) // 8))


class AluPool(UnitPool):
    """General-purpose ALUs for intermediate arithmetic (five per DPU)."""

    def alu(self, now: int, cycles: int = 1) -> int:
        return self.issue(now, cycles)
