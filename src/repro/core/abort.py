"""Architectural abort codes for failed queries (paper Sec. IV-D).

When a query cannot complete — a malformed header, a broken pointer chain,
an interrupt flush, a runaway CFA caught by the watchdog — the accelerator
transitions the QST entry to the EXCEPTION state and reports *why* through
one shared code space.  Blocking queries surface the code on their
:class:`~repro.core.accelerator.QueryHandle`; non-blocking queries get it
written into the payload word of their 16-byte result record (the status
word keeps the coarse ``RESULT_FAULT``/``RESULT_ABORTED`` encoding software
already polls for).

This enum is the single source of truth used by the header decoder, the CFA
programs, the accelerator's flush/abort-store path, the QST's release
accounting and the software fallback executor.  It lives in its own
dependency-free module because every layer of the stack imports it; the
architectural surface re-exports it from :mod:`repro.core.isa` and
:mod:`repro.core`.
"""

from __future__ import annotations

import enum


class AbortCode(enum.IntEnum):
    """Why a query aborted.  ``NONE`` means the query did not abort.

    Values 1 and 2 are reserved: they are the ``RESULT_FOUND`` /
    ``RESULT_NOT_FOUND`` success statuses of the non-blocking result record.
    ``FAULT`` and ``FLUSH`` deliberately equal ``RESULT_FAULT`` (3) and
    ``RESULT_ABORTED`` (4) so the coarse status word of a result record is
    itself a valid (generic) abort code.
    """

    NONE = 0
    #: Generic CFA fault with no more specific classification.
    FAULT = 3
    #: Aborted by an interrupt flush (Sec. IV-D context switch).
    FLUSH = 4
    #: A micro-op touched an unmapped virtual page.
    SEGFAULT = 5
    #: A micro-op violated page permissions.
    PROTECTION = 6
    #: Header carries unknown flag bits or garbage in its reserved bytes.
    BAD_MAGIC = 7
    #: Header names a structure type the loaded firmware does not know,
    #: or one that mismatches the dispatched program.
    BAD_TYPE = 8
    #: Header subtype outside the program's supported range.
    BAD_SUBTYPE = 9
    #: Header key length is zero or exceeds the architectural maximum.
    BAD_KEY_LENGTH = 10
    #: Header size field invalid for the structure (e.g. zero buckets).
    BAD_SIZE = 11
    #: Header auxiliary field invalid (e.g. skip-list max level of zero).
    BAD_AUX = 12
    #: The VALID flag is clear: software never published the structure.
    HEADER_INVALID = 13
    #: A node carried a NULL key pointer the walk must dereference.
    NULL_POINTER = 14
    #: The per-query CFA watchdog expired (runaway walk / pointer cycle).
    WATCHDOG = 15
    #: The CFA program itself misbehaved (firmware bug trap).
    FIRMWARE = 16
    #: The accelerator home the query was bound to is FAILED or draining
    #: with no surviving slice to reroute to (infrastructure fault).
    SLICE_DOWN = 17
    #: The header's seqlock version moved (or was odd) during the walk: a
    #: writer holds or took the structure mid-query.  Readers retry via the
    #: software fallback; writers back off and retry or fall back.
    VERSION_CONFLICT = 18

    @property
    def is_abort(self) -> bool:
        """True for every code that terminates a query abnormally."""
        return self >= AbortCode.FAULT

    @classmethod
    def of(cls, value: int) -> "AbortCode":
        """Map a raw code word to an :class:`AbortCode` (unknown → FAULT)."""
        try:
            return cls(value)
        except ValueError:
            return cls.FAULT
