"""Mutation CFAs: accelerated INSERT/DELETE/UPDATE (docs/mutations.md).

The read path ships queries to the accelerator while *updates stay in
software* (paper Sec. IV-A).  This module closes that gap: per-structure
mutation programs run on the same CFA Execution Engine, dispatched through
the firmware image's mutation table by the request's ``op`` field.

Reader/writer coexistence is a seqlock on the header's version word
(:data:`~repro.core.header.VERSION_OFFSET`):

* A **writer** CASes the version from even ``v`` to odd ``v + 1`` before
  touching memory.  Losing the CAS means another writer holds the lock; the
  program backs off deterministically (``BACKOFF_BASE_CYCLES`` doubled per
  attempt) and re-reads the header.  After ``MAX_LOCK_ATTEMPTS`` losses it
  aborts with :attr:`AbortCode.VERSION_CONFLICT` and the software fallback
  applies the mutation instead.
* A **reader** records the version at PARSE and re-validates it at Done;
  any movement (or an odd snapshot) aborts the read with
  ``VERSION_CONFLICT`` and the existing fallback path retries in software.

Every mutation publishes its effects with **one** :class:`MemWrite` macro
store whose final segment releases the lock (``v + 2``).  The engine
executes a micro-op's segments without interleaving, so concurrent readers
observe either none or all of a mutation — and a writer that dies mid-walk
(slice failure, flush) has published *nothing*, which makes lock recovery
trivial: a stuck odd version with no live QST write intent is reclaimed by
software, no repair of structure bytes needed.

Online hash-table resize rides the same lock: :class:`OnlineResizer` drains
buckets in chunks under short seqlock critical sections while queries route
old-vs-new per bucket (``FLAG_RESIZING``), and commits the doubled table
through the accelerator's quiesce machinery — the firmware-hot-swap path.

Mutation programs execute through the *prebound* compiled tier in
:mod:`repro.core.specialize`: the compiler captures each program's
``step`` and translates its :class:`StepOutcome` into the flat micro-op
tuples the batched CEE drain consumes, so mutation semantics live only
here.  ``tests/test_specialize_properties.py`` pins prebound-vs-generic
agreement (including forced seqlock conflicts and mid-resize walks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..datastructs.hashing import secondary_hash, signature_of
from ..datastructs.skiplist import NODE_FIXED_BYTES, tower_height
from ..errors import DataStructureError
from .abort import AbortCode
from .cfa import (
    CfaProgram,
    Compare,
    Delay,
    Done,
    Fault,
    FirmwareImage,
    HashOp,
    HeaderCas,
    MemRead,
    MemWrite,
    OP_DELETE,
    OP_INSERT,
    OP_LOOKUP,
    OP_UPDATE,
    QueryContext,
    STATE_DONE,
    STATE_EXCEPTION,
    STATE_START,
    StepOutcome,
    WRITE_OPS,
)
from .header import (
    FLAG_READ_ONLY,
    FLAG_RESIZING,
    DataStructureHeader,
    StructureType,
    VERSION_OFFSET,
)
from .programs import _u64

_SLOT = 16
_BTREE_HEADER = 40
_LEAF_FLAG = 0x1

#: Mutation result codes returned in the Done value (miss returns None and
#: surfaces as the ordinary NOT_FOUND status).
MUT_UPDATED = 1
MUT_INSERTED = 2
MUT_DELETED = 3

#: Writer backoff: cycles slept after the first lost header CAS; doubled on
#: each further loss.  Deterministic — no randomised jitter — so identical
#: seeds replay identical schedules.
BACKOFF_BASE_CYCLES = 32
MAX_LOCK_ATTEMPTS = 4


class _MutationProgram(CfaProgram):
    """Shared mutation prelude: parse header, read key, take the seqlock.

    Subclasses implement :meth:`after_lock` (first structure-specific step,
    entered holding the lock) and :meth:`dispatch` for their walk states.
    The terminal helpers — :meth:`_commit`, :meth:`_miss`,
    :meth:`_release_abort` — all fold the lock release into a single macro
    store so memory is never observable half-mutated.
    """

    PRELUDE_STATES = (
        STATE_START,
        "PARSE",
        "READ_KEY",
        "LOCK",
        "BACKOFF",
        "COMMIT",
        "MISS",
        "RELEASE",
        STATE_DONE,
        STATE_EXCEPTION,
    )

    def step(self, ctx: QueryContext) -> StepOutcome:
        if ctx.state == STATE_START:
            if ctx.op not in WRITE_OPS:
                return StepOutcome(
                    STATE_EXCEPTION,
                    Fault(
                        code=int(AbortCode.FIRMWARE),
                        detail=f"mutation program dispatched for op {ctx.op}",
                    ),
                )
            return StepOutcome("PARSE", MemRead(ctx.header_addr, 64, "header"))
        if ctx.state == "PARSE":
            raw = ctx.scratch["header"]
            header = DataStructureHeader.decode(raw)
            code = self.validate_header(header, raw=raw)
            if code is AbortCode.VERSION_CONFLICT:
                # Odd version: another writer holds the seqlock right now.
                return self._backoff(ctx)
            if code is not AbortCode.NONE:
                return StepOutcome(
                    STATE_EXCEPTION,
                    Fault(code=int(code), detail=f"header rejected: {code.name}"),
                )
            if header.flags & FLAG_READ_ONLY:
                return StepOutcome(
                    STATE_EXCEPTION,
                    Fault(
                        code=int(AbortCode.PROTECTION),
                        detail="structure is marked read-only",
                    ),
                )
            ctx.header = header
            blocker = self.pre_lock_check(ctx)
            if blocker is not None:
                return blocker
            return StepOutcome(
                "READ_KEY", MemRead(ctx.key_addr, header.key_length, "key")
            )
        if ctx.state == "READ_KEY":
            ctx.key = ctx.scratch["key"][: ctx.header.key_length]
            version = ctx.header.version
            return StepOutcome(
                "LOCK",
                HeaderCas(
                    ctx.header_addr + VERSION_OFFSET,
                    expect=version,
                    new=version + 1,
                    tag="lock",
                ),
            )
        if ctx.state == "LOCK":
            if ctx.results["lock"] != 1:
                return self._backoff(ctx)
            return self.after_lock(ctx)
        if ctx.state == "BACKOFF":
            # Backoff elapsed: re-read the header (the version, and possibly
            # the whole structure, moved while we slept).
            return StepOutcome("PARSE", MemRead(ctx.header_addr, 64, "header"))
        if ctx.state == "COMMIT":
            return StepOutcome(STATE_DONE, Done(ctx.vars["result"]))
        if ctx.state == "MISS":
            return StepOutcome(STATE_DONE, Done(None))
        if ctx.state == "RELEASE":
            code = AbortCode.of(ctx.vars.get("abort_code", int(AbortCode.FAULT)))
            detail = ctx.scratch.get("abort_detail", b"").decode(
                "utf-8", "replace"
            )
            return StepOutcome(
                STATE_EXCEPTION, Fault(code=int(code), detail=detail)
            )
        return self.dispatch(ctx)

    # ---------------- subclass surface ---------------- #

    def pre_lock_check(self, ctx: QueryContext) -> Optional[StepOutcome]:
        """Structure-specific bail-out evaluated before the lock CAS."""
        return None

    def after_lock(self, ctx: QueryContext) -> StepOutcome:
        raise NotImplementedError

    def dispatch(self, ctx: QueryContext) -> StepOutcome:
        raise NotImplementedError

    # ---------------- terminal helpers ---------------- #

    def _backoff(self, ctx: QueryContext) -> StepOutcome:
        attempts = ctx.vars.get("attempts", 0) + 1
        ctx.vars["attempts"] = attempts
        if attempts > MAX_LOCK_ATTEMPTS:
            return StepOutcome(
                STATE_EXCEPTION,
                Fault(
                    code=int(AbortCode.VERSION_CONFLICT),
                    detail=(
                        f"seqlock contended after {MAX_LOCK_ATTEMPTS} "
                        "attempts; falling back to software"
                    ),
                ),
            )
        return StepOutcome(
            "BACKOFF", Delay(BACKOFF_BASE_CYCLES << (attempts - 1))
        )

    def _version_word(self, ctx: QueryContext, version: int) -> Tuple[int, bytes]:
        return (
            ctx.header_addr + VERSION_OFFSET,
            version.to_bytes(8, "little"),
        )

    def _commit(
        self,
        ctx: QueryContext,
        result: int,
        segments: List[Tuple[int, bytes]],
        *,
        new_size: Optional[int] = None,
    ) -> StepOutcome:
        """Publish the mutation and release the lock in one macro store."""
        parts = [seg for seg in segments if seg[1]]
        if new_size is not None:
            parts.append((ctx.header_addr + 16, new_size.to_bytes(8, "little")))
        parts.append(self._version_word(ctx, ctx.header.version + 2))
        ctx.vars["result"] = result
        # The pre-lock version is this commit's ordinal in the structure's
        # seqlock-serialised write history; the accelerator stamps it onto
        # the handle so observers can order commits exactly.
        ctx.vars["commit_version"] = ctx.header.version
        head = parts[0]
        return StepOutcome(
            "COMMIT", MemWrite(head[0], head[1], also=tuple(parts[1:]))
        )

    def _miss(self, ctx: QueryContext) -> StepOutcome:
        """Key absent: restore the pre-lock version (nothing was written)."""
        vaddr, data = self._version_word(ctx, ctx.header.version)
        return StepOutcome("MISS", MemWrite(vaddr, data))

    def _release_abort(
        self, ctx: QueryContext, code: AbortCode, detail: str
    ) -> StepOutcome:
        """Abort while holding the lock: release it untouched, then fault."""
        ctx.vars["abort_code"] = int(code)
        ctx.scratch["abort_detail"] = detail.encode()
        vaddr, data = self._version_word(ctx, ctx.header.version)
        return StepOutcome("RELEASE", MemWrite(vaddr, data))


# --------------------------------------------------------------------- #
# Hash table
# --------------------------------------------------------------------- #


class HashTableMutationCfa(_MutationProgram):
    """Cuckoo hash mutations: in-place update/delete, empty-slot insert.

    INSERT's operand is a core-staged ``{value, key}`` record whose layout
    matches the table's kv records, so publishing the insert is one 16-byte
    slot store of ``{signature, operand}``.  Inserts that would need cuckoo
    displacement (both candidate buckets full) abort to software, as do all
    writes while an online resize is in flight.
    """

    TYPE_CODE = int(StructureType.HASH_TABLE)
    NAME = "hash-table-mut"
    STATES = _MutationProgram.PRELUDE_STATES + (
        "STAGED",
        "MHASH",
        "MSCAN",
        "MCHECK",
    )
    SUBTYPE_MIN = 1
    SUBTYPE_MAX = 128
    REQUIRES_SIZE = True

    def pre_lock_check(self, ctx: QueryContext) -> Optional[StepOutcome]:
        if ctx.header.flags & FLAG_RESIZING:
            # The migration drain owns placement during a resize; CFA writes
            # fall back to the (resize-aware) software path.
            return StepOutcome(
                STATE_EXCEPTION,
                Fault(
                    code=int(AbortCode.VERSION_CONFLICT),
                    detail="online resize in flight; write falls back",
                ),
            )
        if ctx.op == OP_INSERT and not ctx.operand:
            return StepOutcome(
                STATE_EXCEPTION,
                Fault(
                    code=int(AbortCode.NULL_POINTER),
                    detail="INSERT without a staged record",
                ),
            )
        return None

    def after_lock(self, ctx: QueryContext) -> StepOutcome:
        if ctx.op == OP_INSERT:
            return StepOutcome("STAGED", MemRead(ctx.operand, 8, "staged"))
        return StepOutcome("MHASH", HashOp("key", "hash"))

    def dispatch(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        if ctx.state == "STAGED":
            return StepOutcome("MHASH", HashOp("key", "hash"))
        if ctx.state == "MHASH":
            num_buckets = ctx.header.size
            v["sig"] = signature_of(ctx.key) or 1
            v["b0"] = ctx.results["hash"] % num_buckets
            v["b1"] = secondary_hash(ctx.key) % num_buckets
            v["which"] = 0
            v["line"] = 0
            v["empty_slot"] = 0  # first free slot address seen (0 = none)
            return self._read_line(ctx)
        if ctx.state == "MSCAN":
            return self._scan_line(ctx)
        if ctx.state == "MCHECK":
            if ctx.results["cmp"] == 0:
                return self._found(ctx)
            return self._scan_line(ctx)  # signature collision: keep scanning
        raise AssertionError(f"unreachable state {ctx.state}")

    # ---------------- scan helpers ---------------- #

    def _bucket_bytes(self, ctx: QueryContext) -> int:
        return ctx.header.subtype * _SLOT

    def _read_line(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        bucket = v["b0"] if v["which"] == 0 else v["b1"]
        bucket_addr = ctx.header.root_ptr + bucket * self._bucket_bytes(ctx)
        offset = v["line"] * 64
        remaining = self._bucket_bytes(ctx) - offset
        if remaining <= 0:
            return self._next_bucket(ctx)
        v["slot_in_line"] = 0
        v["line_base"] = bucket_addr + offset
        return StepOutcome(
            "MSCAN", MemRead(bucket_addr + offset, min(64, remaining), "line")
        )

    def _scan_line(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        line = ctx.scratch["line"]
        slots_in_line = len(line) // _SLOT
        slot = v["slot_in_line"]
        while slot < slots_in_line:
            sig = _u64(line, slot * _SLOT)
            kv = _u64(line, slot * _SLOT + 8)
            addr = v["line_base"] + slot * _SLOT
            slot += 1
            if sig == 0:
                if not v["empty_slot"]:
                    v["empty_slot"] = addr
                continue
            if sig == v["sig"] and kv:
                v["slot_in_line"] = slot
                v["slot_addr"] = addr
                v["kv"] = kv
                return StepOutcome(
                    "MCHECK",
                    Compare(kv + 8, ctx.key_addr, ctx.header.key_length, "cmp"),
                )
        v["slot_in_line"] = slot
        v["line"] += 1
        if v["line"] * 64 >= self._bucket_bytes(ctx):
            return self._next_bucket(ctx)
        return self._read_line(ctx)

    def _next_bucket(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        if v["which"] == 0:
            v["which"] = 1
            v["line"] = 0
            return self._read_line(ctx)
        return self._absent(ctx)

    # ---------------- terminals ---------------- #

    def _found(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        kv = v["kv"]
        if ctx.op == OP_UPDATE:
            return self._commit(
                ctx, MUT_UPDATED, [(kv, ctx.operand.to_bytes(8, "little"))]
            )
        if ctx.op == OP_INSERT:
            # Key already present: update the existing record in place with
            # the staged record's value (upsert semantics, like software).
            staged_value = ctx.scratch["staged"][:8]
            return self._commit(ctx, MUT_UPDATED, [(kv, staged_value)])
        return self._commit(
            ctx, MUT_DELETED, [(v["slot_addr"], bytes(_SLOT))]
        )

    def _absent(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        if ctx.op in (OP_UPDATE, OP_DELETE):
            return self._miss(ctx)
        if not v["empty_slot"]:
            return self._release_abort(
                ctx,
                AbortCode.VERSION_CONFLICT,
                "both candidate buckets full; cuckoo displacement in software",
            )
        slot = (
            v["sig"].to_bytes(8, "little") + ctx.operand.to_bytes(8, "little")
        )
        return self._commit(ctx, MUT_INSERTED, [(v["empty_slot"], slot)])

    # MemWrite intentionally omits the 16B zero segment guard: the commit
    # helper filters empty data, and a DELETE's slot clear is 16 bytes.


# --------------------------------------------------------------------- #
# Skip list
# --------------------------------------------------------------------- #


class SkipListMutationCfa(_MutationProgram):
    """Skip-list mutations: pred/succ tracked per level during the descent.

    INSERT's operand is a complete core-staged node ``{key_ptr, value,
    height, next[height]}`` with zeroed forward pointers; the CFA links it
    at every level of its (deterministic) tower in one macro store.  DELETE
    splices the victim out of every level it appears on.
    """

    TYPE_CODE = int(StructureType.SKIP_LIST)
    NAME = "skip-list-mut"
    STATES = _MutationProgram.PRELUDE_STATES + (
        "STAGED",
        "WNEXT",
        "WFETCH",
        "WCMP",
        "WSPLICE",
    )
    SUBTYPE_MAX = 0
    MAX_LEVELS = 64

    def validate_header(self, header, raw: bytes = b"") -> AbortCode:
        code = super().validate_header(header, raw=raw)
        if code is not AbortCode.NONE:
            return code
        if not 1 <= header.aux <= self.MAX_LEVELS:
            return AbortCode.BAD_AUX
        return AbortCode.NONE

    def pre_lock_check(self, ctx: QueryContext) -> Optional[StepOutcome]:
        if ctx.op == OP_INSERT and not ctx.operand:
            return StepOutcome(
                STATE_EXCEPTION,
                Fault(
                    code=int(AbortCode.NULL_POINTER),
                    detail="INSERT without a staged node",
                ),
            )
        return None

    def after_lock(self, ctx: QueryContext) -> StepOutcome:
        if ctx.op == OP_INSERT:
            return StepOutcome(
                "STAGED", MemRead(ctx.operand, NODE_FIXED_BYTES, "staged")
            )
        return self._start_walk(ctx)

    def _start_walk(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        v["node"] = ctx.header.root_ptr
        v["level"] = ctx.header.aux - 1
        v["cand"] = 0
        if not ctx.header.root_ptr:
            return self._release_abort(
                ctx, AbortCode.NULL_POINTER, "skip list has no head node"
            )
        return self._read_ptr(ctx)

    def _read_ptr(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        offset = NODE_FIXED_BYTES + 8 * v["level"]
        return StepOutcome("WNEXT", MemRead(v["node"] + offset, 8, "ptr"))

    def _drop_level(self, ctx: QueryContext, succ: int) -> StepOutcome:
        v = ctx.vars
        level = v["level"]
        v[f"pred_{level}"] = v["node"]
        v[f"succ_{level}"] = succ
        if level > 0:
            v["level"] = level - 1
            return self._read_ptr(ctx)
        return self._finalize(ctx)

    def dispatch(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        if ctx.state == "STAGED":
            return self._start_walk(ctx)
        if ctx.state == "WNEXT":
            nxt = ctx.scratch_u64("ptr")
            if not nxt:
                return self._drop_level(ctx, 0)
            v["next"] = nxt
            return StepOutcome(
                "WFETCH", MemRead(nxt, NODE_FIXED_BYTES, "next")
            )
        if ctx.state == "WFETCH":
            key_ptr = ctx.scratch_u64("next", 0)
            if not key_ptr:
                return self._release_abort(
                    ctx, AbortCode.NULL_POINTER, "null key pointer"
                )
            return StepOutcome(
                "WCMP",
                Compare(key_ptr, ctx.key_addr, ctx.header.key_length, "cmp"),
            )
        if ctx.state == "WCMP":
            cmp_result = ctx.results["cmp"]
            if cmp_result < 0:  # next.key < key: advance along this level
                v["node"] = v["next"]
                return self._read_ptr(ctx)
            if cmp_result == 0:
                v["cand"] = v["next"]
                v["cand_height"] = ctx.scratch_u64("next", 16)
            return self._drop_level(ctx, v["next"])
        if ctx.state == "WSPLICE":
            return self._splice_delete(ctx)
        raise AssertionError(f"unreachable state {ctx.state}")

    # ---------------- terminals ---------------- #

    def _finalize(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        cand = v["cand"]
        if ctx.op == OP_UPDATE:
            if not cand:
                return self._miss(ctx)
            return self._commit(
                ctx,
                MUT_UPDATED,
                [(cand + 8, ctx.operand.to_bytes(8, "little"))],
            )
        if ctx.op == OP_INSERT:
            if cand:
                staged_value = ctx.scratch["staged"][8:16]
                return self._commit(ctx, MUT_UPDATED, [(cand + 8, staged_value)])
            height = min(
                _u64(ctx.scratch["staged"], 16) or 1, ctx.header.aux
            )
            segments: List[Tuple[int, bytes]] = []
            for level in range(height):
                succ = v[f"succ_{level}"]
                pred = v[f"pred_{level}"]
                segments.append(
                    (
                        ctx.operand + NODE_FIXED_BYTES + 8 * level,
                        succ.to_bytes(8, "little"),
                    )
                )
                segments.append(
                    (
                        pred + NODE_FIXED_BYTES + 8 * level,
                        ctx.operand.to_bytes(8, "little"),
                    )
                )
            return self._commit(ctx, MUT_INSERTED, segments)
        # DELETE: fetch the victim's forward pointers, then splice.
        if not cand:
            return self._miss(ctx)
        height = min(v["cand_height"] or 1, ctx.header.aux)
        v["cand_height"] = height
        return StepOutcome(
            "WSPLICE",
            MemRead(cand + NODE_FIXED_BYTES, 8 * height, "cnext"),
        )

    def _splice_delete(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        cand = v["cand"]
        cnext = ctx.scratch["cnext"]
        segments: List[Tuple[int, bytes]] = []
        for level in range(v["cand_height"]):
            pred = v[f"pred_{level}"]
            if v[f"succ_{level}"] != cand:
                continue  # the victim is absent from this level
            segments.append(
                (
                    pred + NODE_FIXED_BYTES + 8 * level,
                    cnext[level * 8 : level * 8 + 8],
                )
            )
        return self._commit(ctx, MUT_DELETED, segments)


# --------------------------------------------------------------------- #
# B+-tree
# --------------------------------------------------------------------- #


class BPlusTreeMutationCfa(_MutationProgram):
    """B+-tree leaf mutations: in-place update, compacting delete.

    Leaves are bulk-loaded with exactly-sized key arrays (no spare
    capacity), so a fresh-key INSERT always needs a reallocation or split —
    those abort to software.  UPDATE rewrites the aligned value slot;
    DELETE shifts the leaf's key/value tails left and decrements the
    counts, all in one macro store.
    """

    TYPE_CODE = int(StructureType.BPLUS_TREE)
    NAME = "bplus-tree-mut"
    STATES = _MutationProgram.PRELUDE_STATES + (
        "STAGED",
        "WFETCH_NODE",
        "WSEP_CHECK",
        "WLEAF_STAGE",
        "WLEAF_CHECK",
        "WREAD_CHILD",
    )
    SUBTYPE_MIN = 2
    SUBTYPE_MAX = 64

    def pre_lock_check(self, ctx: QueryContext) -> Optional[StepOutcome]:
        if ctx.op == OP_INSERT and not ctx.operand:
            return StepOutcome(
                STATE_EXCEPTION,
                Fault(
                    code=int(AbortCode.NULL_POINTER),
                    detail="INSERT without a staged record",
                ),
            )
        return None

    def after_lock(self, ctx: QueryContext) -> StepOutcome:
        if ctx.op == OP_INSERT:
            return StepOutcome("STAGED", MemRead(ctx.operand, 8, "staged"))
        return self._descend_root(ctx)

    def _descend_root(self, ctx: QueryContext) -> StepOutcome:
        root = ctx.header.root_ptr
        if not root:
            return self._release_abort(
                ctx, AbortCode.NULL_POINTER, "B+-tree has no root"
            )
        ctx.vars["node"] = root
        return StepOutcome(
            "WFETCH_NODE", MemRead(root, _BTREE_HEADER, "node")
        )

    def dispatch(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        if ctx.state == "STAGED":
            return self._descend_root(ctx)
        if ctx.state == "WFETCH_NODE":
            v["flags"] = ctx.scratch_u64("node", 0)
            v["count"] = ctx.scratch_u64("node", 8)
            v["keys_ptr"] = ctx.scratch_u64("node", 24)
            v["slots_ptr"] = ctx.scratch_u64("node", 32)
            v["index"] = 0
            if v["flags"] & _LEAF_FLAG:
                return self._leaf_step(ctx)
            return self._separator_step(ctx)
        if ctx.state == "WSEP_CHECK":
            if ctx.results["cmp"] > 0:  # separator > key: take this child
                return self._read_child(ctx, v["index"])
            v["index"] += 1
            return self._separator_step(ctx)
        if ctx.state == "WLEAF_STAGE":
            return self._leaf_step(ctx)
        if ctx.state == "WLEAF_CHECK":
            cmp_result = ctx.results["cmp"]
            if cmp_result == 0:
                return self._leaf_found(ctx)
            if cmp_result > 0:  # sorted leaf: stored key already past ours
                return self._leaf_absent(ctx)
            v["index"] += 1
            return self._leaf_step(ctx)
        if ctx.state == "WREAD_CHILD":
            child = ctx.scratch_u64("child")
            if not child:
                return self._release_abort(
                    ctx, AbortCode.NULL_POINTER, "null child pointer"
                )
            v["node"] = child
            return StepOutcome(
                "WFETCH_NODE", MemRead(child, _BTREE_HEADER, "node")
            )
        raise AssertionError(f"unreachable state {ctx.state}")

    # ---------------- walk helpers ---------------- #

    def _separator_step(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        if v["index"] >= v["count"]:
            return self._read_child(ctx, v["count"])
        sep_addr = v["keys_ptr"] + v["index"] * ctx.header.key_length
        return StepOutcome(
            "WSEP_CHECK",
            Compare(sep_addr, ctx.key_addr, ctx.header.key_length, "cmp"),
        )

    def _read_child(self, ctx: QueryContext, index: int) -> StepOutcome:
        slot = ctx.vars["slots_ptr"] + 8 * index
        return StepOutcome("WREAD_CHILD", MemRead(slot, 8, "child"))

    def _leaf_step(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        if v["index"] >= v["count"]:
            return self._leaf_absent(ctx)
        if ctx.op == OP_DELETE and "ltail" not in ctx.scratch:
            # Stage the whole leaf payload once: a compacting delete
            # rewrites the key/value tails, so the CFA needs their bytes.
            klen = ctx.header.key_length
            return StepOutcome(
                "WLEAF_STAGE",
                MemRead(
                    v["keys_ptr"],
                    v["count"] * klen,
                    "ltail",
                    also=((v["slots_ptr"], v["count"] * 8, "lslots"),),
                ),
            )
        key_addr = v["keys_ptr"] + v["index"] * ctx.header.key_length
        return StepOutcome(
            "WLEAF_CHECK",
            Compare(key_addr, ctx.key_addr, ctx.header.key_length, "cmp"),
        )

    # ---------------- terminals ---------------- #

    def _leaf_found(self, ctx: QueryContext) -> StepOutcome:
        v = ctx.vars
        slot = v["slots_ptr"] + 8 * v["index"]
        if ctx.op == OP_UPDATE:
            return self._commit(
                ctx,
                MUT_UPDATED,
                [(slot, ctx.operand.to_bytes(8, "little"))],
            )
        if ctx.op == OP_INSERT:
            staged_value = ctx.scratch["staged"][:8]
            return self._commit(ctx, MUT_UPDATED, [(slot, staged_value)])
        # DELETE: shift the staged key/value tails left over the victim.
        count, i = v["count"], v["index"]
        if count <= 1:
            return self._release_abort(
                ctx,
                AbortCode.VERSION_CONFLICT,
                "leaf would empty; delete handled in software",
            )
        klen = ctx.header.key_length
        keys = ctx.scratch["ltail"]
        slots = ctx.scratch["lslots"]
        segments = [
            (v["keys_ptr"] + i * klen, keys[(i + 1) * klen : count * klen]),
            (v["slots_ptr"] + i * 8, slots[(i + 1) * 8 : count * 8]),
            (v["node"] + 8, (count - 1).to_bytes(8, "little")),
        ]
        new_size = max(0, ctx.header.size - 1)
        return self._commit(ctx, MUT_DELETED, segments, new_size=new_size)

    def _leaf_absent(self, ctx: QueryContext) -> StepOutcome:
        if ctx.op == OP_INSERT:
            return self._release_abort(
                ctx,
                AbortCode.VERSION_CONFLICT,
                "fresh key needs a leaf reallocation/split; software path",
            )
        return self._miss(ctx)


# --------------------------------------------------------------------- #
# Software side: the seqlock, mutator adapters and the executor
# --------------------------------------------------------------------- #


class SeqLock:
    """Software view of a header's seqlock word, with crash recovery.

    A stuck odd version whose holder no longer occupies a QST write-intent
    entry belonged to a writer that died before its single commit store —
    by construction it published nothing, so reclaiming is just taking over
    the held lock.  A *live* holder is waited out by the caller.
    """

    def __init__(self, space, header_addr: int) -> None:
        self.space = space
        self.header_addr = header_addr
        self.vaddr = header_addr + VERSION_OFFSET

    def read(self) -> int:
        return self.space.read_u64(self.vaddr)

    def holder_alive(self, accelerator) -> bool:
        """Is some in-flight mutation CFA bound to this header?"""
        for entry in accelerator.qst.write_entries():
            if entry.ctx is not None and entry.ctx.header_addr == self.header_addr:
                return True
        return False

    def try_acquire(self, accelerator=None) -> Optional[int]:
        """Returns the (odd) held version on success, None when contended."""
        version = self.read()
        if version & 1:
            if accelerator is not None and not self.holder_alive(accelerator):
                # Crashed holder: its single-store commit never ran, so the
                # structure bytes are intact.  Take over the held lock.
                return version
            return None
        self.space.write_u64(self.vaddr, version + 1)
        return version + 1

    def release(self, held: int) -> None:
        self.space.write_u64(self.vaddr, held + 1)

    def repair(self, accelerator) -> bool:
        """Release an orphaned lock without mutating (post-crash sweep)."""
        version = self.read()
        if version & 1 and not self.holder_alive(accelerator):
            self.space.write_u64(self.vaddr, version + 1)
            return True
        return False


@dataclass(frozen=True)
class CommitRecord:
    """One committed mutation, exported at commit time (the WAL hook).

    ``ordinal`` is the seqlock commit ordinal: the even structure version
    the commit was published over (``handle.commit_version`` on the
    accelerated path, ``held - 1`` on the software path), so consecutive
    commits differ by exactly two.  The cluster tier's commit log
    (``serve/cluster/wal.py``) keys replication and recovery off it.
    """

    ordinal: int
    op: int
    key: bytes
    value: int
    #: MUT_* code, or None for a software miss (which still burns an
    #: ordinal and must stay visible to keep the commit log contiguous).
    result: Optional[int]
    cycle: int


class StructureMutator:
    """Adapter between one simulated structure and the mutation executor.

    Stages operands for the CFA fast path, applies mutations in software
    under the seqlock (the fallback and resize-window path) and keeps the
    structure's Python-side bookkeeping in sync with accelerated commits.
    """

    def __init__(self, system, structure) -> None:
        self.system = system
        self.structure = structure
        self.lock = SeqLock(system.space, structure.header_addr)
        #: Seqlock ordinal of the last software apply (see handle.commit_version).
        self.last_commit_version: Optional[int] = None
        #: Commit export hook: called with a :class:`CommitRecord` for every
        #: *published* mutation (misses burn no ordinal and export nothing).
        #: Unset outside the cluster tier, so single-machine runs pay — and
        #: change — nothing.
        self.on_commit: Optional[Callable[[CommitRecord], None]] = None

    @property
    def header_addr(self) -> int:
        return self.structure.header_addr

    def stage(self, op: int, key: bytes, value: int) -> int:
        """Build the CFA operand for ``op`` (0 when none is needed)."""
        if op == OP_UPDATE:
            return value
        if op == OP_INSERT:
            return self._stage_insert(key, value)
        return 0

    def _stage_insert(self, key: bytes, value: int) -> int:
        raise NotImplementedError

    def _apply(self, op: int, key: bytes, value: int) -> Optional[int]:
        raise NotImplementedError

    def software_apply(self, op: int, key: bytes, value: int) -> Optional[int]:
        """Apply under the seqlock; returns a MUT_* code or None (miss).

        Raises :class:`DataStructureError` when the lock is held by a live
        accelerator writer — callers retry after a bounded wait.
        """
        held = self.lock.try_acquire(self.system.accelerator)
        if held is None:
            raise DataStructureError("seqlock held by a live writer")
        self.last_commit_version = held - 1
        try:
            result = self._apply(op, key, value)
        finally:
            self.lock.release(held)
        if self.on_commit is not None:
            # Unlike the accelerated path, a software miss still burns an
            # ordinal (the release publishes version + 2), so it is
            # exported too — as a no-op commit — to keep the log contiguous.
            self.on_commit(
                CommitRecord(
                    ordinal=held - 1,
                    op=op,
                    key=key,
                    value=value,
                    result=result,
                    cycle=self.system.engine.now,
                )
            )
        return result

    def note_accelerated(
        self,
        op: int,
        result: Optional[int],
        *,
        key: Optional[bytes] = None,
        value: int = 0,
        ordinal: Optional[int] = None,
        cycle: int = 0,
    ) -> None:
        """Track count changes the accelerator made behind software's back.

        When the caller passes the commit identity (``key``/``ordinal``),
        the export hook fires for the accelerated commit exactly as
        :meth:`software_apply` does for software ones.
        """
        count = getattr(self.structure, "_count", None)
        if count is not None:
            if result == MUT_INSERTED:
                self.structure._count = count + 1
            elif result == MUT_DELETED:
                self.structure._count = count - 1
        if (
            result is not None
            and self.on_commit is not None
            and key is not None
            and ordinal is not None
        ):
            self.on_commit(
                CommitRecord(
                    ordinal=ordinal,
                    op=op,
                    key=key,
                    value=value,
                    result=result,
                    cycle=cycle,
                )
            )

    def current(self, key: bytes) -> Optional[int]:
        """Settled value for ``key`` (oracle probe; lock-free)."""
        return self.structure.lookup(key)


class HashMutator(StructureMutator):
    def _stage_insert(self, key: bytes, value: int) -> int:
        table = self.structure
        kv = table.mem.alloc(8 + table.key_length, align=8)
        table.mem.space.write_u64(kv, value)
        table.mem.space.write(kv + 8, key)
        return kv

    def _apply(self, op: int, key: bytes, value: int) -> Optional[int]:
        table = self.structure
        if op == OP_INSERT:
            existed = table.lookup(key) is not None
            table.insert(key, value)
            return MUT_UPDATED if existed else MUT_INSERTED
        if op == OP_UPDATE:
            return MUT_UPDATED if table.update(key, value) else None
        return MUT_DELETED if table.delete(key) else None


class SkipListMutator(StructureMutator):
    def _stage_insert(self, key: bytes, value: int) -> int:
        slist = self.structure
        key_addr = slist.mem.store_bytes(key)
        height = tower_height(key, slist.max_level)
        return slist._alloc_node(key_ptr=key_addr, value=value, height=height)

    def _apply(self, op: int, key: bytes, value: int) -> Optional[int]:
        slist = self.structure
        if op == OP_INSERT:
            existed = slist.lookup(key) is not None
            slist.insert(key, value)
            return MUT_UPDATED if existed else MUT_INSERTED
        if op == OP_UPDATE:
            return MUT_UPDATED if slist.update(key, value) else None
        return MUT_DELETED if slist.remove(key) else None


class BTreeMutator(StructureMutator):
    def _stage_insert(self, key: bytes, value: int) -> int:
        tree = self.structure
        kv = tree.mem.alloc(8 + tree.key_length, align=8)
        tree.mem.space.write_u64(kv, value)
        tree.mem.space.write(kv + 8, key)
        return kv

    def _apply(self, op: int, key: bytes, value: int) -> Optional[int]:
        tree = self.structure
        if op == OP_INSERT:
            existed = tree.lookup(key) is not None
            tree.insert(key, value)
            return MUT_UPDATED if existed else MUT_INSERTED
        if op == OP_UPDATE:
            return MUT_UPDATED if tree.update(key, value) else None
        return MUT_DELETED if tree.delete(key) else None


def make_mutator(system, structure) -> StructureMutator:
    """The right adapter for a structure, keyed by its type code."""
    type_code = int(structure.TYPE)
    if type_code == int(StructureType.HASH_TABLE):
        return HashMutator(system, structure)
    if type_code == int(StructureType.SKIP_LIST):
        return SkipListMutator(system, structure)
    if type_code == int(StructureType.BPLUS_TREE):
        return BTreeMutator(system, structure)
    raise DataStructureError(
        f"no mutation support for structure type {type_code}"
    )


class MutationExecutor:
    """Submits mutations through the accelerator with software fallback.

    Counters live under ``mutations.*`` and are created lazily, so a system
    that never mutates keeps a byte-identical stats snapshot.
    """

    #: Cycles a software retry waits for a live lock holder to finish.
    LOCK_WAIT_CYCLES = 64
    #: Bounded waits before giving up on a stuck-live lock (cannot happen
    #: with a working watchdog; this guards simulator bugs).
    MAX_LOCK_WAITS = 10_000
    #: Cycles charged for one software mutation apply (header + walk +
    #: store costs of the baseline software path, flat-rated).
    SOFTWARE_APPLY_CYCLES = 220

    def __init__(self, system) -> None:
        self.system = system
        self.stats = system.stats.scoped("mutations")

    # ---------------- accelerated path ---------------- #

    def submit(
        self,
        mutator: StructureMutator,
        op: int,
        key: bytes,
        value: int = 0,
        *,
        core_id: int = 0,
        blocking: bool = True,
        result_addr: int = 0,
    ):
        """Issue one mutation through the QUERY port; returns the handle."""
        from .accelerator import QueryRequest

        operand = mutator.stage(op, key, value)
        key_addr = mutator.structure.store_key(key)
        request = QueryRequest(
            header_addr=mutator.header_addr,
            key_addr=key_addr,
            core_id=core_id,
            blocking=blocking,
            result_addr=result_addr,
            op=op,
            operand=operand,
        )
        self.stats.counter("submitted").add()
        return self.system.accelerator.submit(request, self.system.engine.now)

    def run(
        self, mutator: StructureMutator, op: int, key: bytes, value: int = 0
    ) -> Optional[int]:
        """Blocking convenience: accelerate, falling back to software.

        Returns the MUT_* result code, or None when the key was absent
        (UPDATE/DELETE miss).
        """
        handle = self.submit(mutator, op, key, value)
        self.system.accelerator.wait_for(handle)
        from .accelerator import QueryStatus

        if handle.status is QueryStatus.FOUND:
            self.stats.counter("accelerated").add()
            mutator.note_accelerated(
                op,
                handle.value,
                key=key,
                value=value,
                ordinal=handle.commit_version,
                cycle=handle.commit_cycle or self.system.engine.now,
            )
            return handle.value
        if handle.status is QueryStatus.NOT_FOUND:
            self.stats.counter("accelerated").add()
            return None
        return self.fallback(mutator, op, key, value, code=handle.abort_code)

    # ---------------- software path ---------------- #

    def fallback(
        self,
        mutator: StructureMutator,
        op: int,
        key: bytes,
        value: int = 0,
        *,
        code: AbortCode = AbortCode.NONE,
    ) -> Optional[int]:
        """Apply in software, waiting out any live lock holder."""
        self.stats.counter("fallbacks").add()
        if code is not AbortCode.NONE:
            self.stats.counter(f"fallback.{code.name.lower()}").add()
        waits = 0
        while True:
            try:
                result = mutator.software_apply(op, key, value)
                break
            except DataStructureError:
                waits += 1
                if waits > self.MAX_LOCK_WAITS:
                    raise
                self.system.engine.advance(self.LOCK_WAIT_CYCLES)
        self.system.engine.advance(self.SOFTWARE_APPLY_CYCLES)
        return result


# --------------------------------------------------------------------- #
# Online resize (hash table)
# --------------------------------------------------------------------- #


class OnlineResizer:
    """Incremental hash-table doubling under live queries.

    ``start`` publishes the resize descriptor and raises ``FLAG_RESIZING``
    (readers begin routing old-vs-new per bucket); each ``step`` migrates a
    chunk of buckets inside a short seqlock critical section; ``commit``
    reuses the firmware-hot-swap quiesce machinery to drain in-flight
    queries before the header flips to the doubled table.
    """

    def __init__(self, system, table, *, chunk_buckets: int = 8) -> None:
        if chunk_buckets <= 0:
            raise DataStructureError("chunk_buckets must be positive")
        self.system = system
        self.table = table
        self.chunk_buckets = chunk_buckets
        self.lock = SeqLock(system.space, table.header_addr)
        self.stats = system.stats.scoped("resize")
        self.committed = False
        self._started = False

    # ---------------- protocol steps ---------------- #

    def start(self) -> None:
        if self._started:
            raise DataStructureError("resize already started")
        held = self._acquire()
        try:
            self.table.begin_resize()
        finally:
            self.lock.release(held)
        self._started = True
        self.stats.counter("started").add()

    def step(self) -> int:
        """Migrate one chunk; returns buckets migrated (0 when done)."""
        if not self._started or self.finished:
            return 0
        held = self._acquire()
        try:
            moved = self.table.migrate_chunk(self.chunk_buckets)
        finally:
            self.lock.release(held)
        self.stats.counter("buckets_migrated").add(moved)
        return moved

    @property
    def finished(self) -> bool:
        return self._started and self.table.migration_watermark >= (
            self.table.num_buckets
        )

    def commit(self, *, on_complete: Optional[Callable[[], None]] = None) -> None:
        """Quiesce the accelerator, flip the header, restore the homes."""
        if not self.finished:
            raise DataStructureError("cannot commit an unfinished migration")
        if self.committed:
            return
        accelerator = self.system.accelerator
        integration = self.system.integration
        homes = integration.accelerator_homes()
        from .integration import SliceState

        healthy_before = [
            home
            for home in homes
            if integration.home_state(home) is SliceState.HEALTHY
        ]

        def do_commit() -> None:
            held = self._acquire()
            try:
                self.table.adopt_resize()
            finally:
                self.lock.release(held)
            for home in healthy_before:
                if integration.home_state(home) is SliceState.DRAINING:
                    integration.set_home_state(home, SliceState.HEALTHY)
            self.committed = True
            self.stats.counter("committed").add()
            if on_complete is not None:
                on_complete()

        accelerator.quiesce(on_quiesced=do_commit)

    def run_to_completion(self, *, step_cycles: int = 256) -> None:
        """Foreground drive: migrate all chunks, then commit (tests/CLI)."""
        if not self._started:
            self.start()
        while not self.finished:
            self.step()
            self.system.engine.advance(step_cycles)
        self.commit()
        guard = 0
        while not self.committed:
            if not self.system.engine.step():
                raise DataStructureError(
                    "engine drained before the resize quiesce completed"
                )
            guard += 1
            if guard > 10_000_000:
                raise DataStructureError("resize commit did not converge")

    def _acquire(self) -> int:
        waits = 0
        while True:
            held = self.lock.try_acquire(self.system.accelerator)
            if held is not None:
                return held
            waits += 1
            if waits > MutationExecutor.MAX_LOCK_WAITS:
                raise DataStructureError("resize could not acquire the seqlock")
            self.system.engine.advance(MutationExecutor.LOCK_WAIT_CYCLES)


# --------------------------------------------------------------------- #
# Firmware registration
# --------------------------------------------------------------------- #


def mutation_programs() -> List[CfaProgram]:
    return [
        HashTableMutationCfa(),
        SkipListMutationCfa(),
        BPlusTreeMutationCfa(),
    ]


def register_mutation_firmware(image: FirmwareImage, *, replace: bool = False) -> None:
    """Load the write-path programs into ``image``'s mutation table."""
    for program in mutation_programs():
        image.register(program, replace=replace, mutation=True)
