"""Cluster serving tier: ring, membership, failover, chaos contract."""

import json

import pytest

from repro.config import ClusterConfig, ConfigurationError, ServeConfig
from repro.faults.chaos import (
    ChaosError,
    cluster_chaos_schedule,
    recovery_chaos_schedule,
    run_cluster_chaos,
    run_recovery_chaos,
)
from repro.faults.injector import CLUSTER_KINDS, FaultKind, MACHINE_KINDS
from repro.serve.cluster import (
    HashRing,
    Membership,
    NodeState,
    SimulatedCluster,
    key_position,
    stable_hash,
)
from repro.sim.stats import PercentileSketch


# --------------------------------------------------------------------- #
# Consistent-hash ring
# --------------------------------------------------------------------- #


def test_ring_hash_is_stable_across_instances():
    assert stable_hash(b"node:3:vnode:1") == stable_hash(b"node:3:vnode:1")
    a = HashRing(8, vnodes=4)
    b = HashRing(8, vnodes=4)
    pos = key_position(b"some-key")
    assert a.owners(pos, 3) == b.owners(pos, 3)


def test_ring_owners_are_distinct_and_ordered():
    ring = HashRing(10, vnodes=8)
    for key in range(50):
        owners = ring.owners(key_position(str(key).encode()), 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3
        assert all(0 <= n < 10 for n in owners)


def test_ring_filters_unroutable_nodes():
    ring = HashRing(6, vnodes=8)
    routable = {0, 1, 2}
    for key in range(40):
        owners = ring.owners(
            key_position(str(key).encode()), 2, routable=routable
        )
        assert set(owners) <= routable


def test_ring_owner_walk_is_minimal_disruption():
    """Removing one node only remaps keys that node owned; every other
    key keeps its replica group."""
    ring = HashRing(10, vnodes=8)
    removed = 4
    survivors = set(range(10)) - {removed}
    for key in range(200):
        pos = key_position(str(key).encode())
        before = ring.owners(pos, 2)
        after = ring.owners(pos, 2, routable=survivors)
        if removed not in before:
            assert before == after


def test_ring_remapped_share_is_roughly_node_share():
    ring = HashRing(10, vnodes=16)
    share = ring.remapped_share(range(10), set(range(10)) - {3})
    # One node of ten owns ~10% of the ring (vnode variance allowed).
    assert 0.02 < share < 0.30
    assert ring.remapped_share(range(10), range(10)) == 0.0


def test_ring_rejects_degenerate_shapes():
    with pytest.raises(ValueError):
        HashRing(0)
    with pytest.raises(ValueError):
        HashRing(4, vnodes=0)


# --------------------------------------------------------------------- #
# Membership
# --------------------------------------------------------------------- #


def membership_config(**kw):
    defaults = dict(nodes=4, suspect_after=2, down_after=3)
    defaults.update(kw)
    return ClusterConfig(**defaults)


def test_membership_escalates_suspect_then_down():
    m = Membership(membership_config())
    assert m.state_of(1) is NodeState.UP
    m.note_miss(1, now=10)
    assert m.state_of(1) is NodeState.UP
    m.note_miss(1, now=20)
    assert m.state_of(1) is NodeState.SUSPECT
    assert 1 in m.routable()  # SUSPECT still owns its shards
    m.note_miss(1, now=30)
    assert m.state_of(1) is NodeState.DOWN
    assert 1 not in m.routable()
    assert [(r["node"], r["to"]) for r in m.log] == [
        (1, "suspect"),
        (1, "down"),
    ]


def test_membership_ack_recovers_straight_to_up():
    m = Membership(membership_config())
    for now in (10, 20, 30):
        m.note_miss(2, now)
    assert m.state_of(2) is NodeState.DOWN
    m.note_ack(2, now=40)
    assert m.state_of(2) is NodeState.UP
    assert 2 in m.up_nodes()


def test_membership_change_hook_fires_on_transitions():
    seen = []
    m = Membership(
        membership_config(),
        on_change=lambda node, frm, to: seen.append((node, frm, to)),
    )
    m.note_miss(0, 1)
    m.note_miss(0, 2)
    m.note_miss(0, 3)
    m.note_ack(0, 4)
    assert seen == [
        (0, NodeState.UP, NodeState.SUSPECT),
        (0, NodeState.SUSPECT, NodeState.DOWN),
        (0, NodeState.DOWN, NodeState.UP),
    ]


# --------------------------------------------------------------------- #
# Cluster config validation + fault taxonomy
# --------------------------------------------------------------------- #


def test_cluster_config_validates():
    with pytest.raises(ConfigurationError):
        ClusterConfig(nodes=0)
    with pytest.raises(ConfigurationError):
        ClusterConfig(replication=0)
    with pytest.raises(ConfigurationError):
        ClusterConfig(replication=5, nodes=4)
    with pytest.raises(ConfigurationError):
        ClusterConfig(availability_floor=1.5)


def test_cluster_fault_kinds_registered():
    assert FaultKind.NODE_KILL in CLUSTER_KINDS
    assert FaultKind.NODE_FLAP in CLUSTER_KINDS
    assert FaultKind.NET_PARTITION in CLUSTER_KINDS
    # Cluster kinds are not machine kinds: single-machine campaigns must
    # never sample them.
    assert not (CLUSTER_KINDS & MACHINE_KINDS)


def test_cluster_chaos_schedule_spreads_victims():
    events = cluster_chaos_schedule(10, 400)
    actions = [e.action for e in events]
    assert actions == [
        "node-kill",
        "node-flap",
        "node-recover",
        "net-partition",
        "net-heal",
    ]
    kill = events[0].nodes[0]
    flap = events[1].nodes[0]
    assert kill != flap
    assert flap not in events[3].nodes
    assert [e.trigger for e in events] == sorted(e.trigger for e in events)
    with pytest.raises(ChaosError):
        cluster_chaos_schedule(3, 400)


# --------------------------------------------------------------------- #
# Cluster end-to-end
# --------------------------------------------------------------------- #


def small_cluster(**kw):
    cfg = dict(
        nodes=4,
        replication=2,
        probe_interval_cycles=1024,
        probe_timeout_cycles=256,
        request_timeout_cycles=8192,
        timeout_embargo_cycles=2048,
    )
    cfg.update(kw.pop("cluster", {}))
    return SimulatedCluster(
        "cha-tlb",
        cluster_config=ClusterConfig(**cfg),
        seed=kw.pop("seed", 7),
        requests=kw.pop("requests", 80),
        **kw,
    )


def test_cluster_fault_free_run_completes_everything():
    cluster = small_cluster()
    report = cluster.run()
    assert report.fleet["completed"] == cluster.requests
    assert report.fleet["failed"] == 0
    assert report.fleet["result_errors"] == 0
    assert report.fleet["availability"] == 1.0
    # Every node should have seen traffic (4 nodes, R=2, hashed keys).
    assert all(row["received"] > 0 for row in report.node_rows)


def test_cluster_node_kill_fails_over_without_wrong_results():
    cluster = small_cluster(requests=160)
    fired = []

    def on_tick(cl):
        if cl.slo.terminal >= 30 and not fired:
            fired.append(True)
            cl.fail_node(0)
            cl.slo.begin_phase("kill", cl.engine.now)

    report = cluster.run(on_tick=on_tick)
    assert fired
    assert report.fleet["result_errors"] == 0
    assert report.fleet["completed"] + report.fleet["failed"] == (
        report.fleet["issued"]
    )
    # The kill must actually have been routed around, not ignored.
    assert report.fleet["timeouts"] > 0
    assert report.fleet["retries"] > 0
    dead_row = report.node_rows[0]
    assert dead_row["alive"] is False
    assert dead_row["dropped_dead"] >= 0


def test_cluster_partition_marks_down_and_rebalances():
    cluster = small_cluster(requests=240)
    fired = []

    def on_tick(cl):
        t = cl.slo.terminal
        if t >= 30 and "p" not in fired:
            fired.append("p")
            cl.partition({2, 3})
            cl.slo.begin_phase("partition", cl.engine.now)
        if t >= 150 and "h" not in fired:
            fired.append("h")
            cl.heal()
            cl.slo.begin_phase("heal", cl.engine.now)

    report = cluster.run(on_tick=on_tick)
    assert fired == ["p", "h"]
    assert report.fleet["result_errors"] == 0
    downs = [
        row for row in report.membership_log if row["to"] == "down"
    ]
    assert {row["node"] for row in downs} == {2, 3}
    recoveries = [
        row
        for row in report.membership_log
        if row["from"] == "down" and row["to"] == "up"
    ]
    assert {row["node"] for row in recoveries} == {2, 3}
    # Each DOWN/UP transition recorded its remapped ring share.
    assert len(report.rebalances) == len(downs) + len(recoveries)
    assert all(0.0 < r["remapped_share"] < 1.0 for r in report.rebalances)


def test_cluster_retry_after_propagates_to_clients():
    """A saturated node's Admission retry-after must climb the stack: node
    frontend -> rejected response -> LB embargo -> client back-off."""
    serve = ServeConfig(
        tenants=2,
        queue_depth=1,
        concurrency=16,
        think_cycles=1,
        max_in_flight=2,
    )
    cluster = small_cluster(
        requests=160,
        serve_config=serve,
        cluster={
            "nodes": 4,
            "replication": 1,  # no failover: backpressure must surface
            "probe_interval_cycles": 1024,
            "probe_timeout_cycles": 256,
            "request_timeout_cycles": 8192,
            "timeout_embargo_cycles": 2048,
        },
    )
    report = cluster.run()
    assert report.fleet["result_errors"] == 0
    # Node-level rejections travelled up...
    assert report.fleet["node_rejections"] > 0
    # ...and with R=1 both replicas-of-one embargoed => client rejections.
    assert report.fleet["rejected"] > 0
    # Clients retried against the hint rather than losing the requests.
    assert report.fleet["completed"] + report.fleet["failed"] + (
        report.fleet["giveups"]
    ) == cluster.requests


def test_cluster_fleet_slo_equals_merge_of_node_sketches():
    """Acceptance criterion: the fleet per-tenant service SLO is exactly
    the mergeable-sketch union of every node's per-tenant sketch."""
    cluster = small_cluster(requests=120)
    report = cluster.run()
    for tenant in range(cluster.serve_config.tenants):
        oracle = PercentileSketch("oracle")
        for node in cluster.nodes:
            oracle.merge(node.server.slo.sketch_of(tenant))
        fleet = cluster.merged_service_sketch(tenant)
        assert fleet.to_dict()["buckets"] == oracle.to_dict()["buckets"]
        assert fleet.count == oracle.count
        for pct in (50.0, 95.0, 99.0):
            assert fleet.quantile(pct) == oracle.quantile(pct)
        row = report.tenants[tenant]
        assert row["service_p50"] == oracle.p50
        assert row["service_p99"] == oracle.p99
        assert row["service_count"] == oracle.count


def test_cluster_same_seed_reports_are_byte_identical():
    def one():
        cluster = small_cluster(requests=120)
        fired = []

        def on_tick(cl):
            if cl.slo.terminal >= 30 and not fired:
                fired.append(True)
                cl.fail_node(1)
                cl.slo.begin_phase("kill", cl.engine.now)

        return cluster.run(on_tick=on_tick).dump()

    first, second = one(), one()
    assert first == second
    json.loads(first)  # canonical JSON, parseable


def test_cluster_seed_changes_the_run():
    a = small_cluster(seed=7, requests=80).run().dump()
    b = small_cluster(seed=8, requests=80).run().dump()
    assert a != b


# --------------------------------------------------------------------- #
# The cluster-chaos harness
# --------------------------------------------------------------------- #


def test_cluster_chaos_contract_small_fleet():
    report = run_cluster_chaos(
        "cha-tlb", seed=7, requests=160, nodes=4, replication=2
    )
    checks = report.checks
    assert checks["result_errors"] == 0
    assert checks["terminal"] == checks["budget"]
    assert checks["issued_resolved"]
    assert checks["min_phase_availability"] >= checks["availability_floor"]
    assert checks["node_kills"] == 2
    assert checks["partitions"] == 1
    assert all(e["fired_cycle"] is not None for e in report.events)


def test_cluster_chaos_is_deterministic():
    kwargs = dict(seed=11, requests=160, nodes=4, replication=2)
    assert (
        run_cluster_chaos("cha-tlb", **kwargs).dump()
        == run_cluster_chaos("cha-tlb", **kwargs).dump()
    )


def test_cluster_chaos_ten_nodes_full_lifecycle():
    """The ISSUE acceptance scenario: >=10 nodes, kills + flap + partition,
    zero wrong results, zero hangs, availability floor in every phase, and
    victims walked through the DOWN state."""
    report = run_cluster_chaos(
        "cha-tlb", seed=7, requests=400, nodes=10, replication=2
    )
    checks = report.checks
    assert checks["result_errors"] == 0
    assert checks["terminal"] == checks["budget"] == 400
    assert checks["min_phase_availability"] >= checks["availability_floor"]
    log = report.cluster["membership_log"]
    assert any(row["to"] == "down" for row in log)
    assert any(
        row["from"] == "down" and row["to"] == "up" for row in log
    )
    assert len(report.cluster["phases"]) == 6  # baseline + 5 events


# --------------------------------------------------------------------- #
# The recovery-chaos harness (docs/recovery.md)
# --------------------------------------------------------------------- #


def test_recovery_chaos_zero_lost_acked_writes():
    """The ISSUE acceptance scenario: a primary killed mid 50/50 mix at
    quorum W=2 loses zero acknowledged writes, a node recovering off a
    truncated log detects the ordinal gap and full-resyncs, the per-key
    history is linearizable, and the fleet ends converged and all-UP."""
    report = run_recovery_chaos("cha-tlb", seed=7, requests=200, nodes=4)
    checks = report.checks
    assert checks["result_errors"] == 0
    assert checks["terminal"] == checks["budget"] == 200
    assert checks["history_linearizable"]
    assert checks["history_violations"] == []
    assert checks["lost_acked_writes"] == []
    assert checks["diverged_keys"] == []
    assert checks["write_problems"] == []
    assert checks["replication_settled"]
    assert checks["recoveries"] == checks["node_kills"] == 2
    assert checks["gaps_detected"] >= 1  # the LOG_TRUNCATE victim
    assert checks["resyncs"] >= 1
    assert checks["all_nodes_up"]
    assert checks["min_phase_availability"] >= checks["availability_floor"]


def test_recovery_chaos_is_deterministic():
    kwargs = dict(seed=11, requests=200, nodes=4)
    assert (
        run_recovery_chaos("cha-tlb", **kwargs).dump()
        == run_recovery_chaos("cha-tlb", **kwargs).dump()
    )


def test_recovery_chaos_schedule_needs_a_quorum_of_nodes():
    with pytest.raises(ChaosError):
        recovery_chaos_schedule(3, 200)


def test_recovery_chaos_quorum_one_loses_only_the_truncated_suffix():
    # W=1 releases the ok on the primary's local append alone, so the
    # log-truncation drill can destroy the only durable copy of a write
    # before it ever ships (the crash wipes the volatile outbound queue;
    # catch-up re-ships from the WAL, which the truncation just ate).
    # That loss is the quorum trade-off, not a bug — the same seed and
    # schedule at the default W=2 lose nothing (the zero-loss test above
    # covers seed 7; seed 23 at W=2 is clean too).  What W=1 still owes:
    # the checker *reports* every lost write (no silent loss), every
    # stale read traces to a lost key, and the fleet converges.
    report = run_recovery_chaos(
        "cha-tlb", seed=23, requests=200, nodes=4, quorum=1, verify=False
    )
    checks = report.checks
    assert checks["write_quorum"] == 1
    assert checks["lost_acked_writes"] != []  # truncation really bites
    assert set(checks["history_violations"]) <= set(
        checks["lost_acked_writes"]
    )
    assert checks["diverged_keys"] == []  # replicas agree, if on the past
    assert checks["gaps_detected"] >= 1
    assert checks["replication_settled"]
    assert checks["all_nodes_up"]
    assert checks["terminal"] == checks["budget"] == 200
