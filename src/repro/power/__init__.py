"""Area, static-power and dynamic-energy models (paper Sec. VI-A, VII-D).

The paper evaluates cost with McPAT and CACTI "in an incremental way":
baseline CPU, plus QEI components, difference reported.  We implement the
same methodology analytically: :mod:`cacti` provides SRAM/CAM/logic area and
leakage primitives at 22nm whose constants are calibrated against the
paper's published McPAT/CACTI outputs (Tab. III); :mod:`mcpat` aggregates
components into configurations; :mod:`qei_cost` builds the three evaluated
configurations (QEI-10, QEI-10+TLB, QEI-240) and the per-query dynamic
energy model behind Fig. 12.
"""

from .cacti import CAM_MM2_PER_ENTRY, SramMacro, logic_block
from .mcpat import ComponentCost, Configuration
from .qei_cost import (
    DynamicEnergyModel,
    qei_configuration,
    tab3_configurations,
)

__all__ = [
    "CAM_MM2_PER_ENTRY",
    "ComponentCost",
    "Configuration",
    "DynamicEnergyModel",
    "SramMacro",
    "logic_block",
    "qei_configuration",
    "tab3_configurations",
]
