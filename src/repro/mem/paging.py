"""Virtual memory: page tables and per-process address spaces.

The paper's central integration argument is that queried data structures
"seldom reside in a contiguous memory address space" larger than a 4KB page,
so an accelerator *must* translate addresses (Sec. I, Sec. V).  We therefore
model real 4KB paging: each process owns a page table mapping virtual page
numbers to physical frames, and the :class:`~repro.mem.allocator`
deliberately scatters physically-backed pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..config import PAGE_BYTES
from ..errors import ProtectionFault, SegmentationFault, SimulationError
from .physical import PhysicalMemory

MASK64 = (1 << 64) - 1


@dataclass
class PageTableEntry:
    """One VPN -> PFN mapping with permissions."""

    frame_number: int
    readable: bool = True
    writable: bool = True

    def permits(self, access: str) -> bool:
        if access == "r":
            return self.readable
        if access == "w":
            return self.writable
        raise SimulationError(f"unknown access kind {access!r}")


class PageTable:
    """A flat VPN -> PTE map (a radix walk is modelled by the MMU's cost)."""

    def __init__(self, page_bytes: int = PAGE_BYTES) -> None:
        self.page_bytes = page_bytes
        self._entries: Dict[int, PageTableEntry] = {}

    def map(self, vpn: int, frame_number: int, *, writable: bool = True) -> None:
        if vpn in self._entries:
            raise SimulationError(f"VPN 0x{vpn:x} is already mapped")
        self._entries[vpn] = PageTableEntry(frame_number, writable=writable)

    def unmap(self, vpn: int) -> PageTableEntry:
        try:
            return self._entries.pop(vpn)
        except KeyError as exc:
            raise SegmentationFault(
                vpn * self.page_bytes, f"unmap of unmapped VPN 0x{vpn:x}"
            ) from exc

    def lookup(self, vpn: int) -> Optional[PageTableEntry]:
        return self._entries.get(vpn)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[int, PageTableEntry]]:
        return iter(sorted(self._entries.items()))


class AddressSpace:
    """One process's virtual address space over shared physical memory.

    Functional translation only; timing (TLB hits, page-walk cycles) is the
    MMU's job.  The zero page is never mapped so a NULL pointer dereference
    raises :class:`SegmentationFault` — which the QEI accelerator surfaces as
    its architectural EXCEPTION state.
    """

    #: 2MB huge pages (x86 PDE mappings).
    HUGE_PAGE_BYTES = 2 * 1024 * 1024
    #: Tag added to huge-page numbers so TLB keys never collide with VPNs.
    HUGE_KEY_BASE = 1 << 40

    def __init__(
        self, physical: PhysicalMemory, *, asid: int = 0, page_bytes: int = PAGE_BYTES
    ) -> None:
        self.physical = physical
        self.asid = asid
        self.page_bytes = page_bytes
        #: Shift/mask forms of the page geometry for the u64 fast paths
        #: (page sizes are powers of two; the constructor enforces it).
        if page_bytes & (page_bytes - 1):
            raise SimulationError(f"page_bytes must be a power of two, got {page_bytes}")
        self._page_shift = page_bytes.bit_length() - 1
        self._page_mask = page_bytes - 1
        self._u64_limit = page_bytes - 8
        self._u128_limit = page_bytes - 16
        self.page_table = PageTable(page_bytes)
        #: huge-page number -> base frame of a physically contiguous run.
        self._huge_pages: Dict[int, int] = {}
        #: (vpn, access) -> (tlb_key, base_paddr, span) memo for the pure
        #: functional walk.  Invalidated wholesale on any mapping mutation
        #: (map/unmap/restore); faulting lookups are never cached so
        #: segfault/protection semantics are unchanged.
        self._walk_memo: Dict[Tuple[int, str], Tuple[int, int, int]] = {}
        #: vpn -> (frame bytearray, page base offset) direct-access memos for
        #: the u64 fast paths, split by permission.  The bytearray is the
        #: live backing store (mutated in place by all writers), so a memo
        #: hit needs no translation at all.  Cleared with ``_walk_memo``.
        self._frame_memo_r: Dict[int, Tuple[bytearray, int]] = {}
        self._frame_memo_w: Dict[int, Tuple[bytearray, int]] = {}

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #

    def map_page(self, vaddr: int, *, writable: bool = True) -> int:
        """Back the page containing ``vaddr`` with a fresh physical frame."""
        if vaddr % self.page_bytes:
            raise SimulationError(f"map_page needs page-aligned vaddr, got 0x{vaddr:x}")
        vpn = vaddr // self.page_bytes
        if vpn == 0:
            raise SimulationError("refusing to map the zero page")
        frame = self.physical.allocate_frame()
        self.page_table.map(vpn, frame, writable=writable)
        self._walk_memo.clear()
        self._frame_memo_r.clear()
        self._frame_memo_w.clear()
        return frame

    def map_huge_page(self, vaddr: int) -> int:
        """Back a 2MB-aligned region with physically contiguous frames.

        One TLB entry covers the whole region — the assumption prior work
        (HALO) builds on, and the paper argues is fragile under
        fragmentation (Sec. II-B challenge 3).  Returns the base frame.
        """
        if vaddr % self.HUGE_PAGE_BYTES:
            raise SimulationError(
                f"huge pages must be 2MB aligned, got 0x{vaddr:x}"
            )
        hpn = vaddr // self.HUGE_PAGE_BYTES
        if hpn in self._huge_pages:
            raise SimulationError(f"huge page 0x{vaddr:x} is already mapped")
        frames = self.HUGE_PAGE_BYTES // self.page_bytes
        base_frame = self.physical.allocate_contiguous(frames)
        self._huge_pages[hpn] = base_frame
        self._walk_memo.clear()
        self._frame_memo_r.clear()
        self._frame_memo_w.clear()
        return base_frame

    def unmap_page(self, vaddr: int, *, free_frame: bool = True) -> PageTableEntry:
        """Drop the mapping for ``vaddr``'s page; returns the removed PTE.

        ``free_frame=False`` keeps the physical frame (contents intact) so
        the page can later be re-established with :meth:`restore_page` —
        the fault injector's unmap-mid-walk / OS-repair hook.
        """
        vpn = vaddr // self.page_bytes
        entry = self.page_table.unmap(vpn)
        self._walk_memo.clear()
        self._frame_memo_r.clear()
        self._frame_memo_w.clear()
        if free_frame:
            self.physical.free_frame(entry.frame_number)
        return entry

    def restore_page(self, vaddr: int, entry: PageTableEntry) -> None:
        """Re-establish a mapping removed with ``unmap_page(free_frame=False)``."""
        self.page_table.map(
            vaddr // self.page_bytes, entry.frame_number, writable=entry.writable
        )
        self._walk_memo.clear()
        self._frame_memo_r.clear()
        self._frame_memo_w.clear()

    def is_mapped(self, vaddr: int) -> bool:
        if vaddr // self.HUGE_PAGE_BYTES in self._huge_pages:
            return True
        return self.page_table.lookup(vaddr // self.page_bytes) is not None

    def translation_entry(self, vaddr: int, access: str = "r"):
        """(tlb_key, base_paddr, span) for the page covering ``vaddr``.

        Huge pages return one entry spanning 2MB (a single TLB slot covers
        the whole region); small pages return per-4KB entries.  Successful
        walks are memoized per (vpn, access) — the result is a pure function
        of the mapping state, which invalidates the memo when it changes.
        """
        memo_key = (vaddr // self.page_bytes, access)
        cached = self._walk_memo.get(memo_key)
        if cached is not None:
            return cached
        if vaddr < 0:
            raise SegmentationFault(vaddr)
        hpn = vaddr // self.HUGE_PAGE_BYTES
        base_frame = self._huge_pages.get(hpn)
        if base_frame is not None:
            result = (
                self.HUGE_KEY_BASE + hpn,
                base_frame * self.page_bytes,
                self.HUGE_PAGE_BYTES,
            )
            self._walk_memo[memo_key] = result
            return result
        vpn = memo_key[0]
        entry = self.page_table.lookup(vpn)
        if entry is None:
            raise SegmentationFault(vaddr)
        if not entry.permits(access):
            raise ProtectionFault(vaddr, access)
        result = (vpn, entry.frame_number * self.page_bytes, self.page_bytes)
        self._walk_memo[memo_key] = result
        return result

    def translate(self, vaddr: int, access: str = "r") -> int:
        """Virtual -> physical, raising simulated faults on bad accesses."""
        cached = self._walk_memo.get((vaddr // self.page_bytes, access))
        if cached is not None:
            return cached[1] + vaddr % cached[2]
        _, base_paddr, span = self.translation_entry(vaddr, access)
        return base_paddr + vaddr % span

    # ------------------------------------------------------------------ #
    # Byte access (virtual addresses); splits at page boundaries
    # ------------------------------------------------------------------ #

    def read(self, vaddr: int, length: int) -> bytes:
        # Fast path: the access stays inside one page (the overwhelmingly
        # common case for the fixed-width accessors below).
        if 0 < length and vaddr % self.page_bytes + length <= self.page_bytes:
            return self.physical.read(self.translate(vaddr, "r"), length)
        out = bytearray()
        addr, remaining = vaddr, length
        while remaining:
            offset = addr % self.page_bytes
            chunk = min(remaining, self.page_bytes - offset)
            out += self.physical.read(self.translate(addr, "r"), chunk)
            addr += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, vaddr: int, data: bytes) -> None:
        if data and vaddr % self.page_bytes + len(data) <= self.page_bytes:
            self.physical.write(self.translate(vaddr, "w"), data)
            return
        addr = vaddr
        view = memoryview(data)
        while view:
            offset = addr % self.page_bytes
            chunk = min(len(view), self.page_bytes - offset)
            self.physical.write(self.translate(addr, "w"), bytes(view[:chunk]))
            addr += chunk
            view = view[chunk:]

    # Convenience fixed-width accessors (little-endian, like x86).
    #
    # ``read_u64``/``write_u64`` are the simulator's single hottest calls
    # (every slot/pointer/signature fetch in every data structure), so they
    # fuse the memoized walk with direct frame access instead of stacking
    # read() -> translate() -> PhysicalMemory.read().  The fast path only
    # fires for an in-page access whose walk is already memoized; everything
    # else (page-crossers, first touches, faults) takes the general path.

    def read_u64(self, vaddr: int) -> int:
        offset = vaddr & self._page_mask
        vpn = vaddr >> self._page_shift
        entry = self._frame_memo_r.get(vpn)
        if entry is not None and offset <= self._u64_limit:
            base = entry[1] + offset
            return int.from_bytes(entry[0][base : base + 8], "little")
        value = int.from_bytes(self.read(vaddr, 8), "little")
        if offset <= self._u64_limit:
            self._memoize_frame(vpn, "r", self._frame_memo_r)
        return value

    def read_2u64(self, vaddr: int) -> Tuple[int, int]:
        """Two consecutive u64s in one access (hot for 16-byte slots)."""
        offset = vaddr & self._page_mask
        entry = self._frame_memo_r.get(vaddr >> self._page_shift)
        if entry is not None and offset <= self._u128_limit:
            base = entry[1] + offset
            word = int.from_bytes(entry[0][base : base + 16], "little")
            return word & MASK64, word >> 64
        return self.read_u64(vaddr), self.read_u64(vaddr + 8)

    def write_u64(self, vaddr: int, value: int) -> None:
        offset = vaddr & self._page_mask
        vpn = vaddr >> self._page_shift
        entry = self._frame_memo_w.get(vpn)
        if entry is not None and offset <= self._u64_limit:
            base = entry[1] + offset
            entry[0][base : base + 8] = (value & MASK64).to_bytes(8, "little")
            return
        self.write(vaddr, (value & MASK64).to_bytes(8, "little"))
        if offset <= self._u64_limit:
            self._memoize_frame(vpn, "w", self._frame_memo_w)

    def _memoize_frame(self, vpn: int, access: str, memo: Dict[int, Tuple[bytearray, int]]) -> None:
        """Remember the live frame backing ``vpn`` for direct u64 access.

        Only pages that map wholly onto one physical frame qualify (always
        true for the standard 4KB page == 4KB frame configuration, including
        pages inside a huge-page run, whose sub-pages are frame-aligned).
        """
        physical = self.physical
        if self.page_bytes != physical.frame_bytes:
            return
        base_paddr = self.translate(vpn * self.page_bytes, access)
        frame_number, base_offset = divmod(base_paddr, physical.frame_bytes)
        if base_offset:
            return
        frame = physical._frames.get(frame_number)
        if frame is None:
            frame = bytearray(physical.frame_bytes)
            physical._frames[frame_number] = frame
        memo[vpn] = (frame, 0)

    def read_u32(self, vaddr: int) -> int:
        return int.from_bytes(self.read(vaddr, 4), "little")

    def write_u32(self, vaddr: int, value: int) -> None:
        self.write(vaddr, (value & (2**32 - 1)).to_bytes(4, "little"))

    def read_u16(self, vaddr: int) -> int:
        return int.from_bytes(self.read(vaddr, 2), "little")

    def write_u16(self, vaddr: int, value: int) -> None:
        self.write(vaddr, (value & 0xFFFF).to_bytes(2, "little"))

    def read_u8(self, vaddr: int) -> int:
        return self.read(vaddr, 1)[0]

    def write_u8(self, vaddr: int, value: int) -> None:
        self.write(vaddr, bytes([value & 0xFF]))
