"""System facade: one simulated machine, ready to run queries.

Builds the full substrate stack (physical memory, process address space,
MMUs, cache hierarchy, mesh NoC, cores) plus the QEI accelerator for a
chosen integration scheme, and exposes the handful of operations the
workloads and experiment drivers need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .config import FallbackConfig, IntegrationScheme, SystemConfig
from .core.abort import AbortCode
from .core.accelerator import QeiAccelerator, QueryHandle, QueryRequest, QueryStatus
from .core.integration import SliceState, build_integration
from .core.isa import QueryPort
from .core.programs import default_firmware
from .cpu.core import CoreResult, OoOCore
from .cpu.trace import Trace
from .datastructs.base import ProcessMemory
from .errors import ConfigurationError, MemoryError_
from .mem.hierarchy import MemoryHierarchy
from .mem.mmu import Mmu
from .noc.mesh import MeshNoc
from .sim.engine import Engine
from .sim.stats import StatsRegistry


@dataclass
class QueryOutcome:
    """Final disposition of one query after the fallback policy ran.

    ``accelerated`` is True when the accelerator produced the result;
    otherwise ``attempts`` software re-executions were made and ``resolved``
    says whether one of them succeeded within the retry budget.
    """

    value: Optional[int]
    accelerated: bool
    abort_code: AbortCode = AbortCode.NONE
    attempts: int = 0
    resolved: bool = True
    completion_cycle: int = 0


@dataclass
class FirmwareUpdate:
    """Ticket for one live firmware update (hot-swap).

    The swap commits only after every accelerator home has quiesced; until
    then queries keep executing against the old table.  ``completed_cycle``
    is set (and ``done`` turns True) at commit time.
    """

    programs: tuple
    requested_cycle: int
    completed_cycle: Optional[int] = None

    @property
    def done(self) -> bool:
        return self.completed_cycle is not None


class FallbackExecutor:
    """Software retry path for aborted queries (graceful degradation).

    The accelerator is the fast path; when it aborts a query — corrupted
    header, broken pointer chain, watchdog, interrupt flush — the runtime
    re-executes the query on the simulated CPU path after an exponential
    backoff in simulated cycles, charging everything to the shared engine
    clock and recording per-abort-code counters plus the fallback fraction.
    """

    def __init__(
        self,
        accelerator: QeiAccelerator,
        config: Optional[FallbackConfig] = None,
        *,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.accelerator = accelerator
        self.engine = accelerator.engine
        self.config = config or FallbackConfig()
        self.stats = (stats or StatsRegistry()).scoped("fallback")
        self._accelerated = self.stats.counter("accelerated")
        self._taken = self.stats.counter("taken")
        self._retries = self.stats.counter("retries")
        self._exhausted = self.stats.counter("exhausted")

    # ------------------------------------------------------------------ #

    def execute(
        self,
        request: QueryRequest,
        software_fn: Callable[[], Optional[int]],
        *,
        before_retry: Optional[Callable[[], None]] = None,
    ) -> QueryOutcome:
        """Run ``request`` on the accelerator, falling back to software.

        ``software_fn`` is the CPU-path re-execution of the same query
        (e.g. :meth:`~repro.workloads.base.QueryWorkload.software_lookup`).
        ``before_retry`` runs once before the first software attempt — the
        hook where a campaign heals injected damage, modelling the OS
        repairing the faulting structure.
        """
        handle = self.accelerator.submit(request, self.engine.now)
        try:
            self.accelerator.wait_for(handle)
        except MemoryError_:
            # A fault escaping the accelerator means the submission path
            # itself touched bad memory; treat it like an aborted query.
            handle.status = QueryStatus.FAULT
            handle.abort_code = AbortCode.FAULT
        if handle.status in (QueryStatus.FOUND, QueryStatus.NOT_FOUND):
            self._accelerated.add()
            return QueryOutcome(
                value=handle.value,
                accelerated=True,
                completion_cycle=handle.completion_cycle or self.engine.now,
            )
        return self.run_software(
            software_fn, abort_code=handle.abort_code, before_retry=before_retry
        )

    def run_software(
        self,
        software_fn: Callable[[], Optional[int]],
        *,
        abort_code: AbortCode = AbortCode.NONE,
        before_retry: Optional[Callable[[], None]] = None,
    ) -> QueryOutcome:
        """The retry loop alone (for queries already known to have aborted)."""
        self._taken.add()
        if abort_code.is_abort:
            self.stats.counter(f"abort.{abort_code.name.lower()}").add()
        if before_retry is not None:
            before_retry()
        wait = self.config.backoff_cycles
        for attempt in range(1, self.config.max_retries + 1):
            self._retries.add()
            self.engine.advance(wait)
            wait *= self.config.backoff_multiplier
            try:
                value = software_fn()
            except MemoryError_:
                continue  # damage not repaired yet; back off and retry
            return QueryOutcome(
                value=value,
                accelerated=False,
                abort_code=abort_code,
                attempts=attempt,
                completion_cycle=self.engine.now,
            )
        self._exhausted.add()
        return QueryOutcome(
            value=None,
            accelerated=False,
            abort_code=abort_code,
            attempts=self.config.max_retries,
            resolved=False,
            completion_cycle=self.engine.now,
        )

    @property
    def fallback_fraction(self) -> float:
        """Fraction of executed queries that needed the software path."""
        return self.stats.fraction("taken", "taken", "accelerated")


class System:
    """A simulated machine: substrates + QEI under one integration scheme."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        scheme: "IntegrationScheme | str" = IntegrationScheme.CORE_INTEGRATED,
        *,
        stats: Optional[StatsRegistry] = None,
        mem: Optional[ProcessMemory] = None,
        engine: Optional[Engine] = None,
    ) -> None:
        self.config = config or SystemConfig()
        self.scheme = IntegrationScheme.parse(scheme)
        self.stats = stats or StatsRegistry()
        # ``engine=`` adopts a shared event clock: the cluster tier
        # (serve/cluster/) runs every node's System on one engine so the
        # whole fleet is a single deterministic discrete-event simulation.
        self.engine = engine if engine is not None else Engine()

        self.noc = MeshNoc(self.config.noc, stats=self.stats)
        # Wiring the NoC object (not just its hooks) lets the hierarchy's
        # epoch-memoized fast path batch send charges (noc/mesh.py).
        self.hierarchy = MemoryHierarchy(self.config, stats=self.stats, noc=self.noc)
        # ``mem=`` adopts an already-populated process memory (frames, page
        # tables, allocator state) — the warm-system snapshot restore path
        # (analysis/snapshot.py).  Caches, TLBs and stats always start cold,
        # exactly as they would after a fresh build.
        self.mem = mem if mem is not None else ProcessMemory(
            physical_bytes=self.config.memory_bytes
        )
        self.space = self.mem.space
        self.core_mmus = [
            Mmu(
                self.space,
                [self.config.core.l1_dtlb, self.config.core.l2_tlb],
                stats=self.stats,
                name=f"core{i}.mmu",
            )
            for i in range(self.config.num_cores)
        ]
        self.cores = [
            OoOCore(
                i, self.config.core, self.hierarchy, self.core_mmus[i],
                stats=self.stats,
            )
            for i in range(self.config.num_cores)
        ]
        self.firmware = default_firmware(max_states=self.config.qei.max_states)
        self.integration = build_integration(
            self.scheme,
            self.config,
            self.hierarchy,
            self.noc,
            self.space,
            self.core_mmus,
            stats=self.stats,
        )
        self.accelerator = QeiAccelerator(
            self.engine,
            self.firmware,
            self.integration,
            self.space,
            qst_entries=self.config.effective_qst_entries(self.scheme),
            stats=self.stats,
            watchdog_steps=self.config.qei.watchdog_steps,
        )
        self.fallback = FallbackExecutor(
            self.accelerator, self.config.fallback, stats=self.stats
        )
        self._mutations = None

    # ------------------------------------------------------------------ #

    def mutations(self):
        """The write-path executor (docs/mutations.md), built on demand.

        Constructed lazily — and with lazily-created counters — so a
        read-only run keeps a byte-identical stats snapshot whether or not
        the mutation subsystem is loaded.
        """
        if self._mutations is None:
            from .core.mutations import MutationExecutor

            self._mutations = MutationExecutor(self)
        return self._mutations

    def enable_mutations(self, *, replace: bool = False) -> None:
        """Register the INSERT/UPDATE/DELETE CFA programs on live firmware.

        Idempotent: programs whose type already has a mutation CFA are left
        alone unless ``replace`` is set.
        """
        from .core.mutations import mutation_programs

        loaded = set(self.firmware.mutation_types())
        for program in mutation_programs():
            if program.TYPE_CODE in loaded and not replace:
                continue
            self.firmware.register(program, replace=replace, mutation=True)

    def start_resize(self, table, *, chunk_buckets: int = 8):
        """An :class:`~repro.core.mutations.OnlineResizer` for ``table``.

        The caller drives ``start()`` / ``step()`` / ``commit()`` (or
        ``run_to_completion()``) while queries keep landing on the
        old-or-new versioned regions.
        """
        from .core.mutations import OnlineResizer

        return OnlineResizer(self, table, chunk_buckets=chunk_buckets)

    def query_port(self, core_id: int = 0) -> QueryPort:
        """A per-core port that QUERY micro-ops resolve through."""
        return QueryPort(self.accelerator, core_id)

    def run_trace(
        self,
        trace: Trace,
        *,
        core_id: int = 0,
        port: Optional[QueryPort] = None,
        start_cycle: Optional[int] = None,
    ) -> CoreResult:
        """Execute one micro-op trace on a core, resolving queries via QEI.

        Successive calls continue from the simulation's current time so the
        accelerator's event clock and the core clock stay aligned.
        """
        start = self.engine.now if start_cycle is None else start_cycle
        resolver = port if port is not None else self.query_port(core_id)
        result = self.cores[core_id].execute(
            trace, start_cycle=start, external=resolver
        )
        # Bring the event clock up to the core's completion point.
        if result.end_cycle > self.engine.now:
            self.engine.run(until=result.end_cycle)
        return result

    def make_server(
        self,
        workload,
        serve_config=None,
        *,
        mode: str = "batched",
        seed: int = 7,
    ):
        """A multi-tenant :class:`~repro.serve.QueryServer` over this machine.

        The server shares this system's engine, accelerator and fallback
        executor, so aborted queries under load follow the exact same
        hardened path the fault campaign validates.
        """
        from .serve import QueryServer

        return QueryServer(
            self, workload, serve_config or self.config.serve,
            mode=mode, seed=seed,
        )

    # ------------------------------------------------------------------ #
    # Infrastructure-fault control surface (slice failover, hot-swap)
    # ------------------------------------------------------------------ #

    def _check_home(self, home: int) -> None:
        homes = self.integration.accelerator_homes()
        if home not in homes:
            raise ConfigurationError(
                f"home {home} is not an accelerator home under "
                f"{self.scheme.value} (homes: {homes})"
            )

    def fail_slice(self, home: int) -> int:
        """Kill one accelerator home: abort its queries, reroute new ones.

        Returns the number of in-flight/queued queries aborted with
        ``SLICE_DOWN`` (each resolves through the software fallback).
        """
        self._check_home(home)
        return self.accelerator.fail_home(home)

    def recover_slice(self, home: int) -> None:
        """Return a failed (or draining) home to the routable set."""
        self._check_home(home)
        self.accelerator.restore_home(home)

    def update_firmware(
        self,
        programs,
        *,
        replace: bool = True,
        on_complete=None,
    ) -> FirmwareUpdate:
        """Live CFA firmware update: validate, quiesce, swap atomically.

        The new ``programs`` are registered on a *staged copy* of the live
        image first — a :class:`~repro.errors.FirmwareError` (bad program,
        state budget, duplicate without ``replace``) raises here and leaves
        the live table untouched (the rollback path).  Every HEALTHY home is
        then marked DRAINING; once all in-flight queries retire the staged
        table is adopted in one step, the drained homes return to HEALTHY,
        and ``on_complete(update)`` fires.  On an idle machine the swap
        commits before this method returns.

        Adoption bumps ``FirmwareImage.epoch``, which invalidates the
        accelerator's compiled-step table (``core/specialize.py``); the
        next accepted query lazily recompiles the swapped-in programs.
        Because the swap only commits after every home quiesces, no
        in-flight query can ever straddle a table rebuild.
        """
        staged = self.firmware.staged_copy()
        for program in programs:
            staged.register(program, replace=replace)
        update = FirmwareUpdate(
            programs=tuple(type(p).__name__ for p in programs),
            requested_cycle=self.engine.now,
        )
        integration = self.integration
        drained = [
            home
            for home in integration.accelerator_homes()
            if integration.home_state(home) is SliceState.HEALTHY
        ]

        def commit() -> None:
            self.firmware.adopt(staged)
            for home in drained:
                integration.set_home_state(home, SliceState.HEALTHY)
            update.completed_cycle = self.engine.now
            self.stats.scoped("qei").counter("firmware.swaps").add()
            if on_complete is not None:
                on_complete(update)

        self.accelerator.quiesce(on_quiesced=commit)
        return update

    # ------------------------------------------------------------------ #

    def warm_llc(self) -> None:
        """Install every mapped line into the LLC (steady-state start).

        The paper evaluates ROIs inside running benchmarks ("we generate
        queries as quickly and densely as possible"), so query data is
        LLC-resident at measurement time.  This fills LLC slices directly —
        private caches and TLBs stay cold and warm organically during the
        run, for both the software baseline and QEI.
        """
        page = self.space.page_bytes
        lines_per_page = page // 64
        pairs = []
        for vpn, entry in self.space.page_table:
            pairs.append((vpn, entry.frame_number * page))
            base_line = entry.frame_number * lines_per_page
            for i in range(lines_per_page):
                line = base_line + i
                self.hierarchy.llc_slices[self.hierarchy.slice_of(line)].fill(line)
        huge = self.space.HUGE_PAGE_BYTES
        for hpn, base_frame in getattr(self.space, "_huge_pages", {}).items():
            pairs.append((self.space.HUGE_KEY_BASE + hpn, base_frame * page))
            base_line = base_frame * lines_per_page
            for i in range(huge // 64):
                line = base_line + i
                self.hierarchy.llc_slices[self.hierarchy.slice_of(line)].fill(line)
        self.integration.warm_translations(pairs)

    def flush_caches(self) -> None:
        """Cold-start the memory system (between experiment phases)."""
        self.hierarchy.flush_all()
        for mmu in self.core_mmus:
            mmu.flush()
        self.integration.flush_translations()

    def warm_structure(self, paddr_lines: list, core_id: int = 0) -> None:
        self.hierarchy.warm_lines(core_id, paddr_lines)
