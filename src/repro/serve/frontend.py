"""Multi-tenant request frontend: bounded admission queues + backpressure.

The frontend is the first stop on the serving path: every tenant gets a
bounded FIFO admission queue, and arrivals that find their queue full are
rejected with a *retry-after* hint instead of being buffered without bound.
Because the dispatcher only drains queues while the accelerator has QST
capacity, a saturated QST propagates backpressure naturally: queues fill,
then new arrivals bounce.  A ``saturated`` hook lets the server (or a test)
additionally shed load on a global signal.

Admitted requests leave through :meth:`Frontend.next_request`, which scans
tenant queues round-robin so one hot tenant cannot starve the others.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from ..config import ServeConfig
from ..sim.stats import StatsRegistry


@dataclass
class ServeRequest:
    """One tenant request travelling through the serving tier."""

    tenant: int
    #: Which query of the workload's stream this request executes.
    index: int
    request_id: int
    #: Cycle the request was generated (latency is measured from here,
    #: so queueing, batching and fallback delays all count against the SLO).
    arrival_cycle: int
    attempts: int = 1
    admit_cycle: Optional[int] = None
    dispatch_cycle: Optional[int] = None
    #: Absolute cycle after which the request is shed instead of dispatched
    #: (set at admission from ``ServeConfig.deadline_cycles``; None = no
    #: deadline).  Admission retries eat into the same budget.
    deadline_cycle: Optional[int] = None
    #: Terminal-outcome guard: set by the first completion/shed so a hedged
    #: twin finishing later cannot resolve the request twice.
    resolved: bool = False
    #: Whether a hedged duplicate was submitted for this request.
    hedged: bool = False
    #: Terminal disposition ("ok", "failed", or "shed"), set at resolution.
    #: The cluster tier reads it to build the node's response to the LB.
    outcome: Optional[str] = None
    #: The query's result value when ``outcome`` is "ok".
    result_value: Optional[int] = None
    #: Operation code (:data:`~repro.core.cfa.OP_LOOKUP` by default; write
    #: ops route through the mutation CFAs, docs/mutations.md).
    op: int = 0
    #: Write payload: the new value for UPDATE/INSERT (ignored for reads).
    value: int = 0
    #: Seqlock commit ordinal of a published write, set at resolution.  The
    #: cluster tier keys quorum acks and commit-log replication off it
    #: (docs/recovery.md); None for reads and write misses.
    commit_seq: Optional[int] = None

    @property
    def is_write(self) -> bool:
        return self.op != 0


@dataclass(frozen=True)
class Admission:
    """The frontend's verdict on one arrival."""

    admitted: bool
    #: Cycles the client should wait before re-offering (rejections only).
    retry_after: int = 0


class Frontend:
    """Per-tenant bounded admission queues with round-robin drain."""

    #: Extra retry-after cycles charged per request already queued, so the
    #: hint grows with the backlog the rejected client would join.
    RETRY_BACKLOG_CYCLES = 8

    def __init__(
        self,
        config: ServeConfig,
        *,
        stats: Optional[StatsRegistry] = None,
        saturated: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.config = config
        self.stats = (stats or StatsRegistry()).scoped("serve.frontend")
        self._queues: List[Deque[ServeRequest]] = [
            deque() for _ in range(config.tenants)
        ]
        self._rr = 0
        self._saturated = saturated or (lambda: False)
        self._offered = self.stats.counter("offered")
        self._admitted = self.stats.counter("admitted")
        self._rejected = self.stats.counter("rejected")
        self._queue_delay = self.stats.sketch("queue.delay")

    # ------------------------------------------------------------------ #

    def offer(self, request: ServeRequest, now: int) -> Admission:
        """Admit ``request`` or reject it with a retry-after hint."""
        self._offered.add()
        queue = self._queues[request.tenant]
        if len(queue) >= self.config.queue_depth or self._saturated():
            self._rejected.add()
            self.stats.counter(f"tenant{request.tenant}.rejected").add()
            retry_after = (
                self.config.retry_after_cycles
                + self.RETRY_BACKLOG_CYCLES * len(queue)
            )
            return Admission(False, retry_after)
        request.admit_cycle = now
        queue.append(request)
        self._admitted.add()
        return Admission(True)

    def next_request(self, now: int) -> Optional[ServeRequest]:
        """Pop the next admitted request, round-robin across tenants."""
        tenants = len(self._queues)
        for offset in range(tenants):
            queue = self._queues[(self._rr + offset) % tenants]
            if queue:
                self._rr = (self._rr + offset + 1) % tenants
                request = queue.popleft()
                assert request.admit_cycle is not None
                self._queue_delay.record(now - request.admit_cycle)
                return request
        return None

    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        """Requests admitted but not yet dispatched."""
        return sum(len(queue) for queue in self._queues)

    def queue_depth_of(self, tenant: int) -> int:
        return len(self._queues[tenant])
