"""Tests for QUERY instruction semantics and the core<->QEI co-simulation."""

import pytest

from repro import small_config
from repro.core.accelerator import QueryStatus
from repro.core.isa import CompletionPromise, NbBatch, QueryOperands, QueryPort
from repro.cpu import TraceBuilder
from repro.datastructs import CuckooHashTable
from repro.errors import AcceleratorError
from repro.system import System


@pytest.fixture
def setup():
    system = System(small_config())
    table = CuckooHashTable(system.mem, key_length=16, num_buckets=128)
    keys = [(b"k%d" % i).ljust(16, b"_") for i in range(64)]
    for i, key in enumerate(keys):
        table.insert(key, 500 + i)
    return system, table, keys


def operands(system, table, key, *, result_addr=0):
    return QueryOperands(table.header_addr, table.store_key(key), result_addr)


class TestQueryB:
    def test_result_flows_back_to_register(self, setup):
        system, table, keys = setup
        builder = TraceBuilder()
        q = builder.query_b(operands(system, table, keys[3]))
        builder.alu(deps=(q,))
        port = system.query_port(0)
        system.run_trace(builder.trace, port=port)
        assert port.handles[0].value == 503

    def test_blocking_batch_overlaps(self, setup):
        """Eight batched QUERY_Bs finish much faster than 8x one query."""
        system, table, keys = setup
        builder = TraceBuilder()
        q = builder.query_b(operands(system, table, keys[0]))
        builder.alu(deps=(q,))
        port = system.query_port(0)
        single = system.run_trace(builder.trace, port=port).cycles

        system2 = System(small_config())
        table2 = CuckooHashTable(system2.mem, key_length=16, num_buckets=128)
        for i, key in enumerate(keys):
            table2.insert(key, 500 + i)
        builder = TraceBuilder()
        ops = [builder.query_b(operands(system2, table2, k)) for k in keys[:8]]
        for q in ops:
            builder.alu(deps=(q,))
        port2 = system2.query_port(0)
        batched = system2.run_trace(builder.trace, port=port2).cycles
        assert batched < 8 * single * 0.6

    def test_dependent_query_serializes(self, setup):
        """A query whose issue depends on the previous result must wait."""
        system, table, keys = setup
        builder = TraceBuilder()
        q1 = builder.query_b(operands(system, table, keys[0]))
        gate = builder.alu(deps=(q1,))
        q2 = builder.query_b(operands(system, table, keys[1]), deps=(gate,))
        builder.alu(deps=(q2,))
        port = system.query_port(0)
        system.run_trace(builder.trace, port=port)
        h1, h2 = port.handles
        assert h2.submit_cycle >= h1.completion_cycle


class TestQueryNb:
    def test_results_written_to_memory(self, setup):
        system, table, keys = setup
        base = system.mem.alloc(16 * 4, align=64)
        batch = NbBatch(base)
        builder = TraceBuilder()
        for i, key in enumerate(keys[:4]):
            builder.query_nb(
                (operands(system, table, key, result_addr=base + 16 * i), batch)
            )
        builder.wait_result(batch)
        port = system.query_port(0)
        system.run_trace(builder.trace, port=port)
        for i in range(4):
            assert system.space.read_u64(base + 16 * i) == 1  # FOUND
            assert system.space.read_u64(base + 16 * i + 8) == 500 + i

    def test_nb_requires_result_address(self, setup):
        system, table, keys = setup
        builder = TraceBuilder()
        builder.query_nb((operands(system, table, keys[0]), None))
        with pytest.raises(AcceleratorError):
            system.run_trace(builder.trace, port=system.query_port(0))

    def test_wait_result_counts_poll_instructions(self, setup):
        system, table, keys = setup
        base = system.mem.alloc(16 * 16, align=64)
        batch = NbBatch(base)
        builder = TraceBuilder()
        for i, key in enumerate(keys[:16]):
            builder.query_nb(
                (operands(system, table, key, result_addr=base + 16 * i), batch)
            )
        builder.wait_result(batch)
        port = system.query_port(0)
        result = system.run_trace(builder.trace, port=port)
        # 16 NB ops + 1 wait pseudo-instruction + polling overhead.
        assert result.instructions > 17


class TestPromises:
    def test_promise_resolves_once(self):
        calls = []

        def resolver():
            calls.append(1)
            return 42

        promise = CompletionPromise(resolver)
        assert promise.resolve() == 42
        assert promise.resolve() == 42
        assert len(calls) == 1

    def test_bad_payload_rejected(self, setup):
        system, table, keys = setup
        builder = TraceBuilder()
        builder.query_b(payload="not-operands")
        with pytest.raises(AcceleratorError):
            system.run_trace(builder.trace, port=system.query_port(0))

    def test_wait_result_payload_type_checked(self, setup):
        system, table, keys = setup
        builder = TraceBuilder()
        builder.wait_result(payload=["not-a-batch"])
        with pytest.raises(AcceleratorError):
            system.run_trace(builder.trace, port=system.query_port(0))


class TestPortBookkeeping:
    def test_handles_recorded_in_program_order(self, setup):
        system, table, keys = setup
        builder = TraceBuilder()
        for key in keys[:6]:
            q = builder.query_b(operands(system, table, key))
            builder.alu(deps=(q,))
        port = system.query_port(0)
        system.run_trace(builder.trace, port=port)
        values = [h.value for h in port.handles]
        assert values == [500, 501, 502, 503, 504, 505]
        assert all(h.status is QueryStatus.FOUND for h in port.handles)
