"""Cluster membership: UP/SUSPECT/DOWN health states and the prober.

The load balancer never trusts a node it cannot hear: a :class:`Prober`
heartbeats every node over the same simulated links requests travel, so a
killed node *and* a partitioned link look identical from the LB's side —
missed acks.  Consecutive misses walk a node UP -> SUSPECT -> DOWN
(``suspect_after`` / ``down_after``); one ack walks it straight back to UP.
Every transition is appended to a deterministic membership log, and
UP <-> DOWN transitions fire the rebalance hook so the ring remaps the
node's shards (out on DOWN, back on recovery).

SUSPECT is a routing hint, not a removal: suspect nodes keep their shards
but the LB prefers UP replicas, so one slow probe round does not remap the
key space.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Set

from ...config import ClusterConfig
from ...sim.stats import StatsRegistry


class NodeState(str, enum.Enum):
    UP = "up"
    SUSPECT = "suspect"
    DOWN = "down"
    #: A recovered node replaying peers' commit logs (docs/recovery.md):
    #: alive and probing healthy, but *not* routable — it re-enters the
    #: ring only when caught up, so it can never serve a stale shard.
    CATCHING_UP = "catching-up"


class Membership:
    """The LB's authoritative health table over the node fleet."""

    def __init__(
        self,
        config: ClusterConfig,
        *,
        stats: Optional[StatsRegistry] = None,
        on_change: Optional[Callable[[int, NodeState, NodeState], None]] = None,
    ) -> None:
        self.config = config
        self.stats = (stats or StatsRegistry()).scoped("cluster.membership")
        self._states = [NodeState.UP] * config.nodes
        self._missed = [0] * config.nodes
        #: Nodes with an unfinished log replay: however their probe health
        #: moves, they can rise no higher than CATCHING_UP until the
        #: recovery layer calls :meth:`note_caught_up`.
        self._replaying: Set[int] = set()
        #: Deterministic transition log: one row per state change.
        self.log: List[Dict[str, object]] = []
        self._on_change = on_change
        self._transitions = self.stats.counter("transitions")

    # ------------------------------------------------------------------ #

    def state_of(self, node: int) -> NodeState:
        return self._states[node]

    def routable(self) -> Set[int]:
        """Nodes the ring may own shards on (not DOWN, not catching up)."""
        return {
            node
            for node, state in enumerate(self._states)
            if state not in (NodeState.DOWN, NodeState.CATCHING_UP)
        }

    def up_nodes(self) -> Set[int]:
        return {
            node
            for node, state in enumerate(self._states)
            if state is NodeState.UP
        }

    # ------------------------------------------------------------------ #

    def note_ack(self, node: int, now: int) -> None:
        """A heartbeat ack: reset suspicion, walk the node back to UP.

        A catching-up node stays CATCHING_UP however healthy its probes
        look — only :meth:`note_caught_up` (the replay finishing) promotes
        it, so a fast prober can never route traffic to a stale replica.
        """
        self._missed[node] = 0
        state = self._states[node]
        if node in self._replaying:
            # A partition mid-replay may have walked the node DOWN; healthy
            # probes bring it back to CATCHING_UP, never further.
            if state is not NodeState.CATCHING_UP:
                self._transition(node, NodeState.CATCHING_UP, now)
            return
        if state is not NodeState.UP:
            self._transition(node, NodeState.UP, now)

    def note_miss(self, node: int, now: int) -> None:
        """A probe went unanswered; escalate SUSPECT -> DOWN on repeats."""
        self._missed[node] += 1
        missed = self._missed[node]
        state = self._states[node]
        if state is NodeState.UP and missed >= self.config.suspect_after:
            self._transition(node, NodeState.SUSPECT, now)
        elif (
            state in (NodeState.SUSPECT, NodeState.CATCHING_UP)
            and missed >= self.config.down_after
        ):
            self._transition(node, NodeState.DOWN, now)

    def note_catching_up(self, node: int, now: int) -> None:
        """A recovered node announced log replay (docs/recovery.md)."""
        self._missed[node] = 0
        self._replaying.add(node)
        if self._states[node] is not NodeState.CATCHING_UP:
            self._transition(node, NodeState.CATCHING_UP, now)

    def note_caught_up(self, node: int, now: int) -> None:
        """Replay converged: the node re-enters the ring."""
        self._replaying.discard(node)
        if self._states[node] is NodeState.CATCHING_UP:
            self._missed[node] = 0
            self._transition(node, NodeState.UP, now)

    def _transition(self, node: int, to: NodeState, now: int) -> None:
        frm = self._states[node]
        self._states[node] = to
        self._transitions.add()
        self.log.append(
            {"cycle": now, "node": node, "from": frm.value, "to": to.value}
        )
        if self._on_change is not None:
            self._on_change(node, frm, to)


class Prober:
    """Heartbeat loop: one staggered probe stream per node over the links.

    ``send`` delivers a probe to a node and must eventually invoke the
    given ack callback *iff* the node is alive and the link is healthy in
    both directions; otherwise the probe-timeout fires and the miss is
    charged.  Probes are identified by (node, seq) so a late ack from a
    healed partition can never satisfy a newer probe.
    """

    def __init__(
        self,
        engine,
        config: ClusterConfig,
        membership: Membership,
        send: Callable[[int, Callable[[], None]], None],
    ) -> None:
        self.engine = engine
        self.config = config
        self.membership = membership
        self._send = send
        self._seq = [0] * config.nodes
        self._acked = [True] * config.nodes

    def start(self) -> None:
        # Stagger the fleet one cycle apart so same-cycle probe order never
        # depends on dict/iteration incidentals.
        for node in range(self.config.nodes):
            self.engine.schedule(node + 1, lambda n=node: self._probe(n))

    # ------------------------------------------------------------------ #

    def _probe(self, node: int) -> None:
        self._seq[node] += 1
        seq = self._seq[node]
        self._acked[node] = False
        self._send(node, lambda n=node, s=seq: self._ack(n, s))
        self.engine.schedule(
            self.config.probe_timeout_cycles,
            lambda n=node, s=seq: self._timeout(n, s),
        )
        self.engine.schedule(
            self.config.probe_interval_cycles, lambda n=node: self._probe(n)
        )

    def _ack(self, node: int, seq: int) -> None:
        if seq != self._seq[node]:
            return  # stale ack from an earlier probe round
        self._acked[node] = True
        self.membership.note_ack(node, self.engine.now)

    def _timeout(self, node: int, seq: int) -> None:
        if seq != self._seq[node] or self._acked[node]:
            return
        self.membership.note_miss(node, self.engine.now)
