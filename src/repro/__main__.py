"""Command-line interface: ``python -m repro <experiment> [options]``.

Also installed as the ``qei`` console script.  Regenerates any paper
table/figure, ablation, or serving run from the shell::

    qei list
    qei fig7 --workloads dpdk jvm
    qei tab3
    qei ablation-qst --full
    qei serve --scheme cha-tlb --tenants 4 --requests 20000

Results print as the same fixed-width tables the benchmark harness shows.
Unknown experiment names exit with status 2 and a one-line hint.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .analysis import (
    fig1_profiling,
    fig7_speedup,
    fig8_latency_sweep,
    fig9_end_to_end,
    fig10_tuple_space,
    fig11_instruction_count,
    fig12_dynamic_power,
    tab1_schemes,
    tab2_config,
    tab3_area_power,
)
from .analysis.ablations import (
    batch_size_sweep,
    comparator_placement,
    flush_cost_study,
    huge_page_study,
    micro_tlb_ablation,
    prefetch_sensitivity,
    noc_hotspot_study,
    qst_size_sweep,
)
from .analysis.fault_campaign import fault_campaign
from .analysis.interference import corun_interference
from .analysis.scalability import scalability_study
from .config import IntegrationScheme
from .faults.chaos import chaos_experiment
from .serve import serve_experiment

EXPERIMENTS: Dict[str, Callable] = {
    "fig1": fig1_profiling,
    "fig7": fig7_speedup,
    "fig8": fig8_latency_sweep,
    "fig9": fig9_end_to_end,
    "fig10": fig10_tuple_space,
    "fig11": fig11_instruction_count,
    "fig12": fig12_dynamic_power,
    "tab1": tab1_schemes,
    "tab2": tab2_config,
    "tab3": tab3_area_power,
    "ablation-qst": qst_size_sweep,
    "ablation-comparators": comparator_placement,
    "ablation-noc": noc_hotspot_study,
    "ablation-batch": batch_size_sweep,
    "ablation-microtlb": micro_tlb_ablation,
    "ablation-flush": flush_cost_study,
    "ablation-prefetch": prefetch_sensitivity,
    "ablation-hugepages": huge_page_study,
    "scalability": scalability_study,
    "interference": corun_interference,
    "fault-campaign": fault_campaign,
    "serve": serve_experiment,
    "chaos": chaos_experiment,
}

#: Experiments that accept quick/full and workload filters.
TAKES_QUICK = {
    "fig1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "ablation-qst", "ablation-comparators", "ablation-noc",
    "ablation-batch", "ablation-microtlb", "ablation-prefetch",
    "ablation-hugepages",
    "interference",
}
TAKES_WORKLOADS = {"fig1", "fig7", "fig8", "fig9", "fig11", "fig12", "fault-campaign"}
#: Experiments driven by an explicit seed / fault budget.
TAKES_SEEDED = {"fault-campaign"}
#: Experiments driven by the serving-tier options.
TAKES_SERVE = {"serve"}
#: The chaos harness: serving options plus determinism repeats.
TAKES_CHAOS = {"chaos"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce QEI (HPCA 2021) tables, figures and ablations.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id, 'list' to enumerate, or 'all' to run everything",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use full workload sizes (slower; default is the quick sizes)",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        metavar="NAME",
        help="restrict to these workloads (dpdk jvm rocksdb snort flann)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit results as JSON instead of tables",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="fault-campaign: RNG seed driving fault selection (default 7)",
    )
    parser.add_argument(
        "--faults",
        type=int,
        default=1000,
        help="fault-campaign: number of faults to inject (default 1000)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="fault-campaign: determinism re-runs of the campaign (default 2)",
    )
    parser.add_argument(
        "--scheme",
        choices=[s.value for s in IntegrationScheme],
        help="serve: run one integration scheme (default: all five)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=4,
        help="serve: tenant request streams (default 4)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=2000,
        help="serve: total request budget across tenants (default 2000)",
    )
    parser.add_argument(
        "--closed-loop",
        action="store_true",
        help="serve: fixed-concurrency clients instead of Poisson arrivals",
    )
    return parser


def run_one(name: str, args: argparse.Namespace) -> None:
    driver = EXPERIMENTS[name]
    kwargs = {}
    if name in TAKES_QUICK:
        kwargs["quick"] = not args.full
    if name in TAKES_WORKLOADS and args.workloads:
        kwargs["workloads"] = args.workloads
    if name in TAKES_SEEDED:
        kwargs["seed"] = args.seed
        kwargs["faults"] = args.faults
        kwargs["repeats"] = args.repeats
    if name in TAKES_SERVE:
        kwargs["tenants"] = args.tenants
        kwargs["requests"] = args.requests
        kwargs["seed"] = args.seed
        kwargs["closed_loop"] = args.closed_loop
        if args.scheme:
            kwargs["schemes"] = [args.scheme]
    if name in TAKES_CHAOS:
        kwargs["tenants"] = args.tenants
        kwargs["requests"] = args.requests
        kwargs["seed"] = args.seed
        kwargs["repeats"] = args.repeats
        if args.scheme:
            kwargs["schemes"] = [args.scheme]
    result = driver(**kwargs)
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "experiment": result.experiment,
                    "title": result.title,
                    "rows": result.rows,
                    "notes": result.notes,
                },
                indent=2,
            )
        )
    else:
        print(result.format())
        print()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        width = max(len(n) for n in EXPERIMENTS)
        for name, driver in sorted(EXPERIMENTS.items()):
            doc = (driver.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<{width}}  {doc}")
        return 0
    if args.experiment == "all":
        for name in sorted(EXPERIMENTS):
            run_one(name, args)
        return 0
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            "run 'python -m repro list' to see the available experiments",
            file=sys.stderr,
        )
        return 2
    run_one(args.experiment, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
