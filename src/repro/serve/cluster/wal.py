"""Per-node mutation commit log (docs/recovery.md).

Every structure commit on a node — its own primary writes *and* the
replicated applies it accepts from peers — appends one :class:`WalRecord`
keyed by the node-local seqlock commit ordinal stamped by
``core/mutations.py``.  The seqlock bumps the structure version by two per
commit, so a healthy log is *contiguous in steps of two*: any other
spacing is an ordinal gap, the durable evidence that commits happened
which the log never saw (a truncated suffix, a lost disk) and that the
node must full-resync instead of incrementally replaying
(:data:`~repro.faults.injector.FaultKind.LOG_TRUNCATE`).

Commit completions can *reach* the log out of commit order (accelerated
writes resolve in completion order, not ordinal order), so ``append``
keeps the log sorted by ordinal and gap detection is a property of the
sorted sequence rather than of arrival order.

:func:`apply_stream` is the receiver half of log shipping: it re-orders a
delivered record batch by origin ordinal, skips everything at or below
the already-applied watermark, and applies the rest — which makes replay
idempotent (same batch twice is a no-op) and delivery-order independent
(shuffled or duplicated shipments converge to the same table state, the
property ``tests/test_recovery_properties.py`` pins down).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

#: Seqlock commits advance the structure version by two (odd = locked).
ORDINAL_STEP = 2


@dataclass(frozen=True)
class WalRecord:
    """One committed mutation, in the committing node's ordinal space.

    ``ordinal`` is the node-local seqlock commit ordinal.  ``origin`` and
    ``origin_ordinal`` identify the mutation in the *originating* node's
    log when the record was applied from a peer's apply stream; for a
    node's own primary commits they equal the local values.
    """

    ordinal: int
    origin: int
    origin_ordinal: int
    op: int
    key: bytes
    value: int
    #: MUT_* code, or None for a logged no-op (a software miss burned the
    #: ordinal without publishing a value; replicas skip the apply).
    result: Optional[int]
    commit_cycle: int


class CommitLog:
    """An ordered, gap-detecting log of one node's structure commits."""

    def __init__(self, node_id: int, *, baseline_ordinal: int = 0) -> None:
        self.node_id = node_id
        #: The structure's seqlock version at log creation (or at the last
        #: full resync).  A commit's ordinal is the *pre-commit* even
        #: version, so the first logged commit carries exactly this value
        #: and each later one advances by :data:`ORDINAL_STEP`.
        self.baseline_ordinal = baseline_ordinal
        self._ordinals: List[int] = []
        self._records: List[WalRecord] = []
        self.appends = 0
        self.truncated = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Tuple[WalRecord, ...]:
        return tuple(self._records)

    @property
    def last_ordinal(self) -> int:
        """Highest logged ordinal (one step below baseline when empty)."""
        if self._ordinals:
            return self._ordinals[-1]
        return self.baseline_ordinal - ORDINAL_STEP

    # ------------------------------------------------------------------ #

    def append(self, record: WalRecord) -> None:
        """Insert a commit by ordinal (completions may arrive reordered)."""
        index = bisect.bisect_left(self._ordinals, record.ordinal)
        if index < len(self._ordinals) and self._ordinals[index] == record.ordinal:
            return  # duplicate completion of the same commit
        self._ordinals.insert(index, record.ordinal)
        self._records.insert(index, record)
        self.appends += 1

    def records_after(self, ordinal: int) -> Tuple[WalRecord, ...]:
        """All records with an ordinal strictly above ``ordinal``."""
        index = bisect.bisect_right(self._ordinals, ordinal)
        return tuple(self._records[index:])

    def gaps(self) -> Tuple[int, ...]:
        """Ordinals of commits the log is missing.

        The seqlock hands out ordinals in steps of two from the baseline,
        so every absent step between the baseline and the last logged
        record is a commit the log never captured.
        """
        missing: List[int] = []
        expected = self.baseline_ordinal
        for ordinal in self._ordinals:
            while expected < ordinal:
                missing.append(expected)
                expected += ORDINAL_STEP
            expected = ordinal + ORDINAL_STEP
        return tuple(missing)

    def has_gap(self, *, structure_version: Optional[int] = None) -> bool:
        """True when the log cannot explain the structure's commit count.

        With ``structure_version`` (the live seqlock version) the check
        also catches a truncated *suffix*: commits the structure performed
        past the last logged ordinal.
        """
        if self.gaps():
            return True
        if structure_version is not None:
            return structure_version > self.last_ordinal + ORDINAL_STEP
        return False

    def truncate_suffix(self, count: int) -> Tuple[WalRecord, ...]:
        """Drop the last ``count`` records (the LOG_TRUNCATE fault surface)."""
        count = max(0, min(count, len(self._records)))
        if not count:
            return ()
        lost = tuple(self._records[-count:])
        del self._records[-count:]
        del self._ordinals[-count:]
        self.truncated += count
        return lost

    def reset(self, baseline_ordinal: int) -> None:
        """Restart the log after a full resync: state, not history, moved."""
        self.baseline_ordinal = baseline_ordinal
        self._ordinals.clear()
        self._records.clear()


def apply_stream(
    records: Iterable[WalRecord],
    watermark: int,
    apply: Callable[[WalRecord], None],
) -> int:
    """Apply a delivered batch in origin-ordinal order; return new watermark.

    ``watermark`` is the highest origin ordinal already applied from this
    stream.  Records at or below it are duplicates from retransmission and
    are skipped, so replaying any prefix — or the same batch twice, or a
    shuffled delivery — converges to the same state.
    """
    for record in sorted(records, key=lambda r: r.origin_ordinal):
        if record.origin_ordinal <= watermark:
            continue
        apply(record)
        watermark = record.origin_ordinal
    return watermark


def replay(
    records: Sequence[WalRecord], apply: Callable[[WalRecord], None]
) -> int:
    """Replay a whole log prefix through ``apply`` (recovery helper)."""
    return apply_stream(records, -1, apply)
