"""Result-cache invalidation: source edits must change the fingerprint.

``docs/performance.md`` promises that editing any Python source under
``src/repro`` on a dirty tree (or without git at all) changes the
``rescache`` code fingerprint, so stale simulation results can never be
served after a code change.  These tests pin that promise by pointing the
module's root constants at a scratch tree.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

from repro.analysis import rescache
from repro.analysis.report import ExperimentResult


def _scratch_tree(root: Path) -> Path:
    """A minimal src/repro package tree under ``root``."""
    package = root / "src" / "repro"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text("VALUE = 1\n")
    (package / "engine.py").write_text("def step():\n    return 1\n")
    sub = package / "analysis"
    sub.mkdir()
    (sub / "__init__.py").write_text("")
    return package


def _point_at(monkeypatch, root: Path) -> None:
    monkeypatch.setattr(rescache, "_SRC_ROOT", root / "src")
    monkeypatch.setattr(rescache, "_REPO_ROOT", root)
    monkeypatch.setattr(rescache, "_FINGERPRINT", None)


def test_no_git_fingerprint_tracks_source_edits(tmp_path, monkeypatch):
    package = _scratch_tree(tmp_path)
    _point_at(monkeypatch, tmp_path)

    first = rescache.code_fingerprint()
    assert first.startswith("no-git+")

    # Memoized within a process: same value without recompute.
    assert rescache.code_fingerprint() == first

    (package / "engine.py").write_text("def step():\n    return 2\n")
    rescache._FINGERPRINT = None
    assert rescache.code_fingerprint() != first

    # Reverting the edit restores the original fingerprint (content hash,
    # not mtime).
    (package / "engine.py").write_text("def step():\n    return 1\n")
    rescache._FINGERPRINT = None
    assert rescache.code_fingerprint() == first


def test_new_source_file_changes_fingerprint(tmp_path, monkeypatch):
    package = _scratch_tree(tmp_path)
    _point_at(monkeypatch, tmp_path)
    first = rescache.code_fingerprint()

    (package / "analysis" / "snapshot.py").write_text("TEMPLATES = {}\n")
    rescache._FINGERPRINT = None
    assert rescache.code_fingerprint() != first


def test_cache_misses_after_source_edit(tmp_path, monkeypatch):
    package = _scratch_tree(tmp_path)
    _point_at(monkeypatch, tmp_path)

    cache = rescache.ResultCache(tmp_path / "cache")
    result = ExperimentResult("fig7", "t", ["col"], rows=[{"col": 1}], notes=[])
    cache.put("fig7", {"quick": True}, result)
    hit = cache.get("fig7", {"quick": True})
    assert hit is not None and hit.rows == [{"col": 1}]

    (package / "engine.py").write_text("def step():\n    return 3\n")
    rescache._FINGERPRINT = None
    assert cache.get("fig7", {"quick": True}) is None


@pytest.mark.skipif(shutil.which("git") is None, reason="git not available")
def test_dirty_git_tree_fingerprint_tracks_source_edits(tmp_path, monkeypatch):
    package = _scratch_tree(tmp_path)

    def git(*args: str) -> None:
        subprocess.run(
            ["git", "-C", str(tmp_path), "-c", "user.email=t@t", "-c", "user.name=t", *args],
            check=True,
            capture_output=True,
        )

    git("init", "-q")
    git("add", "-A")
    git("commit", "-q", "-m", "seed")

    _point_at(monkeypatch, tmp_path)
    clean = rescache.code_fingerprint()
    assert "-dirty" not in clean

    # A clean tree fingerprints by commit only: same before/after no-op.
    (package / "engine.py").write_text("def step():\n    return 9\n")
    rescache._FINGERPRINT = None
    dirty = rescache.code_fingerprint()
    assert "-dirty" in dirty and dirty != clean

    (package / "engine.py").write_text("def step():\n    return 10\n")
    rescache._FINGERPRINT = None
    assert rescache.code_fingerprint() != dirty
