"""Fault injection + accelerator hardening: watchdog, abort codes, fallback.

Every injected fault must surface a documented :class:`AbortCode` (or be
provably masked), and the software fallback must recover the right answer.
"""

import dataclasses
import random

import pytest

from repro import IntegrationScheme, small_config
from repro.core import AbortCode, read_result
from repro.core.accelerator import QueryRequest, QueryStatus
from repro.core.cfa import RESULT_ABORTED
from repro.core.header import DataStructureHeader, StructureType
from repro.datastructs import (
    BinarySearchTree,
    CuckooHashTable,
    LinkedList,
    SkipList,
)
from repro.errors import AcceleratorError, ConfigurationError, SegmentationFault
from repro.faults import FaultInjector, FaultKind
from repro.system import System


def make_system(scheme="core-integrated", *, watchdog_steps=None):
    cfg = small_config()
    if watchdog_steps is not None:
        cfg = cfg.replace(
            qei=dataclasses.replace(cfg.qei, watchdog_steps=watchdog_steps)
        )
    return System(cfg, scheme)


def keys_of(n, length=16):
    return [(b"k%d" % i).ljust(length, b"_")[:length] for i in range(n)]


def build_list(sys_, n=12):
    ll = LinkedList(sys_.mem, key_length=16)
    for i, k in enumerate(keys_of(n)):
        ll.insert(k, 100 + i)
    return ll


def run_query(sys_, structure, key):
    handle = sys_.accelerator.submit(
        QueryRequest(
            header_addr=structure.header_addr,
            key_addr=structure.store_key(key),
            blocking=True,
        ),
        sys_.engine.now,
    )
    sys_.accelerator.wait_for(handle)
    return handle


ABSENT = b"absent".ljust(16, b"_")


class TestWatchdog:
    def test_cycle_caught_within_budget(self):
        """An injected pointer cycle must hit ABORT_WATCHDOG, not hang."""
        sys_ = make_system(watchdog_steps=500)
        ll = build_list(sys_)
        injector = FaultInjector(sys_.space, rng=random.Random(1))
        injector.inject(FaultKind.POINTER_CYCLE, ll.header_addr)
        # A missing key forces a full walk straight into the loop.
        handle = run_query(sys_, ll, ABSENT)
        assert handle.status is QueryStatus.FAULT
        assert handle.abort_code is AbortCode.WATCHDOG
        assert sys_.stats.counter("qei.abort.watchdog").value == 1
        injector.heal()
        assert run_query(sys_, ll, keys_of(12)[3]).value == 103

    def test_watchdog_budget_validated(self):
        with pytest.raises(ConfigurationError):
            make_system(watchdog_steps=0)
        with pytest.raises(AcceleratorError):
            sys_ = make_system()
            type(sys_.accelerator)(
                sys_.engine,
                sys_.firmware,
                sys_.integration,
                sys_.space,
                qst_entries=8,
                watchdog_steps=-1,
            )

    def test_generous_budget_leaves_legit_queries_alone(self):
        sys_ = make_system(watchdog_steps=100_000)
        ll = build_list(sys_)
        assert run_query(sys_, ll, keys_of(12)[7]).value == 107


class TestHeaderValidation:
    """Satellite: decode-time rejection with one abort code per field."""

    @pytest.mark.parametrize(
        "kind,code",
        [
            (FaultKind.HEADER_CLEAR_VALID, AbortCode.HEADER_INVALID),
            (FaultKind.HEADER_BAD_MAGIC, AbortCode.BAD_MAGIC),
            (FaultKind.HEADER_BAD_TYPE, AbortCode.BAD_TYPE),
            (FaultKind.HEADER_BAD_SUBTYPE, AbortCode.BAD_SUBTYPE),
            (FaultKind.HEADER_BAD_KEY_LENGTH, AbortCode.BAD_KEY_LENGTH),
        ],
    )
    def test_list_header_faults(self, kind, code):
        sys_ = make_system()
        ll = build_list(sys_)
        injector = FaultInjector(sys_.space, rng=random.Random(2))
        fault = injector.inject(kind, ll.header_addr)
        assert code in fault.expected
        handle = run_query(sys_, ll, keys_of(12)[0])
        assert handle.status is QueryStatus.FAULT
        assert handle.abort_code is code
        assert sys_.stats.counter(f"qei.abort.{code.name.lower()}").value == 1
        injector.heal()
        assert run_query(sys_, ll, keys_of(12)[0]).value == 100

    def test_zero_key_length_rejected(self):
        """Bugfix satellite: key_length == 0 must not pass validation."""
        header = DataStructureHeader(
            root_ptr=0x1000,
            type_code=int(StructureType.LINKED_LIST),
            subtype=0,
            key_length=0,
            flags=1,  # FLAG_VALID
            size=0,
            aux=0,
        )
        assert header.validate() is AbortCode.BAD_KEY_LENGTH

    def test_bad_size_on_hash_table(self):
        sys_ = make_system()
        ht = CuckooHashTable(sys_.mem, key_length=16, num_buckets=32)
        for i, k in enumerate(keys_of(40)):
            ht.insert(k, i)
        injector = FaultInjector(sys_.space, rng=random.Random(3))
        injector.inject(FaultKind.HEADER_BAD_SIZE, ht.header_addr)
        handle = run_query(sys_, ht, keys_of(40)[0])
        assert handle.abort_code is AbortCode.BAD_SIZE
        injector.heal()

    def test_bad_aux_on_skip_list(self):
        sys_ = make_system()
        sl = SkipList(sys_.mem, key_length=16)
        for i, k in enumerate(keys_of(30)):
            sl.insert(k, i)
        injector = FaultInjector(sys_.space, rng=random.Random(4))
        injector.inject(FaultKind.HEADER_BAD_AUX, sl.header_addr)
        handle = run_query(sys_, sl, keys_of(30)[0])
        assert handle.abort_code is AbortCode.BAD_AUX
        injector.heal()


class TestPointerFaults:
    def test_dangling_pointer_segfaults(self):
        sys_ = make_system()
        ll = build_list(sys_)
        injector = FaultInjector(sys_.space, rng=random.Random(5))
        injector.inject(FaultKind.POINTER_DANGLE, ll.header_addr)
        # The full walk for a missing key must cross the dangling link.
        handle = run_query(sys_, ll, ABSENT)
        assert handle.status is QueryStatus.FAULT
        assert handle.abort_code is AbortCode.SEGFAULT
        injector.heal()
        assert run_query(sys_, ll, ABSENT).value is None

    def test_null_key_pointer(self):
        sys_ = make_system()
        ll = build_list(sys_)
        injector = FaultInjector(sys_.space, rng=random.Random(6))
        injector.inject(FaultKind.POINTER_NULL_KEY, ll.header_addr)
        handle = run_query(sys_, ll, ABSENT)
        assert handle.status is QueryStatus.FAULT
        assert handle.abort_code in (AbortCode.NULL_POINTER, AbortCode.SEGFAULT)
        injector.heal()

    def test_tree_cycle_watchdog(self):
        """Cycled BST nodes either abort (watchdog) or mask — never lie.

        A cycle on a leaf is unreachable and masks for every query, so probe
        several injection seeds and demand at least one abort overall while
        every completed query still matches the software reference.
        """
        sys_ = make_system(watchdog_steps=500)
        bst = BinarySearchTree(sys_.mem, key_length=16)
        keys = keys_of(30)
        for i, k in enumerate(keys):
            bst.insert(k, i)
        aborts = 0
        for seed in range(5):
            injector = FaultInjector(sys_.space, rng=random.Random(seed))
            injector.inject(FaultKind.POINTER_CYCLE, bst.header_addr)
            for k in keys:
                handle = run_query(sys_, bst, k)
                if handle.status is QueryStatus.FAULT:
                    aborts += 1
                    assert handle.abort_code in (
                        AbortCode.WATCHDOG,
                        AbortCode.NULL_POINTER,
                        AbortCode.SEGFAULT,
                    )
                else:
                    assert handle.value == keys.index(k)
            injector.heal()
        assert aborts >= 1
        assert sys_.stats.counter("qei.abort.watchdog").value >= 1


class TestHealAndPaging:
    def test_unmap_restore_roundtrip(self):
        sys_ = make_system()
        ll = build_list(sys_)
        node = ll.header_addr  # any mapped address works
        original = sys_.space.read(node, 64)
        page = node - node % sys_.space.page_bytes
        entry = sys_.space.unmap_page(page, free_frame=False)
        with pytest.raises(SegmentationFault):
            sys_.space.read(node, 64)
        sys_.space.restore_page(page, entry)
        assert sys_.space.read(node, 64) == original

    @pytest.mark.parametrize(
        "kind",
        [
            FaultKind.HEADER_BAD_TYPE,
            FaultKind.POINTER_DANGLE,
            FaultKind.POINTER_CYCLE,
            FaultKind.KEY_FLIP,
            FaultKind.PAGE_UNMAP,
        ],
    )
    def test_heal_is_byte_exact(self, kind):
        sys_ = make_system()
        ll = build_list(sys_)
        base = ll.header_addr - ll.header_addr % sys_.space.page_bytes
        snapshot = sys_.space.read(base, sys_.space.page_bytes)
        injector = FaultInjector(sys_.space, rng=random.Random(8))
        injector.inject(kind, ll.header_addr)
        assert injector.armed
        injector.heal()
        assert not injector.armed
        assert sys_.space.read(base, sys_.space.page_bytes) == snapshot
        assert run_query(sys_, ll, keys_of(12)[5]).value == 105

    def test_double_inject_requires_heal(self):
        sys_ = make_system()
        ll = build_list(sys_)
        injector = FaultInjector(sys_.space, rng=random.Random(9))
        injector.inject(FaultKind.KEY_FLIP, ll.header_addr)
        from repro.faults.injector import InjectionError

        with pytest.raises(InjectionError):
            injector.inject(FaultKind.KEY_FLIP, ll.header_addr)
        injector.heal()


class TestSoftwareFallback:
    def test_fallback_retries_until_page_repaired(self):
        """PAGE_UNMAP: attempt 1 fails, the OS repair lands, attempt 2 wins."""
        sys_ = make_system()
        ll = build_list(sys_)
        key_addr = ll.store_key(ABSENT)  # before the page disappears
        injector = FaultInjector(sys_.space, rng=random.Random(10))
        injector.inject(FaultKind.PAGE_UNMAP, ll.header_addr)
        request = QueryRequest(
            header_addr=ll.header_addr,
            key_addr=key_addr,
            blocking=True,
        )
        outcome = sys_.fallback.execute(
            request,
            lambda: ll.lookup(ABSENT),
            before_retry=lambda: sys_.engine.schedule(100, injector.heal),
        )
        assert not outcome.accelerated
        assert outcome.abort_code is AbortCode.SEGFAULT
        assert outcome.attempts == 2  # first retry hits the missing page
        assert outcome.resolved and outcome.value is None
        assert not injector.armed
        assert sys_.fallback.fallback_fraction == 1.0

    def test_accelerated_path_records_no_fallback(self):
        sys_ = make_system()
        ll = build_list(sys_)
        request = QueryRequest(
            header_addr=ll.header_addr,
            key_addr=ll.store_key(keys_of(12)[2]),
            blocking=True,
        )
        outcome = sys_.fallback.execute(request, lambda: ll.lookup(keys_of(12)[2]))
        assert outcome.accelerated and outcome.value == 102
        assert sys_.fallback.fallback_fraction == 0.0

    def test_fallback_config_validated(self):
        from repro.config import FallbackConfig

        with pytest.raises(ConfigurationError):
            FallbackConfig(max_retries=0)
        with pytest.raises(ConfigurationError):
            FallbackConfig(backoff_multiplier=0)


@pytest.mark.parametrize("scheme", [s.value for s in IntegrationScheme])
class TestInterruptFlush:
    """Satellite: flushed non-blocking queries leave FLUSH at result_addr."""

    def test_result_record_holds_abort_code(self, scheme):
        sys_ = make_system(scheme)
        ll = build_list(sys_, n=48)
        result_base = sys_.mem.alloc(16 * 4, align=64)
        handles = []
        for j in range(4):
            addr = result_base + 16 * j
            sys_.space.write_u64(addr, 0)
            sys_.space.write_u64(addr + 8, 0)
            handles.append(
                sys_.accelerator.submit(
                    QueryRequest(
                        header_addr=ll.header_addr,
                        key_addr=ll.store_key(ABSENT),
                        blocking=False,
                        result_addr=addr,
                    ),
                    sys_.engine.now,
                )
            )
        # Step until the queries occupy the QST, then raise the interrupt.
        guard = 0
        while sys_.accelerator.qst.occupancy == 0:
            assert sys_.engine.step(), "queries never reached the QST"
            guard += 1
            assert guard < 100_000
        finish = sys_.accelerator.flush()
        sys_.engine.run(until=max(finish, sys_.engine.now))
        aborted_with_record = 0
        for j, handle in enumerate(handles):
            if not handle.done:
                sys_.accelerator.wait_for(handle)
            if handle.status is not QueryStatus.ABORTED:
                continue
            assert handle.abort_code is AbortCode.FLUSH
            status, payload, code = read_result(sys_.space, result_base + 16 * j)
            if status:  # queued-then-flushed handles never get a write
                assert status == RESULT_ABORTED
                assert code is AbortCode.FLUSH
                aborted_with_record += 1
        assert aborted_with_record >= 1
        assert sys_.stats.counter("qei.abort.flush").value >= 1
