"""Set-associative cache model with LRU replacement.

The cache tracks *presence* of physical cachelines (tags only; data lives in
:class:`~repro.mem.physical.PhysicalMemory`).  It is used for L1D, L2 and
each LLC slice.  Writeback/dirty state is tracked so eviction statistics are
meaningful, but coherence is modelled at the hierarchy level (single-writer
approximation — the paper evaluates single-threaded ROIs, Sec. VI-B).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from ..config import CacheConfig
from ..sim.stats import StatsRegistry


class CacheLevelName(str, enum.Enum):
    """Symbolic cache level names, used in access breakdowns."""

    L1 = "l1"
    L2 = "l2"
    LLC = "llc"
    DRAM = "dram"


class Cache:
    """One set-associative, write-back, write-allocate cache."""

    def __init__(
        self,
        config: CacheConfig,
        *,
        stats: Optional[StatsRegistry] = None,
        name: str = "cache",
    ) -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        # Preallocated set table (index -> insertion-ordered {tag: dirty}):
        # the hot access path is one list index plus one dict probe, with no
        # allocate-on-first-touch branch.  Plain dicts preserve insertion
        # order, so LRU is pop-and-reinsert.
        self._sets: List[Dict[int, bool]] = [{} for _ in range(self.num_sets)]
        # Per-set generation counters for the epoch-memoized fast path
        # (mem/fastpath.py): a set's epoch bumps whenever line *presence*
        # changes (new-tag fill, eviction, invalidate) — never on hits or
        # dirty-only refills — so "epoch unchanged" proves a memoized hit
        # outcome is still exact.
        self.set_epochs: List[int] = [0] * self.num_sets
        self.stats = (stats or StatsRegistry()).scoped(name)
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._evictions = self.stats.counter("evictions")
        self._writebacks = self.stats.counter("writebacks")
        # Hits replayed by the fast path accumulate here (a plain int) and
        # fold into the real counter at flush; see sim/stats.py.
        self._pending_hits = 0
        self.stats.add_flush_hook(self._flush_pending)

    def _flush_pending(self) -> None:
        if self._pending_hits:
            self._hits.value += self._pending_hits
            self._pending_hits = 0

    # ------------------------------------------------------------------ #

    def _index_tag(self, line_addr: int) -> Tuple[int, int]:
        return line_addr % self.num_sets, line_addr // self.num_sets

    # ------------------------------------------------------------------ #

    def access(self, line_addr: int, *, write: bool = False) -> bool:
        """Look up a cacheline (by line address = paddr // 64).

        Returns True on hit.  On miss the line is *not* filled; callers
        decide (the hierarchy fills after resolving the next level).
        """
        tag, index = divmod(line_addr, self.num_sets)
        entry_set = self._sets[index]
        if tag in entry_set:
            dirty = entry_set.pop(tag)
            entry_set[tag] = dirty or write
            self._hits.value += 1
            return True
        self._misses.value += 1
        return False

    def probe(self, line_addr: int) -> bool:
        """Presence check without LRU update or statistics."""
        tag, index = divmod(line_addr, self.num_sets)
        return tag in self._sets[index]

    def fill(self, line_addr: int, *, dirty: bool = False) -> Optional[int]:
        """Insert a line; returns the evicted line address (or None)."""
        tag, index = divmod(line_addr, self.num_sets)
        entry_set = self._sets[index]
        victim_line = None
        if tag in entry_set:
            was_dirty = entry_set.pop(tag)
            entry_set[tag] = was_dirty or dirty
            return None
        if len(entry_set) >= self.associativity:
            victim_tag = next(iter(entry_set))
            victim_dirty = entry_set.pop(victim_tag)
            victim_line = victim_tag * self.num_sets + index
            self._evictions.value += 1
            if victim_dirty:
                self._writebacks.value += 1
        entry_set[tag] = dirty
        self.set_epochs[index] += 1  # presence changed: new tag (± victim)
        return victim_line

    def invalidate(self, line_addr: Optional[int] = None) -> None:
        """Drop one line, or flush everything when ``line_addr`` is None."""
        if line_addr is None:
            epochs = self.set_epochs
            for index, entry_set in enumerate(self._sets):
                if entry_set:
                    entry_set.clear()
                    epochs[index] += 1
            return
        tag, index = divmod(line_addr, self.num_sets)
        if self._sets[index].pop(tag, None) is not None:
            self.set_epochs[index] += 1

    # ------------------------------------------------------------------ #

    @property
    def hits(self) -> int:
        return self._hits.value + self._pending_hits

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
