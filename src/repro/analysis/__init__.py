"""Experiment drivers: one per paper figure/table.

Every driver returns an :class:`~repro.analysis.report.ExperimentResult`
whose ``format()`` prints the same rows/series the paper reports, and whose
structured ``rows`` back the shape assertions in ``benchmarks/``.
"""

from .experiments import (
    fig1_profiling,
    fig7_speedup,
    fig8_latency_sweep,
    fig9_end_to_end,
    fig10_tuple_space,
    fig11_instruction_count,
    fig12_dynamic_power,
    tab1_schemes,
    tab2_config,
    tab3_area_power,
    ALL_SCHEMES,
    BENCH_WORKLOADS,
)
from .fault_campaign import CampaignViolation, fault_campaign
from .report import ExperimentResult

__all__ = [
    "ALL_SCHEMES",
    "BENCH_WORKLOADS",
    "CampaignViolation",
    "ExperimentResult",
    "fault_campaign",
    "fig1_profiling",
    "fig7_speedup",
    "fig8_latency_sweep",
    "fig9_end_to_end",
    "fig10_tuple_space",
    "fig11_instruction_count",
    "fig12_dynamic_power",
    "tab1_schemes",
    "tab2_config",
    "tab3_area_power",
]
