"""DRAM channel model: fixed access latency plus per-channel bandwidth.

Six DDR4-2666 channels (Tab. II).  Cachelines map to channels by address
interleaving.  Timing model: each access costs ``latency_cycles``, and a
channel serialises accesses beyond its bandwidth (occupancy model), which is
enough to expose bandwidth saturation under batched non-blocking queries.

The timing state is table-driven for the fast path: ``_channel_free_at`` is
a plain list indexed by ``line % channels`` and the per-access costs
(``latency_cycles``, ``busy_cycles_per_access``) are hoisted to instance
attributes, so :meth:`access` is index arithmetic plus two pending-int
bumps.  Access counts batch into plain ints and fold into the
:class:`~repro.sim.stats.StatsRegistry` through a flush hook (see
sim/stats.py), and ``timing_epoch`` versions the queue state so the
epoch-memoized hierarchy fast path (mem/fastpath.py) can reason about DRAM:
DRAM outcomes are never memoized — the latency depends on ``now`` against
the channel queue — but the epoch proves when timing state was reset.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import CACHELINE_BYTES, DramConfig
from ..sim.stats import StatsRegistry


class Dram:
    """Interleaved multi-channel DRAM with a simple occupancy model."""

    def __init__(
        self,
        config: DramConfig,
        *,
        frequency_ghz: float = 2.5,
        stats: Optional[StatsRegistry] = None,
        name: str = "dram",
    ) -> None:
        self.config = config
        self.name = name
        # Cycles a channel is busy per 64B transfer, from GB/s at core clock.
        bytes_per_cycle = config.bandwidth_gbps_per_channel / frequency_ghz
        self.busy_cycles_per_access = max(1, round(CACHELINE_BYTES / bytes_per_cycle))
        self.latency_cycles = config.latency_cycles
        self.channels = config.channels
        self._channel_free_at: List[int] = [0] * config.channels
        #: Bumped whenever the queue state is reset wholesale; a changed
        #: epoch tells fast paths any cached view of channel timing is stale.
        self.timing_epoch = 0
        self.stats = (stats or StatsRegistry()).scoped(name)
        self._accesses = self.stats.counter("accesses")
        self._stall_cycles = self.stats.counter("queue_cycles")
        self._pending_accesses = 0
        self._pending_stall = 0
        self.stats.add_flush_hook(self._flush_pending)

    def _flush_pending(self) -> None:
        if self._pending_accesses:
            self._accesses.value += self._pending_accesses
            self._pending_accesses = 0
        if self._pending_stall:
            self._stall_cycles.value += self._pending_stall
            self._pending_stall = 0

    def channel_of(self, line_addr: int) -> int:
        return line_addr % self.channels

    def access(self, line_addr: int, now: int) -> int:
        """Access one cacheline at cycle ``now``; returns total latency."""
        self._pending_accesses += 1
        channel = line_addr % self.channels
        free_at = self._channel_free_at[channel]
        if free_at > now:
            queue_wait = free_at - now
            self._pending_stall += queue_wait
        else:
            queue_wait = 0
        self._channel_free_at[channel] = now + queue_wait + self.busy_cycles_per_access
        return queue_wait + self.latency_cycles

    def reset_timing(self) -> None:
        self._channel_free_at = [0] * self.channels
        self.timing_epoch += 1
