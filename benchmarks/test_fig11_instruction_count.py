"""Fig. 11 — dynamic instruction count reduction in the ROI."""

import pytest

from repro.analysis import fig11_instruction_count

pytestmark = pytest.mark.slow


@pytest.mark.figure
def test_fig11_instruction_count(run_once, quick):
    result = run_once(fig11_instruction_count, quick=quick)
    print()
    print(result.format())

    for row in result.rows:
        # QEI eliminates a significant share of dynamic instructions.
        assert row["reduction_pct"] > 40.0, row
        assert row["qei_instructions"] < row["baseline_instructions"]
    # Pointer-chasing / scanning workloads (many instructions per query)
    # shed the most; the reduction is largest for snort's byte-wise scan.
    snort = result.row_for("workload", "snort")
    dpdk = result.row_for("workload", "dpdk")
    assert snort["reduction_pct"] > dpdk["reduction_pct"]
