"""Tests for the optional L2 next-line prefetcher."""

import pytest

from repro.config import small_config
from repro.mem import MemoryHierarchy
from repro.mem.cache import CacheLevelName


@pytest.fixture
def hierarchy():
    h = MemoryHierarchy(small_config())
    h.next_line_prefetch = True
    return h


def test_prefetch_is_off_by_default():
    h = MemoryHierarchy(small_config())
    h.access_from_core(0, 0x10000)
    line = h.line_of(0x10000)
    assert not h.l2[0].probe(line + 1)
    assert h.stats.counter("prefetches").value == 0


def test_l2_miss_installs_next_line(hierarchy):
    hierarchy.access_from_core(0, 0x20000)
    line = hierarchy.line_of(0x20000)
    assert hierarchy.l2[0].probe(line + 1)
    assert hierarchy.stats.counter("prefetches").value == 1


def test_streaming_scan_hits_after_warmup(hierarchy):
    base = 0x30000
    hierarchy.access_from_core(0, base)  # miss + prefetch of line+1
    second = hierarchy.access_from_core(0, base + 64)
    assert second.level in (CacheLevelName.L1, CacheLevelName.L2)


def test_prefetch_skips_present_lines(hierarchy):
    base = 0x40000
    hierarchy.access_from_core(0, base)
    count = hierarchy.stats.counter("prefetches").value
    hierarchy.l1[0].invalidate()
    hierarchy.l2[0].invalidate()
    hierarchy.access_from_core(0, base)  # LLC hit: no L2 miss path
    assert hierarchy.stats.counter("prefetches").value == count + 1


def test_prefetch_not_triggered_when_l2_fills_disabled(hierarchy):
    hierarchy.access_from_core(0, 0x50000, fill_l1=False, fill_l2=False)
    line = hierarchy.line_of(0x50000)
    assert not hierarchy.l2[0].probe(line + 1)


def test_prefetched_line_lands_in_llc_too(hierarchy):
    hierarchy.access_from_core(0, 0x60000)
    line = hierarchy.line_of(0x60000) + 1
    assert hierarchy.llc_slices[hierarchy.slice_of(line)].probe(line)
