"""Ablation benches for the design choices DESIGN.md calls out."""

import pytest

from repro.analysis.ablations import (
    batch_size_sweep,
    comparator_placement,
    flush_cost_study,
    huge_page_study,
    micro_tlb_ablation,
    noc_hotspot_study,
    prefetch_sensitivity,
    qst_size_sweep,
)

pytestmark = pytest.mark.slow


@pytest.mark.figure
def test_ablation_qst_size(run_once, quick):
    result = run_once(qst_size_sweep, quick=quick)
    print()
    print(result.format())
    speedups = result.column("speedup")
    # More QST entries never hurt; gains flatten after the paper's pick.
    assert speedups == sorted(speedups) or max(
        abs(a - b) for a, b in zip(speedups, sorted(speedups))
    ) < 0.05
    ten = result.row_for("qst_entries", 10)["speedup"]
    forty = result.row_for("qst_entries", 40)["speedup"]
    assert forty - ten < 0.25 * ten  # diminishing returns past 10
    two = result.row_for("qst_entries", 2)["speedup"]
    assert ten > 1.5 * two


@pytest.mark.figure
def test_ablation_comparator_placement(run_once, quick):
    result = run_once(comparator_placement, quick=quick)
    print()
    print(result.format())
    remote = result.row_for("placement", "remote (paper)")
    local = result.row_for("placement", "local-only")
    # The remote path's benefit in this model is pollution avoidance:
    # local-only compares drag far more lines into the private L2.
    assert local["l2_fills_per_query"] > 2 * remote["l2_fills_per_query"]


@pytest.mark.figure
def test_ablation_noc_hotspot(run_once, quick):
    result = run_once(noc_hotspot_study, quick=quick)
    print()
    print(result.format())
    rows = {row["scheme"]: row for row in result.rows}
    # Centralized device: one link near its stop runs far hotter than the
    # mesh average; distributed schemes spread the traffic.
    for device in ("device-direct", "device-indirect"):
        assert rows[device]["hotspot_over_mean"] > 4.0
        assert rows[device]["hotspot_link_pct"] > rows["cha-tlb"]["hotspot_link_pct"]
    assert rows["cha-tlb"]["hotspot_over_mean"] < 4.0
    assert rows["core-integrated"]["hotspot_over_mean"] < 4.0


@pytest.mark.figure
def test_ablation_batch_depth(run_once, quick):
    result = run_once(batch_size_sweep, quick=quick)
    print()
    print(result.format())
    speedups = result.column("speedup")
    # Deeper batches help up to the QST capacity, then flatten.
    assert speedups[0] < speedups[2]
    assert abs(speedups[-1] - speedups[-2]) < 0.2 * speedups[-2]


@pytest.mark.figure
def test_ablation_flush_cost(run_once):
    result = run_once(flush_cost_study)
    print()
    print(result.format())
    costs = result.column("flush_cycles")
    # Flushing an idle accelerator is free; cost grows with in-flight NB
    # queries (one abort store per entry), and every NB query is aborted.
    assert costs[0] == 0
    assert costs == sorted(costs)
    assert costs[-1] > costs[1]
    for row in result.rows:
        assert row["aborted"] == row["nb_in_flight"]


@pytest.mark.figure
def test_ablation_micro_tlb(run_once, quick):
    result = run_once(micro_tlb_ablation, quick=quick)
    print()
    print(result.format())
    rows = result.rows
    # More translation registers never increase mean memory latency.
    assert rows[-1]["mean_mem_latency"] <= rows[0]["mean_mem_latency"] + 0.5


@pytest.mark.figure
def test_ablation_prefetch_sensitivity(run_once, quick):
    result = run_once(prefetch_sensitivity, quick=quick)
    print()
    print(result.format())
    for row in result.rows:
        # The paper's claim: spatial prefetching barely helps query code.
        assert row["baseline_gain_pct"] < 15.0, row
        # QEI's advantage survives the stronger baseline.
        assert row["speedup_with_prefetch"] > 1.0, row


@pytest.mark.figure
def test_ablation_huge_pages(run_once, quick):
    result = run_once(huge_page_study, quick=quick)
    print()
    print(result.format())
    rows = {row["scheme"]: row for row in result.rows}
    # Huge pages close most of the TLB-less scheme's translation gap...
    gap_4kb = rows["cha-tlb"]["speedup_4kb"] / rows["cha-notlb"]["speedup_4kb"]
    gap_huge = (
        rows["cha-tlb"]["speedup_hugepages"]
        / rows["cha-notlb"]["speedup_hugepages"]
    )
    assert gap_huge < gap_4kb
    # ...while the core-integrated scheme is placement-insensitive (it
    # shares the core's L2-TLB either way).
    ci = rows["core-integrated"]
    assert abs(ci["speedup_hugepages"] - ci["speedup_4kb"]) < 0.15 * ci["speedup_4kb"]
