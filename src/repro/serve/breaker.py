"""Per-tenant circuit breaker: closed -> open -> half-open.

One tenant whose queries keep aborting (a poisoned structure, a failed
slice it keeps hashing onto, hostile headers) would otherwise occupy QST
slots and fallback cycles that healthy tenants need.  The breaker watches a
trailing window of that tenant's outcomes; when the failure fraction
crosses the threshold the circuit *opens* and the tenant's arrivals are
answered with a retry-after immediately — no admission queue, no QST slot,
no fallback burn.  After ``breaker_open_cycles`` the circuit goes
*half-open*: probes are admitted strictly one at a time — the next only
after the previous verdict lands — up to ``breaker_probes`` total, and only
a full run of probe successes closes the circuit again (one probe failure
re-opens it).

All state is integer cycle arithmetic on the shared engine clock, so
breaker decisions are as deterministic as the rest of the serving tier.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional, Tuple

from ..config import ServeConfig
from ..sim.stats import StatsRegistry


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Independent breaker state per tenant, driven by request outcomes."""

    def __init__(
        self,
        config: ServeConfig,
        *,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        if config.breaker_window <= 0:
            raise ValueError("circuit breaker needs a positive window")
        self.config = config
        self.stats = (stats or StatsRegistry()).scoped("serve.breaker")
        tenants = config.tenants
        self._windows: List[Deque[bool]] = [
            deque(maxlen=config.breaker_window) for _ in range(tenants)
        ]
        self._states = [BreakerState.CLOSED] * tenants
        self._opened_at = [0] * tenants
        self._probes_issued = [0] * tenants
        self._probe_successes = [0] * tenants
        #: The half-open probe slot: True while one probe's verdict is
        #: outstanding.  Probes are strictly serial — concurrent arrivals
        #: during HALF_OPEN must not widen the probe budget.
        self._probe_inflight = [False] * tenants
        self._opens = self.stats.counter("opened")
        self._closes = self.stats.counter("closed")
        self._rejections = self.stats.counter("rejections")

    # ------------------------------------------------------------------ #

    def state_of(self, tenant: int, now: int) -> BreakerState:
        """Current state, applying the lazy OPEN -> HALF_OPEN transition."""
        if (
            self._states[tenant] is BreakerState.OPEN
            and now >= self._opened_at[tenant] + self.config.breaker_open_cycles
        ):
            self._states[tenant] = BreakerState.HALF_OPEN
            self._probes_issued[tenant] = 0
            self._probe_successes[tenant] = 0
            self._probe_inflight[tenant] = False
        return self._states[tenant]

    def allow(self, tenant: int, now: int) -> Tuple[bool, int]:
        """Admit this arrival?  Returns (allowed, retry_after_cycles)."""
        state = self.state_of(tenant, now)
        if state is BreakerState.CLOSED:
            return True, 0
        if state is BreakerState.HALF_OPEN:
            if (
                not self._probe_inflight[tenant]
                and self._probes_issued[tenant] < self.config.breaker_probes
            ):
                # Claim the single probe slot; it frees on the verdict.
                self._probe_inflight[tenant] = True
                self._probes_issued[tenant] += 1
                return True, 0
            # A probe verdict is outstanding (or the budget is spent):
            # concurrent arrivals must not widen the probe stream.
            self._rejections.add()
            return False, max(1, self.config.breaker_open_cycles // 4)
        self._rejections.add()
        reopen = self._opened_at[tenant] + self.config.breaker_open_cycles
        return False, max(1, reopen - now)

    def record(self, tenant: int, ok: bool, now: int) -> None:
        """Feed one terminal outcome (completion ok / abort-timeout-shed)."""
        state = self._states[tenant]
        if state is BreakerState.OPEN:
            return  # stale outcome from before the trip
        if state is BreakerState.HALF_OPEN:
            self._probe_inflight[tenant] = False
            if not ok:
                self._trip(tenant, now)
                return
            self._probe_successes[tenant] += 1
            if self._probe_successes[tenant] >= self.config.breaker_probes:
                self._states[tenant] = BreakerState.CLOSED
                self._windows[tenant].clear()
                self._closes.add()
            return
        window = self._windows[tenant]
        window.append(ok)
        if len(window) == self.config.breaker_window:
            failures = sum(1 for outcome in window if not outcome)
            if failures >= self.config.breaker_threshold * len(window):
                self._trip(tenant, now)

    def _trip(self, tenant: int, now: int) -> None:
        self._states[tenant] = BreakerState.OPEN
        self._opened_at[tenant] = now
        self._windows[tenant].clear()
        self._opens.add()
        self.stats.counter(f"tenant{tenant}.opened").add()
