"""Cluster-tier benchmark: fleet scaling and the chaos contract at scale.

Runs the replicated multi-node serving tier at fleet sizes up to the
100-node top of the ISSUE's range, prints per-size throughput, and pins the
robustness claims: zero wrong results and availability above the floor even
with a kill, a flap and a partition in flight.
"""

import pytest

from repro.analysis.report import ExperimentResult
from repro.config import ClusterConfig
from repro.faults.chaos import run_cluster_chaos
from repro.serve.cluster import SimulatedCluster

pytestmark = pytest.mark.slow

#: Fleet sizes swept (nodes); the full tier reaches the 100-node top.
QUICK_FLEETS = [10, 25]
FULL_FLEETS = [10, 25, 50, 100]


def _chaos_free_config(nodes: int) -> ClusterConfig:
    return ClusterConfig(
        nodes=nodes,
        replication=2,
        probe_interval_cycles=1024,
        probe_timeout_cycles=256,
        request_timeout_cycles=8192,
        timeout_embargo_cycles=2048,
    )


def fleet_sweep(quick: bool) -> ExperimentResult:
    fleets = QUICK_FLEETS if quick else FULL_FLEETS
    requests = 400 if quick else 1200
    result = ExperimentResult(
        "cluster-sweep",
        f"fleet scaling, {requests} closed-loop requests x 4 tenants",
        ["nodes", "completed", "failed", "availability", "p50", "p99"],
    )
    for nodes in fleets:
        cluster = SimulatedCluster(
            "cha-tlb",
            cluster_config=_chaos_free_config(nodes),
            seed=7,
            requests=requests,
        )
        report = cluster.run()
        aggregate = report.phases[0]
        result.add_row(
            nodes=nodes,
            completed=report.fleet["completed"],
            failed=report.fleet["failed"],
            availability=report.fleet["availability"],
            p50=aggregate["p50"],
            p99=aggregate["p99"],
        )
    return result


@pytest.mark.figure
def test_fleet_sweep_serves_everything(run_once, quick):
    result = run_once(fleet_sweep, quick)
    print()
    print(result.format())
    for row in result.rows:
        assert row["availability"] == 1.0
        assert row["failed"] == 0
        assert 0 < row["p50"] <= row["p99"]


@pytest.mark.figure
def test_cluster_chaos_contract_at_scale(run_once, quick):
    nodes = 10 if quick else 50
    requests = 400 if quick else 1200
    report = run_once(
        run_cluster_chaos,
        "cha-tlb",
        seed=7,
        requests=requests,
        nodes=nodes,
        replication=2,
    )
    checks = report.checks
    print()
    print(f"\ncluster-chaos n={nodes}: {checks}")
    assert checks["result_errors"] == 0
    assert checks["terminal"] == checks["budget"]
    assert checks["min_phase_availability"] >= checks["availability_floor"]
    # The faults actually bit: failovers happened and membership moved.
    assert checks["timeouts"] > 0
    assert checks["membership_transitions"] > 0
