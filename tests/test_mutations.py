"""Tests for the accelerated mutation subsystem (write CFAs).

Covers the per-structure INSERT/UPDATE/DELETE programs through the CEE,
the seqlock header protocol (reader conflict aborts, orphaned-lock
reclaim, read-only protection), the online hash-table resize under live
queries, and the mixed-workload chaos / cluster integration on top.
"""

import pytest

from repro import small_config
from repro.core.abort import AbortCode
from repro.core.accelerator import QueryRequest, QueryStatus
from repro.core.cfa import OP_DELETE, OP_INSERT, OP_UPDATE
from repro.core.header import FLAG_READ_ONLY, FLAG_RESIZING, VERSION_OFFSET
from repro.core.mutations import (
    MUT_DELETED,
    MUT_INSERTED,
    MUT_UPDATED,
    make_mutator,
)
from repro.datastructs import BPlusTree, CuckooHashTable, SkipList
from repro.system import System


def keys_of(n, length=16):
    return [(b"k%03d" % i).ljust(length, b"_") for i in range(n)]


@pytest.fixture
def system():
    sys_ = System(small_config())
    sys_.enable_mutations()
    return sys_


def build_hash(system, n=24):
    table = CuckooHashTable(system.mem, key_length=16, num_buckets=32)
    keys = keys_of(n)
    for i, key in enumerate(keys):
        table.insert(key, 100 + i)
    return table, keys


def build_skiplist(system, n=24):
    slist = SkipList(system.mem, key_length=16)
    keys = keys_of(n)
    for i, key in enumerate(keys):
        slist.insert(key, 100 + i)
    return slist, keys


def build_btree(system, n=24):
    from repro.core.programs_ext import BPlusTreeCfa

    # The factory firmware has no B+-tree read program; hot-swap it in
    # (the staged copy carries the mutation table along).
    ticket = system.update_firmware([BPlusTreeCfa()])
    system.engine.run()
    assert ticket.done
    tree = BPlusTree(system.mem, key_length=16, fanout=8)
    keys = keys_of(n)
    tree.bulk_load([(key, 100 + i) for i, key in enumerate(keys)])
    return tree, keys


BUILDERS = [build_hash, build_skiplist, build_btree]
IDS = ["hash", "skiplist", "btree"]


def read_via_cfa(system, structure, key):
    handle = system.accelerator.submit(
        QueryRequest(
            header_addr=structure.header_addr,
            key_addr=structure.store_key(key),
        ),
        system.engine.now,
    )
    system.accelerator.wait_for(handle)
    return handle


# --------------------------------------------------------------------- #
# Per-structure CFA paths
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("build", BUILDERS, ids=IDS)
def test_accelerated_update_delete_insert(system, build):
    structure, keys = build(system)
    mutator = make_mutator(system, structure)
    executor = system.mutations()

    assert executor.run(mutator, OP_UPDATE, keys[3], 999) == MUT_UPDATED
    assert read_via_cfa(system, structure, keys[3]).value == 999
    assert structure.lookup(keys[3]) == 999

    assert executor.run(mutator, OP_DELETE, keys[5]) == MUT_DELETED
    assert read_via_cfa(system, structure, keys[5]).status is QueryStatus.NOT_FOUND
    assert structure.lookup(keys[5]) is None

    fresh = b"fresh-key".ljust(16, b"_")
    assert executor.run(mutator, OP_INSERT, fresh, 4242) == MUT_INSERTED
    assert read_via_cfa(system, structure, fresh).value == 4242
    assert structure.lookup(fresh) == 4242


@pytest.mark.parametrize("build", BUILDERS, ids=IDS)
def test_update_and_delete_miss_return_none(system, build):
    structure, _ = build(system)
    mutator = make_mutator(system, structure)
    executor = system.mutations()
    absent = b"no-such-key".ljust(16, b"_")
    before = system.space.read_u64(structure.header_addr + VERSION_OFFSET)
    assert executor.run(mutator, OP_UPDATE, absent, 1) is None
    assert executor.run(mutator, OP_DELETE, absent) is None
    after = system.space.read_u64(structure.header_addr + VERSION_OFFSET)
    # A miss publishes nothing: the lock round-trips back to the same
    # even version instead of burning an ordinal.
    assert after == before
    assert after % 2 == 0


@pytest.mark.parametrize("build", BUILDERS, ids=IDS)
def test_commits_bump_version_by_two(system, build):
    structure, keys = build(system)
    mutator = make_mutator(system, structure)
    executor = system.mutations()
    vaddr = structure.header_addr + VERSION_OFFSET
    before = system.space.read_u64(vaddr)
    handle = executor.submit(mutator, OP_UPDATE, keys[0], 321)
    system.accelerator.wait_for(handle)
    assert handle.value == MUT_UPDATED
    assert handle.commit_version == before
    assert system.space.read_u64(vaddr) == before + 2


# --------------------------------------------------------------------- #
# Seqlock protocol
# --------------------------------------------------------------------- #


def test_reader_aborts_on_mid_walk_version_bump(system):
    table, keys = build_hash(system)
    vaddr = table.header_addr + VERSION_OFFSET
    # Hold the lock (odd version): the reader's PARSE-time validation sees
    # a writer in flight and aborts with VERSION_CONFLICT.
    version = system.space.read_u64(vaddr)
    system.space.write_u64(vaddr, version + 1)
    handle = read_via_cfa(system, table, keys[0])
    assert handle.status is QueryStatus.FAULT
    assert handle.abort_code is AbortCode.VERSION_CONFLICT
    system.space.write_u64(vaddr, version)
    assert read_via_cfa(system, table, keys[0]).value == 100


def test_writer_backs_off_then_aborts_under_held_lock(system):
    table, keys = build_hash(system)
    mutator = make_mutator(system, table)
    executor = system.mutations()
    vaddr = table.header_addr + VERSION_OFFSET
    version = system.space.read_u64(vaddr)
    system.space.write_u64(vaddr, version + 1)
    handle = executor.submit(mutator, OP_UPDATE, keys[0], 555)
    system.accelerator.wait_for(handle)
    assert handle.status is QueryStatus.FAULT
    assert handle.abort_code is AbortCode.VERSION_CONFLICT
    # The orphaned holder published nothing and holds no QST write intent,
    # so the software fallback reclaims the lock and applies.
    assert executor.fallback(
        mutator, OP_UPDATE, keys[0], 555, code=handle.abort_code
    ) == MUT_UPDATED
    assert table.lookup(keys[0]) == 555
    assert system.space.read_u64(vaddr) % 2 == 0


def test_read_only_structure_faults_protection(system):
    table, keys = build_hash(system)
    header = table.header()
    table._update_header(flags=header.flags | FLAG_READ_ONLY)
    mutator = make_mutator(system, table)
    handle = system.mutations().submit(mutator, OP_UPDATE, keys[0], 1)
    system.accelerator.wait_for(handle)
    assert handle.status is QueryStatus.FAULT
    assert handle.abort_code is AbortCode.PROTECTION


# --------------------------------------------------------------------- #
# Online resize
# --------------------------------------------------------------------- #


def test_online_resize_under_live_queries(system):
    table, keys = build_hash(system, n=28)
    mutator = make_mutator(system, table)
    executor = system.mutations()
    resizer = system.start_resize(table, chunk_buckets=8)
    resizer.start()
    moved = resizer.step()
    assert moved > 0 and not resizer.finished
    assert table.header().flags & FLAG_RESIZING

    # Reads keep resolving mid-migration via old-or-new routing.
    handle = read_via_cfa(system, table, keys[1])
    if handle.status is QueryStatus.FAULT:
        assert handle.abort_code is AbortCode.VERSION_CONFLICT
    else:
        assert handle.value == 101

    # Accelerated writes refuse the ambiguous window and fall back.
    whandle = executor.submit(mutator, OP_UPDATE, keys[2], 777)
    system.accelerator.wait_for(whandle)
    assert whandle.status is QueryStatus.FAULT
    assert whandle.abort_code is AbortCode.VERSION_CONFLICT
    assert executor.fallback(
        mutator, OP_UPDATE, keys[2], 777, code=whandle.abort_code
    ) == MUT_UPDATED

    while not resizer.finished:
        resizer.step()
    resizer.commit()
    system.engine.run()
    assert resizer.committed
    assert table.num_buckets == 64
    assert not table.header().flags & FLAG_RESIZING
    for i, key in enumerate(keys):
        expect = 777 if i == 2 else 100 + i
        assert table.lookup(key) == expect
        assert read_via_cfa(system, table, key).value == expect


def test_resize_run_to_completion(system):
    table, keys = build_hash(system, n=20)
    resizer = system.start_resize(table, chunk_buckets=4)
    resizer.run_to_completion()
    assert resizer.committed
    assert table.num_buckets == 64
    for i, key in enumerate(keys):
        assert table.lookup(key) == 100 + i


# --------------------------------------------------------------------- #
# Chaos + cluster integration
# --------------------------------------------------------------------- #


def test_mutation_chaos_mixed_phase_clean():
    from repro.faults.chaos import run_mutation_chaos

    report = run_mutation_chaos(
        "cha-tlb", seed=7, requests=200, tenants=2, write_ratio=0.5
    )
    checks = report.checks
    assert checks["wrong_reads"] == 0
    assert checks["lost_or_phantom"] == 0
    assert checks["result_errors"] == 0
    assert checks["availability"] == 1.0
    assert checks["swap_committed"] and checks["resize_committed"]
    # Byte-identical re-run: the mixed phase stays deterministic.
    again = run_mutation_chaos(
        "cha-tlb", seed=7, requests=200, tenants=2, write_ratio=0.5
    )
    assert report.dump() == again.dump()


def test_cluster_mixed_workload_routes_writes_to_primary():
    from repro.config import ClusterConfig, ServeConfig
    from repro.serve.cluster import SimulatedCluster

    cluster = SimulatedCluster(
        "cha-tlb",
        cluster_config=ClusterConfig(nodes=2, replication=2),
        serve_config=ServeConfig(tenants=2, write_ratio=0.5),
        seed=7,
        requests=120,
    )
    report = cluster.run()
    fleet = report.fleet
    assert fleet["completed"] == 120
    assert fleet["result_errors"] == 0
    assert fleet["writes_ok"] > 0
    assert fleet["write_problems"] == 0
    assert cluster.write_audit() == []
