"""Deterministic key and query-stream generators."""

from __future__ import annotations

import random
from typing import List, Sequence


def make_keys(count: int, length: int, *, seed: int = 1234) -> List[bytes]:
    """``count`` distinct random byte keys of exactly ``length`` bytes."""
    rng = random.Random(seed)
    keys = set()
    out: List[bytes] = []
    while len(out) < count:
        key = bytes(rng.getrandbits(8) for _ in range(length))
        if key not in keys:
            keys.add(key)
            out.append(key)
    return out


def zipf_indices(count: int, n: int, *, alpha: float = 0.99, seed: int = 99) -> List[int]:
    """``count`` indices in [0, n) drawn from a Zipf-like distribution.

    Matches the skew of real query streams (flow tables, KV caches) without
    scipy: inverse-CDF sampling over precomputed harmonic weights.
    """
    if n <= 0:
        raise ValueError("population must be positive")
    rng = random.Random(seed)
    weights = [1.0 / ((i + 1) ** alpha) for i in range(n)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    out = []
    for _ in range(count):
        u = rng.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        out.append(lo)
    return out


def pick_queries(
    keys: Sequence[bytes],
    count: int,
    *,
    miss_ratio: float = 0.0,
    key_length: int = 16,
    zipf: bool = False,
    seed: int = 7,
) -> List[bytes]:
    """A query stream over ``keys`` with optional misses and skew."""
    rng = random.Random(seed)
    if zipf:
        order = zipf_indices(count, len(keys), seed=seed)
        stream = [keys[i] for i in order]
    else:
        stream = [keys[rng.randrange(len(keys))] for _ in range(count)]
    n_miss = int(count * miss_ratio)
    for i in rng.sample(range(count), n_miss) if n_miss else []:
        stream[i] = bytes(rng.getrandbits(8) for _ in range(key_length))
    return stream
