"""Unit tests for simulated-memory data structures.

Every structure is checked three ways: the pure functional ``lookup``, the
trace-emitting ``emit_lookup`` (which must agree *and* produce a sane trace),
and layout invariants read back from raw simulated memory.
"""

import pytest

from repro.cpu import TraceBuilder
from repro.cpu.isa import OpKind
from repro.datastructs import (
    AhoCorasickTrie,
    BinarySearchTree,
    CuckooHashTable,
    HashOfLists,
    LinkedList,
    ProcessMemory,
    SkipList,
    Trie,
)
from repro.errors import DataStructureError


@pytest.fixture
def mem():
    return ProcessMemory(physical_bytes=128 * 1024 * 1024)


def keys_of(n, length=16, prefix=b"k"):
    return [
        (prefix + str(i).encode()).ljust(length, b"_")[:length] for i in range(n)
    ]


class TestLinkedList:
    def test_lookup_hit_and_miss(self, mem):
        ll = LinkedList(mem, key_length=16)
        keys = keys_of(20)
        for i, k in enumerate(keys):
            ll.insert(k, 1000 + i)
        assert ll.lookup(keys[7]) == 1007
        assert ll.lookup(b"absent".ljust(16, b"_")) is None
        assert len(ll) == 20

    def test_emit_lookup_agrees_with_lookup(self, mem):
        ll = LinkedList(mem, key_length=16)
        keys = keys_of(10)
        for i, k in enumerate(keys):
            ll.insert(k, i)
        for k in keys + [b"missing".ljust(16, b"_")]:
            b = TraceBuilder()
            key_addr = ll.store_key(k)
            assert ll.emit_lookup(b, key_addr, k) == ll.lookup(k)

    def test_trace_grows_with_probe_depth(self, mem):
        ll = LinkedList(mem, key_length=16)
        keys = keys_of(30)
        for i, k in enumerate(keys):
            ll.insert(k, i)
        # Inserts prepend: the first-inserted key is deepest.
        deep, shallow = keys[0], keys[-1]
        b1, b2 = TraceBuilder(), TraceBuilder()
        ll.emit_lookup(b1, ll.store_key(deep), deep)
        ll.emit_lookup(b2, ll.store_key(shallow), shallow)
        assert len(b1.trace) > len(b2.trace)

    def test_key_length_enforced(self, mem):
        ll = LinkedList(mem, key_length=16)
        with pytest.raises(DataStructureError):
            ll.insert(b"short", 1)

    def test_nodes_iteration_order(self, mem):
        ll = LinkedList(mem, key_length=16)
        keys = keys_of(3)
        for i, k in enumerate(keys):
            ll.insert(k, i)
        seen = [k for _, k, _ in ll.nodes()]
        assert seen == list(reversed(keys))  # prepend order


class TestCuckooHashTable:
    def test_insert_lookup_roundtrip(self, mem):
        ht = CuckooHashTable(mem, key_length=16, num_buckets=64)
        keys = keys_of(200)
        for i, k in enumerate(keys):
            ht.insert(k, i)
        for i, k in enumerate(keys):
            assert ht.lookup(k) == i
        assert ht.lookup(b"nope".ljust(16, b"_")) is None

    def test_update_in_place(self, mem):
        ht = CuckooHashTable(mem, key_length=16, num_buckets=64)
        k = keys_of(1)[0]
        ht.insert(k, 1)
        ht.insert(k, 2)
        assert ht.lookup(k) == 2
        assert len(ht) == 1

    def test_emit_lookup_agrees(self, mem):
        ht = CuckooHashTable(mem, key_length=16, num_buckets=64)
        keys = keys_of(100)
        for i, k in enumerate(keys):
            ht.insert(k, i)
        for k in keys[:20] + [b"missing".ljust(16, b"_")]:
            b = TraceBuilder()
            assert ht.emit_lookup(b, ht.store_key(k), k) == ht.lookup(k)

    def test_lookup_trace_is_short_and_flat(self, mem):
        # Hash table queries have a small fixed number of loads (Sec. VII-A).
        ht = CuckooHashTable(mem, key_length=16, num_buckets=256)
        keys = keys_of(500)
        for i, k in enumerate(keys):
            ht.insert(k, i)
        lengths = []
        for k in keys[:50]:
            b = TraceBuilder()
            ht.emit_lookup(b, ht.store_key(k), k)
            loads = sum(1 for op in b.trace if op.kind is OpKind.LOAD)
            lengths.append(loads)
        assert max(lengths) < 25

    def test_high_load_factor(self, mem):
        ht = CuckooHashTable(mem, key_length=16, num_buckets=32, entries_per_bucket=8)
        keys = keys_of(200)  # ~78% load factor
        for i, k in enumerate(keys):
            ht.insert(k, i)
        assert all(ht.lookup(k) == i for i, k in enumerate(keys))

    def test_rejects_non_power_of_two_buckets(self, mem):
        with pytest.raises(DataStructureError):
            CuckooHashTable(mem, key_length=16, num_buckets=100)


class TestSkipList:
    def test_sorted_iteration(self, mem):
        sl = SkipList(mem, key_length=16)
        keys = keys_of(50)
        for i, k in enumerate(keys):
            sl.insert(k, i)
        stored = [k for k, _ in sl.items()]
        assert stored == sorted(keys)

    def test_lookup_hit_and_miss(self, mem):
        sl = SkipList(mem, key_length=16)
        keys = keys_of(100)
        for i, k in enumerate(keys):
            sl.insert(k, i)
        for i, k in enumerate(keys):
            assert sl.lookup(k) == i
        assert sl.lookup(b"zzz".ljust(16, b"z")) is None

    def test_update_in_place(self, mem):
        sl = SkipList(mem, key_length=16)
        k = keys_of(1)[0]
        sl.insert(k, 1)
        sl.insert(k, 9)
        assert sl.lookup(k) == 9
        assert len(sl) == 1

    def test_emit_lookup_agrees(self, mem):
        sl = SkipList(mem, key_length=16)
        keys = keys_of(60)
        for i, k in enumerate(keys):
            sl.insert(k, i)
        for k in keys[:15] + [b"absent".ljust(16, b"_")]:
            b = TraceBuilder()
            assert sl.emit_lookup(b, sl.store_key(k), k) == sl.lookup(k)

    def test_towers_bounded_by_max_level(self, mem):
        sl = SkipList(mem, key_length=16, max_level=4)
        for i, k in enumerate(keys_of(100)):
            sl.insert(k, i)
        assert all(sl.lookup(k) is not None for k in keys_of(100))


class TestBinarySearchTree:
    def test_inorder_is_sorted(self, mem):
        bst = BinarySearchTree(mem, key_length=16)
        keys = keys_of(80)
        for i, k in enumerate(keys):
            bst.insert(k, i)
        stored = [k for k, _ in bst.items()]
        assert stored == sorted(keys)

    def test_lookup_and_depth(self, mem):
        bst = BinarySearchTree(mem, key_length=16)
        keys = keys_of(64)
        for i, k in enumerate(keys):
            bst.insert(k, i)
        assert all(bst.lookup(k) == i for i, k in enumerate(keys))
        assert bst.lookup(b"missing".ljust(16, b"_")) is None
        assert bst.depth_of(keys[0]) == 1  # first insert is the root

    def test_emit_lookup_agrees(self, mem):
        bst = BinarySearchTree(mem, key_length=16)
        keys = keys_of(40)
        for i, k in enumerate(keys):
            bst.insert(k, i)
        for k in keys[:10] + [b"absent".ljust(16, b"_")]:
            b = TraceBuilder()
            assert bst.emit_lookup(b, bst.store_key(k), k) == bst.lookup(k)

    def test_deeper_keys_cost_more_trace(self, mem):
        bst = BinarySearchTree(mem, key_length=16)
        keys = keys_of(128)
        for i, k in enumerate(keys):
            bst.insert(k, i)
        root_key = keys[0]
        deepest = max(keys, key=bst.depth_of)
        b1, b2 = TraceBuilder(), TraceBuilder()
        bst.emit_lookup(b1, bst.store_key(root_key), root_key)
        bst.emit_lookup(b2, bst.store_key(deepest), deepest)
        assert len(b2.trace) > len(b1.trace)


class TestTrie:
    def test_exact_match(self, mem):
        trie = Trie(mem, key_length=32)
        words = [b"he", b"she", b"his", b"hers"]
        for i, w in enumerate(words):
            trie.insert(w, i)
        trie.seal()
        for i, w in enumerate(words):
            assert trie.lookup(w) == i
        assert trie.lookup(b"her") is None
        assert trie.lookup(b"x") is None

    def test_query_before_seal_rejected(self, mem):
        trie = Trie(mem, key_length=8)
        trie.insert(b"a", 0)
        with pytest.raises(DataStructureError):
            trie.lookup(b"a")

    def test_emit_lookup_agrees(self, mem):
        trie = Trie(mem, key_length=32)
        words = [b"cat", b"car", b"cart", b"dog"]
        for i, w in enumerate(words):
            trie.insert(w, i)
        trie.seal()
        for w in words + [b"ca", b"zebra"]:
            b = TraceBuilder()
            addr = mem.store_bytes(w)
            assert trie.emit_lookup(b, addr, w) == trie.lookup(w)


class TestAhoCorasick:
    def test_matches_all_occurrences(self, mem):
        ac = AhoCorasickTrie(mem, key_length=64)
        for i, w in enumerate([b"he", b"she", b"his", b"hers"]):
            ac.insert(w, i)
        ac.seal()
        matches = ac.match(b"ushers")
        values = sorted(v for _, v in matches)
        # "ushers" contains "she" ending at position 3 and "hers" at 5; one
        # (most-specific) match is reported per position.
        assert values == [1, 3]
        positions = sorted(p for p, _ in matches)
        assert positions == [3, 5]

    def test_no_match(self, mem):
        ac = AhoCorasickTrie(mem, key_length=64)
        ac.insert(b"needle", 0)
        ac.seal()
        assert ac.match(b"haystackhaystack") == []

    def test_emit_match_agrees(self, mem):
        ac = AhoCorasickTrie(mem, key_length=64)
        for i, w in enumerate([b"ab", b"bc", b"abc", b"cc"]):
            ac.insert(w, i)
        ac.seal()
        text = b"abccbabcabcc"
        b = TraceBuilder()
        addr = mem.store_bytes(text)
        assert ac.emit_match(b, addr, text) == ac.match(text)
        assert len(b.trace) > len(text)  # at least one op per byte


class TestHashOfLists:
    def test_roundtrip_and_chaining(self, mem):
        h = HashOfLists(mem, key_length=16, num_buckets=4)  # force chains
        keys = keys_of(40)
        for i, k in enumerate(keys):
            h.insert(k, i)
        for i, k in enumerate(keys):
            assert h.lookup(k) == i
        assert h.lookup(b"none".ljust(16, b"_")) is None

    def test_update_in_place(self, mem):
        h = HashOfLists(mem, key_length=16)
        k = keys_of(1)[0]
        h.insert(k, 1)
        h.insert(k, 5)
        assert h.lookup(k) == 5
        assert len(h) == 1

    def test_emit_lookup_agrees(self, mem):
        h = HashOfLists(mem, key_length=16, num_buckets=8)
        keys = keys_of(30)
        for i, k in enumerate(keys):
            h.insert(k, i)
        for k in keys[:10] + [b"absent".ljust(16, b"_")]:
            b = TraceBuilder()
            assert h.emit_lookup(b, h.store_key(k), k) == h.lookup(k)


class TestHeaders:
    def test_header_reflects_structure(self, mem):
        ht = CuckooHashTable(
            mem, key_length=16, num_buckets=128, entries_per_bucket=4
        )
        hdr = ht.header()
        assert hdr.structure_type.name == "HASH_TABLE"
        assert hdr.subtype == 4
        assert hdr.key_length == 16
        assert hdr.size == 128
        assert hdr.root_ptr == ht.table_addr
        assert hdr.valid

    def test_header_is_cacheline_aligned(self, mem):
        for cls, kwargs in [
            (LinkedList, {}),
            (SkipList, {}),
            (BinarySearchTree, {}),
        ]:
            s = cls(mem, key_length=16, **kwargs)
            assert s.header_addr % 64 == 0
