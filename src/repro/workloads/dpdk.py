"""DPDK benchmark: L3 FIB lookups in a cuckoo hash table (Sec. VI-B).

Keys are 16 bytes, mimicking the TCP/IP 5-tuple-derived keys of DPDK's
``rte_hash``-based forwarding tables; values are next-hop identifiers.
Query density is high: packet-processing loops execute little besides the
lookup itself, so the ROB can keep many blocking queries in flight.
"""

from __future__ import annotations

from typing import Optional

from ..cpu.trace import TraceBuilder
from ..datastructs import CuckooHashTable
from ..system import System
from .base import QueryWorkload
from .generator import make_keys, pick_queries

KEY_LENGTH = 16


class DpdkFibWorkload(QueryWorkload):
    """Forwarding-information-base lookups on a cuckoo hash table."""

    name = "dpdk"
    roi_other_work = 12       # header parse + next-hop apply
    app_other_work = 220      # rest of packet processing (rx/tx, checksums)
    #: calibrated so query ops take ~44% of app time (paper Fig. 1)
    app_other_cycles = 150
    #: FIB entries take route add/withdraw traffic (docs/mutations.md).
    MUTABLE = True

    def __init__(
        self,
        system: System,
        *,
        num_flows: int = 12288,
        num_buckets: int = 8192,
        num_queries: int = 200,
        miss_ratio: float = 0.05,
        zipf: bool = True,
        seed: int = 7,
    ) -> None:
        super().__init__(system, num_queries=num_queries, seed=seed)
        self.num_flows = num_flows
        self.num_buckets = num_buckets
        self.miss_ratio = miss_ratio
        self.zipf = zipf
        self.table: Optional[CuckooHashTable] = None

    def build(self) -> None:
        self.table = CuckooHashTable(
            self.system.mem,
            key_length=KEY_LENGTH,
            num_buckets=self.num_buckets,
        )
        flows = make_keys(self.num_flows, KEY_LENGTH, seed=self.seed)
        for i, flow in enumerate(flows):
            self.table.insert(flow, 10_000 + i)
        queries = pick_queries(
            flows,
            self.num_queries,
            miss_ratio=self.miss_ratio,
            key_length=KEY_LENGTH,
            zipf=self.zipf,
            seed=self.seed + 1,
        )
        expected = [self.table.lookup(q) for q in queries]
        self._register_queries(queries, expected)

    def header_addr_for(self, index: int) -> int:
        return self.table.header_addr

    def emit_software_query(self, builder: TraceBuilder, index: int):
        return self.table.emit_lookup(
            builder, self._query_addrs[index], self._queries[index]
        )

    def software_lookup(self, index: int):
        return self.table.lookup(self._queries[index])

    def mutable_structure(self):
        self._require_built()
        return self.table
