"""Determinism regression tests: identical seeds must give identical cycles.

Every experiment in the repository is seeded; nondeterminism would make
EXPERIMENTS.md unreproducible and the benchmark shape-assertions flaky.
"""

from repro import small_config
from repro.core.accelerator import QueryRequest
from repro.datastructs import CuckooHashTable
from repro.system import System
from repro.workloads import make_workload, run_baseline, run_qei


def build(seed=7):
    system = System(small_config())
    workload = make_workload(
        "dpdk", system, num_flows=512, num_buckets=256, num_queries=40, seed=seed
    )
    return system, workload


def test_baseline_cycles_are_reproducible():
    runs = []
    for _ in range(2):
        system, workload = build()
        runs.append(run_baseline(system, workload))
    assert runs[0].cycles == runs[1].cycles
    assert runs[0].instructions == runs[1].instructions
    assert runs[0].values == runs[1].values


def test_qei_cycles_are_reproducible():
    runs = []
    for _ in range(2):
        system, workload = build()
        runs.append(run_qei(system, workload))
    assert runs[0].cycles == runs[1].cycles
    assert runs[0].values == runs[1].values


def test_different_seeds_differ():
    system_a, workload_a = build(seed=7)
    system_b, workload_b = build(seed=8)
    a = run_baseline(system_a, workload_a)
    b = run_baseline(system_b, workload_b)
    assert a.values != b.values  # different query streams


def test_single_query_latency_is_stable():
    latencies = []
    for _ in range(2):
        system = System(small_config())
        table = CuckooHashTable(system.mem, key_length=16, num_buckets=128)
        keys = [(b"k%d" % i).ljust(16, b"_") for i in range(64)]
        for i, key in enumerate(keys):
            table.insert(key, i)
        handle = system.accelerator.submit(
            QueryRequest(
                header_addr=table.header_addr,
                key_addr=table.store_key(keys[7]),
            ),
            0,
        )
        system.accelerator.wait_for(handle)
        latencies.append(handle.completion_cycle)
    assert latencies[0] == latencies[1]


def test_memory_layout_is_reproducible():
    addresses = []
    for _ in range(2):
        system, workload = build()
        addresses.append(workload.table.table_addr)
    assert addresses[0] == addresses[1]


def test_serving_report_is_byte_identical_across_runs():
    """Two serve runs with the same seed/config dump identical bytes."""
    from repro.serve import run_serving

    dumps = [
        run_serving("cha-tlb", tenants=2, requests=150, seed=11).dump()
        for _ in range(2)
    ]
    assert dumps[0] == dumps[1]


def test_serving_report_differs_across_seeds():
    from repro.serve import run_serving

    a = run_serving("cha-tlb", tenants=2, requests=150, seed=11).dump()
    b = run_serving("cha-tlb", tenants=2, requests=150, seed=12).dump()
    assert a != b
