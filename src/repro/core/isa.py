"""QUERY instruction semantics: the core <-> accelerator boundary (Sec. IV-A).

``QUERY_B reg.key/result mem.header_addr`` behaves like a long-latency load:
it occupies a load-queue slot and blocks retirement until the accelerator
returns the result.  ``QUERY_NB impl_reg.header mem.result reg.key`` behaves
like a store: it retires as soon as the accelerator accepts the request, and
software later polls the result address (SNAPSHOT_READ-style wide polls).

:class:`QueryPort` adapts a :class:`~repro.core.accelerator.QeiAccelerator`
to the core timing model's external-resolver protocol.  Completions are
returned as :class:`CompletionPromise` objects so the core model keeps
dispatching past an outstanding query — submitting the following queries to
the accelerator — and only forces the co-simulation forward when a
dependent instruction (or the ROB window) actually needs the result.  That
mirrors how the OoO core overlaps blocking queries in small batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..cpu.isa import MicroOp, OpKind
from ..errors import AcceleratorError
from ..mem.paging import AddressSpace
from .abort import AbortCode
from .accelerator import QeiAccelerator, QueryHandle, QueryRequest
from .cfa import OP_LOOKUP, RESULT_ABORTED, RESULT_FAULT

#: Cycles for a QUERY_NB to hand its operands to the accelerator and retire.
NB_ACCEPT_CYCLES = 3
#: Instruction cost of one wide SNAPSHOT_READ poll round (load + mask test).
POLL_INSTRUCTIONS = 3
#: Results checked per SNAPSHOT_READ (512-bit register / 64-bit flags).
RESULTS_PER_POLL = 8


@dataclass(frozen=True)
class QueryOperands:
    """Architectural operands of one QUERY instruction.

    ``op`` selects the operation (:data:`~repro.core.cfa.OP_LOOKUP` or a
    write op); write ops carry their operand in ``operand`` — the new value
    for UPDATE, the staged-record address for INSERT (docs/mutations.md).
    """

    header_addr: int
    key_addr: int
    result_addr: int = 0
    op: int = OP_LOOKUP
    operand: int = 0


@dataclass
class NbBatch:
    """A software-managed batch of non-blocking queries to poll together."""

    result_base: int
    handles: List[QueryHandle] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.handles)


class CompletionPromise:
    """Lazily-resolved completion time of an external operation."""

    __slots__ = ("_resolver", "_value")

    def __init__(self, resolver) -> None:
        self._resolver = resolver
        self._value: Optional[int] = None

    def resolve(self) -> int:
        if self._value is None:
            self._value = int(self._resolver())
            self._resolver = None
        return self._value


CompletionLike = Union[int, CompletionPromise]


def read_result(space: AddressSpace, result_addr: int) -> Tuple[int, int, AbortCode]:
    """Decode a non-blocking query's 16B result record.

    Returns ``(status, value, abort_code)``.  The status word keeps the
    coarse ``RESULT_*`` encoding the poll loop tests; when it signals a
    fault or flush, the payload word is the specific :class:`AbortCode`.
    """
    status = space.read_u64(result_addr)
    payload = space.read_u64(result_addr + 8)
    if status in (RESULT_FAULT, RESULT_ABORTED):
        return status, payload, AbortCode.of(payload)
    return status, payload, AbortCode.NONE


class QueryPort:
    """The external resolver wiring QUERY micro-ops to one accelerator."""

    def __init__(self, accelerator: QeiAccelerator, core_id: int = 0) -> None:
        self.accelerator = accelerator
        self.core_id = core_id
        self.handles: List[QueryHandle] = []

    # ------------------------------------------------------------------ #

    def __call__(self, op: MicroOp, issue_cycle: int) -> Tuple[CompletionLike, int]:
        if op.kind is OpKind.QUERY_B:
            return self._query_b(op.payload, issue_cycle)
        if op.kind is OpKind.QUERY_NB:
            return self._query_nb(op.payload, issue_cycle)
        if op.kind is OpKind.WAIT_RESULT:
            return self._wait_result(op.payload, issue_cycle)
        raise AcceleratorError(f"QueryPort cannot resolve {op.kind}")

    # ------------------------------------------------------------------ #

    def _query_b(self, payload, issue_cycle: int):
        operands = self._operands_of(payload)
        handle = self.accelerator.submit(
            QueryRequest(
                header_addr=operands.header_addr,
                key_addr=operands.key_addr,
                core_id=self.core_id,
                blocking=True,
                op=operands.op,
                operand=operands.operand,
            ),
            issue_cycle,
        )
        self.handles.append(handle)
        promise = CompletionPromise(
            lambda: max(self.accelerator.wait_for(handle), issue_cycle)
        )
        return promise, 0

    def _query_nb(self, payload, issue_cycle: int):
        operands = self._operands_of(payload)
        batch: Optional[NbBatch] = None
        if isinstance(payload, tuple):
            _, batch = payload
        if not operands.result_addr:
            raise AcceleratorError("QUERY_NB requires a result address")
        handle = self.accelerator.submit(
            QueryRequest(
                header_addr=operands.header_addr,
                key_addr=operands.key_addr,
                core_id=self.core_id,
                blocking=False,
                result_addr=operands.result_addr,
                op=operands.op,
                operand=operands.operand,
            ),
            issue_cycle,
        )
        self.handles.append(handle)
        if batch is not None:
            batch.handles.append(handle)
        # Retires once the accelerator has the operands.
        return issue_cycle + NB_ACCEPT_CYCLES, 0

    def _wait_result(self, payload, issue_cycle: int):
        if not isinstance(payload, NbBatch):
            raise AcceleratorError("WAIT_RESULT payload must be an NbBatch")
        batch = payload
        poll_rounds = max(1, (len(batch) + RESULTS_PER_POLL - 1) // RESULTS_PER_POLL)
        extra_instructions = poll_rounds * POLL_INSTRUCTIONS

        def resolver() -> int:
            done = issue_cycle
            for handle in batch.handles:
                done = max(done, self.accelerator.wait_for(handle))
            return done

        return CompletionPromise(resolver), extra_instructions

    # ------------------------------------------------------------------ #

    @staticmethod
    def _operands_of(payload) -> QueryOperands:
        if isinstance(payload, QueryOperands):
            return payload
        if isinstance(payload, tuple) and isinstance(payload[0], QueryOperands):
            return payload[0]
        raise AcceleratorError(
            "QUERY payload must be QueryOperands or (QueryOperands, NbBatch); "
            f"got {type(payload).__name__}"
        )
