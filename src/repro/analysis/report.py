"""Result container and table formatting for experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """One figure/table's reproduced data."""

    experiment: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, key: Any) -> Optional[Dict[str, Any]]:
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        return None

    # ------------------------------------------------------------------ #

    def format(self) -> str:
        """Render as a fixed-width table, paper style."""
        widths = {
            c: max(
                len(str(c)),
                max((len(_fmt(r.get(c))) for r in self.rows), default=0),
            )
            for c in self.columns
        }
        lines = [f"== {self.experiment}: {self.title} =="]
        header = "  ".join(str(c).ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in self.columns)
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)
