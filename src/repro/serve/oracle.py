"""Shadow oracle for mixed read/write serving runs (docs/mutations.md).

With writes in flight the static ``workload.expected[]`` table can no longer
judge a read: the right answer depends on which committed writes the read
could have observed.  The oracle keeps, per key, the committed timeline of
``(store_window_start, commit_cycle, value)`` transitions plus the set of
still-open write windows, and accepts a read iff its value was plausibly
visible somewhere inside the read's own ``[dispatch, completion]`` interval:

* any value whose possible-visibility window ``[window_start, next_commit)``
  overlaps the read interval, or
* the candidate value of an open (uncommitted) write window that started
  before the read completed.

This is deliberately *permissive across ordering races* (two writers to one
key may commit in either order) but *tight against torn values*: a value
that was never written to that key — a half-published record, a stale
pointer mixing two writes — is never in the valid set.

``final_check`` is the lost/phantom-update audit: after the run drains, the
live structure must hold exactly the timeline tail for every touched key
and the build-time baseline for every untouched key.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from ..core.cfa import OP_DELETE
from ..core.mutations import MUT_DELETED, MUT_INSERTED, MUT_UPDATED

#: One committed transition:
#: (commit_seq, store_window_start, commit_cycle, value).  ``commit_seq``
#: is the seqlock ordinal the write was serialised under — the exact
#: structure-wide commit order, independent of completion-callback order.
_Entry = Tuple[int, int, int, Optional[int]]


class ShadowOracle:
    """Per-key write timelines + in-flight windows for read validation."""

    def __init__(self, workload, mutator) -> None:
        self.workload = workload
        self.mutator = mutator
        #: Build-time answer per key (first occurrence wins; duplicate query
        #: indices share the key and therefore the answer).
        self._baseline: Dict[bytes, Optional[int]] = {}
        for index, key in enumerate(workload.queries):
            self._baseline.setdefault(key, workload.expected[index])
        self._history: Dict[bytes, List[_Entry]] = {}
        #: token -> (key, window_start, candidate value if the write lands).
        self._open: Dict[int, Tuple[bytes, int, Optional[int]]] = {}
        self._next_token = 0
        self.reads_checked = 0
        self.wrong_reads = 0
        self.writes_tracked = 0

    # ------------------------------------------------------------------ #
    # Write windows
    # ------------------------------------------------------------------ #

    def _hist(self, key: bytes) -> List[_Entry]:
        hist = self._history.get(key)
        if hist is None:
            hist = [(-1, 0, 0, self._baseline.get(key))]
            self._history[key] = hist
        return hist

    def begin_write(self, op: int, key: bytes, value: int, now: int) -> int:
        """Open a window at dispatch; returns a token for the completion."""
        self._next_token += 1
        candidate = None if op == OP_DELETE else value
        self._open[self._next_token] = (key, now, candidate)
        return self._next_token

    def cancel_write(self, token: int) -> None:
        """A write shed before submission: nothing could have landed."""
        self._open.pop(token, None)

    def end_write(
        self,
        token: int,
        result: Optional[int],
        *,
        commit_seq: Optional[int],
        commit_cycle: int,
    ) -> None:
        """Close a window with the write's MUT_* result (None = miss).

        ``commit_seq`` is the seqlock ordinal the commit held (from
        ``handle.commit_version`` or ``mutator.last_commit_version``):
        completions can resolve out of commit order — a software fallback
        applies *after* an accelerated store that resolves later — so the
        timeline inserts by ordinal, not arrival.
        """
        key, start, candidate = self._open.pop(token)
        self.writes_tracked += 1
        if result == MUT_DELETED:
            value: Optional[int] = None
        elif result in (MUT_UPDATED, MUT_INSERTED):
            value = candidate
        else:
            # A miss (UPDATE/DELETE of an absent key) commits nothing; the
            # timeline tail stands.
            return
        hist = self._hist(key)
        seq = commit_seq if commit_seq is not None else hist[-1][0] + 1
        bisect.insort(hist, (seq, start, commit_cycle, value))

    # ------------------------------------------------------------------ #
    # Read validation
    # ------------------------------------------------------------------ #

    def check_read(
        self,
        index: int,
        value: Optional[int],
        dispatch: int,
        completion: int,
    ) -> bool:
        """True iff ``value`` was plausibly visible during the read."""
        self.reads_checked += 1
        key = self.workload.key_for(index)
        hist = self._hist(key)
        for i, (_seq, start, _commit, committed) in enumerate(hist):
            next_commit = hist[i + 1][2] if i + 1 < len(hist) else None
            if next_commit is not None and next_commit < dispatch:
                continue  # overwritten before the read even dispatched
            if start > completion:
                continue  # could not have landed before the read finished
            if committed == value:
                return True
        for open_key, start, candidate in self._open.values():
            if open_key == key and start <= completion and candidate == value:
                return True
        self.wrong_reads += 1
        return False

    # ------------------------------------------------------------------ #
    # Lost/phantom audit
    # ------------------------------------------------------------------ #

    def final_check(self) -> List[str]:
        """Compare the drained structure against the oracle's final state.

        Returns one human-readable line per discrepancy: a *lost* update
        (timeline tail missing from the structure) or a *phantom* one (the
        structure changed under a key nothing wrote).
        """
        problems: List[str] = []
        if self._open:
            problems.append(
                f"{len(self._open)} write window(s) never closed"
            )
        for key in sorted(self._baseline):
            hist = self._history.get(key)
            want = hist[-1][3] if hist else self._baseline[key]
            got = self.mutator.current(key)
            if got != want:
                kind = "lost" if hist and len(hist) > 1 else "phantom"
                problems.append(
                    f"{kind} update on key {key.hex()}: structure holds "
                    f"{got!r}, oracle says {want!r}"
                )
        return problems
