"""Tab. III — QEI area and static power per configuration."""

import pytest

from repro.analysis import tab3_area_power

pytestmark = pytest.mark.slow


@pytest.mark.figure
def test_tab3_area_power(run_once):
    result = run_once(tab3_area_power)
    print()
    print(result.format())

    for row in result.rows:
        # Calibrated model lands within 2% of the paper's McPAT/CACTI output.
        assert row["area_mm2"] == pytest.approx(row["paper_area_mm2"], rel=0.02)
        assert row["static_mw"] == pytest.approx(row["paper_static_mw"], rel=0.02)

    rows = {row["configuration"]: row for row in result.rows}
    # The dedicated TLB more than doubles QEI-10's area (the paper's
    # practicality argument against CHA-TLB, Sec. VII-D).
    assert rows["QEI-10+TLB"]["area_mm2"] > 2 * rows["QEI-10"]["area_mm2"]
    # The 24x-larger device QST stays ~6x the area (banked storage).
    assert rows["QEI-240"]["area_mm2"] < 8 * rows["QEI-10"]["area_mm2"]
    # Everything is negligible next to an ~18mm2 core tile.
    assert all(row["area_mm2"] < 1.2 for row in result.rows)
