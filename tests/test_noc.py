"""Unit tests for the mesh NoC model."""

import pytest

from repro.config import NocConfig
from repro.errors import ConfigurationError
from repro.noc import MeshNoc


@pytest.fixture
def mesh():
    return MeshNoc(NocConfig(width=6, height=4))


def test_coords_roundtrip(mesh):
    for node in range(mesh.config.num_nodes):
        x, y = mesh.coords(node)
        assert mesh.node_at(x, y) == node


def test_coords_out_of_range(mesh):
    with pytest.raises(ConfigurationError):
        mesh.coords(24)


def test_xy_route_shape(mesh):
    # From (0,0) to (3,2): X first, then Y.
    path = mesh.route(0, mesh.node_at(3, 2))
    assert path[0] == 0
    assert path[-1] == mesh.node_at(3, 2)
    assert len(path) == 1 + 3 + 2
    xs = [mesh.coords(n)[0] for n in path]
    assert xs[:4] == [0, 1, 2, 3]  # X travelled first


def test_hops_manhattan(mesh):
    assert mesh.hops(0, 0) == 0
    assert mesh.hops(0, 5) == 5
    assert mesh.hops(0, mesh.node_at(5, 3)) == 8


def test_latency_scales_with_distance(mesh):
    near = mesh.latency(0, 1)
    far = mesh.latency(0, mesh.node_at(5, 3))
    assert far > near
    assert mesh.latency(3, 3) == 0


def test_send_accounts_link_bytes(mesh):
    mesh.send(0, 2, 64)
    links = {u.link: u.bytes_carried for u in mesh.link_utilisations()}
    assert links[(0, 1)] == 64
    assert links[(1, 2)] == 64


def test_hotspot_centralised_vs_distributed(mesh):
    # Centralised: every core sends to node 0 -> one hot link.
    for src in range(1, 24):
        mesh.send(src, 0, 64)
    hot_central = mesh.hotspot_factor(window_cycles=100)
    mesh.reset_traffic()
    # Distributed: each core sends to its own node's neighbour.
    for src in range(24):
        mesh.send(src, (src + 1) % 24, 64)
    hot_dist = mesh.hotspot_factor(window_cycles=100)
    assert hot_central > hot_dist


def test_large_message_serialization_latency(mesh):
    small = mesh.send(0, 1, 32)
    big = mesh.send(0, 1, 512)
    assert big > small


def test_mean_link_utilisation_bounded(mesh):
    mesh.send(0, 5, 64)
    util = mesh.mean_link_utilisation(window_cycles=10)
    assert 0 < util < 1


def test_reset_traffic(mesh):
    mesh.send(0, 3, 64)
    mesh.reset_traffic()
    assert mesh.hotspot_factor(100) == 0.0
