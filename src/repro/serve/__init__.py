"""The cloud serving tier: multi-tenant query frontend over one System.

Layered on the :class:`~repro.system.System` facade (docs/serving.md):

* :mod:`frontend` — per-tenant bounded admission queues + backpressure.
* :mod:`batcher` — QUERY_NB coalescing, sharded to each query's home slice.
* :mod:`loadgen` — deterministic open-loop (Poisson) and closed-loop
  (fixed-concurrency) tenant load generators.
* :mod:`slo` — per-tenant latency sketches, SLO budgets, serving reports.
* :mod:`server` — the serving loop tying them together.
* :mod:`driver` — the ``python -m repro serve`` experiment.
* :mod:`cluster` — the replicated multi-node tier: consistent-hash ring,
  membership prober, load-balancer failover (``python -m repro
  cluster-chaos``).
"""

from .batcher import Batcher
from .cluster import ClusterReport, SimulatedCluster
from .breaker import BreakerState, CircuitBreaker
from .driver import (
    SERVE_WORKLOADS,
    build_serving_system,
    run_serving,
    serve_experiment,
)
from .frontend import Admission, Frontend, ServeRequest
from .loadgen import ClosedLoopGenerator, LoadGenerator, OpenLoopGenerator
from .server import MODE_BATCHED, MODE_BLOCKING, QueryServer, ServingError
from .slo import ServingReport, SloTracker

__all__ = [
    "Admission",
    "Batcher",
    "BreakerState",
    "CircuitBreaker",
    "ClosedLoopGenerator",
    "ClusterReport",
    "Frontend",
    "SimulatedCluster",
    "LoadGenerator",
    "MODE_BATCHED",
    "MODE_BLOCKING",
    "OpenLoopGenerator",
    "QueryServer",
    "SERVE_WORKLOADS",
    "ServeRequest",
    "ServingError",
    "ServingReport",
    "SloTracker",
    "build_serving_system",
    "run_serving",
    "serve_experiment",
]
