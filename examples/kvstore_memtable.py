"""A key-value store memtable served by QEI (the RocksDB scenario).

Builds a skip-list memtable in simulated memory (100B keys, 900B values,
like the paper's db_bench setup), runs point lookups as software and as
QEI queries, and then demonstrates the architectural corner cases a real
deployment hits:

* a *miss* (key not in the memtable) returning NOT_FOUND;
* a context switch flushing the accelerator mid-flight, with non-blocking
  queries aborted via result-memory codes (Sec. IV-D);
* a dangling pointer in the structure surfacing as an architectural fault,
  not a crash.

Run:  python examples/kvstore_memtable.py
"""

from repro.core.accelerator import QueryRequest, QueryStatus
from repro.datastructs import SkipList
from repro.system import System
from repro.workloads import make_workload, run_baseline, run_qei

KEY_LENGTH = 100


def pad_key(text: str) -> bytes:
    return text.encode().ljust(KEY_LENGTH, b".")


def main() -> None:
    # --- throughput: software vs QEI over the memtable ------------------ #
    system_b = System(scheme="core-integrated")
    wl_b = make_workload("rocksdb", system_b, num_items=1500, num_queries=40)
    baseline = run_baseline(system_b, wl_b)

    system_q = System(scheme="core-integrated")
    wl_q = make_workload("rocksdb", system_q, num_items=1500, num_queries=40)
    qei = run_qei(system_q, wl_q)

    print("memtable point lookups (skip list, 100B keys / 900B values):")
    print(f"  software : {baseline.cycles_per_query:>7.0f} cycles/query")
    print(f"  QEI      : {qei.cycles_per_query:>7.0f} cycles/query "
          f"({baseline.cycles / qei.cycles:.2f}x)")
    print("  (the seek loop's heavy per-request software bounds the gain —"
          " the paper's 'bounded by the core' case, Sec. VII-A)\n")

    # --- architectural corner cases -------------------------------------- #
    system = System(scheme="core-integrated")
    memtable = SkipList(system.mem, key_length=KEY_LENGTH)
    for i in range(200):
        blob = system.mem.store_bytes(b"v" * 64)
        memtable.insert(pad_key(f"user:{i:05d}"), blob)

    def query(key, blocking=True, result_addr=0):
        handle = system.accelerator.submit(
            QueryRequest(
                header_addr=memtable.header_addr,
                key_addr=memtable.store_key(key),
                blocking=blocking,
                result_addr=result_addr,
            ),
            system.engine.now,
        )
        system.accelerator.wait_for(handle)
        return handle

    hit = query(pad_key("user:00042"))
    print(f"hit  : status={hit.status.value}, value=0x{hit.value:x}")

    miss = query(pad_key("user:99999"))
    print(f"miss : status={miss.status.value}, value={miss.value}")

    # Context switch: flush with a non-blocking query in flight.
    result_addr = system.mem.alloc(16)
    inflight = system.accelerator.submit(
        QueryRequest(
            header_addr=memtable.header_addr,
            key_addr=memtable.store_key(pad_key("user:00007")),
            blocking=False,
            result_addr=result_addr,
        ),
        system.engine.now,
    )
    system.engine.advance(10)  # interrupt arrives mid-query
    system.accelerator.flush()
    code = system.space.read_u64(result_addr)
    print(f"flush: status={inflight.status.value}, abort code in memory={code} "
          "(software restarts the query after the interrupt)")

    # Corruption: point the header at unmapped memory.
    system.space.write_u64(memtable.header_addr, 0xDEAD_0000)
    fault = query(pad_key("user:00001"))
    print(f"fault: status={fault.status.value} — {fault.fault_detail}")
    assert fault.status is QueryStatus.FAULT


if __name__ == "__main__":
    main()
