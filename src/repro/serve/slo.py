"""Per-tenant latency accounting, SLO budgets and the serving report.

Every completed request records its end-to-end latency — generation to
result, so admission queueing, batching delay, accelerator execution and
any software-fallback retries all count — into a per-tenant
:class:`~repro.sim.stats.PercentileSketch`.  The tracker folds the tenant
sketches into a fleet aggregate (sketch merges are exact) and judges each
tenant's p99 against its SLO budget.

:meth:`SloTracker.report` returns plain dictionaries; :meth:`SloTracker.dump`
serializes them canonically (sorted keys, fixed separators) so two runs with
the same seed and configuration produce byte-identical dumps — the
determinism contract ``tests/test_determinism.py`` enforces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import ServeConfig
from ..sim.stats import PercentileSketch, StatsRegistry


@dataclass
class ServingReport:
    """One serving run's results: per-tenant rows plus the aggregate."""

    scheme: str
    mode: str
    seed: int
    elapsed_cycles: int
    tenants: List[Dict[str, object]] = field(default_factory=list)
    aggregate: Dict[str, object] = field(default_factory=dict)

    def dump(self) -> str:
        """Canonical JSON (byte-identical across same-seed runs)."""
        return json.dumps(
            {
                "scheme": self.scheme,
                "mode": self.mode,
                "seed": self.seed,
                "elapsed_cycles": self.elapsed_cycles,
                "tenants": self.tenants,
                "aggregate": self.aggregate,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def tenant(self, tenant_id: int) -> Dict[str, object]:
        return self.tenants[tenant_id]


class SloTracker:
    """Latency sketches, outcome counters and SLO verdicts per tenant."""

    def __init__(
        self,
        config: ServeConfig,
        *,
        stats: Optional[StatsRegistry] = None,
        frequency_ghz: float = 2.5,
    ) -> None:
        self.config = config
        self.frequency_ghz = frequency_ghz
        self.stats = (stats or StatsRegistry()).scoped("serve.slo")
        self._sketches: List[PercentileSketch] = [
            self.stats.sketch(f"tenant{t}.latency")
            for t in range(config.tenants)
        ]
        self._completed = [
            self.stats.counter(f"tenant{t}.completed")
            for t in range(config.tenants)
        ]
        self._rejected = [
            self.stats.counter(f"tenant{t}.rejected")
            for t in range(config.tenants)
        ]
        self._fallbacks = [
            self.stats.counter(f"tenant{t}.fallbacks")
            for t in range(config.tenants)
        ]
        self._violations = [
            self.stats.counter(f"tenant{t}.slo_violations")
            for t in range(config.tenants)
        ]
        self._failed = [
            self.stats.counter(f"tenant{t}.failed")
            for t in range(config.tenants)
        ]
        self._errors = self.stats.counter("result_errors")

    # ------------------------------------------------------------------ #

    def record_completion(
        self, tenant: int, latency: int, *, accelerated: bool
    ) -> None:
        self._sketches[tenant].record(latency)
        self._completed[tenant].add()
        if not accelerated:
            self._fallbacks[tenant].add()
        if latency > self.config.slo_p99_cycles:
            self._violations[tenant].add()

    def record_rejection(self, tenant: int) -> None:
        self._rejected[tenant].add()

    def record_failure(self, tenant: int) -> None:
        """A request the fallback path could not resolve (or gave up on)."""
        self._failed[tenant].add()

    def record_error(self) -> None:
        """An accelerated result disagreeing with the software oracle."""
        self._errors.add()

    # ------------------------------------------------------------------ #

    def _qps(self, completed: int, elapsed_cycles: int) -> float:
        if not elapsed_cycles:
            return 0.0
        seconds = elapsed_cycles / (self.frequency_ghz * 1e9)
        return completed / seconds

    def _tenant_row(self, tenant: int, elapsed_cycles: int) -> Dict[str, object]:
        sketch = self._sketches[tenant]
        completed = self._completed[tenant].value
        fallbacks = self._fallbacks[tenant].value
        return {
            "tenant": tenant,
            "completed": completed,
            "rejected": self._rejected[tenant].value,
            "failed": self._failed[tenant].value,
            "fallbacks": fallbacks,
            "fallback_fraction": fallbacks / completed if completed else 0.0,
            "p50": sketch.p50,
            "p95": sketch.p95,
            "p99": sketch.p99,
            "p999": sketch.p999,
            "mean": sketch.mean,
            "qps": self._qps(completed, elapsed_cycles),
            "slo_violations": self._violations[tenant].value,
            "slo_budget_p99": self.config.slo_p99_cycles,
            "slo_met": sketch.p99 <= self.config.slo_p99_cycles,
            "latency_sketch": sketch.to_dict(),
        }

    def report(
        self,
        *,
        scheme: str,
        mode: str,
        seed: int,
        elapsed_cycles: int,
    ) -> ServingReport:
        report = ServingReport(
            scheme=scheme, mode=mode, seed=seed, elapsed_cycles=elapsed_cycles
        )
        merged = PercentileSketch("aggregate.latency")
        completed = rejected = fallbacks = failed = violations = 0
        for tenant in range(self.config.tenants):
            row = self._tenant_row(tenant, elapsed_cycles)
            report.tenants.append(row)
            merged.merge(self._sketches[tenant])
            completed += self._completed[tenant].value
            rejected += self._rejected[tenant].value
            fallbacks += self._fallbacks[tenant].value
            failed += self._failed[tenant].value
            violations += self._violations[tenant].value
        report.aggregate = {
            "completed": completed,
            "rejected": rejected,
            "failed": failed,
            "fallbacks": fallbacks,
            "fallback_fraction": fallbacks / completed if completed else 0.0,
            "result_errors": self._errors.value,
            "p50": merged.p50,
            "p95": merged.p95,
            "p99": merged.p99,
            "p999": merged.p999,
            "mean": merged.mean,
            "qps": self._qps(completed, elapsed_cycles),
            "slo_violations": violations,
            "tenants_meeting_slo": sum(
                1 for row in report.tenants if row["slo_met"]
            ),
        }
        return report
