"""Statistics primitives: counters, histograms and a registry.

Every architectural component keeps its measurements in a
:class:`StatsRegistry` so experiment drivers can snapshot, diff, and report
without reaching into component internals.

Counter idiom (hot-path-approved forms, in order of increasing heat):

* ``counter.add()`` / ``counter.add(n)`` — the readable default for cold and
  warm paths (setup, control plane, per-query bookkeeping).
* ``counter.value += 1`` — the hot-path form: skips a method call on paths
  executed once per simulated micro-op (cache probes, CEE steps).
* plain-int pending accumulators flushed through :meth:`StatsRegistry.flush`
  — the batched form for the epoch-memoized fast paths (mem/fastpath.py,
  noc/mesh.py): the component counts into a local ``int`` and registers a
  flush hook that folds it into the real :class:`Counter`.  Every read-side
  entry point (:meth:`snapshot`, :meth:`reset`, :meth:`fraction`) flushes
  first, so observed values are always exact.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Iterator, List, Tuple


class Counter:
    """A monotonically increasing (but resettable) event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A value histogram that tracks count/sum/min/max plus percentiles."""

    __slots__ = ("name", "_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []

    def record(self, value: float) -> None:
        self._samples.append(value)

    def reset(self) -> None:
        self._samples.clear()

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self._samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self._samples) if self._samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; ``pct`` in [0, 100]."""
        if not self._samples:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: n={self.count}, mean={self.mean:.2f}, "
            f"max={self.maximum:.2f})"
        )


class PercentileSketch:
    """A mergeable log-bucketed quantile sketch (DDSketch/HDR style).

    :class:`Histogram` keeps every sample, which is fine for a few thousand
    ROI latencies but not for a serving tier recording one latency per
    request.  The sketch folds non-negative values into geometric buckets of
    relative width ``2 * relative_error``, so any quantile estimate ``q̂``
    satisfies ``|q̂ - q| <= q * relative_error / (1 - relative_error)``
    against the nearest-rank quantile ``q`` of the raw samples, in O(1)
    memory per decade of dynamic range.

    Merging two sketches adds their bucket counts, so merge is exact,
    commutative and associative — per-tenant sketches roll up into fleet
    aggregates without re-recording.
    """

    __slots__ = (
        "name",
        "relative_error",
        "_gamma",
        "_log_gamma",
        "_buckets",
        "_low_count",
        "_count",
        "_total",
        "_min",
        "_max",
    )

    DEFAULT_RELATIVE_ERROR = 0.01

    def __init__(
        self, name: str, relative_error: float = DEFAULT_RELATIVE_ERROR
    ) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError(
                f"relative_error must be in (0, 1), got {relative_error}"
            )
        self.name = name
        self.relative_error = relative_error
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._low_count = 0  # exact zeros, which no log bucket can hold
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------ #

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"sketch values must be non-negative, got {value}")
        self._count += 1
        self._total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if value == 0.0:
            self._low_count += 1
            return
        index = int(math.floor(math.log(value) / self._log_gamma))
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def reset(self) -> None:
        self._buckets.clear()
        self._low_count = 0
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------ #

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    def quantile(self, pct: float) -> float:
        """Nearest-rank quantile estimate; ``pct`` in [0, 100]."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"quantile must be in [0, 100], got {pct}")
        if not self._count:
            return 0.0
        rank = max(1, math.ceil(pct / 100.0 * self._count))
        cumulative = self._low_count
        if rank <= cumulative:
            # The zero band only ever holds exact zeros.
            return 0.0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                representative = (
                    self._gamma ** index * (1.0 + self._gamma) / 2.0
                )
                return min(max(representative, self._min), self._max)
        return self._max  # float round-off guard; cannot be reached exactly

    @property
    def p50(self) -> float:
        return self.quantile(50.0)

    @property
    def p95(self) -> float:
        return self.quantile(95.0)

    @property
    def p99(self) -> float:
        return self.quantile(99.0)

    @property
    def p999(self) -> float:
        return self.quantile(99.9)

    # ------------------------------------------------------------------ #

    def merge(self, other: "PercentileSketch") -> "PercentileSketch":
        """Fold ``other``'s samples into this sketch (in place)."""
        if abs(other.relative_error - self.relative_error) > 1e-12:
            raise ValueError(
                "cannot merge sketches with different relative errors: "
                f"{self.relative_error} vs {other.relative_error}"
            )
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._low_count += other._low_count
        self._count += other._count
        self._total += other._total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def to_dict(self) -> Dict[str, object]:
        """Canonical (JSON-stable) serialization of the sketch state."""
        return {
            "count": self._count,
            "total": self._total,
            "min": self.minimum,
            "max": self.maximum,
            "low": self._low_count,
            "buckets": {str(i): self._buckets[i] for i in sorted(self._buckets)},
        }

    def __repr__(self) -> str:
        return (
            f"PercentileSketch({self.name}: n={self._count}, "
            f"p50={self.p50:.1f}, p99={self.p99:.1f})"
        )


class StatsRegistry:
    """Hierarchical named counters, histograms and percentile sketches.

    Names are dotted paths such as ``"l2.misses"`` or ``"qei.uops.compare"``.
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sketches: Dict[str, PercentileSketch] = {}
        # Flush hooks fold batched plain-int accumulators (the fast paths'
        # pending counts) into real counters.  The list is shared by every
        # scoped() view, like the storage dicts, so a flush through any view
        # drains every producer wired to this registry tree.
        self._flush_hooks: List[Callable[[], None]] = []

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        """Get (or lazily create) the counter with this name."""
        full = self._qualify(name)
        if full not in self._counters:
            self._counters[full] = Counter(full)
        return self._counters[full]

    def histogram(self, name: str) -> Histogram:
        """Get (or lazily create) the histogram with this name."""
        full = self._qualify(name)
        if full not in self._histograms:
            self._histograms[full] = Histogram(full)
        return self._histograms[full]

    def sketch(
        self,
        name: str,
        relative_error: float = PercentileSketch.DEFAULT_RELATIVE_ERROR,
    ) -> PercentileSketch:
        """Get (or lazily create) the percentile sketch with this name."""
        full = self._qualify(name)
        if full not in self._sketches:
            self._sketches[full] = PercentileSketch(full, relative_error)
        return self._sketches[full]

    def add_flush_hook(self, hook: Callable[[], None]) -> None:
        """Register a callable that folds pending batched counts in.

        Hooks must be idempotent when nothing is pending; they run on every
        :meth:`flush` (and therefore on every snapshot/reset/fraction).
        """
        self._flush_hooks.append(hook)

    def flush(self) -> None:
        """Fold every producer's pending batched counts into the counters."""
        for hook in self._flush_hooks:
            hook()

    def fraction(self, numerator: str, *denominators: str) -> float:
        """``numerator / sum(denominators)``, 0.0 when the total is zero.

        Names are qualified like :meth:`counter`; missing counters count as
        zero.  Used for derived ratios such as the software-fallback
        fraction (fallbacks taken / queries executed).
        """
        self.flush()

        def value(name: str) -> int:
            counter = self._counters.get(self._qualify(name))
            return counter.value if counter else 0

        total = sum(value(name) for name in denominators)
        return value(numerator) / total if total else 0.0

    def scoped(self, prefix: str) -> "StatsRegistry":
        """A view that shares storage but prepends ``prefix`` to names."""
        view = StatsRegistry(self._qualify(prefix))
        view._counters = self._counters
        view._histograms = self._histograms
        view._sketches = self._sketches
        view._flush_hooks = self._flush_hooks
        return view

    def snapshot(self) -> Dict[str, float]:
        """All counter values (histograms/sketches reported as summaries)."""
        self.flush()
        out: Dict[str, float] = {c.name: c.value for c in self._counters.values()}
        for h in self._histograms.values():
            out[f"{h.name}.count"] = h.count
            out[f"{h.name}.total"] = h.total
        for s in self._sketches.values():
            out[f"{s.name}.count"] = s.count
            out[f"{s.name}.total"] = s.total
        return out

    def diff(self, before: Dict[str, float]) -> Dict[str, float]:
        """Per-name deltas of the current snapshot versus ``before``."""
        now = self.snapshot()
        keys = set(now) | set(before)
        return {k: now.get(k, 0.0) - before.get(k, 0.0) for k in keys}

    def reset(self) -> None:
        # Flush first: pending batched counts belong to the epoch being
        # reset, exactly as if they had been added unbatched before the call.
        self.flush()
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
        for sketch in self._sketches.values():
            sketch.reset()

    def items(self) -> Iterator[Tuple[str, float]]:
        yield from sorted(self.snapshot().items())

    def report(self, only: Iterable[str] = ()) -> str:
        """Human-readable dump, optionally filtered by name prefixes."""
        prefixes = tuple(only)
        lines = []
        for name, value in self.items():
            if prefixes and not name.startswith(prefixes):
                continue
            lines.append(f"{name:<48} {value}")
        return "\n".join(lines)
