"""Unit tests for the cache hierarchy, DRAM and NUCA slice mapping."""

import pytest

from repro.config import small_config
from repro.mem import MemoryHierarchy
from repro.mem.cache import CacheLevelName
from repro.mem.dram import Dram
from repro.mem.hierarchy import nuca_slice_hash
from repro.config import DramConfig


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(small_config())


class TestNucaHash:
    def test_deterministic(self):
        assert nuca_slice_hash(12345, 24) == nuca_slice_hash(12345, 24)

    def test_spreads_strided_lines(self):
        slices = [nuca_slice_hash(i * 64, 24) for i in range(1000)]
        counts = {s: slices.count(s) for s in set(slices)}
        assert len(counts) == 24
        assert max(counts.values()) < 3 * (1000 / 24)


class TestHierarchy:
    def test_first_access_goes_to_dram(self, hierarchy):
        res = hierarchy.access_from_core(0, 0x12340)
        assert res.level is CacheLevelName.DRAM

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.access_from_core(0, 0x12340)
        res = hierarchy.access_from_core(0, 0x12340)
        assert res.level is CacheLevelName.L1
        assert res.latency == hierarchy.config.core.l1d.latency_cycles

    def test_latency_ordering(self, hierarchy):
        dram = hierarchy.access_from_core(0, 0x50000)
        l1 = hierarchy.access_from_core(0, 0x50000)
        hierarchy.l1[0].invalidate()
        l2 = hierarchy.access_from_core(0, 0x50000)
        hierarchy.l1[0].invalidate()
        hierarchy.l2[0].invalidate()
        llc = hierarchy.access_from_core(0, 0x50000)
        assert l1.latency < l2.latency < llc.latency < dram.latency
        assert l2.level is CacheLevelName.L2
        assert llc.level is CacheLevelName.LLC

    def test_other_core_misses_private_but_hits_llc(self, hierarchy):
        hierarchy.access_from_core(0, 0x60000)
        res = hierarchy.access_from_core(1, 0x60000)
        assert res.level is CacheLevelName.LLC

    def test_no_fill_l1_leaves_l1_clean(self, hierarchy):
        hierarchy.access_from_core(0, 0x70000, fill_l1=False)
        line = hierarchy.line_of(0x70000)
        assert not hierarchy.l1[0].probe(line)
        assert hierarchy.l2[0].probe(line)

    def test_no_fill_private_avoids_pollution(self, hierarchy):
        hierarchy.access_from_core(0, 0x80000, fill_l1=False, fill_l2=False)
        line = hierarchy.line_of(0x80000)
        assert not hierarchy.l1[0].probe(line)
        assert not hierarchy.l2[0].probe(line)
        slice_id = hierarchy.slice_of(line)
        assert hierarchy.llc_slices[slice_id].probe(line)

    def test_access_from_slice_bypasses_private_caches(self, hierarchy):
        line = hierarchy.line_of(0x90000)
        home = hierarchy.slice_of(line)
        res = hierarchy.access_from_slice(home, 0x90000)
        assert res.level is CacheLevelName.DRAM
        res2 = hierarchy.access_from_slice(home, 0x90000)
        assert res2.level is CacheLevelName.LLC
        assert not hierarchy.l1[0].probe(line)

    def test_slice_local_access_has_no_hops(self, hierarchy):
        line = hierarchy.line_of(0xA0000)
        home = hierarchy.slice_of(line)
        hierarchy.access_from_slice(home, 0xA0000)
        res = hierarchy.access_from_slice(home, 0xA0000)
        assert res.noc_hops == 0

    def test_flush_private(self, hierarchy):
        hierarchy.access_from_core(0, 0xB0000)
        hierarchy.flush_private(0)
        res = hierarchy.access_from_core(0, 0xB0000)
        assert res.level is CacheLevelName.LLC

    def test_flush_all(self, hierarchy):
        hierarchy.access_from_core(0, 0xC0000)
        hierarchy.flush_all()
        res = hierarchy.access_from_core(0, 0xC0000)
        assert res.level is CacheLevelName.DRAM


class TestDram:
    def test_fixed_latency_when_idle(self):
        dram = Dram(DramConfig())
        assert dram.access(0, now=0) == dram.config.latency_cycles

    def test_channel_queueing_adds_latency(self):
        dram = Dram(DramConfig(channels=1))
        first = dram.access(0, now=0)
        second = dram.access(1, now=0)
        assert second > first

    def test_channels_interleave(self):
        dram = Dram(DramConfig(channels=6))
        assert dram.channel_of(0) != dram.channel_of(1)
        latencies = [dram.access(i, now=0) for i in range(6)]
        assert all(l == dram.config.latency_cycles for l in latencies)

    def test_reset_timing(self):
        dram = Dram(DramConfig(channels=1))
        dram.access(0, now=0)
        dram.reset_timing()
        assert dram.access(1, now=0) == dram.config.latency_cycles
