"""repro — a full-system reproduction of QEI (HPCA 2021).

QEI is a generic, near-cache query accelerator: data-structure lookups are
abstracted into configurable finite automata (CFAs) executed by a small
engine (QST + CEE + DPU) integrated next to each core's L2, with comparators
distributed into the LLC's caching-and-home agents.

Public entry points:

* :class:`repro.config.SystemConfig` — the simulated machine (Tab. II).
* :class:`repro.system.System` — builds the machine for one integration
  scheme and runs workload regions-of-interest on it.
* :mod:`repro.workloads` — the five paper benchmarks.
* :mod:`repro.analysis` — one driver per paper figure/table.
"""

from .config import (
    IntegrationScheme,
    QeiConfig,
    ServeConfig,
    SystemConfig,
    small_config,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "IntegrationScheme",
    "QeiConfig",
    "ReproError",
    "ServeConfig",
    "SystemConfig",
    "small_config",
    "__version__",
]
