"""Edge-case unit tests for the accelerator engine's internals."""

import pytest

from repro import small_config
from repro.config import PAGE_BYTES
from repro.core.accelerator import QueryRequest, QueryStatus
from repro.datastructs import CuckooHashTable, LinkedList, SkipList
from repro.errors import AcceleratorError
from repro.system import System


@pytest.fixture
def system():
    return System(small_config())


def keys_of(n, length=16):
    return [(b"k%d" % i).ljust(length, b"_") for i in range(n)]


class TestSpeculativeFetchTruncation:
    def test_usable_length_respects_unmapped_tail(self, system):
        # Allocate near the end of a mapped page, with the next page unmapped.
        space = system.space
        vaddr = 0x0800_0000
        space.map_page(vaddr)
        probe_base = vaddr + PAGE_BYTES - 24  # room for 24 mapped bytes only
        accel = system.accelerator
        usable = accel._usable_length(probe_base, 64, 24)
        assert usable == 24

    def test_usable_length_extends_through_mapped_pages(self, system):
        space = system.space
        vaddr = 0x0900_0000
        space.map_page(vaddr)
        space.map_page(vaddr + PAGE_BYTES)
        probe_base = vaddr + PAGE_BYTES - 24
        usable = system.accelerator._usable_length(probe_base, 64, 24)
        assert usable == 64

    def test_mandatory_prefix_faults_normally(self, system):
        assert system.accelerator._usable_length(0x1000, 64, None) == 64

    def test_skiplist_query_near_page_edge_is_correct(self, system):
        """End-to-end: tall-tower nodes at page edges must not corrupt."""
        sl = SkipList(system.mem, key_length=16)
        keys = keys_of(150)
        for i, key in enumerate(keys):
            sl.insert(key, 3000 + i)
        for key in keys[::13]:
            handle = system.accelerator.submit(
                QueryRequest(
                    header_addr=sl.header_addr, key_addr=sl.store_key(key)
                ),
                system.engine.now,
            )
            system.accelerator.wait_for(handle)
            assert handle.value == sl.lookup(key)


class TestQueryQueueFairness:
    def test_queued_queries_complete_in_fifo_order(self, system):
        """With the QST full, the admission queue drains in arrival order."""
        ht = CuckooHashTable(system.mem, key_length=16, num_buckets=64)
        keys = keys_of(30)
        for i, key in enumerate(keys):
            ht.insert(key, i)
        handles = []
        for key in keys:  # 30 > 10 QST entries
            handles.append(
                system.accelerator.submit(
                    QueryRequest(
                        header_addr=ht.header_addr, key_addr=ht.store_key(key)
                    ),
                    0,
                )
            )
        for handle in handles:
            system.accelerator.wait_for(handle)
        accept_order = [h.accept_cycle for h in handles]
        assert accept_order == sorted(accept_order)
        assert all(h.status is QueryStatus.FOUND for h in handles)

    def test_wait_for_detects_starved_engine(self, system):
        """A handle that can never complete raises instead of spinning."""
        from repro.core.accelerator import QueryHandle

        orphan = QueryHandle(
            QueryRequest(header_addr=0x40, key_addr=0x80), submit_cycle=0
        )
        with pytest.raises(AcceleratorError):
            system.accelerator.wait_for(orphan)


class TestOnDoneCallbacks:
    def test_callback_fires_on_completion(self, system):
        ll = LinkedList(system.mem, key_length=16)
        ll.insert(keys_of(1)[0], 5)
        fired = []
        handle = system.accelerator.submit(
            QueryRequest(
                header_addr=ll.header_addr,
                key_addr=ll.store_key(keys_of(1)[0]),
            ),
            0,
        )
        handle.on_done(lambda h: fired.append(h.value))
        system.accelerator.wait_for(handle)
        assert fired == [5]

    def test_callback_on_already_done_handle_fires_immediately(self, system):
        ll = LinkedList(system.mem, key_length=16)
        ll.insert(keys_of(1)[0], 9)
        handle = system.accelerator.submit(
            QueryRequest(
                header_addr=ll.header_addr,
                key_addr=ll.store_key(keys_of(1)[0]),
            ),
            0,
        )
        system.accelerator.wait_for(handle)
        fired = []
        handle.on_done(lambda h: fired.append(True))
        assert fired == [True]


class TestMixedModeTraffic:
    def test_blocking_and_non_blocking_interleave(self, system):
        ht = CuckooHashTable(system.mem, key_length=16, num_buckets=64)
        keys = keys_of(20)
        for i, key in enumerate(keys):
            ht.insert(key, i)
        handles = []
        for i, key in enumerate(keys):
            blocking = i % 2 == 0
            result_addr = 0 if blocking else system.mem.alloc(16)
            handles.append(
                system.accelerator.submit(
                    QueryRequest(
                        header_addr=ht.header_addr,
                        key_addr=ht.store_key(key),
                        blocking=blocking,
                        result_addr=result_addr,
                    ),
                    system.engine.now,
                )
            )
        for handle in handles:
            system.accelerator.wait_for(handle)
        for i, handle in enumerate(handles):
            assert handle.value == i
            if not handle.request.blocking:
                assert system.space.read_u64(handle.request.result_addr) == 1

    def test_same_key_concurrent_queries_agree(self, system):
        ht = CuckooHashTable(system.mem, key_length=16, num_buckets=64)
        key = keys_of(1)[0]
        ht.insert(key, 123)
        key_addr = ht.store_key(key)
        handles = [
            system.accelerator.submit(
                QueryRequest(header_addr=ht.header_addr, key_addr=key_addr), 0
            )
            for _ in range(8)
        ]
        for handle in handles:
            system.accelerator.wait_for(handle)
        assert {h.value for h in handles} == {123}


class TestDrain:
    def test_drain_completes_everything(self, system):
        ll = LinkedList(system.mem, key_length=16)
        keys = keys_of(6)
        for i, key in enumerate(keys):
            ll.insert(key, i)
        handles = [
            system.accelerator.submit(
                QueryRequest(
                    header_addr=ll.header_addr, key_addr=ll.store_key(key)
                ),
                0,
            )
            for key in keys
        ]
        system.accelerator.drain()
        assert all(h.done for h in handles)
