"""Unit tests for the area/power models against Tab. III."""

import pytest

from repro.power import (
    DynamicEnergyModel,
    qei_configuration,
    tab3_configurations,
)
from repro.power.cacti import logic_block, qst_macro, tlb_macro

#: Paper Tab. III values.
PAPER_TAB3 = {
    "QEI-10": (0.1752, 10.8984),
    "QEI-10+TLB": (0.5730, 30.9049),
    "QEI-240": (1.0901, 20.8764),
}


class TestTab3Calibration:
    def test_all_configurations_match_paper(self):
        for config in tab3_configurations():
            area, power = PAPER_TAB3[config.name]
            assert config.area_mm2 == pytest.approx(area, rel=0.02), config.name
            assert config.static_power_mw == pytest.approx(power, rel=0.02), (
                config.name
            )

    def test_tlb_dominates_qei10_area(self):
        """The paper's practicality argument: the extra TLB costs more than
        the entire rest of the accelerator (Sec. VII-D)."""
        plain, with_tlb, _ = tab3_configurations()
        tlb_area = with_tlb.area_mm2 - plain.area_mm2
        assert tlb_area > plain.area_mm2

    def test_device_qst_scales_sublinearly(self):
        a10 = qst_macro(10).area_mm2
        a240 = qst_macro(240).area_mm2
        assert a240 / a10 < 24
        assert a240 > a10

    def test_area_is_negligible_vs_core_tile(self):
        """~18mm2 core tile (Sec. VII-D): QEI-10 is under 2% of it."""
        plain = tab3_configurations()[0]
        assert plain.area_mm2 < 0.02 * 18.0

    def test_breakdown_renders(self):
        text = tab3_configurations()[0].breakdown()
        assert "qst[10]" in text
        assert "total" in text


class TestPrimitives:
    def test_tlb_macro_linear(self):
        assert tlb_macro(2048).area_mm2 == pytest.approx(
            2 * tlb_macro(1024).area_mm2
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            tlb_macro(0)
        with pytest.raises(ValueError):
            qst_macro(-1)
        with pytest.raises(ValueError):
            logic_block("nonexistent")
        with pytest.raises(ValueError):
            logic_block("alu", 0)

    def test_custom_configuration(self):
        config = qei_configuration("ablate", qst_entries=20, comparators=4)
        base = qei_configuration("base", qst_entries=10, comparators=4)
        assert config.area_mm2 > base.area_mm2


class _FakeResult:
    def __init__(self, instructions, mispredicts=0, levels=None, cycles=1000):
        self.instructions = instructions
        self.branch_mispredicts = mispredicts
        self.level_breakdown = levels or {}
        self.cycles = cycles


class TestDynamicEnergy:
    def test_baseline_energy_counts_memory_levels(self):
        model = DynamicEnergyModel()
        cheap = {"core0.l1d.hits": 50}
        costly = {"dram.accesses": 50}
        base = _FakeResult(100)
        assert model.baseline_query_energy_pj(
            base, costly, 10
        ) > model.baseline_query_energy_pj(base, cheap, 10)

    def test_qei_beats_baseline_energy(self):
        model = DynamicEnergyModel()
        baseline = _FakeResult(900, mispredicts=40)
        baseline_delta = {"core0.l1d.hits": 300, "core0.l2.hits": 80}
        qei_core = _FakeResult(60)
        delta = {
            "core0.l1d.hits": 10,
            "core0.l2.hits": 15,
            "llc.slice0.hits": 12,
            "qei.cee.steps": 40,
            "qei.core-integrated.translations": 25,
            "qei.uops.hash": 1,
            "qei.uops.alu": 3,
            "cha0.comparators.busy_cycles": 20,
            "noc.messages": 30,
        }
        ratio = model.relative_dynamic_power(
            baseline, baseline_delta, 1, qei_core, delta, 1
        )
        assert ratio < 0.40  # the paper's >60% reduction

    def test_zero_queries_is_safe(self):
        model = DynamicEnergyModel()
        assert model.baseline_query_energy_pj(_FakeResult(10), {}, 0) > 0
