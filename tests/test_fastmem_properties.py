"""Lockstep property tests for the epoch-memoized memory fast path.

Two :class:`MemoryHierarchy` instances — one with the memo layer forced on,
one with it forced off — are driven through identical random access streams
(mixed core/slice origin, reads and writes, per-line and whole-cache
invalidates, private/full flushes, warm sweeps, prefetch on and off).  After
every access the returned :class:`AccessResult`\\ s must be equal, and at
the end the *entire* visible state must match: every cache set's contents
in exact LRU order (dirty bits included), DRAM channel timing, NoC link
traffic, and the full stats snapshot.

This is the executable form of the epoch contract documented in
mem/fastpath.py: if a memoized replay ever diverged from the reference walk
— a missed epoch bump, a wrong LRU touch, a dropped counter — some stream
found by hypothesis would catch it here.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.config import (  # noqa: E402
    CacheConfig,
    CoreConfig,
    DramConfig,
    LlcConfig,
    NocConfig,
    SystemConfig,
    TlbConfig,
)
from repro.mem.hierarchy import MemoryHierarchy  # noqa: E402
from repro.noc.mesh import MeshNoc  # noqa: E402

NUM_CORES = 2
#: Line-address universe: small enough that random streams revisit lines
#: (exercising the memo) and overflow the tiny sets (exercising epochs).
MAX_LINE = 64


def _tiny_config() -> SystemConfig:
    # Deliberately miniature caches: 2-4 lines per set so random streams
    # constantly evict, invalidating memo records mid-stream.
    return SystemConfig(
        num_cores=NUM_CORES,
        core=CoreConfig(
            l1d=CacheConfig(4 * 64, 2, 4),        # 2 sets x 2 ways
            l1i=CacheConfig(4 * 64, 2, 4),
            l2=CacheConfig(8 * 64, 2, 14),        # 4 sets x 2 ways
            l1_dtlb=TlbConfig(8, 2, 1),
            l2_tlb=TlbConfig(16, 2, 9),
        ),
        llc=LlcConfig(
            total_size_bytes=NUM_CORES * 8 * 64,  # 4 lines/slice, 2-way
            associativity=2,
            slices=NUM_CORES,
        ),
        dram=DramConfig(channels=2),
        noc=NocConfig(width=2, height=1),
        memory_bytes=1024 * 1024,
    )


def _build_pair():
    config = _tiny_config()
    pair = []
    for fastmem in (True, False):
        noc = MeshNoc(config.noc)
        pair.append(
            (MemoryHierarchy(config, noc=noc, fastmem=fastmem), noc)
        )
    (fast, fast_noc), (slow, slow_noc) = pair
    assert fast._fast is not None and slow._fast is None
    return fast, fast_noc, slow, slow_noc


_core_access = st.tuples(
    st.just("core"),
    st.integers(0, NUM_CORES - 1),
    st.integers(0, MAX_LINE - 1),
    st.booleans(),  # write
    st.booleans(),  # fill_l1
    st.booleans(),  # fill_l2
)
_slice_access = st.tuples(
    st.just("slice"),
    st.integers(0, NUM_CORES - 1),
    st.integers(0, MAX_LINE - 1),
    st.booleans(),  # write
)
_invalidate = st.tuples(
    st.just("invalidate"),
    st.sampled_from(["l1", "l2", "llc"]),
    st.integers(0, NUM_CORES - 1),
    st.one_of(st.none(), st.integers(0, MAX_LINE - 1)),
)
_flush_private = st.tuples(st.just("flush_private"), st.integers(0, NUM_CORES - 1))
_flush_all = st.tuples(st.just("flush_all"))
_warm = st.tuples(
    st.just("warm"),
    st.integers(0, NUM_CORES - 1),
    st.lists(st.integers(0, MAX_LINE - 1), min_size=1, max_size=12),
)

_ops = st.lists(
    st.one_of(
        _core_access,
        _core_access,
        _core_access,  # weight toward accesses
        _slice_access,
        _slice_access,
        _invalidate,
        _flush_private,
        _flush_all,
        _warm,
    ),
    min_size=1,
    max_size=120,
)


def _apply(hierarchy, op, now):
    kind = op[0]
    if kind == "core":
        _, core, line, write, fill_l1, fill_l2 = op
        return hierarchy.access_from_core(
            core, line * 64 + 8, write=write, now=now,
            fill_l1=fill_l1, fill_l2=fill_l2,
        )
    if kind == "slice":
        _, slice_id, line, write = op
        return hierarchy.access_from_slice(
            slice_id, line * 64 + 8, write=write, now=now
        )
    if kind == "invalidate":
        _, level, idx, line = op
        target = {
            "l1": hierarchy.l1[idx],
            "l2": hierarchy.l2[idx],
            "llc": hierarchy.llc_slices[idx],
        }[level]
        target.invalidate(line)
        return None
    if kind == "flush_private":
        hierarchy.flush_private(op[1])
        return None
    if kind == "flush_all":
        hierarchy.flush_all()
        return None
    assert kind == "warm"
    hierarchy.warm_lines(op[1], [line * 64 for line in op[2]])
    return None


def _cache_state(cache):
    return [list(entry_set.items()) for entry_set in cache._sets]


def _assert_same_state(fast, fast_noc, slow, slow_noc):
    # Snapshots flush pending batched counts on both sides first.
    assert fast.stats.snapshot() == slow.stats.snapshot()
    assert fast_noc.stats.snapshot() == slow_noc.stats.snapshot()
    for a, b in zip(fast.l1 + fast.l2 + fast.llc_slices,
                    slow.l1 + slow.l2 + slow.llc_slices):
        # Exact per-set contents, including LRU *order* and dirty bits.
        assert _cache_state(a) == _cache_state(b), a.name
    assert fast.dram._channel_free_at == slow.dram._channel_free_at
    fast_noc._flush_charges()
    assert fast_noc._link_bytes == slow_noc._link_bytes


@settings(max_examples=60, deadline=None)
@given(ops=_ops, prefetch=st.booleans())
def test_lockstep_random_streams(ops, prefetch):
    fast, fast_noc, slow, slow_noc = _build_pair()
    fast.next_line_prefetch = prefetch
    slow.next_line_prefetch = prefetch
    for step, op in enumerate(ops):
        now = step * 3
        fast_result = _apply(fast, op, now)
        slow_result = _apply(slow, op, now)
        assert fast_result == slow_result, (step, op)
    _assert_same_state(fast, fast_noc, slow, slow_noc)


@settings(max_examples=30, deadline=None)
@given(ops=_ops)
def test_lockstep_repeated_hot_lines(ops):
    # Replay the same stream three times: the later passes run almost
    # entirely out of the memo (MRU short-circuit included) and must still
    # track the reference exactly.
    fast, fast_noc, slow, slow_noc = _build_pair()
    for round_no in range(3):
        for step, op in enumerate(ops):
            now = (round_no * len(ops) + step) * 2
            assert _apply(fast, op, now) == _apply(slow, op, now), (round_no, op)
    _assert_same_state(fast, fast_noc, slow, slow_noc)


def test_mru_short_circuit_preserves_dirty_promotion():
    # A clean MRU line written through the memo must become dirty without
    # disturbing LRU order — the one mutation the short-circuit performs.
    fast, fast_noc, slow, slow_noc = _build_pair()
    for h in (fast, slow):
        h.access_from_core(0, 0, fill_l1=True)          # miss -> fill
        h.access_from_core(0, 0, fill_l1=True)          # hit (memoized)
        h.access_from_core(0, 0, write=True, fill_l1=True)  # MRU write
    _assert_same_state(fast, fast_noc, slow, slow_noc)
    tag, index = divmod(0, fast.l1[0].num_sets)
    assert fast.l1[0]._sets[index][tag] is True  # dirty bit promoted


def test_memo_invalidated_by_flush():
    fast, fast_noc, slow, slow_noc = _build_pair()
    for h in (fast, slow):
        h.access_from_core(0, 4096)
        h.access_from_core(0, 4096)
        h.flush_all()
        h.access_from_core(0, 4096)  # must re-walk: DRAM again, not L1 hit
    _assert_same_state(fast, fast_noc, slow, slow_noc)


def test_warm_lines_equivalent_to_loop():
    fast, fast_noc, slow, slow_noc = _build_pair()
    paddrs = [line * 64 for line in (0, 1, 2, 3, 0, 1, 2, 3, 0, 1)]
    fast.warm_lines(1, paddrs)
    for paddr in paddrs:
        slow.access_from_core(1, paddr)
    _assert_same_state(fast, fast_noc, slow, slow_noc)
