"""Jepsen-style operation history recording + per-key linearizability.

The cluster LB records one :class:`_Op` per client request — ``invoke`` at
admission, ``ok``/``fail`` at the terminal outcome — and the checker
verifies, per key, that the completed history is linearizable over a
single register with INSERT/UPDATE/DELETE/LOOKUP semantics
(Wing & Gong-style memoized search, docs/recovery.md).

The subtlety is *indeterminacy*.  The LB is an at-least-once client: a
timed-out attempt may still execute, so

* a **failed** write may have applied (once, several times, or never) at
  any moment from its invocation onwards — it participates as an optional
  effect with no real-time upper bound;
* an **ok** write that needed several attempts is ambiguous about its
  *first* execution's disposition (an earlier attempt may have applied and
  made the final one a duplicate), so it branches apply/no-op;
* an ok write that succeeded on its **first** attempt is exact: its MUT
  result says whether it applied (``result is not None``) or was a miss.

``possible_finals`` is the closure of register values any prefix of
still-undecided failed writes could leave behind — the zero-lost-
acknowledged-writes check requires every replica's converged value to be
in that set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.cfa import OP_DELETE, OP_LOOKUP

#: Per-key search budget: states explored beyond this mark the key
#: *inconclusive* (reported, not failed) instead of hanging the check.
_STATE_BUDGET = 500_000


@dataclass
class _Op:
    """One client operation as the LB observed it."""

    op_id: int
    key_pos: int
    op: int
    value: int
    invoke_cycle: int
    response_cycle: Optional[int] = None
    #: "ok", "fail", or None for an op still open when the run ended
    #: (treated as indeterminate, like "fail").
    status: Optional[str] = None
    #: The ok response's value (MUT_* code for writes, the read answer for
    #: lookups).
    result: Optional[int] = None
    attempts: int = 1

    @property
    def is_read(self) -> bool:
        return self.op == OP_LOOKUP


@dataclass
class HistoryVerdict:
    """The checker's summary over every recorded key."""

    ops: int
    keys: int
    linearizable: bool
    #: Keys whose completed history admits no linearization.
    violations: List[int] = field(default_factory=list)
    #: Keys whose search exceeded the state budget (counted as passing,
    #: but surfaced so a run cannot silently skip the check).
    inconclusive: List[int] = field(default_factory=list)
    #: Per key, every register value an admissible linearization (plus any
    #: suffix of undecided failed writes) can leave behind.
    possible_finals: Dict[int, FrozenSet[Optional[int]]] = field(
        default_factory=dict
    )


class HistoryRecorder:
    """Records invoke/ok/fail for every client op; checks per key."""

    def __init__(self, baseline: Dict[int, Optional[int]]) -> None:
        #: key position -> the register's value before the run.
        self._baseline = dict(baseline)
        self._ops: List[_Op] = []

    # ------------------------------------------------------------------ #
    # Recording (called by the LB)
    # ------------------------------------------------------------------ #

    def invoke(self, key_pos: int, op: int, value: int, cycle: int) -> int:
        op_id = len(self._ops)
        self._ops.append(
            _Op(
                op_id=op_id,
                key_pos=key_pos,
                op=op,
                value=value,
                invoke_cycle=cycle,
            )
        )
        return op_id

    def ok(
        self, op_id: int, result: Optional[int], cycle: int, attempts: int
    ) -> None:
        record = self._ops[op_id]
        record.status = "ok"
        record.response_cycle = cycle
        record.result = result
        record.attempts = attempts

    def fail(self, op_id: int, cycle: int, attempts: int) -> None:
        record = self._ops[op_id]
        record.status = "fail"
        record.response_cycle = cycle
        record.attempts = attempts

    @property
    def op_count(self) -> int:
        return len(self._ops)

    def written_keys(self) -> List[int]:
        """Key positions that saw at least one write attempt (any status)."""
        return sorted(
            {op.key_pos for op in self._ops if not op.is_read}
        )

    # ------------------------------------------------------------------ #
    # Checking
    # ------------------------------------------------------------------ #

    def check(self) -> HistoryVerdict:
        by_key: Dict[int, List[_Op]] = {}
        for record in self._ops:
            # Failed reads have no effect and assert nothing: drop them.
            if record.is_read and record.status != "ok":
                continue
            by_key.setdefault(record.key_pos, []).append(record)
        verdict = HistoryVerdict(
            ops=len(self._ops), keys=len(by_key), linearizable=True
        )
        for key_pos in sorted(by_key):
            ops = sorted(by_key[key_pos], key=lambda o: o.invoke_cycle)
            outcome, finals = self._check_key(
                ops, self._baseline.get(key_pos)
            )
            if outcome == "violation":
                verdict.linearizable = False
                verdict.violations.append(key_pos)
            elif outcome == "inconclusive":
                verdict.inconclusive.append(key_pos)
            verdict.possible_finals[key_pos] = finals
        return verdict

    def _check_key(
        self, ops: List[_Op], initial: Optional[int]
    ) -> Tuple[str, FrozenSet[Optional[int]]]:
        """Search for a linearization of one key's history.

        Returns ("ok" | "violation" | "inconclusive", possible finals).
        """
        n = len(ops)
        if n == 0:
            return "ok", frozenset({initial})
        # Real-time bounds: an op must linearize before any op invoked
        # after its response; ops without a definite response (failed /
        # never returned) bound nothing.
        responses = [
            op.response_cycle if op.status == "ok" else None for op in ops
        ]
        must_mask = 0  # ops a linearization is required to include
        for i, op in enumerate(ops):
            if op.status == "ok":
                must_mask |= 1 << i
        finals: Set[Optional[int]] = set()
        visited: Set[Tuple[int, Optional[int], bool]] = set()
        budget = _STATE_BUDGET
        success = False

        def outcomes(op: _Op, reg: Optional[int]):
            """Register values linearizing ``op`` here may produce."""
            if op.is_read:
                return [reg] if op.result == reg else []
            applied = None if op.op == OP_DELETE else op.value
            if op.status == "ok" and op.attempts == 1:
                return [applied] if op.result is not None else [reg]
            # Retried ok writes and failed writes: the first execution's
            # disposition is unknowable — both branches stay open.
            results = [applied]
            if reg not in results:
                results.append(reg)
            return results

        stack: List[Tuple[int, Optional[int]]] = [(0, initial)]
        while stack:
            if budget <= 0:
                return "inconclusive", frozenset(finals or {initial})
            mask, reg = stack.pop()
            done = mask & must_mask == must_mask
            key = (mask, reg, done)
            if key in visited:
                continue
            visited.add(key)
            budget -= 1
            if done:
                success = True
                finals.add(reg)
            for i in range(n):
                bit = 1 << i
                if mask & bit:
                    continue
                op = ops[i]
                # Precedence: some other unlinearized op already responded
                # before this one was invoked => it must go first.
                blocked = False
                for j in range(n):
                    if j == i or mask & (1 << j):
                        continue
                    rj = responses[j]
                    if rj is not None and rj < op.invoke_cycle:
                        blocked = True
                        break
                if blocked:
                    continue
                for new_reg in outcomes(op, reg):
                    stack.append((mask | bit, new_reg))
        if not success:
            return "violation", frozenset({initial})
        return "ok", frozenset(finals)
