"""Tests for the longest-prefix-match trie (routing-table lookups)."""

import pytest

from repro import small_config
from repro.core.accelerator import QueryRequest
from repro.cpu import TraceBuilder
from repro.datastructs import LpmTrie, ProcessMemory
from repro.errors import DataStructureError
from repro.system import System


def ip(a, b, c, d):
    return bytes([a, b, c, d])


@pytest.fixture
def fib():
    mem = ProcessMemory(physical_bytes=64 * 1024 * 1024)
    trie = LpmTrie(mem, key_length=4)
    # routes: value = next-hop id
    trie.insert_prefix(bytes([10]), 1)               # 10.0.0.0/8
    trie.insert_prefix(bytes([10, 1]), 2)            # 10.1.0.0/16
    trie.insert_prefix(bytes([10, 1, 2]), 3)         # 10.1.2.0/24
    trie.insert_prefix(bytes([192, 168]), 4)         # 192.168.0.0/16
    trie.insert_prefix(ip(192, 168, 0, 1), 5)        # host route
    trie.seal()
    return trie


class TestLpmFunctional:
    def test_longest_prefix_wins(self, fib):
        assert fib.lookup_lpm(ip(10, 1, 2, 3)) == 3
        assert fib.lookup_lpm(ip(10, 1, 9, 9)) == 2
        assert fib.lookup_lpm(ip(10, 9, 9, 9)) == 1

    def test_host_route_beats_prefix(self, fib):
        assert fib.lookup_lpm(ip(192, 168, 0, 1)) == 5
        assert fib.lookup_lpm(ip(192, 168, 0, 2)) == 4

    def test_no_route(self, fib):
        assert fib.lookup_lpm(ip(8, 8, 8, 8)) is None

    def test_default_route_at_short_prefix(self, fib):
        assert fib.lookup_lpm(ip(192, 168, 77, 1)) == 4

    def test_prefix_length_validated(self):
        mem = ProcessMemory(physical_bytes=16 * 1024 * 1024)
        trie = LpmTrie(mem, key_length=4)
        with pytest.raises(DataStructureError):
            trie.insert_prefix(b"", 1)
        with pytest.raises(DataStructureError):
            trie.insert_prefix(bytes(5), 1)

    def test_header_subtype_is_lpm(self, fib):
        assert fib.header().subtype == 2


class TestLpmTrace:
    def test_emit_agrees_with_reference(self, fib):
        for addr in [
            ip(10, 1, 2, 3),
            ip(10, 1, 9, 9),
            ip(192, 168, 0, 1),
            ip(8, 8, 8, 8),
        ]:
            builder = TraceBuilder()
            vaddr = fib.mem.store_bytes(addr)
            assert fib.emit_lookup_lpm(builder, vaddr, addr) == fib.lookup_lpm(addr)
            assert len(builder.trace) > 3


class TestLpmCfa:
    def test_accelerator_agrees_with_reference(self):
        system = System(small_config())
        trie = LpmTrie(system.mem, key_length=4)
        trie.insert_prefix(bytes([10]), 1)
        trie.insert_prefix(bytes([10, 1]), 2)
        trie.insert_prefix(bytes([10, 1, 2]), 3)
        trie.insert_prefix(bytes([172, 16]), 7)
        trie.seal()
        for addr in [
            ip(10, 1, 2, 200),
            ip(10, 1, 50, 1),
            ip(10, 200, 0, 1),
            ip(172, 16, 31, 9),
            ip(1, 2, 3, 4),
        ]:
            handle = system.accelerator.submit(
                QueryRequest(
                    header_addr=trie.header_addr,
                    key_addr=system.mem.store_bytes(addr),
                ),
                system.engine.now,
            )
            system.accelerator.wait_for(handle)
            assert handle.value == trie.lookup_lpm(addr), addr

    def test_many_routes_scale(self):
        system = System(small_config())
        trie = LpmTrie(system.mem, key_length=4)
        import random

        rng = random.Random(4)
        routes = {}
        for i in range(300):
            length = rng.randint(1, 3)
            prefix = bytes(rng.randint(0, 255) for _ in range(length))
            routes[prefix] = i
            trie.insert_prefix(prefix, i)
        trie.seal()
        for _ in range(40):
            addr = bytes(rng.randint(0, 255) for _ in range(4))
            handle = system.accelerator.submit(
                QueryRequest(
                    header_addr=trie.header_addr,
                    key_addr=system.mem.store_bytes(addr),
                ),
                system.engine.now,
            )
            system.accelerator.wait_for(handle)
            assert handle.value == trie.lookup_lpm(addr)
