"""Unit tests for the workload base plumbing (traces, verification, knobs)."""

import pytest

from repro import small_config
from repro.cpu.isa import OpKind
from repro.errors import WorkloadError
from repro.system import System
from repro.workloads import make_workload
from repro.workloads.base import run_baseline, run_qei
from repro.workloads.snort import SnortWorkload, make_dictionary, make_payload


@pytest.fixture
def built():
    system = System(small_config())
    workload = make_workload(
        "dpdk", system, num_flows=256, num_buckets=128, num_queries=24
    )
    return system, workload


class TestTraceShapes:
    def test_baseline_trace_contains_no_query_ops(self, built):
        _, workload = built
        trace, _ = workload.baseline_trace()
        kinds = {op.kind for op in trace}
        assert OpKind.QUERY_B not in kinds
        assert OpKind.QUERY_NB not in kinds

    def test_qei_trace_has_one_query_per_request(self, built):
        _, workload = built
        trace = workload.qei_trace()
        queries = sum(1 for op in trace if op.kind is OpKind.QUERY_B)
        assert queries == len(workload.queries)

    def test_nb_trace_polls_cover_every_query(self, built):
        _, workload = built
        trace, batches = workload.qei_nb_trace(poll_every=5)
        nb_ops = sum(1 for op in trace if op.kind is OpKind.QUERY_NB)
        waits = sum(1 for op in trace if op.kind is OpKind.WAIT_RESULT)
        assert nb_ops == len(workload.queries)
        assert waits == len(batches) == (len(workload.queries) + 4) // 5

    def test_app_trace_is_heavier_than_roi(self, built):
        _, workload = built
        roi, _ = workload.baseline_trace()
        app, _ = workload.app_trace_baseline()
        assert len(app) > len(roi)

    def test_buffer_ring_addresses_repeat_after_ring_wraps(self, built):
        _, workload = built
        trace, _ = workload.baseline_trace()
        buffer_loads = [
            op.vaddr
            for op in trace
            if op.kind is OpKind.LOAD
            and workload._buffer_base
            <= (op.vaddr or 0)
            < workload._buffer_base
            + workload.buffer_ring_requests * workload.request_buffer_lines * 64
        ]
        assert buffer_loads  # per-request buffer traffic exists


class TestVerification:
    def test_verify_detects_wrong_value(self, built):
        system, workload = built
        port = system.query_port(0)
        trace = workload.qei_trace()
        system.run_trace(trace, port=port)
        port.handles[3].value = 0xBAD
        with pytest.raises(WorkloadError):
            workload.verify_port(port)

    def test_verify_detects_count_mismatch(self, built):
        system, workload = built
        port = system.query_port(0)
        with pytest.raises(WorkloadError):
            workload.verify_port(port)  # no queries ran

    def test_unbuilt_workload_rejects_traces(self):
        system = System(small_config())
        workload = SnortWorkload(system)
        with pytest.raises(WorkloadError):
            workload.baseline_trace()


class TestRunners:
    def test_run_baseline_and_qei_report_queries(self, built):
        system, workload = built
        base = run_baseline(system, workload, warm=False)
        assert base.queries == 24
        assert base.cycles_per_query > 0
        system2 = System(small_config())
        workload2 = make_workload(
            "dpdk", system2, num_flows=256, num_buckets=128, num_queries=24
        )
        qei = run_qei(system2, workload2, warm=False)
        assert qei.queries == 24
        assert len(qei.values) == 24


class TestSnortHelpers:
    def test_dictionary_is_distinct_lowercase(self):
        words = make_dictionary(50, seed=1)
        assert len(set(words)) == 50
        assert all(4 <= len(w) <= 12 for w in words)
        assert all(all(97 <= b <= 122 for b in w) for w in words)

    def test_payload_has_exact_length_and_plants_keywords(self):
        import random

        words = make_dictionary(20, seed=2)
        rng = random.Random(3)
        payload = make_payload(256, words, hit_density=0.5, rng=rng)
        assert len(payload) == 256
        assert any(w in payload for w in words)

    def test_zero_density_payload_is_pure_noise(self):
        import random

        rng = random.Random(4)
        payload = make_payload(128, [], hit_density=0.0, rng=rng)
        assert len(payload) == 128
