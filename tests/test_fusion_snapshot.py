"""Macro-step fusion and warm-system snapshots: bit-identity + plumbing.

Fusion collapses pure-compute CFA transition runs into arithmetic on a
virtual clock (one engine event per memory round-trip); snapshots restore a
deep-copied warm memory image instead of repopulating workloads.  Both are
pure performance work — every observable (ROI cycles, instructions, the
full stats snapshot) must match the unfused / cold-built reference exactly.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.analysis import snapshot
from repro.analysis.experiments import _build, workload_params
from repro.analysis.perfbench import compare
from repro.sim.engine import Engine
from repro.workloads import run_qei


def _stats_hash(system) -> str:
    payload = json.dumps(sorted(system.stats.snapshot().items()), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def _run(workload: str, scheme: str, *, fuse: bool):
    snapshot.clear()
    system, wl = _build(workload, scheme, quick=True)
    system.accelerator._fuse = fuse
    run = run_qei(system, wl)
    return run, _stats_hash(system), system.engine.events_processed


# --------------------------------------------------------------------- #
# Engine.peek_time / run_horizon
# --------------------------------------------------------------------- #


def test_peek_time_skips_cancelled_and_empties():
    engine = Engine()
    assert engine.peek_time() is None
    first = engine.schedule_at(5, lambda: None)
    engine.schedule_at(9, lambda: None)
    assert engine.peek_time() == 5
    first.cancel()
    assert engine.peek_time() == 9  # cancelled head discarded lazily
    assert engine.pending() == 1


def test_run_horizon_visible_only_inside_bounded_run():
    engine = Engine()
    seen = []
    engine.schedule_at(3, lambda: seen.append(engine.run_horizon))
    assert engine.run_horizon is None
    engine.run(until=10)
    assert seen == [10]
    assert engine.run_horizon is None  # cleared after the run

    engine.schedule_at(12, lambda: seen.append(engine.run_horizon))
    engine.drain()
    assert seen[-1] is None  # unbounded drain exposes no horizon


# --------------------------------------------------------------------- #
# Fusion bit-identity
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("pair", [("dpdk", "cha-tlb"), ("rocksdb", "core-integrated")])
def test_fusion_matches_unfused_reference(pair):
    workload, scheme = pair
    fused_run, fused_hash, fused_events = _run(workload, scheme, fuse=True)
    ref_run, ref_hash, ref_events = _run(workload, scheme, fuse=False)

    assert fused_run.cycles == ref_run.cycles
    assert fused_run.instructions == ref_run.instructions
    assert fused_run.queries == ref_run.queries
    assert fused_hash == ref_hash
    # The whole point: fewer engine events for the same simulated history.
    assert fused_events < ref_events


def test_no_fusion_env_escape_hatch(monkeypatch):
    monkeypatch.setenv("QEI_NO_FUSION", "1")
    system, _ = _build("dpdk", "cha-tlb", quick=True)
    assert system.accelerator._fuse is False
    monkeypatch.delenv("QEI_NO_FUSION")
    snapshot.clear()
    system, _ = _build("dpdk", "cha-tlb", quick=True)
    assert system.accelerator._fuse is True


# --------------------------------------------------------------------- #
# Warm-system snapshots
# --------------------------------------------------------------------- #


def test_snapshot_restore_is_bit_identical_to_cold_build(monkeypatch):
    # Cold reference: snapshots disabled, two independent builds.
    monkeypatch.setattr(snapshot, "_enabled", False)
    cold_sys, cold_wl = _build("dpdk", "cha-tlb", quick=True)
    cold = run_qei(cold_sys, cold_wl)
    cold_hash = _stats_hash(cold_sys)

    # Snapshot path: first build captures, later builds restore.
    monkeypatch.setattr(snapshot, "_enabled", True)
    snapshot.clear()
    _build("dpdk", "cha-tlb", quick=True)  # capture template
    params = workload_params("dpdk", True)
    assert snapshot.get("dpdk", params) is not None

    for scheme in ("cha-tlb", "cha-notlb"):
        warm_sys, warm_wl = _build("dpdk", scheme, quick=True)
        if scheme == "cha-tlb":
            warm = run_qei(warm_sys, warm_wl)
            assert (warm.cycles, warm.instructions) == (cold.cycles, cold.instructions)
            assert _stats_hash(warm_sys) == cold_hash
        else:
            # Cross-scheme restore from the same template still runs.
            assert run_qei(warm_sys, warm_wl).queries == cold.queries
    snapshot.clear()


def test_snapshot_template_isolated_from_restored_runs(monkeypatch):
    monkeypatch.setattr(snapshot, "_enabled", True)
    snapshot.clear()
    _build("rocksdb", "cha-tlb", quick=True)

    # Run on one restored copy (mutates its mem: result buffers, traces)...
    sys_a, wl_a = _build("rocksdb", "cha-tlb", quick=True)
    first = run_qei(sys_a, wl_a)
    hash_a = _stats_hash(sys_a)

    # ...then restore again: the template must be untouched.
    sys_b, wl_b = _build("rocksdb", "cha-tlb", quick=True)
    second = run_qei(sys_b, wl_b)
    assert (second.cycles, second.instructions) == (first.cycles, first.instructions)
    assert _stats_hash(sys_b) == hash_a
    snapshot.clear()


def test_custom_config_bypasses_snapshots(monkeypatch):
    from repro.config import SystemConfig

    monkeypatch.setattr(snapshot, "_enabled", True)
    snapshot.clear()
    _build("dpdk", "cha-tlb", quick=True, config=SystemConfig())
    assert snapshot.get("dpdk", workload_params("dpdk", True)) is None
    snapshot.clear()


# --------------------------------------------------------------------- #
# perfbench schema comparison
# --------------------------------------------------------------------- #


def _payload(schema, engine_rate, q_rate, serve_rate, cluster_rate=None):
    payload = {
        "schema": schema,
        "engine_events_per_sec": engine_rate,
        "queries_per_sec": {"cha-tlb": q_rate},
        "serve_requests_per_sec": serve_rate,
    }
    if cluster_rate is not None:
        payload["cluster_requests_per_sec"] = cluster_rate
    return payload


def test_compare_skips_queries_across_schema_versions():
    current = _payload(2, 1000.0, 1800.0, 2500.0)
    baseline = _payload(1, 1000.0, 400.0, 2500.0)
    report = compare(current, baseline, threshold=0.30)
    assert "queries_per_sec/cha-tlb" not in report
    assert set(report) == {"engine_events_per_sec", "serve_requests_per_sec"}
    assert not any(row["failed"] for row in report.values())


def test_compare_gates_queries_within_same_schema():
    current = _payload(2, 1000.0, 500.0, 2500.0)
    baseline = _payload(2, 1000.0, 1800.0, 2500.0)
    report = compare(current, baseline, threshold=0.30)
    assert report["queries_per_sec/cha-tlb"]["failed"] is True
    assert report["engine_events_per_sec"]["failed"] is False


def test_compare_gates_cluster_throughput_in_schema3():
    current = _payload(3, 1000.0, 1800.0, 2500.0, cluster_rate=200.0)
    baseline = _payload(3, 1000.0, 1800.0, 2500.0, cluster_rate=900.0)
    report = compare(current, baseline, threshold=0.30)
    assert report["cluster_requests_per_sec"]["failed"] is True
    assert report["serve_requests_per_sec"]["failed"] is False


def test_compare_tolerates_baselines_without_cluster_metric():
    # A schema-2 baseline predates the cluster bench: the new metric is
    # simply absent from the intersection, never a KeyError or a failure.
    current = _payload(2, 1000.0, 1800.0, 2500.0, cluster_rate=500.0)
    baseline = _payload(2, 1000.0, 1800.0, 2500.0)
    report = compare(current, baseline, threshold=0.30)
    assert "cluster_requests_per_sec" not in report
    assert not any(row["failed"] for row in report.values())


def test_compare_never_gates_the_recovery_block():
    # Schema 5's durability metrics are simulated time (lower is better,
    # deterministic per seed), not host throughput: a 9-second recovery
    # against a microsecond baseline must not trip the regression gate.
    current = _payload(5, 1000.0, 1800.0, 2500.0)
    current["recovery"] = {"recovery_seconds": 9.0, "replication_lag_p99": 9.0}
    baseline = _payload(5, 1000.0, 1800.0, 2500.0)
    baseline["recovery"] = {
        "recovery_seconds": 1e-6,
        "replication_lag_p99": 1e-6,
    }
    report = compare(current, baseline, threshold=0.30)
    assert not any("recovery" in name for name in report)
    assert not any(row["failed"] for row in report.values())
