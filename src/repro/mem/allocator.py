"""Virtual-memory allocators for simulated processes.

Two allocators:

* :class:`BumpArena` — a simple bump-pointer arena inside one virtual range,
  mapping pages on demand (contiguous *virtual* addresses).
* :class:`PageScatterAllocator` — the default for workload heaps.  It hands
  out virtually-contiguous allocations, but deliberately interleaves page
  mappings from several processes' allocation streams so *physical* frames
  are scattered.  This realises the paper's premise that data structures do
  not sit in one contiguous (huge-page) region, making translation
  unavoidable for the accelerator.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import PAGE_BYTES
from ..errors import AllocationError
from .paging import AddressSpace


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise AllocationError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


class BumpArena:
    """Bump-pointer allocation within ``[base, base + capacity)``.

    Pages are mapped lazily as the bump pointer crosses them.  ``free`` is a
    no-op except for the whole-arena ``reset`` — this matches how the
    workloads use arenas (build once, query many times).
    """

    def __init__(
        self,
        space: AddressSpace,
        base: int,
        capacity: int,
        *,
        name: str = "arena",
    ) -> None:
        if base % PAGE_BYTES:
            raise AllocationError("arena base must be page aligned")
        if capacity <= 0 or capacity % PAGE_BYTES:
            raise AllocationError("arena capacity must be a positive page multiple")
        self.space = space
        self.base = base
        self.capacity = capacity
        self.name = name
        self._cursor = base
        self._mapped_through = base  # first unmapped byte

    @property
    def used_bytes(self) -> int:
        return self._cursor - self.base

    @property
    def end(self) -> int:
        return self.base + self.capacity

    def allocate(self, size: int, *, alignment: int = 8) -> int:
        """Reserve ``size`` bytes, returning the virtual address."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        addr = align_up(self._cursor, alignment)
        new_cursor = addr + size
        if new_cursor > self.end:
            raise AllocationError(
                f"arena {self.name!r} exhausted: need {size} bytes, "
                f"{self.end - addr} remain"
            )
        self._ensure_mapped(new_cursor)
        self._cursor = new_cursor
        return addr

    def _ensure_mapped(self, through: int) -> None:
        while self._mapped_through < through:
            self.space.map_page(self._mapped_through)
            self._mapped_through += PAGE_BYTES

    def reset(self) -> None:
        """Forget all allocations (mappings are kept for reuse)."""
        self._cursor = self.base


class HugePageArena:
    """Bump allocation inside 2MB huge-page mappings.

    This is the memory-placement assumption HALO-style designs rely on
    (Sec. II-B challenge 3): the whole structure sits in physically
    contiguous huge pages, so one TLB entry covers 2MB and accelerators
    barely need translation hardware.  Allocation fails with
    :class:`~repro.errors.OutOfMemory` when physical memory is too
    fragmented to supply contiguous runs — the paper's objection.
    """

    HUGE = 2 * 1024 * 1024

    def __init__(self, space: AddressSpace, base: int, huge_pages: int) -> None:
        if base % self.HUGE:
            raise AllocationError("huge arena base must be 2MB aligned")
        if huge_pages <= 0:
            raise AllocationError("need at least one huge page")
        self.space = space
        self.base = base
        self.capacity = huge_pages * self.HUGE
        self._cursor = base
        self._mapped_through = base

    @property
    def end(self) -> int:
        return self.base + self.capacity

    @property
    def used_bytes(self) -> int:
        return self._cursor - self.base

    def allocate(self, size: int, *, alignment: int = 8) -> int:
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        addr = align_up(self._cursor, alignment)
        new_cursor = addr + size
        if new_cursor > self.end:
            raise AllocationError(
                f"huge arena exhausted: need {size}, {self.end - addr} remain"
            )
        while self._mapped_through < new_cursor:
            self.space.map_huge_page(self._mapped_through)
            self._mapped_through += self.HUGE
        self._cursor = new_cursor
        return addr


class PageScatterAllocator:
    """A malloc-like allocator whose physical frames are non-contiguous.

    Internally it is a collection of bump arenas; between arena refills it
    burns a configurable number of physical frames ("interleave holes") so
    consecutive virtual pages land on non-consecutive physical frames, the
    way a long-lived fragmented heap behaves (Sec. II-B, challenge 3).
    """

    def __init__(
        self,
        space: AddressSpace,
        base: int,
        capacity: int,
        *,
        scatter_frames: int = 3,
        chunk_pages: int = 16,
    ) -> None:
        self.space = space
        self.base = base
        self.capacity = capacity
        self.scatter_frames = scatter_frames
        self.chunk_pages = chunk_pages
        self._next_chunk_base = base
        self._arena: Optional[BumpArena] = None
        self._hole_frames: List[int] = []
        self.total_allocated = 0

    @property
    def end(self) -> int:
        return self.base + self.capacity

    def allocate(self, size: int, *, alignment: int = 8) -> int:
        """Allocate ``size`` bytes of virtually-contiguous memory."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        if self._arena is not None:
            try:
                addr = self._arena.allocate(size, alignment=alignment)
                self.total_allocated += size
                return addr
            except AllocationError:
                pass  # refill below
        self._refill(size + alignment)
        assert self._arena is not None
        addr = self._arena.allocate(size, alignment=alignment)
        self.total_allocated += size
        return addr

    def _refill(self, min_bytes: int) -> None:
        # Scatter: consume a few frames so the next chunk's frames are not
        # adjacent to the previous chunk's.
        for _ in range(self.scatter_frames):
            self._hole_frames.append(self.space.physical.allocate_frame())
        chunk_bytes = max(
            self.chunk_pages * PAGE_BYTES, align_up(min_bytes, PAGE_BYTES)
        )
        if self._next_chunk_base + chunk_bytes > self.end:
            raise AllocationError(
                f"heap exhausted at 0x{self._next_chunk_base:x} "
                f"(capacity {self.capacity} bytes)"
            )
        self._arena = BumpArena(
            self.space, self._next_chunk_base, chunk_bytes, name="heap-chunk"
        )
        self._next_chunk_base += chunk_bytes

    def release_holes(self) -> None:
        """Return scatter frames to the physical pool (heap stays fragmented)."""
        for frame in self._hole_frames:
            self.space.physical.free_frame(frame)
        self._hole_frames.clear()
