"""Statistics primitives: counters, histograms and a registry.

Every architectural component keeps its measurements in a
:class:`StatsRegistry` so experiment drivers can snapshot, diff, and report
without reaching into component internals.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Tuple


class Counter:
    """A monotonically increasing (but resettable) event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A value histogram that tracks count/sum/min/max plus percentiles."""

    __slots__ = ("name", "_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []

    def record(self, value: float) -> None:
        self._samples.append(value)

    def reset(self) -> None:
        self._samples.clear()

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self._samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self._samples) if self._samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; ``pct`` in [0, 100]."""
        if not self._samples:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: n={self.count}, mean={self.mean:.2f}, "
            f"max={self.maximum:.2f})"
        )


class StatsRegistry:
    """Hierarchical named counters and histograms.

    Names are dotted paths such as ``"l2.misses"`` or ``"qei.uops.compare"``.
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        """Get (or lazily create) the counter with this name."""
        full = self._qualify(name)
        if full not in self._counters:
            self._counters[full] = Counter(full)
        return self._counters[full]

    def histogram(self, name: str) -> Histogram:
        """Get (or lazily create) the histogram with this name."""
        full = self._qualify(name)
        if full not in self._histograms:
            self._histograms[full] = Histogram(full)
        return self._histograms[full]

    def fraction(self, numerator: str, *denominators: str) -> float:
        """``numerator / sum(denominators)``, 0.0 when the total is zero.

        Names are qualified like :meth:`counter`; missing counters count as
        zero.  Used for derived ratios such as the software-fallback
        fraction (fallbacks taken / queries executed).
        """
        def value(name: str) -> int:
            counter = self._counters.get(self._qualify(name))
            return counter.value if counter else 0

        total = sum(value(name) for name in denominators)
        return value(numerator) / total if total else 0.0

    def scoped(self, prefix: str) -> "StatsRegistry":
        """A view that shares storage but prepends ``prefix`` to names."""
        view = StatsRegistry(self._qualify(prefix))
        view._counters = self._counters
        view._histograms = self._histograms
        return view

    def snapshot(self) -> Dict[str, float]:
        """All counter values (histograms reported as their totals)."""
        out: Dict[str, float] = {c.name: c.value for c in self._counters.values()}
        for h in self._histograms.values():
            out[f"{h.name}.count"] = h.count
            out[f"{h.name}.total"] = h.total
        return out

    def diff(self, before: Dict[str, float]) -> Dict[str, float]:
        """Per-name deltas of the current snapshot versus ``before``."""
        now = self.snapshot()
        keys = set(now) | set(before)
        return {k: now.get(k, 0.0) - before.get(k, 0.0) for k in keys}

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def items(self) -> Iterator[Tuple[str, float]]:
        yield from sorted(self.snapshot().items())

    def report(self, only: Iterable[str] = ()) -> str:
        """Human-readable dump, optionally filtered by name prefixes."""
        prefixes = tuple(only)
        lines = []
        for name, value in self.items():
            if prefixes and not name.startswith(prefixes):
                continue
            lines.append(f"{name:<48} {value}")
        return "\n".join(lines)
