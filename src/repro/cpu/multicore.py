"""Multi-programmed multicore execution.

Interleaves several cores' trace executions in (approximate) global time
order: each scheduling step advances the core whose local frontier is
earliest, so accesses from different cores reach the shared LLC slices,
NoC links and DRAM channels in a realistic order and contend there.

This is a *multi-programmed* model (independent traces, no shared-data
races), which matches the paper's context: many tenants' query-heavy
processes sharing one CPU's uncore.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .core import CoreExecution, CoreResult, ExternalResolver, OoOCore
from .trace import Trace


@dataclass
class MulticoreResult:
    """Per-core results plus aggregate statistics."""

    per_core: Dict[int, CoreResult]

    @property
    def total_instructions(self) -> int:
        return sum(r.instructions for r in self.per_core.values())

    @property
    def makespan(self) -> int:
        """Cycles until the slowest core finished."""
        return max(r.end_cycle for r in self.per_core.values()) - min(
            r.start_cycle for r in self.per_core.values()
        )

    @property
    def aggregate_throughput(self) -> float:
        """Instructions per cycle summed over all cores."""
        return self.total_instructions / self.makespan if self.makespan else 0.0


def run_multiprogrammed(
    jobs: Sequence[Tuple[OoOCore, Trace]],
    *,
    start_cycle: int = 0,
    externals: Optional[Dict[int, ExternalResolver]] = None,
) -> MulticoreResult:
    """Run one trace per core, interleaved by local time.

    Args:
        jobs: (core, trace) pairs; each core may appear at most once.
        externals: optional per-core-id query-port resolvers.

    Returns:
        Per-core results; each core's cycles reflect the contention its
        accesses saw from the other cores' interleaved traffic.
    """
    seen = set()
    for core, _ in jobs:
        if core.core_id in seen:
            raise SimulationError(f"core {core.core_id} appears twice")
        seen.add(core.core_id)

    externals = externals or {}
    executions: List[CoreExecution] = [
        core.begin(
            trace,
            start_cycle=start_cycle,
            external=externals.get(core.core_id),
        )
        for core, trace in jobs
    ]

    # Min-heap over (local_time, order, execution): always advance the
    # core that is earliest in simulated time.
    heap = [
        (execution.local_time(), order, execution)
        for order, execution in enumerate(executions)
    ]
    heapq.heapify(heap)
    while heap:
        _, order, execution = heapq.heappop(heap)
        execution.step()
        if not execution.finished:
            heapq.heappush(heap, (execution.local_time(), order, execution))

    return MulticoreResult(
        per_core={
            execution.core.core_id: execution.finish() for execution in executions
        }
    )
