"""On-disk experiment-result cache.

Figure/table experiments are pure functions of (driver, kwargs, code
version), so re-running ``python -m repro all`` after an unrelated edit
mostly repeats work.  The cache keys each task by::

    sha256(experiment name + canonical kwargs JSON + code fingerprint)

where the code fingerprint is ``git describe --always --dirty`` plus, for a
dirty tree, a digest of every tracked+modified Python source under
``src/repro`` — so editing simulator code invalidates the cache even before
a commit, while result-only reruns hit.

Entries are one JSON file per key under the cache directory (default
``.repro_cache/`` in the working directory, override with
``$REPRO_CACHE_DIR``).  Disable per-run with ``--no-cache``.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from pathlib import Path
from typing import Any, Dict, Optional

from .report import ExperimentResult

#: Process-wide memo of the code fingerprint (computing it shells out).
_FINGERPRINT: Optional[str] = None

_SRC_ROOT = Path(__file__).resolve().parents[2]  # .../src
_REPO_ROOT = _SRC_ROOT.parent


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else Path(".repro_cache")


def code_fingerprint() -> str:
    """Version stamp for cache keys: git describe, plus source digest if dirty."""
    global _FINGERPRINT
    if _FINGERPRINT is not None:
        return _FINGERPRINT

    def _git(*args: str) -> str:
        try:
            return subprocess.run(
                ["git", "-C", str(_REPO_ROOT), *args],
                capture_output=True,
                text=True,
                timeout=10,
                check=False,
            ).stdout.strip()
        except (OSError, subprocess.TimeoutExpired):
            return ""

    describe = _git("describe", "--always", "--dirty", "--tags") or "no-git"
    fingerprint = describe
    if describe.endswith("-dirty") or describe == "no-git":
        digest = hashlib.sha256()
        package_root = _SRC_ROOT / "repro"
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        fingerprint = f"{describe}+{digest.hexdigest()[:16]}"
    _FINGERPRINT = fingerprint
    return fingerprint


def task_key(name: str, kwargs: Dict[str, Any]) -> str:
    payload = json.dumps(
        {"experiment": name, "kwargs": kwargs, "code": code_fingerprint()},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """A content-addressed store of serialized :class:`ExperimentResult`s."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, name: str, kwargs: Dict[str, Any]) -> Optional[ExperimentResult]:
        path = self._path(task_key(name, kwargs))
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return ExperimentResult(
            payload["experiment"],
            payload["title"],
            payload["columns"],
            rows=payload["rows"],
            notes=payload["notes"],
        )

    def put(self, name: str, kwargs: Dict[str, Any], result: ExperimentResult) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(task_key(name, kwargs))
        payload = {
            "experiment": result.experiment,
            "title": result.title,
            "columns": list(result.columns),
            "rows": result.rows,
            "notes": result.notes,
        }
        tmp = path.with_suffix(".tmp")
        try:
            tmp.write_text(json.dumps(payload))
            tmp.replace(path)
        except (OSError, TypeError):
            # Unpicklable-to-JSON results simply aren't cached.
            tmp.unlink(missing_ok=True)

    def clear(self) -> int:
        """Drop every cached entry; returns the number removed."""
        removed = 0
        if self.directory.exists():
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
