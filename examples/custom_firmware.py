"""Teaching QEI a new data structure via a firmware update (Sec. IV-B).

The CEE is a microcoded, configurable machine: new CFA state-transition
rules can be loaded at runtime to support emerging data structures.  This
example builds the paper's combined-structure case — a hash table of linked
lists — and shows that:

1. querying it *before* the firmware update raises an architectural fault
   (the accelerator has no program for the type code);
2. after registering :class:`HashOfListsCfa`, the same queries execute and
   agree with the software reference.

Run:  python examples/custom_firmware.py
"""

from repro.core.accelerator import QueryRequest, QueryStatus
from repro.core.programs import HashOfListsCfa
from repro.datastructs import HashOfLists
from repro.system import System


def main() -> None:
    system = System(scheme="core-integrated")

    chains = HashOfLists(system.mem, key_length=16, num_buckets=64)
    for i in range(300):
        chains.insert(f"session-{i:05d}".encode().ljust(16, b"_"), 7000 + i)
    print(f"hash-of-lists: {len(chains)} entries in "
          f"{chains.num_buckets} chained buckets "
          f"(type code {int(chains.TYPE)})\n")

    key = b"session-00123".ljust(16, b"_")

    def query():
        handle = system.accelerator.submit(
            QueryRequest(
                header_addr=chains.header_addr,
                key_addr=chains.store_key(key),
            ),
            system.engine.now,
        )
        system.accelerator.wait_for(handle)
        return handle

    before = query()
    print(f"before firmware update: status={before.status.value}")
    print(f"  ({before.fault_detail})")
    assert before.status is QueryStatus.FAULT

    print("\napplying firmware update: registering the hash-of-lists CFA "
          f"({len(HashOfListsCfa.STATES)} states, "
          f"fits the {system.config.qei.max_states}-state QST encoding)")
    system.firmware.register(HashOfListsCfa())

    after = query()
    print(f"\nafter firmware update: status={after.status.value}, "
          f"value={after.value}")
    assert after.value == chains.lookup(key)

    # The whole stream agrees with software.
    mismatches = 0
    for i in range(0, 300, 17):
        probe = f"session-{i:05d}".encode().ljust(16, b"_")
        handle = system.accelerator.submit(
            QueryRequest(
                header_addr=chains.header_addr,
                key_addr=chains.store_key(probe),
            ),
            system.engine.now,
        )
        system.accelerator.wait_for(handle)
        mismatches += handle.value != chains.lookup(probe)
    print(f"verified {300 // 17 + 1} spot queries: {mismatches} mismatches")


if __name__ == "__main__":
    main()
