"""Drivers reproducing every table and figure of the paper's evaluation.

Each function builds fresh systems, runs the needed simulations and returns
an :class:`~repro.analysis.report.ExperimentResult`.  Pass ``quick=True``
(the default used by the benchmark harness) for scaled-down runs that keep
the shapes but finish in seconds; ``quick=False`` uses the full default
workload sizes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..config import (
    DEFAULT_SCHEME_LATENCIES,
    IntegrationScheme,
    SchemeLatencyConfig,
    SystemConfig,
)
from ..power import DynamicEnergyModel, tab3_configurations
from ..system import System
from ..workloads import make_workload, run_baseline, run_qei
from ..workloads.base import RoiRun
from ..workloads.tuple_space import TupleSpaceWorkload
from . import snapshot
from .report import ExperimentResult

ALL_SCHEMES = [s.value for s in IntegrationScheme]

#: Scheme order used in the paper's figures.
SCHEME_ORDER = [
    IntegrationScheme.CHA_TLB.value,
    IntegrationScheme.CHA_NOTLB.value,
    IntegrationScheme.DEVICE_DIRECT.value,
    IntegrationScheme.DEVICE_INDIRECT.value,
    IntegrationScheme.CORE_INTEGRATED.value,
]

#: Per-workload parameters for experiment runs: (quick, full).
BENCH_WORKLOADS: Dict[str, Tuple[dict, dict]] = {
    "dpdk": (
        dict(num_flows=4096, num_buckets=2048, num_queries=100),
        dict(num_queries=200),
    ),
    "jvm": (
        dict(num_objects=6000, num_queries=80),
        dict(num_queries=150),
    ),
    "rocksdb": (
        dict(num_items=1500, num_queries=50),
        dict(num_queries=100),
    ),
    "snort": (
        dict(num_keywords=400, payload_bytes=384, num_queries=4),
        dict(num_queries=8),
    ),
    "flann": (
        dict(num_tables=8, num_items=1200, num_points=8, num_buckets=256),
        dict(num_points=12),
    ),
}


def workload_params(name: str, quick: bool) -> dict:
    quick_params, full_params = BENCH_WORKLOADS[name]
    return dict(quick_params if quick else full_params)


def _build(name: str, scheme: str, quick: bool, config: Optional[SystemConfig] = None):
    # Default-config builds reuse the warm-system snapshot (see
    # analysis/snapshot.py): the first build per (name, params) captures a
    # template of the populated memory image; later builds restore it via
    # deepcopy instead of re-running O(dataset) population.  Custom configs
    # always build fresh (same policy as _PAIR_MEMO).
    params = workload_params(name, quick)
    if config is None:
        snap = snapshot.get(name, params)
        if snap is not None:
            return snap.restore(scheme)
    system = System(config, scheme)
    workload = make_workload(name, system, **params)
    if config is None:
        snapshot.capture(name, params, system, workload)
    return system, workload


#: (workload, scheme, quick) -> (baseline, qei, baseline stats delta, qei
#: stats delta).  Fig. 7/11/12 all time the exact same deterministic ROI
#: pairs on fresh default-config systems, so within one process (one
#: ``repro all`` task) each pair runs once and is shared.  Only the
#: default config is memoized — custom configs (fig8's latency sweep)
#: always run fresh.  Systems are not retained (they hold the preallocated
#: cache set tables); only the run results and stats deltas are.
_PAIR_MEMO: Dict[Tuple[str, str, bool], Tuple[RoiRun, RoiRun, dict, dict]] = {}


def _pair_stats(name: str, scheme: str, quick: bool) -> Tuple[RoiRun, RoiRun, dict, dict]:
    """Memoized baseline/QEI ROI pair with stats deltas around each run."""
    key = (name, scheme, quick)
    hit = _PAIR_MEMO.get(key)
    if hit is None:
        sys_b, wl_b = _build(name, scheme, quick)
        before_b = sys_b.stats.snapshot()
        baseline = run_baseline(sys_b, wl_b)
        delta_b = sys_b.stats.diff(before_b)
        sys_q, wl_q = _build(name, scheme, quick)
        before_q = sys_q.stats.snapshot()
        qei = run_qei(sys_q, wl_q)
        delta_q = sys_q.stats.diff(before_q)
        hit = _PAIR_MEMO[key] = (baseline, qei, delta_b, delta_q)
    return hit


def _pair(
    name: str, scheme: str, quick: bool, config=None
) -> Tuple[RoiRun, RoiRun, Optional[System]]:
    """Baseline on one fresh system, QEI on another (fair cold/warm state)."""
    if config is not None:
        sys_b, wl_b = _build(name, scheme, quick, config)
        baseline = run_baseline(sys_b, wl_b)
        sys_q, wl_q = _build(name, scheme, quick, config)
        qei = run_qei(sys_q, wl_q)
        return baseline, qei, sys_q
    baseline, qei, _, _ = _pair_stats(name, scheme, quick)
    return baseline, qei, None


# --------------------------------------------------------------------- #
# Fig. 1 — share of CPU time spent in query operations
# --------------------------------------------------------------------- #


def fig1_profiling(*, quick: bool = True, workloads: Optional[List[str]] = None) -> ExperimentResult:
    """Percentage of application time spent in data query operations.

    The paper's VTune profiling found 23%-44% across workloads (Fig. 1); we
    attribute cycles by differencing the full application loop against the
    same loop with the query routine removed.
    """
    result = ExperimentResult(
        "Fig. 1",
        "query share of application CPU time",
        ["workload", "app_cycles", "other_cycles", "query_share_pct"],
        notes=["paper reports 23%-44% across workloads"],
    )
    for name in workloads or list(BENCH_WORKLOADS):
        system, workload = _build(name, "core-integrated", quick)
        full = run_baseline(system, workload, app=True)
        other_trace = workload.app_trace_other_only()
        system2, workload2 = _build(name, "core-integrated", quick)
        system2.warm_llc()
        other = system2.run_trace(other_trace)
        share = 100.0 * (full.cycles - other.cycles) / full.cycles
        result.add_row(
            workload=name,
            app_cycles=full.cycles,
            other_cycles=other.cycles,
            query_share_pct=share,
        )
    return result


# --------------------------------------------------------------------- #
# Fig. 7 — ROI query speedup per workload per scheme
# --------------------------------------------------------------------- #


def fig7_speedup(
    *,
    quick: bool = True,
    workloads: Optional[List[str]] = None,
    schemes: Optional[List[str]] = None,
) -> ExperimentResult:
    """Speedup of lookup operations per integration scheme (Fig. 7)."""
    schemes = schemes or SCHEME_ORDER
    result = ExperimentResult(
        "Fig. 7",
        "ROI query speedup over software baseline",
        ["workload"] + list(schemes),
        notes=[
            "paper: ~8x average, up to 12.7x (CHA-TLB) / 10.4x (Core-integrated);"
            " device schemes trail, worst for short hash-table queries",
        ],
    )
    for name in workloads or list(BENCH_WORKLOADS):
        row = {"workload": name}
        for scheme in schemes:
            baseline, qei, _ = _pair(name, scheme, quick)
            row[scheme] = baseline.cycles / qei.cycles
        result.add_row(**row)
    return result


# --------------------------------------------------------------------- #
# Fig. 8 — Device-indirect latency sensitivity
# --------------------------------------------------------------------- #


def fig8_latency_sweep(
    *,
    quick: bool = True,
    latencies: Optional[List[int]] = None,
    workloads: Optional[List[str]] = None,
) -> ExperimentResult:
    """Sweep the device interface's data-access latency, 50..2000 cycles."""
    latencies = latencies or [50, 100, 200, 400, 800, 2000]
    names = workloads or ["dpdk", "jvm", "rocksdb"]
    result = ExperimentResult(
        "Fig. 8",
        "Device-indirect speedup vs interface data-access latency",
        ["latency_cycles"] + list(names),
        notes=["paper: non-trivial performance drop as latency grows"],
    )
    for latency in latencies:
        overrides = dict(DEFAULT_SCHEME_LATENCIES)
        overrides[IntegrationScheme.DEVICE_INDIRECT] = SchemeLatencyConfig(
            300, latency
        )
        config = SystemConfig(scheme_latencies=overrides)
        row = {"latency_cycles": latency}
        for name in names:
            baseline, qei, _ = _pair(name, "device-indirect", quick, config)
            row[name] = baseline.cycles / qei.cycles
        result.add_row(**row)
    return result


# --------------------------------------------------------------------- #
# Fig. 9 — end-to-end throughput improvement
# --------------------------------------------------------------------- #


def fig9_end_to_end(
    *,
    quick: bool = True,
    workloads: Optional[List[str]] = None,
    scheme: str = "core-integrated",
) -> ExperimentResult:
    """Whole-application queries/packets per second improvement (Fig. 9)."""
    result = ExperimentResult(
        "Fig. 9",
        "end-to-end throughput improvement (full application loop)",
        ["workload", "baseline_cycles", "qei_cycles", "improvement_pct"],
        notes=["paper: +36.2% to +66.7%"],
    )
    for name in workloads or list(BENCH_WORKLOADS):
        sys_b, wl_b = _build(name, scheme, quick)
        baseline = run_baseline(sys_b, wl_b, app=True)
        sys_q, wl_q = _build(name, scheme, quick)
        qei = run_qei(sys_q, wl_q, app=True)
        improvement = 100.0 * (baseline.cycles / qei.cycles - 1.0)
        result.add_row(
            workload=name,
            baseline_cycles=baseline.cycles,
            qei_cycles=qei.cycles,
            improvement_pct=improvement,
        )
    return result


# --------------------------------------------------------------------- #
# Fig. 10 — tuple-space search with QUERY_NB
# --------------------------------------------------------------------- #


def fig10_tuple_space(
    *,
    quick: bool = True,
    tuple_counts: Optional[List[int]] = None,
    schemes: Optional[List[str]] = None,
) -> ExperimentResult:
    """Non-blocking tuple-space search, 5/10/15 tuples (Fig. 10)."""
    tuple_counts = tuple_counts or [5, 10, 15]
    schemes = schemes or SCHEME_ORDER
    result = ExperimentResult(
        "Fig. 10",
        "tuple-space search speedup with QUERY_NB (poll every 32 packets)",
        ["tuples"] + list(schemes),
        notes=[
            "paper: speedup grows with tuple count; device schemes close the"
            " gap under batched non-blocking queries",
        ],
    )
    packets = 24 if quick else 48
    flows = 256 if quick else 512
    for tuples in tuple_counts:
        row = {"tuples": tuples}
        for scheme in schemes:
            sys_b = System(scheme=scheme)
            wl_b = TupleSpaceWorkload(
                sys_b, num_tuples=tuples, flows_per_tuple=flows,
                num_packets=packets, num_buckets=256,
            )
            wl_b.build()
            baseline = run_baseline(sys_b, wl_b)
            sys_q = System(scheme=scheme)
            wl_q = TupleSpaceWorkload(
                sys_q, num_tuples=tuples, flows_per_tuple=flows,
                num_packets=packets, num_buckets=256,
            )
            wl_q.build()
            qei = run_qei(
                sys_q, wl_q, non_blocking=True, poll_every=wl_q.nb_poll_every()
            )
            row[scheme] = baseline.cycles / qei.cycles
        result.add_row(**row)
    return result


# --------------------------------------------------------------------- #
# Fig. 11 — dynamic instruction count reduction
# --------------------------------------------------------------------- #


def fig11_instruction_count(
    *, quick: bool = True, workloads: Optional[List[str]] = None
) -> ExperimentResult:
    """Dynamic instructions executed by the core in the ROI (Fig. 11)."""
    result = ExperimentResult(
        "Fig. 11",
        "core dynamic instructions in ROI: baseline vs QEI",
        ["workload", "baseline_instructions", "qei_instructions", "reduction_pct"],
        notes=["paper: a significant share of ROI instructions is eliminated"],
    )
    for name in workloads or list(BENCH_WORKLOADS):
        baseline, qei, _ = _pair(name, "core-integrated", quick)
        reduction = 100.0 * (1 - qei.instructions / baseline.instructions)
        result.add_row(
            workload=name,
            baseline_instructions=baseline.instructions,
            qei_instructions=qei.instructions,
            reduction_pct=reduction,
        )
    return result


# --------------------------------------------------------------------- #
# Fig. 12 — dynamic power per query
# --------------------------------------------------------------------- #


def fig12_dynamic_power(
    *,
    quick: bool = True,
    workloads: Optional[List[str]] = None,
    schemes: Optional[List[str]] = None,
) -> ExperimentResult:
    """QEI dynamic consumption per query relative to software (Fig. 12)."""
    schemes = schemes or SCHEME_ORDER
    model = DynamicEnergyModel()
    result = ExperimentResult(
        "Fig. 12",
        "relative dynamic power per query (QEI / software baseline, %)",
        ["workload"] + list(schemes),
        notes=["paper: accelerators cut more than 60% of dynamic power"],
    )
    for name in workloads or list(BENCH_WORKLOADS):
        row = {"workload": name}
        for scheme in schemes:
            baseline, qei, delta_b, delta = _pair_stats(name, scheme, quick)
            ratio = model.relative_dynamic_power(
                baseline.core_result,
                delta_b,
                baseline.queries,
                qei.core_result,
                delta,
                qei.queries,
            )
            row[scheme] = 100.0 * ratio
        result.add_row(**row)
    return result


# --------------------------------------------------------------------- #
# Tables
# --------------------------------------------------------------------- #


def tab1_schemes(config: Optional[SystemConfig] = None) -> ExperimentResult:
    """Integration scheme comparison (Tab. I)."""
    config = config or SystemConfig()
    qualitative = {
        "cha-tlb": ("Low+TLB", "Dedicated", "No", "No", "Good"),
        "cha-notlb": ("Low", "Shared", "No", "No", "Good"),
        "device-direct": ("Medium/High", "Dedicated", "Yes", "No", "Medium"),
        "device-indirect": ("Medium/High", "Dedicated", "Yes", "No", "Medium"),
        "core-integrated": ("Low", "Shared", "No", "No", "Good"),
    }
    result = ExperimentResult(
        "Tab. I",
        "integration scheme comparison",
        [
            "scheme",
            "accel_core_rtt",
            "accel_data_extra",
            "hw_cost",
            "mem_mgmt",
            "noc_hotspot",
            "private_pollution",
            "scalability",
        ],
    )
    for scheme in SCHEME_ORDER:
        latency = config.scheme_latency(scheme)
        cost, mem, hotspot, pollution, scale = qualitative[scheme]
        result.add_row(
            scheme=scheme,
            accel_core_rtt=latency.core_to_accel,
            accel_data_extra=latency.accel_to_data,
            hw_cost=cost,
            mem_mgmt=mem,
            noc_hotspot=hotspot,
            private_pollution=pollution,
            scalability=scale,
        )
    return result


def tab2_config(config: Optional[SystemConfig] = None) -> ExperimentResult:
    """Simulated CPU model configuration (Tab. II)."""
    config = config or SystemConfig()
    core = config.core
    result = ExperimentResult(
        "Tab. II",
        "simulated CPU model configuration",
        ["item", "configuration"],
    )
    result.add_row(item="cores", configuration=f"{config.num_cores} OoO @ {core.frequency_ghz} GHz")
    result.add_row(
        item="caches",
        configuration=(
            f"{core.l1d.associativity}-way {core.l1d.size_bytes // 1024}KB L1D/L1I, "
            f"{core.l2.associativity}-way {core.l2.size_bytes // 1024 // 1024}MB L2, "
            f"{config.llc.associativity}-way "
            f"{config.llc.total_size_bytes // 1024 // 1024}MB LLC "
            f"({config.llc.slices} slices)"
        ),
    )
    result.add_row(
        item="LQ/SQ/ROB",
        configuration=f"{core.load_queue_entries}/{core.store_queue_entries}/{core.rob_entries}",
    )
    result.add_row(
        item="memory",
        configuration=(
            f"{config.dram.channels} channels, "
            f"{config.dram.bandwidth_gbps_per_channel} GB/s each"
        ),
    )
    result.add_row(
        item="QEI",
        configuration=(
            f"{config.qei.alus_per_dpu} ALUs/DPU, "
            f"{config.qei.comparators_per_cha} comparators/CHA, "
            f"{config.qei.comparators_per_device_dpu} comparators/device DPU, "
            f"{config.qei.qst_entries}-entry QST"
        ),
    )
    result.add_row(
        item="NoC",
        configuration=f"{config.noc.width}x{config.noc.height} mesh",
    )
    result.add_row(item="process", configuration=f"{config.process_technology_nm}nm")
    return result


def tab3_area_power() -> ExperimentResult:
    """Area and static power of the three QEI configurations (Tab. III)."""
    paper = {
        "QEI-10": (0.1752, 10.8984),
        "QEI-10+TLB": (0.5730, 30.9049),
        "QEI-240": (1.0901, 20.8764),
    }
    result = ExperimentResult(
        "Tab. III",
        "QEI area and static power (model vs paper)",
        [
            "configuration",
            "area_mm2",
            "paper_area_mm2",
            "static_mw",
            "paper_static_mw",
        ],
    )
    for config in tab3_configurations():
        paper_area, paper_power = paper[config.name]
        result.add_row(
            configuration=config.name,
            area_mm2=config.area_mm2,
            paper_area_mm2=paper_area,
            static_mw=config.static_power_mw,
            paper_static_mw=paper_power,
        )
    return result
