"""QEI — the paper's primary contribution.

Components (Sec. III–V):

* :mod:`header` — the single-cacheline data-structure metadata header.
* :mod:`cfa` — the configurable-finite-automaton model, micro-operation
  vocabulary, and the firmware registry.
* :mod:`programs` — built-in CFA programs for linked list, hash table,
  skip list, binary tree, trie/Aho-Corasick, and hash-of-lists (subtype).
* :mod:`qst` — the Query State Table.
* :mod:`dpu` — data processing unit (ALUs, comparators, hash unit).
* :mod:`accelerator` — the CFA Execution Engine tying it all together.
* :mod:`integration` — the five CPU-integration schemes.
* :mod:`isa` — QUERY_B / QUERY_NB architectural semantics + query port.
"""

from .abort import AbortCode
from .accelerator import QeiAccelerator, QueryHandle, QueryStatus
from .cfa import CfaProgram, FirmwareImage, QueryContext
from .header import DataStructureHeader, StructureType
from .integration import build_integration, Integration
from .isa import QueryPort, read_result

__all__ = [
    "AbortCode",
    "CfaProgram",
    "DataStructureHeader",
    "FirmwareImage",
    "Integration",
    "QeiAccelerator",
    "QueryContext",
    "QueryHandle",
    "QueryPort",
    "QueryStatus",
    "StructureType",
    "build_integration",
    "read_result",
]
