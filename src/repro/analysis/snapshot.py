"""Warm-system snapshots: build each workload's memory image once, reuse it.

Every (workload, scheme) sweep task — fig7/fig11/fig12 shards, perfbench
rounds, the golden-stats pairs — starts by populating an identical process
memory: allocate frames, fill page tables, insert every flow/object/item
into the data structure.  That setup is pure function of the workload name
and its parameters; only the *runs* afterwards depend on the integration
scheme.  So we capture the functional state once per (workload, params)
— the :class:`~repro.datastructs.base.ProcessMemory` (physical frames,
page tables, allocator) plus the workload's own attributes (data-structure
roots, query lists, RNG state) — and restore it for every later build by
deep-copying the template instead of re-running O(dataset) population.

Bit-identity argument: the template is captured *before* any ROI runs, so
it equals exactly what a fresh build produces; ``deepcopy`` preserves all
internal aliasing (data structures hold the same ``mem`` object; the
address space's frame memos alias the physical frame bytearrays) because
memory and workload state are copied in one joint ``deepcopy`` call.  The
restored :class:`~repro.system.System` is constructed fresh per scheme —
caches, TLBs, accelerator sizing and stats all start cold, exactly as
after an ordinary build.  ``tests/test_golden_stats.py`` holds this path
to the same hashes as cold builds.

Snapshots apply only to default-config systems (``config is None``);
custom configs (fig8's latency sweep) always build fresh, mirroring the
``_PAIR_MEMO`` policy in :mod:`repro.analysis.experiments`.

Set ``QEI_NO_SNAPSHOT=1`` (or pass ``--no-snapshot`` to ``python -m
repro``) to disable and rebuild everything from scratch.
"""

from __future__ import annotations

import copy
import os
import sys
from typing import Dict, Optional, Set, Tuple

from ..system import System
from ..workloads.base import QueryWorkload

_Key = Tuple[str, Tuple[Tuple[str, object], ...]]

#: (workload name, frozen params) -> captured template.
_TEMPLATES: Dict[_Key, "WorkloadSnapshot"] = {}

#: Keys whose capture blew the deepcopy recursion limit — skip, don't retry.
_UNCOPYABLE: Set[_Key] = set()

#: Linked data structures (the Aho-Corasick trie's node graph) can chain
#: deeper than CPython's default 1000-frame limit under ``deepcopy``; raise
#: it just for the copy.  Bounded, so a genuinely cyclic pathology still
#: fails instead of exhausting the C stack.
_RECURSION_LIMIT = 20_000


def _deepcopy(obj):
    old = sys.getrecursionlimit()
    if old < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    try:
        return copy.deepcopy(obj)
    finally:
        sys.setrecursionlimit(old)

_enabled = os.environ.get("QEI_NO_SNAPSHOT", "").lower() not in ("1", "true", "yes")


def enabled() -> bool:
    """Whether warm-system snapshot reuse is active in this process."""
    return _enabled


def set_enabled(value: bool) -> None:
    """Turn snapshot reuse on/off (e.g. ``--no-snapshot``, worker init)."""
    global _enabled
    _enabled = bool(value)


def clear() -> None:
    """Drop all captured templates (tests, memory pressure)."""
    _TEMPLATES.clear()
    _UNCOPYABLE.clear()


def _key(name: str, params: dict) -> Tuple[str, Tuple[Tuple[str, object], ...]]:
    return name, tuple(sorted(params.items()))


class WorkloadSnapshot:
    """A deep-copied functional image of one populated workload.

    ``capture`` must run after :meth:`QueryWorkload.build` and before any
    ROI run — the template then matches a fresh build exactly.
    """

    __slots__ = ("_cls", "_template")

    def __init__(self, system: System, workload: QueryWorkload) -> None:
        self._cls = type(workload)
        state = {k: v for k, v in workload.__dict__.items() if k != "system"}
        # One joint deepcopy keeps every shared reference consistent:
        # data structures hold this same mem; AddressSpace frame memos
        # alias the physical frames' bytearrays.
        self._template = _deepcopy((system.mem, state))

    def restore(self, scheme: str) -> Tuple[System, QueryWorkload]:
        """A fresh cold System for ``scheme`` with the warm memory image."""
        mem, state = _deepcopy(self._template)
        system = System(None, scheme, mem=mem)
        workload = self._cls.__new__(self._cls)
        workload.__dict__.update(state)
        workload.system = system
        return system, workload


def get(name: str, params: dict) -> Optional[WorkloadSnapshot]:
    """The captured template for (name, params), or None."""
    if not _enabled:
        return None
    return _TEMPLATES.get(_key(name, params))


def capture(name: str, params: dict, system: System, workload: QueryWorkload) -> None:
    """Record a just-built (system, workload) as the template for its key.

    A workload whose object graph is too deep to deepcopy even at the
    raised limit is remembered as uncopyable and simply never snapshotted —
    later builds fall back to ordinary repopulation.
    """
    if not _enabled:
        return
    key = _key(name, params)
    if key in _UNCOPYABLE:
        return
    try:
        _TEMPLATES[key] = WorkloadSnapshot(system, workload)
    except RecursionError:
        _UNCOPYABLE.add(key)
