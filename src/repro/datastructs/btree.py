"""A B+-tree in simulated memory (database index traversal).

The paper positions QEI against index-traversal accelerators ("Meet the
walkers" accelerates B+-tree index lookups for in-memory databases); this
module provides that structure as a *firmware extension*: its CFA program
(:class:`repro.core.programs_ext.BPlusTreeCfa`) is not part of the default
image and is registered at runtime, exercising the paper's
firmware-update path on a second, realistic structure.

Layout — inner and leaf nodes share one frame so the CFA can parse either::

    offset 0:  u64 flags        (bit0: 1 = leaf)
    offset 8:  u64 key_count
    offset 16: u64 next_leaf    (leaf-level linked list; 0 for inner nodes)
    offset 24: u64 keys_ptr     -> key_count keys, each key_length bytes
    offset 32: u64 slots_ptr    -> values (leaf) or children (inner)

Inner nodes hold ``key_count + 1`` children; child ``i`` covers keys
``< keys[i]``, the last child covers the rest.  Leaves hold ``key_count``
values aligned with their keys.  Fan-out is fixed at build time; the tree
is bulk-loaded from sorted input (the common shape for in-memory index
snapshots).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.header import StructureType
from ..errors import DataStructureError
from ..cpu.trace import TraceBuilder
from .base import (
    DIRECTION_MISPREDICT_RATE,
    MATCH_EXIT_MISPREDICT_RATE,
    ProcessMemory,
    SimStructure,
)
from .hashing import branch_outcome

NODE_HEADER_BYTES = 40
LEAF_FLAG = 0x1
#: Per-level software bookkeeping: bounds checks and slot arithmetic of a
#: database index walker.
LEVEL_INSTRUCTIONS = 10


class BPlusTree(SimStructure):
    """Bulk-loaded B+-tree with fixed fan-out and out-of-line key arrays."""

    TYPE = StructureType.BPLUS_TREE

    def __init__(
        self,
        mem: ProcessMemory,
        *,
        key_length: int,
        fanout: int = 8,
    ) -> None:
        if not 2 <= fanout <= 64:
            raise DataStructureError("fanout must be in [2, 64]")
        super().__init__(mem, key_length=key_length, subtype=fanout)
        self.fanout = fanout
        self._built = False
        self.height = 0

    # ------------------------------------------------------------------ #
    # Construction (bulk load from sorted pairs)
    # ------------------------------------------------------------------ #

    def bulk_load(self, items: Sequence[Tuple[bytes, int]]) -> None:
        """Build the tree from (key, value) pairs; keys must be unique."""
        if self._built:
            raise DataStructureError("B+-tree is already built")
        if not items:
            raise DataStructureError("cannot bulk-load an empty tree")
        pairs = sorted((self._check_key(k), v) for k, v in items)
        for (a, _), (b, _) in zip(pairs, pairs[1:]):
            if a == b:
                raise DataStructureError(f"duplicate key {a!r}")

        # Build the leaf level.
        leaves: List[int] = []
        level_seps: List[bytes] = []  # first key of each node after the 0th
        for start in range(0, len(pairs), self.fanout):
            chunk = pairs[start : start + self.fanout]
            node = self._write_node(
                leaf=True,
                keys=[k for k, _ in chunk],
                slots=[v for _, v in chunk],
            )
            leaves.append(node)
        for prev, nxt in zip(leaves, leaves[1:]):
            self.mem.space.write_u64(prev + 16, nxt)

        # Build inner levels up to a single root.
        level_nodes = leaves
        level_first_keys = [pairs[0][0]] + [
            pairs[start][0] for start in range(self.fanout, len(pairs), self.fanout)
        ]
        self.height = 1
        while len(level_nodes) > 1:
            parents: List[int] = []
            parent_first_keys: List[bytes] = []
            group = self.fanout
            for start in range(0, len(level_nodes), group):
                children = level_nodes[start : start + group]
                seps = level_first_keys[start + 1 : start + len(children)]
                node = self._write_node(leaf=False, keys=seps, slots=children)
                parents.append(node)
                parent_first_keys.append(level_first_keys[start])
            level_nodes = parents
            level_first_keys = parent_first_keys
            self.height += 1
        self._update_header(root_ptr=level_nodes[0], size=len(pairs))
        self._built = True

    def _write_node(self, *, leaf: bool, keys: List[bytes], slots: List[int]) -> int:
        space = self.mem.space
        node = self.mem.alloc(NODE_HEADER_BYTES, align=8)
        keys_ptr = (
            self.mem.store_bytes(b"".join(keys)) if keys else 0
        )
        slots_ptr = self.mem.alloc(8 * max(1, len(slots)), align=8)
        for i, slot in enumerate(slots):
            space.write_u64(slots_ptr + 8 * i, slot)
        space.write_u64(node + 0, LEAF_FLAG if leaf else 0)
        space.write_u64(node + 8, len(keys))
        space.write_u64(node + 16, 0)
        space.write_u64(node + 24, keys_ptr)
        space.write_u64(node + 32, slots_ptr)
        return node

    # ------------------------------------------------------------------ #
    # Point mutations (software path for the mutation subsystem)
    # ------------------------------------------------------------------ #

    def _read_keys(self, keys_ptr: int, count: int) -> List[bytes]:
        return [self._node_key(keys_ptr, i) for i in range(count)]

    def _read_slots(self, slots_ptr: int, count: int) -> List[int]:
        space = self.mem.space
        return [space.read_u64(slots_ptr + 8 * i) for i in range(count)]

    def _set_node(
        self,
        node: int,
        keys: List[bytes],
        slots: List[int],
        *,
        leaf: bool,
        next_leaf: Optional[int] = None,
    ) -> None:
        """Rewrite a node frame with freshly allocated key/slot arrays."""
        space = self.mem.space
        keys_ptr = self.mem.store_bytes(b"".join(keys)) if keys else 0
        slots_ptr = self.mem.alloc(8 * max(1, len(slots)), align=8)
        for i, slot in enumerate(slots):
            space.write_u64(slots_ptr + 8 * i, slot)
        space.write_u64(node + 0, LEAF_FLAG if leaf else 0)
        space.write_u64(node + 8, len(keys))
        if next_leaf is not None:
            space.write_u64(node + 16, next_leaf)
        space.write_u64(node + 24, keys_ptr)
        space.write_u64(node + 32, slots_ptr)

    def _descend(self, key: bytes) -> Tuple[int, List[Tuple[int, int]]]:
        """Leaf holding ``key``'s range plus the (node, child_index) path."""
        node = self.header().root_ptr
        path: List[Tuple[int, int]] = []
        while True:
            flags, count, _, keys_ptr, slots_ptr = self._fields(node)
            if flags & LEAF_FLAG:
                return node, path
            child_index = count
            for i in range(count):
                if key < self._node_key(keys_ptr, i):
                    child_index = i
                    break
            path.append((node, child_index))
            node = self.mem.space.read_u64(slots_ptr + 8 * child_index)

    def insert(self, key: bytes, value: int) -> None:
        """Upsert one pair, splitting leaves/inner nodes as needed."""
        self._require_built()
        key = self._check_key(key)
        leaf, path = self._descend(key)
        _, count, next_leaf, keys_ptr, slots_ptr = self._fields(leaf)
        keys = self._read_keys(keys_ptr, count)
        slots = self._read_slots(slots_ptr, count)
        for i, stored in enumerate(keys):
            if stored == key:
                self.mem.space.write_u64(slots_ptr + 8 * i, value)
                return
        pos = sum(1 for stored in keys if stored < key)
        keys.insert(pos, key)
        slots.insert(pos, value)
        if len(keys) <= self.fanout:
            self._set_node(leaf, keys, slots, leaf=True)
        else:
            mid = len(keys) // 2
            right = self._write_node(leaf=True, keys=keys[mid:], slots=slots[mid:])
            self.mem.space.write_u64(right + 16, next_leaf)
            self._set_node(
                leaf, keys[:mid], slots[:mid], leaf=True, next_leaf=right
            )
            self._insert_separator(path, keys[mid], right)
        self._update_header(size=self.header().size + 1)

    def _insert_separator(
        self, path: List[Tuple[int, int]], separator: bytes, right: int
    ) -> None:
        """Push a split's separator into the parent, splitting upward."""
        if not path:
            root = self.header().root_ptr
            new_root = self._write_node(
                leaf=False, keys=[separator], slots=[root, right]
            )
            self._update_header(root_ptr=new_root)
            self.height += 1
            return
        node, child_index = path[-1]
        _, count, _, keys_ptr, slots_ptr = self._fields(node)
        keys = self._read_keys(keys_ptr, count)
        slots = self._read_slots(slots_ptr, count + 1)
        keys.insert(child_index, separator)
        slots.insert(child_index + 1, right)
        if len(slots) <= self.fanout:
            self._set_node(node, keys, slots, leaf=False)
            return
        half = len(slots) // 2
        pushed = keys[half - 1]
        new_right = self._write_node(
            leaf=False, keys=keys[half:], slots=slots[half:]
        )
        self._set_node(node, keys[: half - 1], slots[:half], leaf=False)
        self._insert_separator(path[:-1], pushed, new_right)

    def delete(self, key: bytes) -> bool:
        """Remove one pair; empty leaves are tolerated (no rebalancing)."""
        self._require_built()
        key = self._check_key(key)
        leaf, _ = self._descend(key)
        _, count, _, keys_ptr, slots_ptr = self._fields(leaf)
        keys = self._read_keys(keys_ptr, count)
        if key not in keys:
            return False
        i = keys.index(key)
        slots = self._read_slots(slots_ptr, count)
        self._set_node(
            leaf, keys[:i] + keys[i + 1 :], slots[:i] + slots[i + 1 :], leaf=True
        )
        self._update_header(size=self.header().size - 1)
        return True

    def update(self, key: bytes, value: int) -> bool:
        """Overwrite an existing key's value; False when absent."""
        self._require_built()
        key = self._check_key(key)
        leaf, _ = self._descend(key)
        _, count, _, keys_ptr, slots_ptr = self._fields(leaf)
        for i in range(count):
            if self._node_key(keys_ptr, i) == key:
                self.mem.space.write_u64(slots_ptr + 8 * i, value)
                return True
        return False

    # ------------------------------------------------------------------ #
    # Node parsing helpers
    # ------------------------------------------------------------------ #

    def _fields(self, node: int) -> Tuple[int, int, int, int, int]:
        space = self.mem.space
        return (
            space.read_u64(node + 0),
            space.read_u64(node + 8),
            space.read_u64(node + 16),
            space.read_u64(node + 24),
            space.read_u64(node + 32),
        )

    def _node_key(self, keys_ptr: int, index: int) -> bytes:
        return self.mem.space.read(
            keys_ptr + index * self.key_length, self.key_length
        )

    def _require_built(self) -> None:
        if not self._built:
            raise DataStructureError("bulk_load() the tree before querying")

    def __len__(self) -> int:
        return self.header().size if self._built else 0

    # ------------------------------------------------------------------ #
    # Query — functional reference
    # ------------------------------------------------------------------ #

    def lookup(self, key: bytes) -> Optional[int]:
        self._require_built()
        key = self._check_key(key)
        node = self.header().root_ptr
        while True:
            flags, count, _, keys_ptr, slots_ptr = self._fields(node)
            if flags & LEAF_FLAG:
                for i in range(count):
                    if self._node_key(keys_ptr, i) == key:
                        return self.mem.space.read_u64(slots_ptr + 8 * i)
                return None
            child_index = count  # rightmost unless a separator exceeds key
            for i in range(count):
                if key < self._node_key(keys_ptr, i):
                    child_index = i
                    break
            node = self.mem.space.read_u64(slots_ptr + 8 * child_index)

    def items(self) -> Iterator[Tuple[bytes, int]]:
        """Leaf-level scan in key order (via the leaf linked list)."""
        self._require_built()
        node = self.header().root_ptr
        flags, count, _, keys_ptr, slots_ptr = self._fields(node)
        while not flags & LEAF_FLAG:
            node = self.mem.space.read_u64(slots_ptr)
            flags, count, _, keys_ptr, slots_ptr = self._fields(node)
        while node:
            flags, count, next_leaf, keys_ptr, slots_ptr = self._fields(node)
            for i in range(count):
                yield (
                    self._node_key(keys_ptr, i),
                    self.mem.space.read_u64(slots_ptr + 8 * i),
                )
            node = next_leaf

    def range_count(self, low: bytes, high: bytes) -> int:
        """Keys in [low, high] — index range scans, the other common op."""
        return sum(1 for k, _ in self.items() if low <= k <= high)

    # ------------------------------------------------------------------ #
    # Query — software baseline (functional + micro-op trace)
    # ------------------------------------------------------------------ #

    def emit_lookup(
        self, builder: TraceBuilder, key_addr: int, key: bytes
    ) -> Optional[int]:
        self._require_built()
        key = self._check_key(key)
        space = self.mem.space
        header_load = builder.load(self.header_addr)
        builder.load_span(key_addr, self.key_length)
        cursor = builder.alu(deps=(header_load,))
        node = space.read_u64(self.header_addr)
        depth = 0

        while True:
            node_loads = builder.load_span(node, NODE_HEADER_BYTES, (cursor,))
            level = builder.alu(deps=tuple(node_loads), count=LEVEL_INSTRUCTIONS)
            flags, count, _, keys_ptr, slots_ptr = self._fields(node)
            if flags & LEAF_FLAG:
                for i in range(count):
                    cmp_op = self._emit_memcmp(
                        builder,
                        keys_ptr + i * self.key_length,
                        key_addr,
                        self.key_length,
                        (level,),
                    )
                    matched = self._node_key(keys_ptr, i) == key
                    builder.branch(
                        deps=(cmp_op,),
                        mispredicted=matched
                        and branch_outcome(key, depth, MATCH_EXIT_MISPREDICT_RATE),
                    )
                    if matched:
                        builder.load(slots_ptr + 8 * i, (cmp_op,))
                        return space.read_u64(slots_ptr + 8 * i)
                builder.branch(deps=(level,), mispredicted=True)
                return None
            # Inner node: binary-search-ish separator scan.
            child_index = count
            for i in range(count):
                cmp_op = self._emit_memcmp(
                    builder,
                    keys_ptr + i * self.key_length,
                    key_addr,
                    self.key_length,
                    (level,),
                )
                builder.branch(
                    deps=(cmp_op,),
                    mispredicted=branch_outcome(
                        key, depth * 64 + i, DIRECTION_MISPREDICT_RATE
                    ),
                )
                if key < self._node_key(keys_ptr, i):
                    child_index = i
                    break
            child_load = builder.load(slots_ptr + 8 * child_index, (level,))
            cursor = builder.alu(deps=(child_load,))
            node = space.read_u64(slots_ptr + 8 * child_index)
            depth += 1
