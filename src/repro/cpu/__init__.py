"""Trace-driven out-of-order core timing model.

Workloads run *functionally* against simulated memory while emitting a
micro-op trace (loads with real virtual addresses, ALU ops, data-dependent
branches).  The :class:`~repro.cpu.core.OoOCore` then times the trace with a
sliding ROB-window model: independent loads overlap up to the window/LQ
limits, dependent loads serialise, mispredicted branches stall the frontend.
This is the mechanistic-core-model substitution for the paper's Sniper runs.
"""

from .core import CoreExecution, CoreResult, OoOCore
from .isa import MicroOp, OpKind
from .multicore import MulticoreResult, run_multiprogrammed
from .trace import Trace, TraceBuilder

__all__ = [
    "CoreExecution",
    "CoreResult",
    "MicroOp",
    "MulticoreResult",
    "OoOCore",
    "OpKind",
    "Trace",
    "TraceBuilder",
    "run_multiprogrammed",
]
