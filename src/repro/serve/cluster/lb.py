"""The load-balancer tier: ring routing, replica failover, bounded retry.

The LB is the cluster's only client-facing surface.  Every request is
routed to its key's replica group off the consistent-hash ring (filtered by
the membership view, so DOWN nodes are routed around), dispatched to one
replica with a per-attempt response timeout, and failed over — bounded
attempts, exponential backoff — until it completes or the attempt budget is
burnt.  A request therefore *always* reaches a terminal outcome: completed,
or failed after ``max_attempts``; nothing can hang on a dead node or a
dropped link message.

Backpressure propagates end to end: a node-level admission rejection
travels up with its retry-after hint, the LB embargoes that node for the
hinted window, and when every replica of a key is embargoed the arrival is
rejected *to the client* with the soonest-expiry hint — closed-loop clients
back off against the cluster exactly as they back off against a single
frontend.

At-least-once semantics: a timed-out attempt may still execute on its node
while the retry runs elsewhere.  The first ``ok`` response wins (late ones
are counted ``stale``); every winning value is checked against the
software oracle, so duplicated execution can never surface a wrong result.

Writes (docs/mutations.md) are routed to the key's *primary* replica only:
the write lands on one copy first, so fanning it over the group would
double-apply it.  A written key is *pinned* while its replicas converge —
but the pin is no longer forever: commit-log replication (docs/recovery.md)
ships every primary commit to the replica group, replicas ack cumulative
watermarks, and the LB learns which replicas hold the key's latest write
epoch.  Pinned reads fan out over primary + synced replicas immediately,
and once the whole group acks — with no request for the key in flight —
the pin *settles*: the key returns to full R-way read fan-out with the
converged value as its expected answer.  The LB-level result check for
written keys tests membership in the set of plausibly-visible values
(at-least-once retries make several defensible); the node-side shadow
oracle and the linearizability history checker remain the tight judges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ...config import ClusterConfig, ServeConfig
from ...core.cfa import OP_DELETE
from ...sim.stats import PercentileSketch, StatsRegistry
from ..frontend import ServeRequest
from .membership import Membership, NodeState
from .ring import HashRing
from .node import (
    RESP_FAILED,
    RESP_NOT_OWNER,
    RESP_OK,
    RESP_REJECTED,
    RESP_SHED,
)


@dataclass
class _Pending:
    """LB-side state of one in-flight cluster request."""

    sreq: ServeRequest
    generator: object
    key_position: int
    attempts: int = 0
    #: Bumped per dispatch; responses carry it so late ones are detected.
    attempt_seq: int = 0
    target: Optional[int] = None
    tried: Set[int] = field(default_factory=set)
    timeout_event: Optional[object] = None
    resolved: bool = False
    #: True for writes and for reads of keys a write has pinned: the request
    #: may only be served by the key's primary replica (or, for reads, a
    #: replica that acked the pin's current write epoch).
    primary_only: bool = False
    #: The key's write epoch this request was admitted under (writes only;
    #: echoed through the node so replication acks match their pin).
    epoch: int = 0
    #: History-checker op id (recorded runs only; docs/recovery.md).
    hist_id: Optional[int] = None
    #: LB-unique request serial, stable across retries: nodes key their
    #: write dedup on it so a quorum-timeout retry cannot re-execute a
    #: mutation the first attempt already committed.
    serial: int = 0


@dataclass
class _PinState:
    """Replication convergence state of one written key (docs/recovery.md).

    A pin exists from the first write to a key until the replica group
    acks its *latest* write epoch with nothing for the key in flight; it
    then settles into :attr:`LoadBalancer._settled` and routing returns to
    full read fan-out.
    """

    #: Bumped per accepted write; replication updates for older epochs are
    #: stale and ignored.
    epoch: int = 0
    #: Writes for the key still unresolved at the LB.
    writes_inflight: int = 0
    #: Every value a read of the key may defensibly return (at-least-once
    #: dispatch means even a timed-out write may have applied).
    valid: Set[Optional[int]] = field(default_factory=set)
    #: Nodes that ack-covered the current epoch's commit ordinal.
    synced: Set[int] = field(default_factory=set)
    #: The node the current epoch's write was last dispatched to: until a
    #: replication ack proves otherwise, the only replica that can hold —
    #: and may already have *exposed*, via a read it served — the unacked
    #: write.  Reads route here when ``synced`` is empty, even if a
    #: failover has since promoted a different ring primary.
    holder: Optional[int] = None
    #: Highest epoch the full replica group has acked (-1 = none yet).
    full_epoch: int = -1
    #: True when the key's pre-pin value is unknown (its settled entry was
    #: evicted): the LB read check stands down for this key.
    checkless: bool = False


@dataclass(frozen=True)
class _SettledState:
    """A retired pin: the converged valid-value set and who held it."""

    valid: FrozenSet[Optional[int]]
    #: The replica set that had acked when the pin settled.  If a later
    #: rebalance routes the key to a node outside this set (a stand-in
    #: holding build-time data), the key is re-pinned before a read can
    #: reach the stale copy.
    synced: FrozenSet[int]


class FleetSlo:
    """Cluster-level end-to-end accounting: sketches, counters, phases."""

    def __init__(
        self, tenants: int, *, stats: Optional[StatsRegistry] = None
    ) -> None:
        self.stats = (stats or StatsRegistry()).scoped("cluster.slo")
        self.tenants = tenants
        self._sketches = [
            self.stats.sketch(f"tenant{t}.e2e") for t in range(tenants)
        ]
        names = (
            "issued", "completed", "failed", "giveups", "rejected",
            "retries", "timeouts", "not_owner", "node_rejections",
            "stale", "result_errors",
        )
        self.counters = {name: self.stats.counter(name) for name in names}
        self._phases: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #

    def begin_phase(self, name: str, now: int) -> None:
        self._phases.append(
            {
                "name": name,
                "start_cycle": now,
                "sketch": PercentileSketch(f"cluster.phase.{name}.e2e"),
                "issued": 0,
                "completed": 0,
                "failed": 0,
                "giveups": 0,
            }
        )

    def _phase(self) -> Optional[Dict[str, object]]:
        return self._phases[-1] if self._phases else None

    def record_issue(self) -> None:
        self.counters["issued"].add()
        phase = self._phase()
        if phase is not None:
            phase["issued"] += 1

    def record_completion(self, tenant: int, latency: int) -> None:
        self._sketches[tenant].record(latency)
        self.counters["completed"].add()
        phase = self._phase()
        if phase is not None:
            phase["completed"] += 1
            phase["sketch"].record(latency)

    def record_failure(self) -> None:
        self.counters["failed"].add()
        phase = self._phase()
        if phase is not None:
            phase["failed"] += 1

    def record_giveup(self) -> None:
        self.counters["giveups"].add()
        phase = self._phase()
        if phase is not None:
            phase["giveups"] += 1

    def sketch_of(self, tenant: int) -> PercentileSketch:
        return self._sketches[tenant]

    @property
    def terminal(self) -> int:
        """Requests with a terminal outcome (chaos schedules key off this)."""
        return (
            self.counters["completed"].value
            + self.counters["failed"].value
            + self.counters["giveups"].value
        )

    def phase_rows(self) -> List[Dict[str, object]]:
        rows = []
        for phase in self._phases:
            terminal = phase["completed"] + phase["failed"] + phase["giveups"]
            sketch = phase["sketch"]
            rows.append(
                {
                    "name": phase["name"],
                    "start_cycle": phase["start_cycle"],
                    "issued": phase["issued"],
                    "completed": phase["completed"],
                    "failed": phase["failed"],
                    "giveups": phase["giveups"],
                    "availability": (
                        phase["completed"] / terminal if terminal else 1.0
                    ),
                    "p50": sketch.p50,
                    "p99": sketch.p99,
                    "mean": sketch.mean,
                }
            )
        return rows


class LoadBalancer:
    """Routes client requests over the node fleet; owns retry/failover."""

    def __init__(
        self,
        engine,
        config: ClusterConfig,
        serve_config: ServeConfig,
        ring: HashRing,
        membership: Membership,
        *,
        send: Callable[[int, object, int, int, int], None],
        key_positions: List[int],
        expected: List[Optional[int]],
        slo: FleetSlo,
    ) -> None:
        self.engine = engine
        self.config = config
        self.serve_config = serve_config
        self.ring = ring
        self.membership = membership
        #: ``send(node, token, tenant, index, key_position, op, value,
        #: epoch, serial)`` puts one request on the LB -> node link (the
        #: fabric applies latency/drops).
        self._send = send
        self._key_positions = key_positions
        self._expected = expected
        self.slo = slo
        #: Per-node admission embargo: absolute cycle before which the LB
        #: avoids the node (fed by node retry-after hints and timeouts).
        self._embargo = [0] * config.nodes
        self.outstanding = 0
        #: Monotone request serials (see :attr:`_Pending.serial`).
        self._next_serial = 0
        #: Ring positions with an unsettled write: pinned to the primary
        #: (plus synced replicas) until the replica group converges.
        self._pins: Dict[int, _PinState] = {}
        #: Settled written keys (insertion-ordered; capped at
        #: ``settled_key_limit``, FIFO evict).
        self._settled: Dict[int, _SettledState] = {}
        #: Every ring position a write ever touched (ints only, so keeping
        #: it unbounded is cheap).  A key evicted from ``_settled`` stays
        #: here, telling the read check to stand down rather than judge
        #: against the stale build-time answer.
        self._dirty: Set[int] = set()
        #: In-flight requests per written key position, *all* kinds: a read
        #: admitted before a pin settles may return an old value late, so
        #: settling waits for it too.
        self._key_inflight: Dict[int, int] = {}
        self.writes_ok = 0
        #: Pins settled back to full fan-out / settled entries FIFO-evicted.
        self.pin_evictions = 0
        self.settled_evictions = 0
        #: Optional :class:`~repro.faults.history.HistoryRecorder`; the
        #: chaos harnesses attach one to audit linearizability.
        self.history = None

    # ------------------------------------------------------------------ #
    # Client-facing admission (LoadGenerator server protocol)
    # ------------------------------------------------------------------ #

    def accept(self, generator, sreq: ServeRequest) -> bool:
        now = self.engine.now
        key_position = self._key_positions[sreq.index]
        owners = self.ring.owners(
            key_position,
            self.config.replication,
            routable=self.membership.routable(),
        )
        primary_only = sreq.is_write or key_position in self._pins
        gate = owners[:1] if primary_only else owners
        if gate and all(self._embargo[node] > now for node in gate):
            # Cluster-wide backpressure for this shard: every replica asked
            # for breathing room.  Surface the soonest expiry to the client.
            retry_after = max(
                1, min(self._embargo[node] for node in gate) - now
            )
            self.slo.counters["rejected"].add()
            if sreq.attempts >= self.serve_config.max_admission_attempts:
                # This rejection exhausts the client's retry budget: the
                # request is terminally lost and counts against availability.
                self.slo.record_giveup()
            generator.on_rejected(sreq, retry_after)
            return False
        self._next_serial += 1
        pending = _Pending(
            sreq=sreq,
            generator=generator,
            key_position=key_position,
            primary_only=primary_only,
            serial=self._next_serial,
        )
        if sreq.is_write:
            # Pin the key (or bump an existing pin to a fresh epoch — the
            # replica group must re-ack before the key can settle) and
            # widen the valid-read set by this write's candidate the moment
            # it is dispatched: a lost response is not a lost execution.
            pin = self._pins.get(key_position)
            if pin is None:
                settled = self._settled.pop(key_position, None)
                if settled is not None:
                    pin = _PinState(
                        valid=set(settled.valid),
                        synced=set(settled.synced),
                    )
                elif key_position in self._dirty:
                    # Written before, but its settled entry was evicted:
                    # the pre-pin value is unknown, so reads of this key
                    # are not judged at the LB any more.
                    pin = _PinState(checkless=True)
                else:
                    pin = _PinState(valid={self._expected[sreq.index]})
                self._pins[key_position] = pin
            pin.epoch += 1
            pin.writes_inflight += 1
            pin.synced.clear()
            pin.valid.add(None if sreq.op == OP_DELETE else sreq.value)
            pending.epoch = pin.epoch
            self._dirty.add(key_position)
        if key_position in self._dirty:
            self._key_inflight[key_position] = (
                self._key_inflight.get(key_position, 0) + 1
            )
        self.slo.record_issue()
        if self.history is not None:
            pending.hist_id = self.history.invoke(
                key_position, sreq.op, sreq.value, now
            )
        self.outstanding += 1
        self._attempt(pending)
        return True

    # ------------------------------------------------------------------ #
    # Dispatch / failover
    # ------------------------------------------------------------------ #

    def _candidates(self, pending: _Pending, now: int) -> List[int]:
        """Replica preference order: UP before SUSPECT, untried, no embargo."""
        owners = self.ring.owners(
            pending.key_position,
            self.config.replication,
            routable=self.membership.routable(),
        )
        if not owners:
            return []
        if pending.sreq.is_write:
            # Mutations never fail over to a stale replica: the primary is
            # the only copy the write lands on first, so retries re-target
            # whoever the ring now calls primary.
            return owners[:1]
        pin = self._pins.get(pending.key_position)
        if pin is not None:
            # Consult the pin *now*, not the admission-time snapshot: a
            # rebalance can re-pin a settled key while this read is already
            # in flight (its old primary died), and the retry must not fan
            # out to a ring stand-in that never acked the key's writes —
            # every node materialises the baseline table, so an unsynced
            # stand-in would serve the pre-write value.  Fan out over the
            # replicas that acked the pin's current write epoch.  With no
            # ack yet, the unacked write lives only where it was
            # *dispatched* — which after a failover is not whoever the
            # ring now calls primary: an earlier read may have observed
            # the write through the old primary, so routing the ring's
            # replacement (possibly a lagging replica) would serve a
            # value linearizability already ruled out.  Route the holder
            # and accept timing out while it is unreachable: consistent
            # but unavailable beats available but stale.
            synced = [node for node in owners if node in pin.synced]
            if synced:
                owners = synced
            elif pin.holder is not None:
                owners = [pin.holder]
            else:
                owners = owners[:1]
        untried = [node for node in owners if node not in pending.tried]
        if not untried:
            pending.tried.clear()  # new failover round over the full group
            untried = owners
        unembargoed = [
            node for node in untried if self._embargo[node] <= now
        ]
        pool = unembargoed or untried
        up = [
            node
            for node in pool
            if self.membership.state_of(node) is NodeState.UP
        ]
        return up or pool

    def _backoff(self, attempts: int) -> int:
        return self.config.retry_backoff_cycles * (
            1 << min(attempts, 6)
        )

    def _attempt(self, pending: _Pending) -> None:
        if pending.resolved:
            return
        if pending.attempts >= self.config.max_attempts:
            self._fail(pending)
            return
        now = self.engine.now
        pending.attempts += 1
        candidates = self._candidates(pending, now)
        if not candidates:
            # Nothing routable right now (partition in progress); burn one
            # attempt waiting for the prober to converge, then look again.
            self.engine.schedule(
                self._backoff(pending.attempts),
                lambda p=pending: self._attempt(p),
            )
            return
        target = candidates[0]
        pending.target = target
        if pending.sreq.is_write:
            pin = self._pins.get(pending.key_position)
            if pin is not None and pin.epoch == pending.epoch:
                # The current epoch's write is (re)dispatched here: this
                # node is now where pinned reads must go until a
                # replication ack widens the synced set.
                pin.holder = target
        pending.tried.add(target)
        pending.attempt_seq += 1
        seq = pending.attempt_seq
        if pending.attempts > 1:
            self.slo.counters["retries"].add()
        pending.timeout_event = self.engine.schedule(
            self.config.request_timeout_cycles,
            lambda p=pending, s=seq: self._on_timeout(p, s),
        )
        self._send(
            target,
            (pending, seq),
            pending.sreq.tenant,
            pending.sreq.index,
            pending.key_position,
            pending.sreq.op,
            pending.sreq.value,
            pending.epoch,
            pending.serial,
        )

    def _on_timeout(self, pending: _Pending, seq: int) -> None:
        if pending.resolved or seq != pending.attempt_seq:
            return
        self.slo.counters["timeouts"].add()
        if pending.target is not None:
            # A silent node is either dead or partitioned: step around it
            # until the prober resolves which.
            self._embargo[pending.target] = (
                self.engine.now + self.config.timeout_embargo_cycles
            )
        self._attempt(pending)

    # ------------------------------------------------------------------ #
    # Responses (called by the cluster fabric at link-delivery time)
    # ------------------------------------------------------------------ #

    def on_response(
        self,
        node: int,
        token: Tuple[_Pending, int],
        kind: str,
        value: Optional[int],
        retry_after: int,
    ) -> None:
        pending, seq = token
        if pending.resolved:
            self.slo.counters["stale"].add()
            return
        if kind == RESP_OK:
            # First successful execution wins, even one from a superseded
            # attempt (at-least-once; the oracle check below keeps it honest).
            if pending.timeout_event is not None:
                pending.timeout_event.cancel()
            if pending.sreq.is_write:
                # A write's result_value is its MUT_* disposition, not a
                # lookup answer; the node-side shadow oracle audited it.
                self.writes_ok += 1
            else:
                key_position = pending.key_position
                pin = self._pins.get(key_position)
                if pin is not None:
                    if not pin.checkless and value not in pin.valid:
                        self.slo.counters["result_errors"].add()
                elif key_position in self._settled:
                    if value not in self._settled[key_position].valid:
                        self.slo.counters["result_errors"].add()
                elif key_position in self._dirty:
                    pass  # settled entry evicted: no defensible judgement
                elif value != self._expected[pending.sreq.index]:
                    self.slo.counters["result_errors"].add()
            self._complete(pending, value)
            return
        if seq != pending.attempt_seq:
            self.slo.counters["stale"].add()
            return
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
        if kind == RESP_REJECTED:
            # Node admission backpressure: honour the node's retry-after
            # hint on this node, fail over after the standard backoff.
            self.slo.counters["node_rejections"].add()
            self._embargo[node] = max(
                self._embargo[node], self.engine.now + max(1, retry_after)
            )
            self.engine.schedule(
                self._backoff(pending.attempts),
                lambda p=pending: self._attempt(p),
            )
            return
        if kind == RESP_NOT_OWNER:
            # Routed under a membership view a rebalance has since replaced;
            # re-resolve owners and try again almost immediately.
            self.slo.counters["not_owner"].add()
            self.engine.schedule(
                max(1, retry_after), lambda p=pending: self._attempt(p)
            )
            return
        if kind in (RESP_FAILED, RESP_SHED):
            # The node executed but could not produce a result (fallback
            # exhausted / deadline shed); a replica may still succeed.
            self.engine.schedule(
                self._backoff(pending.attempts),
                lambda p=pending: self._attempt(p),
            )
            return
        raise ValueError(f"unknown node response kind {kind!r}")

    # ------------------------------------------------------------------ #
    # Replication updates (sent by primaries as replicas ack; docs/recovery.md)
    # ------------------------------------------------------------------ #

    def on_replication_update(
        self,
        key_position: int,
        epoch: int,
        settled_value: Optional[int],
        nodes: Tuple[int, ...],
        full: bool,
    ) -> None:
        """Replicas in ``nodes`` now hold the key's ``epoch`` write.

        ``full`` marks the whole replica group acked; ``settled_value`` is
        what a read of the converged key returns.  Updates for superseded
        epochs are stale — a newer write restarted the convergence clock.
        """
        pin = self._pins.get(key_position)
        if pin is None or epoch != pin.epoch:
            return
        pin.synced.update(nodes)
        if full:
            pin.full_epoch = epoch
            pin.valid.add(settled_value)
        self._maybe_settle(key_position)

    def _maybe_settle(self, key_position: int) -> None:
        """Retire a pin once its group converged and the key went quiet."""
        pin = self._pins.get(key_position)
        if (
            pin is None
            or pin.full_epoch != pin.epoch
            or pin.writes_inflight
            or self._key_inflight.get(key_position, 0)
        ):
            return
        owners = self.ring.owners(
            key_position,
            self.config.replication,
            routable=self.membership.routable(),
        )
        if not owners or not pin.synced.issuperset(owners):
            return
        del self._pins[key_position]
        self.pin_evictions += 1
        if not pin.checkless:
            self._settled[key_position] = _SettledState(
                valid=frozenset(pin.valid), synced=frozenset(pin.synced)
            )
            while len(self._settled) > self.config.settled_key_limit:
                evicted, _ = next(iter(self._settled.items()))
                del self._settled[evicted]
                self.settled_evictions += 1

    def on_rebalance(self) -> None:
        """The routable set changed: audit settled keys against new owners.

        A settled key now owned by a node outside its settle-time synced
        set (a ring stand-in holding build-time data, or a freshly
        recovered node) is re-pinned, so reads route primary-or-synced
        until replication proves the new group holds the key.
        """
        if not self._settled:
            return
        routable = self.membership.routable()
        for key_position in list(self._settled):
            owners = self.ring.owners(
                key_position, self.config.replication, routable=routable
            )
            entry = self._settled[key_position]
            if owners and entry.synced.issuperset(owners):
                continue
            del self._settled[key_position]
            self._pins[key_position] = _PinState(
                valid=set(entry.valid), synced=set(entry.synced)
            )

    def _note_done(self, pending: _Pending) -> None:
        """Inflight bookkeeping shared by completion and failure."""
        key_position = pending.key_position
        if pending.sreq.is_write:
            pin = self._pins.get(key_position)
            if pin is not None and pin.writes_inflight > 0:
                pin.writes_inflight -= 1
        if key_position in self._key_inflight:
            self._key_inflight[key_position] -= 1
            if self._key_inflight[key_position] <= 0:
                del self._key_inflight[key_position]
                self._maybe_settle(key_position)

    # ------------------------------------------------------------------ #

    def _complete(
        self, pending: _Pending, value: Optional[int] = None
    ) -> None:
        pending.resolved = True
        self.outstanding -= 1
        sreq = pending.sreq
        self.slo.record_completion(
            sreq.tenant, self.engine.now - sreq.arrival_cycle
        )
        if self.history is not None and pending.hist_id is not None:
            self.history.ok(
                pending.hist_id, value, self.engine.now, pending.attempts
            )
        self._note_done(pending)
        pending.generator.on_resolved(sreq)

    def _fail(self, pending: _Pending) -> None:
        pending.resolved = True
        self.outstanding -= 1
        self.slo.record_failure()
        if self.history is not None and pending.hist_id is not None:
            self.history.fail(
                pending.hist_id, self.engine.now, pending.attempts
            )
        self._note_done(pending)
        pending.generator.on_resolved(pending.sreq)
