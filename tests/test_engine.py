"""Unit tests for the event-driven simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


def test_events_run_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(10, lambda: order.append("b"))
    engine.schedule(5, lambda: order.append("a"))
    engine.schedule(20, lambda: order.append("c"))
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 20


def test_same_cycle_events_run_in_scheduling_order():
    engine = Engine()
    order = []
    engine.schedule(7, lambda: order.append(1))
    engine.schedule(7, lambda: order.append(2))
    engine.schedule(7, lambda: order.append(3))
    engine.run()
    assert order == [1, 2, 3]


def test_events_can_schedule_more_events():
    engine = Engine()
    seen = []

    def first():
        seen.append(engine.now)
        engine.schedule(3, lambda: seen.append(engine.now))

    engine.schedule(2, first)
    engine.run()
    assert seen == [2, 5]


def test_run_until_stops_before_future_events():
    engine = Engine()
    fired = []
    engine.schedule(100, lambda: fired.append(True))
    engine.run(until=50)
    assert not fired
    assert engine.now == 50
    engine.run()
    assert fired


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(5, lambda: fired.append(True))
    event.cancel()
    engine.run()
    assert not fired


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)


def test_max_events_guard():
    engine = Engine()

    def rearm():
        engine.schedule(1, rearm)

    engine.schedule(0, rearm)
    with pytest.raises(SimulationError):
        engine.run(max_events=100)


def test_advance_moves_time_even_with_empty_queue():
    engine = Engine()
    engine.advance(42)
    assert engine.now == 42


def test_step_returns_false_when_empty():
    engine = Engine()
    assert engine.step() is False
    engine.schedule(1, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_cancelled_events_are_compacted_out_of_the_heap():
    """Mass cancellation must shrink the queue, not leave tombstones forever."""
    engine = Engine()
    keep = [engine.schedule(1000 + i, lambda: None) for i in range(10)]
    doomed = [engine.schedule(i + 1, lambda: None) for i in range(500)]
    assert len(engine._queue) == 510
    for event in doomed:
        event.cancel()
    # Compaction trips repeatedly as cancelled entries come to dominate the
    # heap; only a sub-threshold residue of tombstones may remain.
    assert len(engine._queue) < len(keep) + 2 * Engine.COMPACT_MIN_CANCELLED
    assert engine.pending() == len(keep)
    # The survivors still fire, in order, at the right times.
    fired = []
    for event in keep:
        event.callback = lambda t=event.time: fired.append(t)
    engine.run()
    assert fired == sorted(e.time for e in keep)


def test_small_cancel_counts_stay_lazy():
    """Below the compaction floor, cancels are tombstoned, not rebuilt."""
    engine = Engine()
    events = [engine.schedule(i + 1, lambda: None) for i in range(20)]
    events[0].cancel()
    assert len(engine._queue) == 20  # tombstone left in place
    assert engine.pending() == 19
    engine.run()
    assert engine.events_processed == 19


def test_cancelled_count_resets_after_run():
    engine = Engine()
    hits = []
    for i in range(100):
        event = engine.schedule(i + 1, lambda i=i: hits.append(i))
        if i % 2:
            event.cancel()
    engine.run()
    assert hits == list(range(0, 100, 2))
    assert engine.pending() == 0
    # A fresh burst of schedule/cancel still behaves after the drain.
    again = engine.schedule(105, lambda: hits.append(-1))
    again.cancel()
    engine.run()
    assert -1 not in hits


def test_run_until_and_drain():
    engine = Engine()
    seen = []
    for t in (5, 10, 15):
        engine.schedule(t, lambda t=t: seen.append(t))
    assert engine.run_until(10) == 10
    assert seen == [5, 10]
    assert engine.now == 10
    assert engine.drain() == 15
    assert seen == [5, 10, 15]
