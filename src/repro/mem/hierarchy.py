"""The full cache hierarchy: private L1/L2 per core, sliced NUCA LLC, DRAM.

Physical cachelines map to LLC slices through a NUCA hash (Sec. V: requests
are distributed "based on a hash function specific to the NUCA architecture").
Accesses can originate at a core (through its private caches) or directly at
a CHA/LLC slice (near-data accesses from distributed comparators), which is
how the accelerator avoids private-cache pollution.

Timing is returned, not scheduled: callers (the core timing model, the QEI
engine) decide how latencies compose with their own concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..config import CACHELINE_BYTES, LlcConfig, SystemConfig
from ..errors import ConfigurationError
from ..sim.stats import StatsRegistry
from . import fastpath
from .cache import Cache, CacheLevelName
from .dram import Dram


def nuca_slice_hash(line_addr: int, num_slices: int) -> int:
    """Spread cachelines over LLC slices with a cheap mixing hash.

    Mirrors the XOR-folding hashes Intel uses for slice selection: avoids
    striding artifacts that a plain modulo would give for power-of-two
    strides.
    """
    x = line_addr
    x ^= x >> 7
    x ^= x >> 13
    x = (x * 0x9E3779B1) & 0xFFFFFFFF
    return x % num_slices


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one timed cacheline access."""

    latency: int
    level: CacheLevelName
    slice_id: int
    noc_hops: int = 0


class MemoryHierarchy:
    """Private L1/L2 per core + shared sliced LLC + DRAM."""

    def __init__(
        self,
        config: SystemConfig,
        *,
        stats: Optional[StatsRegistry] = None,
        hop_latency: Optional[Callable[[int, int], int]] = None,
        noc_charge: Optional[Callable[[int, int, int, int], None]] = None,
        noc=None,
        fastmem: Optional[bool] = None,
    ) -> None:
        """Build the hierarchy.

        Args:
            hop_latency: ``(src_node, dst_node) -> cycles`` over the mesh;
                defaults to a Manhattan-distance estimate if no NoC is wired.
            noc_charge: optional ``(src, dst, bytes, now)`` bandwidth hook.
            noc: a :class:`~repro.noc.mesh.MeshNoc` to wire directly —
                supplies ``hop_latency``/``noc_charge`` defaults and lets
                the fast path batch its send charges.
            fastmem: force the epoch-memoized fast path on/off; ``None``
                follows the ``QEI_NO_FASTMEM`` environment switch.
        """
        self.config = config
        if noc is not None:
            hop_latency = hop_latency or noc.latency
            noc_charge = noc_charge or noc.send
        registry = stats or StatsRegistry()
        self.stats = registry.scoped("mem")
        self.l1 = [
            Cache(config.core.l1d, stats=registry, name=f"core{i}.l1d")
            for i in range(config.num_cores)
        ]
        self.l2 = [
            Cache(config.core.l2, stats=registry, name=f"core{i}.l2")
            for i in range(config.num_cores)
        ]
        slice_cfg = config.llc.slice_config()
        self.llc_slices = [
            Cache(slice_cfg, stats=registry, name=f"llc.slice{i}")
            for i in range(config.llc.slices)
        ]
        self.dram = Dram(
            config.dram, frequency_ghz=config.core.frequency_ghz, stats=registry
        )
        self._hop_latency = hop_latency or self._manhattan_hops
        self._noc_charge = noc_charge
        self._llc_latency = config.llc.latency_cycles
        self._num_slices = len(self.llc_slices)
        # line -> home slice memo: the NUCA hash is a pure function of the
        # line address and slice count, and workloads touch the same lines
        # millions of times.
        self._slice_memo: dict[int, int] = {}
        # Hot-path counters bump via the approved ``counter.value += 1``
        # form throughout this module (one attribute store, no method call);
        # see the idiom table in sim/stats.py.
        self._accesses = self.stats.counter("accesses")
        self._dram_accesses = self.stats.counter("dram_accesses")
        #: Optional next-line prefetcher at the L2 (off by default so the
        #: calibrated experiments are prefetch-free, like the paper's
        #: focus on demand behaviour).  When enabled, an L2 demand miss
        #: also installs the next line into the L2 off the critical path.
        self.next_line_prefetch = False
        self._prefetches = self.stats.counter("prefetches")
        #: The epoch-memoized fast path (mem/fastpath.py).  When enabled it
        #: shadows the public access entry points with bound methods that
        #: replay memoized hit outcomes; ``QEI_NO_FASTMEM=1`` (or
        #: ``fastmem=False``) leaves the reference slow path untouched.
        self._fast = None
        if fastpath.enabled(fastmem):
            self._fast = fastpath.FastMem(self, noc=noc)
            self.access_from_core = self._fast.access_from_core
            self.access_from_slice = self._fast.access_from_slice
            self.warm_lines = self._fast.warm_lines

    # ------------------------------------------------------------------ #

    def _manhattan_hops(self, src: int, dst: int) -> int:
        width = self.config.noc.width
        sx, sy = src % width, src // width
        dx, dy = dst % width, dst // width
        hops = abs(sx - dx) + abs(sy - dy)
        per_hop = self.config.noc.hop_cycles + self.config.noc.router_cycles
        return hops * per_hop

    def slice_of(self, line_addr: int) -> int:
        memo = self._slice_memo
        home = memo.get(line_addr)
        if home is None:
            home = memo[line_addr] = nuca_slice_hash(line_addr, self._num_slices)
        return home

    @staticmethod
    def line_of(paddr: int) -> int:
        return paddr // CACHELINE_BYTES

    # ------------------------------------------------------------------ #

    def access_from_core(
        self,
        core_id: int,
        paddr: int,
        *,
        write: bool = False,
        now: int = 0,
        fill_l1: bool = True,
        fill_l2: bool = True,
    ) -> AccessResult:
        """A demand access from core ``core_id``'s pipeline (or its QEI).

        ``fill_l1=False`` models accesses that bypass the L1 (QEI sits next
        to the L2, Sec. V-A); ``fill_l2=False`` additionally skips the L2.
        """
        return self._access_from_core_slow(
            core_id, paddr, write, now, fill_l1, fill_l2
        )

    def _access_from_core_slow(
        self,
        core_id: int,
        paddr: int,
        write: bool,
        now: int,
        fill_l1: bool,
        fill_l2: bool,
    ) -> AccessResult:
        """The reference walk; the fast path calls this on memo misses."""
        if not 0 <= core_id < len(self.l1):
            raise ConfigurationError(f"core_id {core_id} out of range")
        self._accesses.value += 1
        line = paddr // CACHELINE_BYTES
        l1 = self.l1[core_id]
        l2 = self.l2[core_id]
        l1_lat = l1.config.latency_cycles
        l2_lat = l2.config.latency_cycles

        if fill_l1 and l1.access(line, write=write):
            return AccessResult(l1_lat, CacheLevelName.L1, self.slice_of(line))
        if l2.access(line, write=write):
            latency = (l1_lat if fill_l1 else 0) + l2_lat
            if fill_l1:
                l1.fill(line, dirty=write)
            return AccessResult(latency, CacheLevelName.L2, self.slice_of(line))

        lead_in = (l1_lat if fill_l1 else 0) + l2_lat
        result = self._access_llc(
            line, src_node=core_id, write=write, now=now, lead_in=lead_in
        )
        if fill_l2:
            l2.fill(line, dirty=write)
        if fill_l1:
            l1.fill(line, dirty=write)
        if self.next_line_prefetch and fill_l2 and not l2.probe(line + 1):
            # Off the critical path: install the next line into L2/LLC.
            self._prefetches.value += 1
            home = self.slice_of(line + 1)
            if not self.llc_slices[home].probe(line + 1):
                self.llc_slices[home].fill(line + 1)
            l2.fill(line + 1)
        return result

    def access_from_slice(
        self, slice_id: int, paddr: int, *, write: bool = False, now: int = 0
    ) -> AccessResult:
        """A near-data access issued at a CHA (distributed comparator).

        The request starts at the slice's own node; if the NUCA home of the
        line is a different slice, the request crosses the mesh (this is rare
        for QEI because comparisons are routed to the home slice up front).
        """
        return self._access_from_slice_slow(slice_id, paddr, write, now)

    def _access_from_slice_slow(
        self, slice_id: int, paddr: int, write: bool, now: int
    ) -> AccessResult:
        """The reference walk; the fast path calls this on memo misses."""
        line = paddr // CACHELINE_BYTES
        self._accesses.value += 1
        return self._access_llc(line, src_node=slice_id, write=write, now=now)

    def _access_llc(
        self,
        line: int,
        *,
        src_node: int,
        write: bool,
        now: int,
        lead_in: int = 0,
    ) -> AccessResult:
        home = self.slice_of(line)
        hop_cycles = self._hop_latency(src_node, home)
        if self._noc_charge is not None:
            self._noc_charge(src_node, home, CACHELINE_BYTES, now)
        llc = self.llc_slices[home]
        latency = lead_in + hop_cycles + self._llc_latency
        if llc.access(line, write=write):
            return AccessResult(latency, CacheLevelName.LLC, home, hop_cycles)
        self._dram_accesses.value += 1
        latency += self.dram.access(line, now + latency)
        llc.fill(line, dirty=write)
        return AccessResult(latency, CacheLevelName.DRAM, home, hop_cycles)

    # ------------------------------------------------------------------ #

    def flush_private(self, core_id: int) -> None:
        """Drop a core's L1/L2 contents (used between experiment phases)."""
        self.l1[core_id].invalidate()
        self.l2[core_id].invalidate()

    def flush_all(self) -> None:
        for i in range(len(self.l1)):
            self.flush_private(i)
        for llc in self.llc_slices:
            llc.invalidate()
        self.dram.reset_timing()

    def warm_lines(self, core_id: int, paddrs: List[int]) -> None:
        """Pre-touch lines so an ROI starts from a warmed cache state.

        With the fast path enabled this entry point is rebound to
        :meth:`FastMem.warm_lines`, which batches the whole sweep through
        the memo with hoisted locals (see bench_mem's warm legs).
        """
        for paddr in paddrs:
            self.access_from_core(core_id, paddr)
