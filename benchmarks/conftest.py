"""Shared fixtures for the per-figure benchmark harness.

Each benchmark regenerates one paper table/figure: it runs the experiment
driver under pytest-benchmark (one deterministic round — these are
simulations, not microbenchmarks), prints the same rows/series the paper
reports, and asserts the result's *shape* (orderings, crossovers, bands).

Set ``REPRO_FULL=1`` to run with the full workload sizes instead of the
quick ones.
"""

from __future__ import annotations

import os

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "figure: reproduces a paper figure/table")


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_FULL", "") != "1"


@pytest.fixture
def run_once(benchmark):
    """Run an experiment driver exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
