"""Fig. 9 — end-to-end application throughput improvement."""

import pytest

from repro.analysis import fig9_end_to_end

pytestmark = pytest.mark.slow


@pytest.mark.figure
def test_fig09_end_to_end(run_once, quick):
    result = run_once(fig9_end_to_end, quick=quick)
    print()
    print(result.format())

    improvements = result.column("improvement_pct")
    # Offloading the ROI never hurts the full application.
    assert all(v > -1.0 for v in improvements), improvements
    # Query-dense applications gain substantially end-to-end (the paper
    # reports +36.2%..+66.7%; our idealized software baseline narrows the
    # gap for the latency-bound workloads — see EXPERIMENTS.md).
    assert max(improvements) > 30.0
    # The gain is bounded by the query share (Amdahl): no workload can beat
    # 1 / (1 - share), far below the ROI-only speedups.
    assert max(improvements) < 110.0
