"""Epoch-memoized fast path over the end-to-end memory access walk.

After CFA fusion and specialization (PRs 4-9) the CEE drain is dominated by
the *timing model itself*: every micro-op re-walks
:meth:`~repro.mem.hierarchy.MemoryHierarchy.access_from_core` /
``access_from_slice`` — L1/L2 dict probes, the NUCA slice hash, hop
latency, per-set LRU churn and stats counter objects — even when the line
is resident and the outcome is fully determined by unchanged cache state.
This module memoizes that walk, exactly.

Epoch contract
--------------

Every :class:`~repro.mem.cache.Cache` (and :class:`~repro.mem.tlb.Tlb`) set
carries a generation counter, ``set_epochs[index]``, bumped only when line
*presence* in the set changes: a new-tag fill, an eviction, an invalidate.
Hits (LRU pop-and-reinsert) and dirty-only refills of an already-present
tag do **not** bump it.  Therefore:

    set epoch unchanged  ⇒  the memoized tag is still present  ⇒  the access
    is still a hit at the same level with the same latency, hop count and
    home slice.

A memo record is stored only for outcomes whose slow path performs **no
fill**: an L1 hit, an L2 hit with ``fill_l1=False`` (the QEI sits beside
the L2, Sec. V-A), or an LLC-slice hit.  Outcomes that fill (L2 hits that
also fill the L1, anything reaching DRAM) would bump the very epoch the
record depends on — they self-invalidate, so caching them is pure waste —
and DRAM latency additionally depends on ``now`` against the channel
queues (``Dram.timing_epoch``), which no per-line record can capture.

Replay then reproduces the slow path's *entire* effect:

* **MRU short-circuit** — insertion-ordered dicts implement LRU by
  pop-and-reinsert, so when the tag is already last (``next(reversed(s))``)
  the touch is a no-op on ordering and is skipped outright; a write to a
  clean MRU line degenerates to one existing-key store (which preserves
  position).  Non-MRU hits replay the exact pop-and-reinsert.
* **Batched stats** — the hit and access counters accumulate in plain ints
  (``Cache._pending_hits``, ``FastMem._pending_accesses``) and fold into
  the :class:`~repro.sim.stats.StatsRegistry` through flush hooks; every
  registry read flushes first, so snapshots are bit-identical to the
  unbatched path.
* **Batched NoC charges** — slice hits replay their mesh crossing through
  :meth:`MeshNoc.charge`, which accumulates per-(src, dst) counts and
  replays the commutative per-link byte sums at flush time.
* The frozen :class:`~repro.mem.hierarchy.AccessResult` instance itself is
  reused — same latency, level, home and hop count by construction.

``QEI_NO_FASTMEM=1`` disables the layer (mirroring ``QEI_NO_FUSION`` /
``QEI_NO_SPECIALIZE``); the golden-stats suite proves both modes
cycle-bit-identical, and ``tests/test_fastmem_properties.py`` drives
memoized and un-memoized hierarchies in lockstep through random access
streams asserting equal results and equal final state.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..config import CACHELINE_BYTES
from .cache import CacheLevelName

_L1 = CacheLevelName.L1
_L2 = CacheLevelName.L2
_LLC = CacheLevelName.LLC


def enabled(override: Optional[bool] = None) -> bool:
    """Is the epoch-memoized fast path on?  ``QEI_NO_FASTMEM=1`` disables."""
    if override is not None:
        return override
    return os.environ.get("QEI_NO_FASTMEM", "").lower() not in ("1", "true", "yes")


class FastMem:
    """Memo layer bound over one :class:`MemoryHierarchy` instance.

    The hierarchy rebinds its public ``access_from_core`` /
    ``access_from_slice`` / ``warm_lines`` entry points to the bound methods
    below at construction, so the fast path costs zero extra indirection
    and the slow path stays byte-identical when the layer is disabled.
    """

    __slots__ = (
        "_h",
        "_slow_core",
        "_slow_slice",
        "_l1",
        "_l2",
        "_llc",
        "_ncores",
        "_nslices",
        "_core_memo",
        "_slice_memo",
        "_charge",
        "_pending_accesses",
    )

    def __init__(self, hierarchy, noc=None) -> None:
        self._h = hierarchy
        self._slow_core = hierarchy._access_from_core_slow
        self._slow_slice = hierarchy._access_from_slice_slow
        self._l1 = hierarchy.l1
        self._l2 = hierarchy.l2
        self._llc = hierarchy.llc_slices
        self._ncores = len(hierarchy.l1)
        self._nslices = len(hierarchy.llc_slices)
        # Packed-int keys (cheaper to hash than tuples):
        #   core:  ((line * ncores + core) << 3) | write<<2 | fill_l1<<1 | fill_l2
        #   slice: ((line * nslices + slice) << 1) | write
        # Records: (result, set_dict, tag, epochs, set_index, epoch, cache
        #           [, home]) — valid while epochs[set_index] == epoch.
        self._core_memo: Dict[int, Tuple] = {}
        self._slice_memo: Dict[int, Tuple] = {}
        # Replayed slice hits still cross the mesh; batch the charge when
        # the NoC supports it, else fall back to the hierarchy's hook.
        if noc is not None:
            self._charge = noc.charge
        else:
            self._charge = hierarchy._noc_charge
        self._pending_accesses = 0
        hierarchy.stats.add_flush_hook(self._flush_pending)

    def _flush_pending(self) -> None:
        if self._pending_accesses:
            self._h._accesses.value += self._pending_accesses
            self._pending_accesses = 0

    # ------------------------------------------------------------------ #

    def access_from_core(
        self,
        core_id: int,
        paddr: int,
        *,
        write: bool = False,
        now: int = 0,
        fill_l1: bool = True,
        fill_l2: bool = True,
    ):
        line = paddr // CACHELINE_BYTES
        key = (
            ((line * self._ncores + core_id) << 3)
            | (bool(write) << 2)
            | (bool(fill_l1) << 1)
            | bool(fill_l2)
        )
        rec = self._core_memo.get(key)
        if rec is not None:
            result, sdict, tag, epochs, sidx, epoch, cache = rec
            if epochs[sidx] == epoch:
                if next(reversed(sdict)) == tag:
                    if write and not sdict[tag]:
                        sdict[tag] = True
                else:
                    sdict[tag] = sdict.pop(tag) or write
                cache._pending_hits += 1
                self._pending_accesses += 1
                return result
        result = self._slow_core(core_id, paddr, write, now, fill_l1, fill_l2)
        level = result.level
        if level is _L1:
            cache = self._l1[core_id]
        elif level is _L2 and not fill_l1:
            cache = self._l2[core_id]
        else:
            # Everything else performed a fill (or hit DRAM): the record
            # would self-invalidate, so don't store one.
            return result
        tag, sidx = divmod(line, cache.num_sets)
        epochs = cache.set_epochs
        self._core_memo[key] = (
            result, cache._sets[sidx], tag, epochs, sidx, epochs[sidx], cache
        )
        return result

    def access_from_slice(
        self, slice_id: int, paddr: int, *, write: bool = False, now: int = 0
    ):
        line = paddr // CACHELINE_BYTES
        key = ((line * self._nslices + slice_id) << 1) | bool(write)
        rec = self._slice_memo.get(key)
        if rec is not None:
            result, sdict, tag, epochs, sidx, epoch, cache, home = rec
            if epochs[sidx] == epoch:
                charge = self._charge
                if charge is not None:
                    charge(slice_id, home, CACHELINE_BYTES, now)
                if next(reversed(sdict)) == tag:
                    if write and not sdict[tag]:
                        sdict[tag] = True
                else:
                    sdict[tag] = sdict.pop(tag) or write
                cache._pending_hits += 1
                self._pending_accesses += 1
                return result
        result = self._slow_slice(slice_id, paddr, write, now)
        if result.level is _LLC:
            home = result.slice_id
            cache = self._llc[home]
            tag, sidx = divmod(line, cache.num_sets)
            epochs = cache.set_epochs
            self._slice_memo[key] = (
                result, cache._sets[sidx], tag, epochs, sidx, epochs[sidx],
                cache, home,
            )
        return result

    def warm_lines(self, core_id: int, paddrs: List[int]) -> None:
        """Batched warm-up: replay resident lines without per-call overhead.

        Warm-system rebuilds touch the same working set repeatedly; the
        loop probes the memo with hoisted locals and only falls into the
        full access path for lines not yet (or no longer) resident.
        """
        memo = self._core_memo
        ncores = self._ncores
        access = self.access_from_core
        pending = 0
        for paddr in paddrs:
            line = paddr // CACHELINE_BYTES
            # write=False, fill_l1=True, fill_l2=True -> low bits 0b011.
            key = ((line * ncores + core_id) << 3) | 0b011
            rec = memo.get(key)
            if rec is not None:
                _result, sdict, tag, epochs, sidx, epoch, cache = rec
                if epochs[sidx] == epoch:
                    if next(reversed(sdict)) != tag:
                        sdict[tag] = sdict.pop(tag)
                    cache._pending_hits += 1
                    pending += 1
                    continue
            access(core_id, paddr)
        self._pending_accesses += pending
