"""Integration tests for the QEI accelerator against every data structure.

The key invariant: for any structure and any key, the accelerator's CFA walk
returns exactly the same value as the pure software reference lookup — on
every integration scheme.
"""

import pytest

from repro import IntegrationScheme, small_config
from repro.core.accelerator import QueryRequest, QueryStatus
from repro.core.cfa import FirmwareImage
from repro.core.programs import HashOfListsCfa, default_firmware
from repro.datastructs import (
    BinarySearchTree,
    CuckooHashTable,
    HashOfLists,
    LinkedList,
    SkipList,
    Trie,
)
from repro.errors import FirmwareError
from repro.system import System


def make_system(scheme="core-integrated"):
    sys_ = System(small_config(), scheme)
    return sys_


def keys_of(n, length=16):
    return [(b"k%d" % i).ljust(length, b"_")[:length] for i in range(n)]


def run_query(sys_, structure, key, *, blocking=True, result_addr=0):
    key_addr = structure.store_key(key) if hasattr(structure, "store_key") else None
    handle = sys_.accelerator.submit(
        QueryRequest(
            header_addr=structure.header_addr,
            key_addr=key_addr,
            blocking=blocking,
            result_addr=result_addr,
        ),
        sys_.engine.now,
    )
    sys_.accelerator.wait_for(handle)
    return handle


@pytest.fixture
def sys_():
    return make_system()


class TestCfaFunctionalAgreement:
    def test_linked_list(self, sys_):
        ll = LinkedList(sys_.mem, key_length=16)
        keys = keys_of(12)
        for i, k in enumerate(keys):
            ll.insert(k, 100 + i)
        for k in keys + [b"missing".ljust(16, b"_")]:
            handle = run_query(sys_, ll, k)
            assert handle.value == ll.lookup(k)

    def test_hash_table(self, sys_):
        ht = CuckooHashTable(sys_.mem, key_length=16, num_buckets=64)
        keys = keys_of(150)
        for i, k in enumerate(keys):
            ht.insert(k, i)
        for k in keys[:30] + [b"absent".ljust(16, b"_")]:
            handle = run_query(sys_, ht, k)
            assert handle.value == ht.lookup(k)

    def test_skip_list(self, sys_):
        sl = SkipList(sys_.mem, key_length=16)
        keys = keys_of(80)
        for i, k in enumerate(keys):
            sl.insert(k, i)
        for k in keys[:20] + [b"absent".ljust(16, b"_")]:
            handle = run_query(sys_, sl, k)
            assert handle.value == sl.lookup(k)

    def test_binary_tree(self, sys_):
        bst = BinarySearchTree(sys_.mem, key_length=16)
        keys = keys_of(60)
        for i, k in enumerate(keys):
            bst.insert(k, i)
        for k in keys[:20] + [b"absent".ljust(16, b"_")]:
            handle = run_query(sys_, bst, k)
            assert handle.value == bst.lookup(k)

    def test_trie_exact(self, sys_):
        trie = Trie(sys_.mem, key_length=8)
        words = [b"cat", b"car", b"cart", b"dog"]
        for i, w in enumerate(words):
            trie.insert(w, i)
        trie.seal()
        for w in words:
            # Trie queries use padded fixed-length keys; store exact length
            # via a custom header is exercised in the snort workload; here
            # use keys that are exactly key_length long.
            pass
        trie8 = Trie(sys_.mem, key_length=4)
        for i, w in enumerate([b"abcd", b"abce", b"bcde"]):
            trie8.insert(w, i)
        trie8.seal()
        for w in [b"abcd", b"abce", b"bcde", b"zzzz"]:
            key_addr = sys_.mem.store_bytes(w)
            handle = sys_.accelerator.submit(
                QueryRequest(header_addr=trie8.header_addr, key_addr=key_addr),
                sys_.engine.now,
            )
            sys_.accelerator.wait_for(handle)
            assert handle.value == trie8.lookup(w)

    @pytest.mark.parametrize(
        "scheme",
        [s.value for s in IntegrationScheme],
    )
    def test_all_schemes_agree(self, scheme):
        sys_ = make_system(scheme)
        ht = CuckooHashTable(sys_.mem, key_length=16, num_buckets=64)
        keys = keys_of(50)
        for i, k in enumerate(keys):
            ht.insert(k, i)
        for k in keys[:10]:
            handle = run_query(sys_, ht, k)
            assert handle.status is QueryStatus.FOUND
            assert handle.value == ht.lookup(k)


class TestQueryLifecycle:
    def test_blocking_query_has_latency(self, sys_):
        ll = LinkedList(sys_.mem, key_length=16)
        k = keys_of(1)[0]
        ll.insert(k, 7)
        handle = run_query(sys_, ll, k)
        assert handle.completion_cycle > handle.submit_cycle
        assert handle.status is QueryStatus.FOUND

    def test_not_found_status(self, sys_):
        ll = LinkedList(sys_.mem, key_length=16)
        ll.insert(keys_of(1)[0], 7)
        handle = run_query(sys_, ll, b"missing".ljust(16, b"_"))
        assert handle.status is QueryStatus.NOT_FOUND
        assert handle.value is None

    def test_non_blocking_writes_result_to_memory(self, sys_):
        ht = CuckooHashTable(sys_.mem, key_length=16, num_buckets=64)
        k = keys_of(1)[0]
        ht.insert(k, 42)
        result_addr = sys_.mem.alloc(16, align=8)
        handle = run_query(sys_, ht, k, blocking=False, result_addr=result_addr)
        assert handle.status is QueryStatus.FOUND
        assert sys_.space.read_u64(result_addr) == 1  # RESULT_FOUND
        assert sys_.space.read_u64(result_addr + 8) == 42

    def test_queries_overlap_in_flight(self, sys_):
        """N independent queries must take far less than N x single latency."""
        ht = CuckooHashTable(sys_.mem, key_length=16, num_buckets=256)
        keys = keys_of(100)
        for i, k in enumerate(keys):
            ht.insert(k, i)
        # Single-query latency.
        single = run_query(sys_, ht, keys[0])
        single_latency = single.completion_cycle - single.submit_cycle
        # Ten concurrent queries.
        start = sys_.engine.now
        handles = []
        for k in keys[1:11]:
            key_addr = ht.store_key(k)
            handles.append(
                sys_.accelerator.submit(
                    QueryRequest(header_addr=ht.header_addr, key_addr=key_addr),
                    start,
                )
            )
        done = max(sys_.accelerator.wait_for(h) for h in handles)
        assert done - start < 10 * single_latency * 0.6

    def test_qst_overflow_queues_rather_than_drops(self, sys_):
        ht = CuckooHashTable(sys_.mem, key_length=16, num_buckets=64)
        keys = keys_of(40)
        for i, k in enumerate(keys):
            ht.insert(k, i)
        capacity = sys_.accelerator.qst.capacity
        handles = []
        for k in keys:  # 40 > 10 QST entries
            key_addr = ht.store_key(k)
            handles.append(
                sys_.accelerator.submit(
                    QueryRequest(header_addr=ht.header_addr, key_addr=key_addr),
                    sys_.engine.now,
                )
            )
        for h in handles:
            sys_.accelerator.wait_for(h)
        assert all(h.status is QueryStatus.FOUND for h in handles)
        assert sys_.accelerator.qst.occupancy == 0
        assert capacity == 10


class TestExceptions:
    def test_bad_header_faults(self, sys_):
        bogus_header = sys_.mem.alloc(64, align=64)  # zeroed: invalid flags
        key_addr = sys_.mem.store_bytes(b"x" * 16)
        handle = sys_.accelerator.submit(
            QueryRequest(header_addr=bogus_header, key_addr=key_addr),
            0,
        )
        sys_.accelerator.wait_for(handle)
        assert handle.status is QueryStatus.FAULT

    def test_unmapped_structure_faults_not_crashes(self, sys_):
        ll = LinkedList(sys_.mem, key_length=16)
        ll.insert(keys_of(1)[0], 1)
        # Corrupt the root pointer to an unmapped page.
        sys_.space.write_u64(ll.header_addr, 0xDEAD0000)
        handle = run_query(sys_, ll, keys_of(1)[0])
        assert handle.status is QueryStatus.FAULT
        assert "0x" in handle.fault_detail or handle.fault_detail

    def test_nonblocking_fault_writes_error_code(self, sys_):
        ll = LinkedList(sys_.mem, key_length=16)
        ll.insert(keys_of(1)[0], 1)
        sys_.space.write_u64(ll.header_addr, 0xDEAD0000)
        result_addr = sys_.mem.alloc(16)
        handle = run_query(
            sys_, ll, keys_of(1)[0], blocking=False, result_addr=result_addr
        )
        assert handle.status is QueryStatus.FAULT
        assert sys_.space.read_u64(result_addr) == 3  # RESULT_FAULT


class TestFlush:
    def test_flush_aborts_nonblocking_with_code(self, sys_):
        ht = CuckooHashTable(sys_.mem, key_length=16, num_buckets=64)
        keys = keys_of(5)
        for i, k in enumerate(keys):
            ht.insert(k, i)
        result_addrs = [sys_.mem.alloc(16) for _ in keys]
        handles = []
        for k, ra in zip(keys, result_addrs):
            key_addr = ht.store_key(k)
            handles.append(
                sys_.accelerator.submit(
                    QueryRequest(
                        header_addr=ht.header_addr,
                        key_addr=key_addr,
                        blocking=False,
                        result_addr=ra,
                    ),
                    sys_.engine.now,
                )
            )
        # Let them arrive in the QST, then flush (context switch).
        sys_.engine.advance(60)
        sys_.accelerator.flush()
        assert sys_.accelerator.qst.occupancy == 0
        aborted = [h for h in handles if h.status is QueryStatus.ABORTED]
        assert aborted
        for h in aborted:
            assert sys_.space.read_u64(h.request.result_addr) == 4  # ABORTED

    def test_flush_empty_accelerator_is_noop(self, sys_):
        assert sys_.accelerator.flush() == sys_.engine.now


class TestPoll:
    def test_poll_empty_handle_list(self, sys_):
        assert sys_.accelerator.poll([]) == []

    def test_poll_reports_flushed_handles_terminal(self, sys_):
        # Handles from a flushed batch are stale generations: poll must
        # report them terminal (done, ABORTED) rather than leave the
        # caller spinning on a batch the QST no longer tracks.
        ht = CuckooHashTable(sys_.mem, key_length=16, num_buckets=64)
        keys = keys_of(4)
        for i, k in enumerate(keys):
            ht.insert(k, i)
        handles = []
        for k in keys:
            handles.append(
                sys_.accelerator.submit(
                    QueryRequest(
                        header_addr=ht.header_addr,
                        key_addr=ht.store_key(k),
                        blocking=False,
                        result_addr=sys_.mem.alloc(16),
                    ),
                    sys_.engine.now,
                )
            )
        sys_.engine.advance(60)  # arrive in the QST
        sys_.accelerator.flush()
        sys_.engine.run()
        done = sys_.accelerator.poll(handles)
        assert done == handles, "every flushed handle must be terminal"
        for handle in done:
            assert handle.status in (
                QueryStatus.ABORTED,
                QueryStatus.FOUND,
                QueryStatus.NOT_FOUND,
            )

    def test_poll_reports_slice_failed_handles_terminal(self, sys_):
        ht = CuckooHashTable(sys_.mem, key_length=16, num_buckets=64)
        keys = keys_of(4)
        for i, k in enumerate(keys):
            ht.insert(k, i)
        handles = []
        for k in keys:
            handles.append(
                sys_.accelerator.submit(
                    QueryRequest(
                        header_addr=ht.header_addr,
                        key_addr=ht.store_key(k),
                        blocking=False,
                        result_addr=sys_.mem.alloc(16),
                    ),
                    sys_.engine.now,
                )
            )
        sys_.engine.advance(5)
        for home in sys_.integration.accelerator_homes():
            sys_.accelerator.fail_home(home)
        sys_.engine.run()
        done = sys_.accelerator.poll(handles)
        assert done == handles, "aborted-batch handles must not hang poll"


class TestFirmwareUpdate:
    def test_unknown_type_faults_without_firmware(self, sys_):
        hol = HashOfLists(sys_.mem, key_length=16)
        hol.insert(keys_of(1)[0], 9)
        handle = run_query(sys_, hol, keys_of(1)[0])
        assert handle.status is QueryStatus.FAULT  # no CFA program loaded

    def test_runtime_firmware_registration(self, sys_):
        sys_.firmware.register(HashOfListsCfa())
        hol = HashOfLists(sys_.mem, key_length=16, num_buckets=8)
        keys = keys_of(25)
        for i, k in enumerate(keys):
            hol.insert(k, i)
        for k in keys[:8] + [b"no".ljust(16, b"_")]:
            handle = run_query(sys_, hol, k)
            assert handle.value == hol.lookup(k)

    def test_duplicate_registration_rejected(self):
        fw = default_firmware()
        with pytest.raises(FirmwareError):
            fw.register(HashOfListsCfa().__class__())  # fresh instance, fine
            fw.register(HashOfListsCfa())

    def test_replace_firmware(self):
        fw = default_firmware()
        fw.register(HashOfListsCfa())
        fw.register(HashOfListsCfa(), replace=True)
        assert fw.supports(int(HashOfListsCfa.TYPE_CODE))

    def test_state_budget_enforced(self):
        fw = FirmwareImage(max_states=4)
        with pytest.raises(FirmwareError):
            fw.register(HashOfListsCfa())
