"""FLANN benchmark: locality-sensitive-hashing similarity search (Sec. VI-B).

FLANN's LSH index keeps a *series* of hash tables (the paper's defaults:
12 tables, 20-byte keys); a similarity query probes every table with a
per-table hashed key and unions the candidate buckets.  Each table probe is
an independent hash-table lookup — exactly the kind of fan-out QEI overlaps
across its in-flight query slots.
"""

from __future__ import annotations

from typing import List, Optional

from ..cpu.trace import TraceBuilder
from ..datastructs import CuckooHashTable
from ..datastructs.hashing import lsh_hash
from ..system import System
from .base import QueryWorkload
from .generator import make_keys, pick_queries

KEY_LENGTH = 20


def table_key(point_key: bytes, table_index: int) -> bytes:
    """The per-table LSH bucket key for a point.

    Real LSH hashes a feature vector per table; we derive a deterministic
    per-table key by replacing the leading 8 bytes with the table-specific
    hash, preserving both the fan-out pattern and per-table independence.
    """
    h = lsh_hash(point_key, table_index)
    return h.to_bytes(8, "little") + point_key[8:]


class FlannLshWorkload(QueryWorkload):
    """Multi-probe LSH: one query fans out to every hash table."""

    name = "flann"
    roi_other_work = 10       # distance-check bookkeeping per probe
    app_other_work = 260      # feature extraction, candidate re-ranking
    #: calibrated so LSH probes take ~31% of app time (paper Fig. 1);
    #: emitted once per application request (point), not per table probe
    app_other_cycles = 2300

    def __init__(
        self,
        system: System,
        *,
        num_tables: int = 12,
        num_items: int = 3000,
        num_points: int = 16,
        num_buckets: int = 512,
        seed: int = 23,
    ) -> None:
        # One "query" per (point, table) pair.
        super().__init__(system, num_queries=num_points * num_tables, seed=seed)
        self.num_tables = num_tables
        self.num_items = num_items
        self.num_points = num_points
        self.num_buckets = num_buckets
        self.tables: List[CuckooHashTable] = []
        self._probe_tables: List[int] = []
        self.app_work_stride = num_tables  # one app request per point

    def build(self) -> None:
        items = make_keys(self.num_items, KEY_LENGTH, seed=self.seed)
        self.tables = []
        for t in range(self.num_tables):
            table = CuckooHashTable(
                self.system.mem, key_length=KEY_LENGTH, num_buckets=self.num_buckets
            )
            for i, item in enumerate(items):
                table.insert(table_key(item, t), 0x200000 + i)
            self.tables.append(table)

        points = pick_queries(
            items, self.num_points, miss_ratio=0.1, key_length=KEY_LENGTH,
            seed=self.seed + 1,
        )
        queries, expected, probe_tables = [], [], []
        for point in points:
            for t in range(self.num_tables):
                probe = table_key(point, t)
                queries.append(probe)
                probe_tables.append(t)
                expected.append(self.tables[t].lookup(probe))
        self._probe_tables = probe_tables
        self._register_queries(queries, expected)

    def header_addr_for(self, index: int) -> int:
        return self.tables[self._probe_tables[index]].header_addr

    def emit_software_query(self, builder: TraceBuilder, index: int):
        table = self.tables[self._probe_tables[index]]
        return table.emit_lookup(
            builder, self._query_addrs[index], self._queries[index]
        )

    def software_lookup(self, index: int):
        return self.tables[self._probe_tables[index]].lookup(self._queries[index])
